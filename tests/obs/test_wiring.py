"""Telemetry wiring: executors merge worker activity; sessions record;
and — the hard invariant — telemetry never changes a score."""

import json
import os

import pytest

from repro.data.census import load_us
from repro.exceptions import ExperimentError
from repro.experiments.config import ScalePreset
from repro.obs import TraceRecorder, active_recorder, use_recorder
from repro.runtime import (
    PooledProcessExecutor,
    PooledThreadExecutor,
    ProcessExecutor,
)
from repro.session import ExecutionPolicy, Session


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_us(700)


@pytest.fixture(scope="module")
def tiny_preset():
    return ScalePreset(name="tiny", max_records=450, folds=3, repetitions=2)


def _counting_work(item: int) -> int:
    """Module-level (picklable) work that reports through the recorder."""
    recorder = active_recorder()
    with recorder.span("test.work", item=item):
        recorder.counter("test.items")
        recorder.counter("test.value", item)
    return item * 2


class TestExecutorMerge:
    """Worker span/counter activity lands in the parent recorder exactly once."""

    def _assert_complete(self, recorder, items):
        summary = recorder.summary()
        assert summary["counters"]["test.items"] == len(items)
        assert summary["counters"]["test.value"] == sum(items)
        assert summary["spans"]["test.work"]["count"] == len(items)

    def test_pooled_thread_counters_complete(self):
        items = list(range(8))
        recorder = TraceRecorder(mode="trace")
        with use_recorder(recorder), PooledThreadExecutor(max_workers=4) as executor:
            results = executor.map(_counting_work, items)
        assert results == [v * 2 for v in items]
        self._assert_complete(recorder, items)
        assert recorder.summary()["counters"]["pool.created"] == 1

    def test_pooled_thread_reuse_counted(self):
        recorder = TraceRecorder(mode="summary")
        with use_recorder(recorder), PooledThreadExecutor(max_workers=2) as executor:
            executor.map(_counting_work, [1, 2])
            executor.map(_counting_work, [3, 4])
        counters = recorder.summary()["counters"]
        assert counters["pool.created"] == 1
        assert counters["pool.reused"] == 1

    def test_pooled_process_counters_complete(self):
        items = list(range(8))
        recorder = TraceRecorder(mode="trace")
        with use_recorder(recorder), PooledProcessExecutor(max_workers=2) as executor:
            results = executor.map(_counting_work, items)
        assert results == [v * 2 for v in items]
        self._assert_complete(recorder, items)
        counters = recorder.summary()["counters"]
        assert counters["pool.created"] == 1
        assert counters["process.pickled_bytes"] > 0
        gauges = recorder.summary()["gauges"]
        assert gauges["process.pickled_bytes_per_call"]["max"] > 0

    def test_oneshot_process_counters_complete(self):
        items = list(range(6))
        recorder = TraceRecorder(mode="trace")
        with use_recorder(recorder):
            results = ProcessExecutor(max_workers=2).map(_counting_work, items)
        assert results == [v * 2 for v in items]
        self._assert_complete(recorder, items)

    def test_worker_spans_reparent_under_anchor(self):
        recorder = TraceRecorder(mode="trace")
        with use_recorder(recorder), PooledProcessExecutor(max_workers=2) as executor:
            with recorder.span("anchor") as anchor:
                executor.map(_counting_work, list(range(4)))
        work_events = [e for e in recorder.events() if e["name"] == "test.work"]
        assert len(work_events) == 4
        assert all(e["parent"] == anchor.span_id for e in work_events)

    def test_summary_mode_ships_no_events(self):
        recorder = TraceRecorder(mode="summary")
        with use_recorder(recorder), PooledProcessExecutor(max_workers=2) as executor:
            executor.map(_counting_work, list(range(4)))
        assert recorder.events() == []
        assert recorder.summary()["spans"]["test.work"]["count"] == 4

    def test_off_mode_pays_nothing(self):
        # No active recorder: results are identical and unwrapped.
        with PooledProcessExecutor(max_workers=2) as executor:
            assert executor.map(_counting_work, list(range(4))) == [0, 2, 4, 6]


class TestSessionTelemetry:
    def test_session_records_spans_and_counters(self, tiny_dataset, tiny_preset):
        policy = ExecutionPolicy(telemetry="trace")
        with Session(policy) as session:
            session.evaluate("FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset)
        summary = session.telemetry_summary()
        assert summary["spans"]["session.evaluate"]["count"] == 1
        assert summary["spans"]["plan.run"]["count"] >= 1
        assert summary["counters"]["runner.laplace_draws"] > 0

    def test_summary_accumulates_across_calls(self, tiny_dataset, tiny_preset):
        with Session(ExecutionPolicy(telemetry="summary")) as session:
            session.evaluate("FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset)
            session.evaluate("FM", tiny_dataset, "linear", 5, 0.5, preset=tiny_preset)
        assert session.telemetry_summary()["spans"]["session.evaluate"]["count"] == 2

    def test_write_trace_roundtrips(self, tiny_dataset, tiny_preset, tmp_path):
        with Session(ExecutionPolicy(telemetry="trace")) as session:
            session.evaluate("FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset)
            path = session.write_trace(tmp_path / "run.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["policy"]["telemetry"] == "trace"
        assert lines[-1]["type"] == "summary"
        names = {l.get("name") for l in lines}
        assert "session.evaluate" in names
        assert "plan.run" in names

    def test_write_trace_requires_telemetry(self, tmp_path):
        with Session(ExecutionPolicy()) as session:
            with pytest.raises(ExperimentError, match="telemetry"):
                session.write_trace(tmp_path / "run.jsonl")

    def test_budget_ledger_events_recorded(self):
        from repro.privacy.budget import PrivacyBudget

        recorder = TraceRecorder(mode="summary")
        with use_recorder(recorder):
            budget = PrivacyBudget(1.0)
            budget.spend(0.25, note="histogram")
            budget.spend(0.5, note="refit")
        summary = recorder.summary()
        assert summary["counters"]["budget.spend_events"] == 2
        assert summary["gauges"]["budget.epsilon_spent"]["last"] == 0.75


class TestTelemetryNeutrality:
    """The hard invariant: identical scores at every telemetry level."""

    def _scores(self, telemetry, stream_version, tiny_dataset, tiny_preset, executor):
        policy = ExecutionPolicy(
            telemetry=telemetry,
            stream_version=stream_version,
            executor=executor,
            seed=7,
        )
        with Session(policy) as session:
            result = session.evaluate(
                "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset
            )
        return (result.mean_score, result.std_score, result.cells, result.n_train)

    @pytest.mark.parametrize("stream_version", [1, 2])
    def test_trace_is_bitwise_identical_to_off(
        self, stream_version, tiny_dataset, tiny_preset
    ):
        off = self._scores("off", stream_version, tiny_dataset, tiny_preset, "serial")
        trace = self._scores(
            "trace", stream_version, tiny_dataset, tiny_preset, "serial"
        )
        summary = self._scores(
            "summary", stream_version, tiny_dataset, tiny_preset, "serial"
        )
        assert off == trace == summary

    def test_trace_neutral_under_process_pool(self, tiny_dataset, tiny_preset):
        if not hasattr(os, "fork"):  # pragma: no cover
            pytest.skip("fork-based pool unavailable")
        off = self._scores("off", 2, tiny_dataset, tiny_preset, "process")
        trace = self._scores("trace", 2, tiny_dataset, tiny_preset, "process")
        assert off == trace
