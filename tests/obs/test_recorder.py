"""Recorder unit behavior: spans, counters, gauges, export/merge, modes."""

import json
import threading

import pytest

from repro.obs import (
    MAX_EVENTS,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    make_recorder,
    use_recorder,
    active_recorder,
)


class TestMakeRecorder:
    def test_off_is_shared_null(self):
        assert make_recorder("off") is NULL_RECORDER
        assert isinstance(make_recorder("off"), NullRecorder)

    def test_levels(self):
        assert make_recorder("summary").mode == "summary"
        assert make_recorder("trace").mode == "trace"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_recorder("verbose")

    def test_trace_recorders_are_fresh(self):
        assert make_recorder("trace") is not make_recorder("trace")


class TestNullRecorder:
    def test_not_recording(self):
        assert NULL_RECORDER.recording is False

    def test_span_still_measures(self):
        with NULL_RECORDER.span("work") as span:
            total = sum(range(1000))
        assert total == 499500
        assert span.seconds >= 0.0

    def test_everything_is_a_noop(self):
        NULL_RECORDER.counter("c", 3)
        NULL_RECORDER.gauge("g", 1.5)
        NULL_RECORDER.merge({"counters": {"c": 1}})
        assert NULL_RECORDER.events() == []
        assert NULL_RECORDER.summary()["counters"] == {}
        assert NULL_RECORDER.export()["counters"] == {}


class TestSpans:
    def test_nesting_parents(self):
        rec = TraceRecorder(mode="trace")
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        events = rec.events()
        by_name = {e["name"]: e for e in events}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None

    def test_close_order_is_inner_first(self):
        rec = TraceRecorder(mode="trace")
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        assert [e["name"] for e in rec.events()] == ["inner", "outer"]

    def test_attrs_retained(self):
        rec = TraceRecorder(mode="trace")
        with rec.span("plan.tile", tile=3):
            pass
        assert rec.events()[0]["attrs"] == {"tile": 3}

    def test_span_seconds_flow_into_stats(self):
        rec = TraceRecorder(mode="trace")
        with rec.span("w"):
            pass
        with rec.span("w"):
            pass
        stats = rec.summary()["spans"]["w"]
        assert stats["count"] == 2
        assert stats["total_seconds"] >= stats["max_seconds"] >= 0.0

    def test_threads_get_independent_stacks(self):
        rec = TraceRecorder(mode="trace")
        done = threading.Event()

        def worker():
            with rec.span("worker"):
                pass
            done.set()

        with rec.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {e["name"]: e for e in rec.events()}
        # The worker thread's span is a root, not a child of "main".
        assert by_name["worker"]["parent"] is None


class TestCountersAndGauges:
    def test_counter_sums(self):
        rec = TraceRecorder(mode="summary")
        rec.counter("hits")
        rec.counter("hits", 4)
        assert rec.summary()["counters"]["hits"] == 5

    def test_gauge_last_and_max(self):
        rec = TraceRecorder(mode="summary")
        rec.gauge("bytes", 10.0)
        rec.gauge("bytes", 4.0)
        assert rec.summary()["gauges"]["bytes"] == {"last": 4.0, "max": 10.0}


class TestSummaryMode:
    def test_no_events_but_full_aggregates(self):
        rec = TraceRecorder(mode="summary")
        with rec.span("w"):
            rec.counter("c")
        assert rec.events() == []
        assert rec.summary()["spans"]["w"]["count"] == 1
        assert rec.summary()["counters"]["c"] == 1


class TestExportMerge:
    def _payload(self):
        worker = TraceRecorder(mode="trace")
        with worker.span("w.outer"):
            with worker.span("w.inner"):
                worker.counter("c", 2)
                worker.gauge("g", 7.0)
        return worker.export()

    def test_merge_adds_counters_and_stats(self):
        parent = TraceRecorder(mode="trace")
        parent.counter("c", 1)
        parent.merge(self._payload())
        parent.merge(self._payload())
        assert parent.summary()["counters"]["c"] == 5
        assert parent.summary()["spans"]["w.inner"]["count"] == 2

    def test_merge_rebases_ids_and_reparents_roots(self):
        parent = TraceRecorder(mode="trace")
        payload = self._payload()
        with parent.span("anchor") as anchor:
            parent.merge(payload)
        events = {e["name"]: e for e in parent.events()}
        # Worker root hangs under the anchor span; inner keeps its
        # worker-local parent after rebasing.
        assert events["w.outer"]["parent"] == anchor.span_id
        assert events["w.inner"]["parent"] == events["w.outer"]["id"]
        ids = [e["id"] for e in parent.events()]
        assert len(ids) == len(set(ids))

    def test_merge_without_anchor_keeps_roots(self):
        parent = TraceRecorder(mode="trace")
        parent.merge(self._payload())
        events = {e["name"]: e for e in parent.events()}
        assert events["w.outer"]["parent"] is None

    def test_merge_is_input_order_deterministic(self):
        def assemble(payloads):
            parent = TraceRecorder(mode="trace")
            for p in payloads:
                parent.merge(p)
            return [(e["name"], e["parent"] is None) for e in parent.events()]

        a, b = self._payload(), self._payload()
        assert assemble([a, b]) == assemble([a, b])

    def test_merge_none_is_noop(self):
        parent = TraceRecorder(mode="trace")
        parent.merge(None)
        assert parent.events() == []

    def test_export_is_picklable_plain_data(self):
        payload = self._payload()
        assert json.loads(json.dumps(payload)) == payload


class TestEventBound:
    def test_drop_counted_past_max_events(self, monkeypatch):
        import repro.obs.recorder as recorder_mod

        monkeypatch.setattr(recorder_mod, "MAX_EVENTS", 2)
        rec = TraceRecorder(mode="trace")
        for _ in range(4):
            with rec.span("w"):
                pass
        assert len(rec.events()) == 2
        assert rec.trace_lines()[0]["dropped_events"] == 2
        # Aggregates keep counting past the retention bound.
        assert rec.summary()["spans"]["w"]["count"] == 4

    def test_real_bound_is_large(self):
        assert MAX_EVENTS >= 100_000


class TestActiveRecorder:
    def test_default_is_null(self):
        assert active_recorder() is NULL_RECORDER

    def test_use_recorder_swaps_and_restores(self):
        rec = TraceRecorder(mode="trace")
        with use_recorder(rec):
            assert active_recorder() is rec
        assert active_recorder() is NULL_RECORDER

    def test_restores_on_error(self):
        rec = TraceRecorder(mode="trace")
        with pytest.raises(RuntimeError):
            with use_recorder(rec):
                raise RuntimeError("boom")
        assert active_recorder() is NULL_RECORDER

    def test_visible_across_threads(self):
        rec = TraceRecorder(mode="trace")
        seen = []
        with use_recorder(rec):
            t = threading.Thread(target=lambda: seen.append(active_recorder()))
            t.start()
            t.join()
        assert seen == [rec]


class TestJsonl:
    def test_write_and_structure(self, tmp_path):
        rec = TraceRecorder(mode="trace")
        with rec.span("w", k=1):
            rec.counter("c")
        path = rec.write_jsonl(tmp_path / "t.jsonl", meta={"entry_point": "test"})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["version"] == 1
        assert lines[0]["entry_point"] == "test"
        assert lines[-1]["type"] == "summary"
        assert [l["name"] for l in lines[1:-1]] == ["w"]
