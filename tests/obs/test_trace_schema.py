"""Trace JSONL schema validation and the summarize reporter."""

import json

import pytest

from repro.exceptions import ReproError
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    load_trace,
    summarize_trace,
    validate_trace_lines,
)


def _valid_lines():
    rec = TraceRecorder(mode="trace")
    with rec.span("outer"):
        with rec.span("inner", k=1):
            rec.counter("c", 2)
            rec.gauge("g", 3.0)
    return rec.trace_lines(meta={"entry_point": "test"})


class TestValidate:
    def test_recorder_output_is_valid(self):
        assert validate_trace_lines(_valid_lines()) == []

    def test_summary_mode_output_is_valid(self):
        rec = TraceRecorder(mode="summary")
        with rec.span("w"):
            pass
        assert validate_trace_lines(rec.trace_lines()) == []

    def test_empty_document_rejected(self):
        assert validate_trace_lines([]) != []

    def test_meta_must_come_first(self):
        lines = _valid_lines()
        assert validate_trace_lines(lines[1:]) != []

    def test_version_mismatch_flagged(self):
        lines = _valid_lines()
        lines[0] = dict(lines[0], version=TRACE_SCHEMA_VERSION + 1)
        assert any("version" in p for p in validate_trace_lines(lines))

    def test_missing_summary_flagged(self):
        assert validate_trace_lines(_valid_lines()[:-1]) != []

    def test_span_field_types_enforced(self):
        lines = _valid_lines()
        bad = dict(lines[1], seconds="fast")
        assert validate_trace_lines([lines[0], bad, *lines[2:]]) != []

    def test_duplicate_ids_flagged(self):
        lines = _valid_lines()
        assert validate_trace_lines([lines[0], lines[1], lines[1], lines[-1]]) != []

    def test_unresolvable_parent_flagged(self):
        lines = _valid_lines()
        orphan = dict(lines[1], parent=987654)
        assert any(
            "parent" in p
            for p in validate_trace_lines([lines[0], orphan, *lines[2:]])
        )

    def test_negative_duration_flagged(self):
        lines = _valid_lines()
        bad = dict(lines[1], seconds=-1.0)
        assert validate_trace_lines([lines[0], bad, *lines[2:]]) != []


class TestLoadTrace:
    def _write(self, tmp_path, text):
        path = tmp_path / "trace.jsonl"
        path.write_text(text)
        return path

    def test_roundtrip(self, tmp_path):
        rec = TraceRecorder(mode="trace")
        with rec.span("w"):
            pass
        path = rec.write_jsonl(tmp_path / "t.jsonl")
        lines = load_trace(path)
        assert lines[0]["type"] == "meta"
        assert lines[-1]["type"] == "summary"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "absent.jsonl")

    def test_bad_json(self, tmp_path):
        path = self._write(tmp_path, "{not json\n")
        with pytest.raises(ReproError):
            load_trace(path)

    def test_schema_problems_raise(self, tmp_path):
        path = self._write(tmp_path, json.dumps({"type": "meta", "version": 1}) + "\n")
        with pytest.raises(ReproError):
            load_trace(path)


class TestSummarize:
    def test_contains_tables(self):
        text = summarize_trace(_valid_lines())
        assert "mode=trace" in text
        assert "outer" in text and "inner" in text
        assert "c" in text and "g" in text
        assert "entry point: test" in text

    def test_empty_trace_has_fallback(self):
        rec = TraceRecorder(mode="trace")
        text = summarize_trace(rec.trace_lines())
        assert "no recorded activity" in text
