"""Shared fixtures and the tiered-suite wiring for the test suite.

Fixtures provide small, footnote-1-compliant datasets so individual tests
stay fast; anything needing paper-scale data builds it explicitly.

The suite is organized in verification tiers (see :mod:`repro.verify`):

* **tier 1** — the fast conformance gate.  Everything unmarked plus
  ``tier1``-marked tests; this is what a bare ``pytest`` run executes.
* **tier 2** — statistical audits (empirical privacy measurements,
  injected-bug detection).  Included in the default run; selectable alone
  with ``-m tier2``.
* **tier 3** — the golden-oracle execution matrix.  Opt-in only
  (``--run-tier3`` or ``REPRO_TIER3=1``): it runs ~50 figure pipelines and
  compares committed digests, which is a CI-job-sized workload.

``slow`` is retained as an orthogonal duration hint; long-running tests
carry both a tier and ``slow``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-tier3",
        action="store_true",
        default=False,
        help="run tier-3 golden-oracle matrix tests (also: REPRO_TIER3=1)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running end-to-end checks")
    config.addinivalue_line(
        "markers", "tier1: fast conformance gate (part of the default run)"
    )
    config.addinivalue_line(
        "markers",
        "tier2: statistical audits (part of the default run; `-m tier2` selects)",
    )
    config.addinivalue_line(
        "markers",
        "tier3: golden-oracle matrix (opt-in via --run-tier3 or REPRO_TIER3=1)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-tier3") or os.environ.get("REPRO_TIER3") == "1":
        return
    skip_tier3 = pytest.mark.skip(
        reason="tier3 golden matrix: opt in with --run-tier3 or REPRO_TIER3=1"
    )
    for item in items:
        if "tier3" in item.keywords:
            item.add_marker(skip_tier3)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def linear_data(rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, y, w_true): normalized features, targets in [-1, 1]."""
    d = 4
    X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(3000, d))
    w_true = np.array([0.8, -0.5, 0.3, 0.15])
    y = np.clip(X @ w_true + rng.normal(0.0, 0.05, 3000), -1.0, 1.0)
    return X, y, w_true


@pytest.fixture
def logistic_data(rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, y, w_true): normalized features, boolean labels."""
    d = 4
    X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(3000, d))
    w_true = np.array([0.9, -0.6, 0.4, 0.2])
    z = X @ w_true
    probs = 1.0 / (1.0 + np.exp(-10.0 * (z - z.mean())))
    y = (rng.uniform(size=3000) < probs).astype(float)
    return X, y, w_true


@pytest.fixture
def figure2_example() -> tuple[np.ndarray, np.ndarray]:
    """The paper's Section-4.2 example database (1-d, three tuples)."""
    return np.array([[1.0], [0.9], [-0.5]]), np.array([0.4, 0.3, -1.0])


@pytest.fixture
def figure3_example() -> tuple[np.ndarray, np.ndarray]:
    """The paper's Section-5.2 example database for logistic regression."""
    return np.array([[-0.5], [0.0], [1.0]]), np.array([1.0, 0.0, 1.0])
