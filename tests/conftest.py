"""Shared fixtures for the test suite.

Fixtures provide small, footnote-1-compliant datasets so individual tests
stay fast; anything needing paper-scale data builds it explicitly and is
marked ``slow``.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running end-to-end checks")


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def linear_data(rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, y, w_true): normalized features, targets in [-1, 1]."""
    d = 4
    X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(3000, d))
    w_true = np.array([0.8, -0.5, 0.3, 0.15])
    y = np.clip(X @ w_true + rng.normal(0.0, 0.05, 3000), -1.0, 1.0)
    return X, y, w_true


@pytest.fixture
def logistic_data(rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, y, w_true): normalized features, boolean labels."""
    d = 4
    X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(3000, d))
    w_true = np.array([0.9, -0.6, 0.4, 0.2])
    z = X @ w_true
    probs = 1.0 / (1.0 + np.exp(-10.0 * (z - z.mean())))
    y = (rng.uniform(size=3000) < probs).astype(float)
    return X, y, w_true


@pytest.fixture
def figure2_example() -> tuple[np.ndarray, np.ndarray]:
    """The paper's Section-4.2 example database (1-d, three tuples)."""
    return np.array([[1.0], [0.9], [-0.5]]), np.array([0.4, 0.3, -1.0])


@pytest.fixture
def figure3_example() -> tuple[np.ndarray, np.ndarray]:
    """The paper's Section-5.2 example database for logistic regression."""
    return np.array([[-0.5], [0.0], [1.0]]), np.array([1.0, 0.0, 1.0])
