"""Tiling, executor and grouping invariance: every schedule, same bits.

The tiled runtime's contract extends PR 2's batched == percell guarantee to
three new axes: the tile size (any tiling == untiled == the per-cell
oracle), the executor (serial == thread == forked-process, at tile or cell
granularity), and grouping (a multi-algorithm merged-solve group == each
algorithm run alone).  All comparisons are ``==`` on full score vectors —
no tolerances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ExperimentError
from repro.experiments.config import SMOKE, ScalePreset
from repro.experiments.harness import evaluate_algorithm, evaluate_algorithms
from repro.privacy.rng import derive_substream
from repro.runtime import (
    PreparedDataCache,
    plan_cells,
    plan_cells_tiled,
    run_plan,
    run_plan_group,
)

EPSILONS = (0.1, 0.8, 3.2)


def tiny_preset(reps: int, folds: int = 3) -> ScalePreset:
    return ScalePreset(
        name=f"tiny-{reps}x{folds}", max_records=600, folds=folds, repetitions=reps
    )


def percell_reference(us, algorithm, task, epsilons, preset, seed=0, **plan_kwargs):
    plan = plan_cells(
        algorithm, us, task, dims=5, epsilons=epsilons, preset=preset, seed=seed,
        **plan_kwargs,
    )
    return run_plan(plan, mode="percell")


class TestTileInvariance:
    @pytest.mark.parametrize(
        "algorithm,task",
        [
            ("FM", "linear"),
            ("FM", "logistic"),
            ("NoPrivacy", "linear"),
            ("NoPrivacy", "logistic"),
            ("Truncated", "logistic"),
        ],
    )
    def test_every_tile_size_matches_the_oracle(self, us, algorithm, task):
        """tile_size in {1, 2, 3, all, oversized} == untiled == percell."""
        preset = tiny_preset(reps=3)
        oracle = percell_reference(us, algorithm, task, EPSILONS, preset, seed=11)
        untiled = run_plan(
            plan_cells(
                algorithm, us, task, dims=5, epsilons=EPSILONS, preset=preset, seed=11
            ),
            mode="batched",
        )
        assert untiled.scores == oracle.scores
        for tile_size in (1, 2, 3, None, 7):
            tiled = plan_cells_tiled(
                algorithm, us, task, dims=5, epsilons=EPSILONS, preset=preset,
                seed=11, tile_size=tile_size,
            )
            outcome = run_plan(tiled, mode="batched")
            assert outcome.scores == oracle.scores, tile_size
            assert outcome.n_train == oracle.n_train

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        reps=st.integers(min_value=1, max_value=4),
        folds=st.integers(min_value=2, max_value=4),
        n_eps=st.integers(min_value=1, max_value=3),
        tile_size=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_tiling_is_invisible(self, us, reps, folds, n_eps, tile_size, seed):
        """Hypothesis sweep over (reps, folds, epsilon-grid, tiling, seed)."""
        preset = tiny_preset(reps=reps, folds=folds)
        epsilons = EPSILONS[:n_eps]
        oracle = percell_reference(us, "FM", "linear", epsilons, preset, seed=seed)
        tiled = plan_cells_tiled(
            "FM", us, "linear", dims=5, epsilons=epsilons, preset=preset,
            seed=seed, tile_size=tile_size,
        )
        assert run_plan(tiled, mode="batched").scores == oracle.scores

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("mode", ["batched", "percell"])
    def test_executor_choice_is_invisible(self, us, executor, mode):
        preset = tiny_preset(reps=4)
        oracle = percell_reference(us, "FM", "linear", EPSILONS, preset, seed=5)
        tiled = plan_cells_tiled(
            "FM", us, "linear", dims=5, epsilons=EPSILONS, preset=preset,
            seed=5, tile_size=2,
        )
        outcome = run_plan(tiled, mode=mode, executor=executor)
        assert outcome.scores == oracle.scores

    def test_percell_mode_over_tiles(self, us):
        """The oracle itself survives tiling (tiles reduce in order)."""
        preset = tiny_preset(reps=3)
        oracle = percell_reference(us, "NoPrivacy", "linear", (0.8,), preset, seed=2)
        tiled = plan_cells_tiled(
            "NoPrivacy", us, "linear", dims=5, epsilons=(0.8,), preset=preset,
            seed=2, tile_size=1,
        )
        assert run_plan(tiled, mode="percell").scores == oracle.scores

    def test_tile_materialization_is_bounded_and_ordered(self, us):
        preset = tiny_preset(reps=5)
        tiled = plan_cells_tiled(
            "FM", us, "linear", dims=5, epsilons=(0.8,), preset=preset,
            seed=0, tile_size=2,
        )
        assert tiled.n_tiles == 3
        assert tiled.n_cells == 5 * preset.folds
        seen_reps = []
        for tile in tiled.tiles():
            reps = sorted({fold.rep for fold in tile.folds})
            assert len(reps) <= 2
            seen_reps.extend(reps)
        assert seen_reps == [0, 1, 2, 3, 4]

    def test_bad_tile_size_rejected(self, us):
        with pytest.raises(ExperimentError):
            plan_cells_tiled(
                "FM", us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE,
                tile_size=0,
            )

    def test_harness_tile_size_plumbing(self, us):
        eager = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9
        )
        tiled = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9,
            tile_size=1,
        )
        assert tiled.mean_score == eager.mean_score
        assert tiled.std_score == eager.std_score
        assert tiled.n_train == eager.n_train


class TestGroupedExecution:
    def test_group_matches_solo_runs_bitwise(self, us):
        """Merged cross-algorithm solves == each algorithm solved alone."""
        preset = tiny_preset(reps=2)
        names = ["FM", "NoPrivacy", "Truncated"]
        cache = PreparedDataCache()
        plans = [
            plan_cells(
                name, us, "linear", dims=5, epsilons=EPSILONS, preset=preset,
                seed=4, prepared_cache=cache,
            )
            for name in names
        ]
        grouped = run_plan_group(plans, mode="batched")
        for name, outcome in zip(names, grouped):
            solo = percell_reference(us, name, "linear", EPSILONS, preset, seed=4)
            assert outcome.scores == solo.scores, name

    def test_group_preserves_input_order_with_mixed_kernels(self, us):
        preset = tiny_preset(reps=1)
        names = ["NoPrivacy", "FM", "Truncated"]  # newton between quadratics
        plans = [
            plan_cells(
                name, us, "logistic", dims=5, epsilons=(0.8,), preset=preset, seed=1
            )
            for name in names
        ]
        grouped = run_plan_group(plans, mode="batched")
        for name, outcome in zip(names, grouped):
            assert outcome.plan.algorithm == name
            solo = percell_reference(us, name, "logistic", (0.8,), preset, seed=1)
            assert outcome.scores == solo.scores, name

    def test_evaluate_algorithms_equals_per_name_calls(self, us):
        panel = evaluate_algorithms(
            ["FM", "NoPrivacy", "Truncated"], us, "linear", dims=5, epsilon=0.8,
            preset=SMOKE, seed=3,
        )
        for name, result in panel.items():
            solo = evaluate_algorithm(
                name, us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3
            )
            assert result.mean_score == solo.mean_score, name
            assert result.std_score == solo.std_score, name
            assert result.cells == solo.cells, name

    def test_evaluate_algorithms_tiled_equals_eager(self, us):
        eager = evaluate_algorithms(
            ["FM", "NoPrivacy"], us, "linear", dims=5, epsilon=0.8,
            preset=SMOKE, seed=7,
        )
        tiled = evaluate_algorithms(
            ["FM", "NoPrivacy"], us, "linear", dims=5, epsilon=0.8,
            preset=SMOKE, seed=7, tile_size=1,
        )
        for name in eager:
            assert tiled[name].mean_score == eager[name].mean_score, name

    def test_grouped_tiled_plans_must_share_tiling(self, us):
        a = plan_cells_tiled(
            "FM", us, "linear", dims=5, epsilons=(0.8,),
            preset=tiny_preset(reps=4), tile_size=1,
        )
        b = plan_cells_tiled(
            "NoPrivacy", us, "linear", dims=5, epsilons=(0.8,),
            preset=tiny_preset(reps=4), tile_size=2,
        )
        with pytest.raises(ExperimentError):
            run_plan_group([a, b], mode="batched")

    def test_mixed_plan_shapes_rejected(self, us):
        eager = plan_cells(
            "FM", us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE
        )
        tiled = plan_cells_tiled(
            "NoPrivacy", us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE
        )
        with pytest.raises(ExperimentError):
            run_plan_group([eager, tiled])


class TestPreparedDataCache:
    def test_identity_case_shares_one_array_pair(self, us):
        """FULL-protocol shape: no subsample, rate 1.0 -> one prepared copy."""
        preset = ScalePreset(name="identity", max_records=None, folds=3, repetitions=3)
        cache = PreparedDataCache()
        fm = plan_cells(
            "FM", us, "linear", dims=5, epsilons=(0.8,), preset=preset,
            seed=0, prepared_cache=cache,
        )
        ols = plan_cells(
            "NoPrivacy", us, "linear", dims=5, epsilons=(0.8,), preset=preset,
            seed=0, prepared_cache=cache,
        )
        arrays = {id(fold.X) for fold in fm.folds} | {id(fold.X) for fold in ols.folds}
        assert len(arrays) == 1
        # Folds still differ per algorithm (the KFold stream is keyed).
        assert not np.array_equal(fm.folds[0].train_idx, ols.folds[0].train_idx)
        # And the shared arrays change no bits.
        oracle = percell_reference(us, "FM", "linear", (0.8,), preset, seed=0)
        assert run_plan(fm, mode="batched").scores == oracle.scores

    def test_subsampled_reps_do_not_share(self, us):
        cache = PreparedDataCache()
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=(0.8,),
            preset=tiny_preset(reps=2), seed=0, prepared_cache=cache,
        )
        rep_arrays = {fold.rep: id(fold.X) for fold in plan.folds}
        assert rep_arrays[0] != rep_arrays[1]

    def test_moment_blocks_identity_and_weakness(self):
        cache = PreparedDataCache()
        X = np.eye(4)
        y = np.ones(4)
        idx = np.arange(3)
        built = []

        def build():
            built.append(1)
            return ("blocks", len(built))

        first = cache.moment_blocks(X, y, idx, "sig", build)
        second = cache.moment_blocks(X, y, idx, "sig", build)
        assert first is second and built == [1]
        # Different signature or index vector -> rebuild.
        cache.moment_blocks(X, y, idx, "other-sig", build)
        cache.moment_blocks(X, y, np.arange(2), "sig", build)
        assert built == [1, 1, 1]
        # The cache must not keep the arrays alive.
        ref_count_key = (id(X), id(y), cache.split_digest(idx), "sig")
        assert ref_count_key in cache._moments
        del X, y
        cache._prune()
        assert ref_count_key not in cache._moments


class TestStreamVersionPlumbing:
    def test_version2_reshuffles_but_stays_tile_invariant(self, us):
        preset = tiny_preset(reps=2)
        v1 = percell_reference(us, "FM", "linear", (0.8,), preset, seed=3)
        v2_oracle = percell_reference(
            us, "FM", "linear", (0.8,), preset, seed=3, stream_version=2
        )
        assert v1.scores != v2_oracle.scores  # every noise stream moved
        tiled = plan_cells_tiled(
            "FM", us, "linear", dims=5, epsilons=(0.8,), preset=preset,
            seed=3, tile_size=1, stream_version=2,
        )
        assert run_plan(tiled, mode="batched").scores == v2_oracle.scores

    def test_plan_substream_uses_the_plan_version(self, us):
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE,
            seed=7, stream_version=2,
        )
        fold = plan.folds[0]
        expected = derive_substream(7, list(fold.stream_tag), stream_version=2)
        assert plan.substream(fold).integers(0, 2**63) == expected.integers(0, 2**63)
