"""The pluggable array backend: canonicalization, dispatch, invariance.

Three contracts under test:

* ``canonical_array`` is the plan boundary's dtype gate — identity for
  conforming data (cache sharing intact), upcast for narrow floats,
  loud rejection for integer/object dtypes (guessing an int column was
  a feature is how silent garbage enters a DP release);
* the numpy backend is the *bit-identity reference*: routing the stacked
  kernels through the shim changes nothing, down to the last bit;
* a non-default backend slots in ambiently (``use_backend``) and via
  policy, skipping cleanly when the optional dependency is absent.
"""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import SMOKE
from repro.runtime import (
    BACKEND_NAMES,
    NumpyBackend,
    active_backend,
    available_backends,
    backend_available,
    canonical_array,
    fm_noise_stack,
    get_backend,
    newton_logistic_stack,
    plan_cells,
    run_plan,
    spectral_solve_stack,
    use_backend,
)
from repro.session import ExecutionPolicy

BACKENDS = ("numpy", "torch")


def _needs(backend):
    if backend != "numpy" and not backend_available(backend):
        pytest.skip(f"optional backend {backend!r} not installed")


class TestCanonicalArray:
    def test_conforming_input_is_identity(self):
        a = np.zeros((4, 3))
        assert canonical_array(a) is a

    def test_float32_upcasts(self):
        a = np.ones((2, 2), dtype=np.float32)
        out = canonical_array(a)
        assert out.dtype == np.float64
        assert np.array_equal(out, a.astype(np.float64))

    def test_strided_view_becomes_contiguous(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        view = base[:, ::2]
        out = canonical_array(view)
        assert out.flags["C_CONTIGUOUS"]
        assert np.array_equal(out, view)

    def test_fortran_order_becomes_c_order(self):
        a = np.asfortranarray(np.arange(6, dtype=np.float64).reshape(2, 3))
        out = canonical_array(a)
        assert out.flags["C_CONTIGUOUS"]
        assert np.array_equal(out, a)

    @pytest.mark.parametrize("bad", [np.arange(4), np.array(["x", "y"], dtype=object)])
    def test_integer_and_object_dtypes_rejected(self, bad):
        with pytest.raises(ExperimentError, match="dtype"):
            canonical_array(bad, "demo")


class TestKernelCanonicalization:
    """Satellite pin: kernels fed float32/strided inputs match canonical."""

    def _quad_stack(self, dtype=np.float64, strided=False):
        rng = np.random.default_rng(7)
        B, d = 4, 3
        A = rng.normal(size=(B, d, d))
        M = (A @ A.transpose(0, 2, 1) + 3.0 * np.eye(d)).astype(dtype)
        alpha = rng.normal(size=(B, d)).astype(dtype)
        noise_std = np.full(B, 0.25, dtype=dtype)
        if strided:
            M2 = np.repeat(M, 2, axis=0)[::2]
            assert not M2.flags["C_CONTIGUOUS"] or M2.base is not None
            M = np.asarray(M2)
        return M, alpha, noise_std

    def test_spectral_solve_float32_matches_upcast(self):
        M, alpha, noise_std = self._quad_stack(np.float32)
        narrow = spectral_solve_stack(M, alpha, noise_std)
        wide = spectral_solve_stack(
            M.astype(np.float64), alpha.astype(np.float64),
            noise_std.astype(np.float64),
        )
        assert np.array_equal(narrow.omega, wide.omega)

    def test_spectral_solve_strided_matches_contiguous(self):
        M, alpha, noise_std = self._quad_stack()
        doubled = np.repeat(M, 2, axis=0)
        strided = doubled[::2]
        assert np.array_equal(strided, M)
        a = spectral_solve_stack(strided, alpha, noise_std)
        b = spectral_solve_stack(np.ascontiguousarray(strided), alpha, noise_std)
        assert np.array_equal(a.omega, b.omega)

    def test_fm_noise_stack_rejects_integer_raw(self):
        M, alpha, _ = self._quad_stack()
        raw = np.zeros((2, 1 + 3 + 9), dtype=np.int64)
        with pytest.raises(ExperimentError, match="dtype"):
            fm_noise_stack(M, alpha, raw, np.array([1.0, 2.0]))

    def test_newton_rejects_integer_labels(self):
        X = np.zeros((8, 2))
        y = np.zeros(8, dtype=np.int64)
        folds = np.array([[True] * 8])
        with pytest.raises(ExperimentError, match="dtype"):
            newton_logistic_stack(X, y, folds, np.zeros((1, 2)))


class TestBackendRegistry:
    def test_names_and_availability(self):
        assert BACKEND_NAMES == ("numpy", "torch")
        assert backend_available("numpy")
        assert "numpy" in available_backends()

    def test_get_backend_numpy(self):
        backend = get_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.name == "numpy"
        # Instance pass-through.
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="backend"):
            get_backend("mkl")

    def test_default_ambient_backend_is_numpy(self):
        assert active_backend().name == "numpy"

    def test_use_backend_nests_and_restores(self):
        outer = active_backend()
        with use_backend("numpy") as inner:
            assert active_backend() is inner
            with use_backend(NumpyBackend()) as innermost:
                assert active_backend() is innermost
            assert active_backend() is inner
        assert active_backend() is outer

    def test_torch_backend_unavailable_raises_cleanly(self):
        if backend_available("torch"):
            backend = get_backend("torch")
            assert backend.name == "torch"
        else:
            with pytest.raises(ExperimentError, match="torch"):
                get_backend("torch")

    def test_numpy_backend_singular_raises_linalgerror(self):
        singular = np.zeros((1, 2, 2))
        with pytest.raises(np.linalg.LinAlgError):
            get_backend("numpy").solve(singular, np.ones((1, 2, 1)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_candidate_singular_raises_linalgerror(self, backend):
        """Every backend translates its failure to numpy's exception, so
        kernel retry ladders behave identically."""
        _needs(backend)
        singular = np.zeros((1, 2, 2))
        with pytest.raises(np.linalg.LinAlgError):
            get_backend(backend).solve(singular, np.ones((1, 2, 1)))


class TestPolicyResolution:
    def test_default_and_explicit(self):
        assert ExecutionPolicy().backend == "numpy"
        assert ExecutionPolicy(backend="torch").backend == "torch"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ExperimentError, match="backend"):
            ExecutionPolicy(backend="mkl")

    def test_env_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        assert ExecutionPolicy.resolve().backend == "torch"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert ExecutionPolicy.resolve().backend == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        resolved = ExecutionPolicy.resolve(explicit={"backend": "numpy"})
        assert resolved.backend == "numpy"

    def test_cli_flag_parses(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["figure6", "--backend", "torch"])
        assert args.backend == "torch"
        args = build_parser().parse_args(["figure6"])
        assert args.backend is None


class TestBackendInvariance:
    """The shim's headline: numpy == pre-shim bits; torch conforms."""

    def _scores(self, us, backend, algorithm="FM", task="linear", seed=3):
        plan = plan_cells(
            algorithm, us, task, dims=5, epsilons=(0.8,), preset=SMOKE, seed=seed
        )
        with use_backend(backend):
            return run_plan(plan, mode="batched").scores[0.8]

    def test_numpy_shim_is_bitwise_identical_to_ambient_default(self, us):
        # The ambient default *is* a NumpyBackend; an explicitly installed
        # one must not change a bit.
        ambient = self._scores(us, active_backend())
        explicit = self._scores(us, "numpy")
        assert ambient == explicit

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm,task", [("FM", "linear"), ("FM", "logistic")])
    def test_backend_equivalence(self, us, backend, algorithm, task):
        """Parametrized equivalence: numpy exactly, torch within the
        numeric tier's certified tolerance."""
        _needs(backend)
        reference = np.asarray(self._scores(us, "numpy", algorithm, task))
        candidate = np.asarray(self._scores(us, backend, algorithm, task))
        if backend == "numpy":
            assert np.array_equal(reference, candidate)
        else:
            from repro.verify.numeric import DEFAULT_TOLERANCE

            assert DEFAULT_TOLERANCE.conforms(reference, candidate)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_session_policy_installs_backend(self, backend):
        _needs(backend)
        from repro.session import Session

        with Session(ExecutionPolicy(scale="smoke", backend=backend)) as session:
            assert session.backend.name == backend

    def test_session_with_missing_backend_fails_at_construction(self):
        if backend_available("torch"):
            pytest.skip("torch installed; the failure path needs it absent")
        from repro.session import Session

        with pytest.raises(ExperimentError, match="torch"):
            Session(ExecutionPolicy(scale="smoke", backend="torch"))
