"""The runtime's central guarantee: batched == per-cell, bit for bit.

Every test here compares full held-out score vectors with ``==`` — no
tolerances.  The batched path is only allowed to change *scheduling* (one
stacked LAPACK call instead of many scalar ones, one masked Newton loop
instead of many), never a floating-point operation, so any last-bit drift is
a bug.
"""

import numpy as np
import pytest

from repro.baselines.base import make_algorithm
from repro.exceptions import DomainError
from repro.experiments.config import SMOKE
from repro.experiments.harness import (
    _algorithm_stream_key,
    evaluate_algorithm,
    evaluate_fm_budget_sweep,
)
from repro.privacy.rng import derive_substream
from repro.regression.preprocessing import KFold
from repro.runtime import CellPlan, PlannedFold, plan_cells, run_plan

EPSILONS = (0.1, 0.8, 3.2)


def run_both(us, algorithm, task, epsilons, seed=0, preset=SMOKE, kwargs=None):
    plan = plan_cells(
        algorithm, us, task, dims=5, epsilons=epsilons, preset=preset, seed=seed,
        algorithm_kwargs=kwargs,
    )
    batched = run_plan(plan, mode="batched")
    percell = run_plan(plan, mode="percell")
    return plan, batched, percell


class TestBatchedEqualsPercell:
    @pytest.mark.parametrize(
        "algorithm,task",
        [
            ("FM", "linear"),
            ("FM", "logistic"),
            ("NoPrivacy", "linear"),
            ("NoPrivacy", "logistic"),
            ("Truncated", "linear"),
            ("Truncated", "logistic"),
        ],
    )
    def test_single_budget(self, us, algorithm, task):
        plan, batched, percell = run_both(us, algorithm, task, epsilons=[0.8], seed=3)
        assert batched.scores[0.8] == percell.scores[0.8]
        assert batched.mode == "batched"
        assert percell.mode == "percell"

    @pytest.mark.parametrize("task", ["linear", "logistic"])
    def test_fm_multi_budget(self, us, task):
        """A figure-6-shaped plan: every epsilon shares its fold's stream."""
        plan, batched, percell = run_both(us, "FM", task, epsilons=EPSILONS, seed=6)
        for epsilon in EPSILONS:
            assert batched.scores[epsilon] == percell.scores[epsilon]

    def test_fm_kwargs_variants(self, us):
        for kwargs in (
            {"tight_sensitivity": True},
            {"ridge_lambda": 0.25},
            {"approximation": "chebyshev"},
        ):
            task = "logistic" if "approximation" in kwargs else "linear"
            plan, batched, percell = run_both(
                us, "FM", task, epsilons=[0.4], seed=1, kwargs=kwargs
            )
            assert batched.scores[0.4] == percell.scores[0.4], kwargs

    def test_invalid_kwarg_fails_identically_in_both_modes(self, us):
        """A kwarg the estimator rejects must not be silently swallowed."""
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE,
            algorithm_kwargs={"approximation": "chebyshev"},  # logistic-only
        )
        assert plan.kernel == "generic"
        for mode in ("batched", "percell"):
            with pytest.raises(TypeError):
                run_plan(plan, mode=mode)

    @pytest.mark.parametrize("mode", ["batched", "percell"])
    def test_unnormalized_data_rejected_in_both_modes(self, mode):
        """Domain validation must gate the batched kernels too.

        Accepting ``||x||_2 > 1`` data on the batched path would release FM
        output calibrated to a sensitivity bound the data violates.
        """
        rng = np.random.default_rng(0)
        X = rng.uniform(2.0, 3.0, size=(60, 3))  # violates footnote 1
        y = np.clip(rng.normal(size=60), -1, 1)
        fold = PlannedFold(
            rep=0, fold=0, X=X, y=y,
            train_idx=np.arange(40), test_idx=np.arange(40, 60),
            stream_tag=(_algorithm_stream_key("FM"), 0, 0),
        )
        plan = CellPlan(
            algorithm="FM", task="linear", dims=3, dim=3, epsilons=(0.8,),
            preset=SMOKE, sampling_rate=1.0, seed=0, algorithm_kwargs={},
            folds=(fold,), kernel="quadratic",
        )
        with pytest.raises(DomainError):
            run_plan(plan, mode=mode)

    def test_generic_plan_identical_by_construction(self, us, tiny_preset):
        """DPME has no batched kernel; both modes run the same per-cell path."""
        plan, batched, percell = run_both(
            us, "DPME", "linear", epsilons=[0.8], seed=0, preset=tiny_preset
        )
        assert plan.kernel == "generic"
        assert batched.scores[0.8] == percell.scores[0.8]


class TestHarnessBitCompatibility:
    """evaluate_algorithm must still equal the pre-runtime per-cell loop."""

    @staticmethod
    def historical_scores(
        algorithm, dataset, task, dims, epsilon, preset, seed, stream_version
    ):
        """The harness loop as it existed before the runtime rewiring.

        ``stream_version`` is threaded explicitly: the loop's *orchestration*
        (sampling, folding, per-cell fits) is the historical reference at
        either derivation format, so the comparison pins both the v2 default
        and the v1 legacy streams.
        """
        key = _algorithm_stream_key(algorithm)
        base_n = preset.cardinality(dataset.n)
        scores = []
        for rep in range(preset.repetitions):
            rep_rng = derive_substream(
                seed, [key, rep], stream_version=stream_version
            )
            working = dataset
            if base_n < dataset.n:
                working = working.take(
                    rep_rng.choice(dataset.n, size=base_n, replace=False)
                )
            prepared = working.regression_task(task, dims=dims)
            folds = KFold(n_splits=preset.folds, rng=rep_rng)
            for fold_id, (train_idx, test_idx) in enumerate(folds.split(prepared.n)):
                model = make_algorithm(
                    algorithm,
                    task,
                    epsilon=epsilon,
                    rng=derive_substream(
                        seed, [key, rep, fold_id], stream_version=stream_version
                    ),
                )
                model.fit(prepared.X[train_idx], prepared.y[train_idx])
                scores.append(model.score(prepared.X[test_idx], prepared.y[test_idx]))
        return scores

    @pytest.mark.parametrize("stream_version", [1, 2])
    @pytest.mark.parametrize(
        "algorithm,task",
        [
            ("FM", "linear"),
            ("FM", "logistic"),
            ("NoPrivacy", "linear"),
            ("NoPrivacy", "logistic"),
            ("Truncated", "logistic"),
        ],
    )
    def test_batched_runtime_matches_historical_loop(
        self, us, algorithm, task, stream_version
    ):
        reference = self.historical_scores(
            algorithm, us, task, 5, 0.8, SMOKE, seed=3, stream_version=stream_version
        )
        result = evaluate_algorithm(
            algorithm, us, task, dims=5, epsilon=0.8, preset=SMOKE, seed=3,
            stream_version=stream_version,
        )
        assert result.mean_score == float(np.mean(reference))
        assert result.std_score == float(np.std(reference))
        assert result.cells == len(reference)

    def test_default_stream_version_is_v2(self, us):
        """The PR-6 flip: an unpinned run derives v2 streams."""
        default = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3
        )
        pinned_v2 = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3,
            stream_version=2,
        )
        pinned_v1 = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3,
            stream_version=1,
        )
        assert default.mean_score == pinned_v2.mean_score
        assert default.mean_score != pinned_v1.mean_score

    def test_runtime_modes_agree_end_to_end(self, us):
        a = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9
        )
        b = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9,
            runtime="percell",
        )
        assert a.mean_score == b.mean_score
        assert a.std_score == b.std_score


class TestBudgetSweepEquivalence:
    def test_batched_equals_percell(self, us):
        batched = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=EPSILONS, preset=SMOKE, seed=4
        )
        percell = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=EPSILONS, preset=SMOKE, seed=4,
            runtime="percell",
        )
        for epsilon in EPSILONS:
            assert batched[epsilon].mean_score == percell[epsilon].mean_score

    def test_engine_path_still_available(self, us):
        engine = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, seed=4,
            runtime="engine",
        )
        batched = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, seed=4
        )
        # Same protocol and noise stream; the engine aggregates through the
        # block-wise accumulator, so agreement is to accumulation accuracy.
        assert engine[0.8].mean_score == pytest.approx(
            batched[0.8].mean_score, rel=1e-9
        )

    def test_shards_imply_engine_path(self, us):
        result = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, seed=0, shards=4
        )
        assert result[0.8].cells == SMOKE.folds * SMOKE.repetitions
