"""Tests for the cell planner."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import SMOKE
from repro.runtime import (
    KERNEL_GENERIC,
    KERNEL_NEWTON,
    KERNEL_QUADRATIC,
    classify_kernel,
    plan_cells,
)


class TestClassifyKernel:
    @pytest.mark.parametrize(
        "algorithm,task,kwargs,expected",
        [
            ("FM", "linear", {}, KERNEL_QUADRATIC),
            ("FM", "logistic", {}, KERNEL_QUADRATIC),
            ("FM", "linear", {"tight_sensitivity": True}, KERNEL_QUADRATIC),
            ("FM", "logistic", {"approximation": "chebyshev"}, KERNEL_QUADRATIC),
            # Logistic-only kwargs on a linear plan are NOT batchable: the
            # generic path surfaces the same TypeError the estimator raises.
            ("FM", "linear", {"approximation": "chebyshev"}, KERNEL_GENERIC),
            ("FM", "linear", {"order": 2}, KERNEL_GENERIC),
            ("FM", "linear", {"ridge_lambda": 0.5}, KERNEL_QUADRATIC),
            ("FM", "linear", {"post_processing": "rerun"}, KERNEL_GENERIC),
            ("FM", "linear", {"post_processing": "regularize"}, KERNEL_GENERIC),
            ("FM", "logistic", {"order": 4}, KERNEL_GENERIC),
            ("FM", "linear", {"fit_intercept": True}, KERNEL_GENERIC),
            ("NoPrivacy", "linear", {}, KERNEL_QUADRATIC),
            ("NoPrivacy", "logistic", {}, KERNEL_NEWTON),
            ("Truncated", "linear", {}, KERNEL_QUADRATIC),
            ("Truncated", "logistic", {}, KERNEL_QUADRATIC),
            ("DPME", "linear", {}, KERNEL_GENERIC),
            ("FP", "logistic", {}, KERNEL_GENERIC),
        ],
    )
    def test_classification(self, algorithm, task, kwargs, expected):
        assert classify_kernel(algorithm, task, kwargs) == expected


class TestPlanCells:
    def test_structure(self, us):
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=[0.8, 3.2], preset=SMOKE, seed=0
        )
        assert len(plan.folds) == SMOKE.folds * SMOKE.repetitions
        assert plan.n_cells == len(plan.folds) * 2
        assert plan.kernel == KERNEL_QUADRATIC
        # dims selects the Table-2 attribute subset; the feature dimension
        # is whatever the prepared task exposes (the target is not a feature).
        assert plan.dim == us.regression_task("linear", dims=5).dim
        assert plan.folds[0].X.shape[1] == plan.dim
        assert plan.epsilons == (0.8, 3.2)

    def test_cell_order_is_fold_major(self, us):
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=[0.8, 3.2], preset=SMOKE, seed=0
        )
        cells = list(plan.iter_cells())
        assert [e for _, e in cells[:2]] == [0.8, 3.2]
        assert cells[0][0] is cells[1][0]

    def test_folds_partition_each_repetition(self, us):
        plan = plan_cells(
            "NoPrivacy", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=1
        )
        for fold in plan.folds:
            joined = np.sort(np.concatenate([fold.train_idx, fold.test_idx]))
            np.testing.assert_array_equal(joined, np.arange(fold.X.shape[0]))

    def test_substream_fresh_per_call(self, us):
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=0
        )
        fold = plan.folds[0]
        a = plan.substream(fold).laplace(0.0, 1.0, size=4)
        b = plan.substream(fold).laplace(0.0, 1.0, size=4)
        np.testing.assert_array_equal(a, b)

    def test_plan_is_deterministic(self, us):
        a = plan_cells("FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=5)
        b = plan_cells("FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=5)
        for fa, fb in zip(a.folds, b.folds):
            np.testing.assert_array_equal(fa.train_idx, fb.train_idx)
            np.testing.assert_array_equal(fa.test_idx, fb.test_idx)
            assert fa.stream_tag == fb.stream_tag

    def test_algorithms_get_distinct_folds(self, us):
        """Subsampling is keyed per algorithm, exactly like the loop path."""
        fm = plan_cells("FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=0)
        np_plan = plan_cells(
            "NoPrivacy", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=0
        )
        assert not np.array_equal(fm.folds[0].train_idx, np_plan.folds[0].train_idx)

    def test_sampling_rate_validation(self, us):
        with pytest.raises(ExperimentError):
            plan_cells(
                "FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE,
                sampling_rate=0.0,
            )

    def test_empty_epsilons_rejected(self, us):
        with pytest.raises(ExperimentError):
            plan_cells("FM", us, "linear", dims=5, epsilons=[], preset=SMOKE)

    def test_n_train(self, us):
        plan = plan_cells(
            "FM", us, "linear", dims=5, epsilons=[0.8], preset=SMOKE, seed=0
        )
        expected = SMOKE.cardinality(us.n)
        assert plan.n_train == pytest.approx(expected * 2 / 3, abs=2)
