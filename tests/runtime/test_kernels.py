"""Batched kernels vs their scalar per-cell counterparts — bitwise."""

import numpy as np
import pytest

from repro.core.mechanism import FunctionalMechanism
from repro.core.polynomial import QuadraticForm
from repro.core.postprocess import SpectralTrimming
from repro.regression.logistic import LogisticRegressionModel
from repro.regression.solvers import NewtonSolver
from repro.runtime import (
    fm_noise_stack,
    newton_logistic_stack,
    normal_equations_solve_stack,
    posdef_or_pinv_solve_stack,
    spectral_solve_stack,
)


def random_noisy_stack(rng, B, d, noise_level):
    """Random symmetric (M, alpha) stacks around a PSD base."""
    M = np.empty((B, d, d))
    alpha = rng.normal(size=(B, d))
    for i in range(B):
        base = rng.normal(size=(20, d))
        noise = rng.normal(scale=noise_level, size=(d, d))
        M[i] = base.T @ base / 20.0 + (noise + noise.T) / 2.0
    return M, alpha


class TestFmNoiseStack:
    @pytest.mark.parametrize("d", [1, 3, 7])
    def test_matches_perturb_quadratic_stream(self, d):
        """One standardized (E, 1+d+d^2) draw == the sequential mechanism loop."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-0.3, 0.3, size=(50, d))
        y = np.clip(X.sum(axis=1), -1, 1)
        form = QuadraticForm(M=X.T @ X, alpha=-2.0 * X.T @ y, beta=float(y @ y))
        epsilons = np.array([0.4, 0.8, 3.2])
        sensitivity = 2.0 * (1.0 + d) ** 2

        loop_gen = np.random.default_rng(123)
        loop_forms = [
            FunctionalMechanism(e, rng=loop_gen).perturb_quadratic(form, sensitivity)[0]
            for e in epsilons
        ]

        stack_gen = np.random.default_rng(123)
        raw = stack_gen.laplace(0.0, 1.0, size=(len(epsilons), 1 + d + d * d))
        noisy_M, noisy_alpha = fm_noise_stack(
            form.M, form.alpha, raw, sensitivity / epsilons
        )
        for i, reference in enumerate(loop_forms):
            np.testing.assert_array_equal(noisy_M[i], reference.M)
            np.testing.assert_array_equal(noisy_alpha[i], reference.alpha)


class TestSpectralSolveStack:
    @pytest.mark.parametrize("noise_level", [0.01, 0.5, 5.0, 100.0])
    def test_bitwise_equal_to_percell_strategy(self, noise_level):
        """Low noise exercises the clean solve, high noise the trimmed paths."""
        rng = np.random.default_rng(7)
        B, d = 12, 6
        M, alpha = random_noisy_stack(rng, B, d, noise_level)
        noise_std = np.full(B, noise_level)
        strategy = SpectralTrimming()
        batched = spectral_solve_stack(M, alpha, noise_std)
        saw_trimmed = False
        for i in range(B):
            reference = strategy.solve(
                QuadraticForm(M=M[i], alpha=alpha[i], beta=0.0), float(noise_std[i])
            )
            np.testing.assert_array_equal(batched.omega[i], reference.omega)
            assert batched.trimmed[i] == reference.trimmed
            assert batched.lam[i] == reference.lam
            assert bool(batched.repaired[i]) == reference.repaired
            saw_trimmed |= reference.trimmed > 0
        if noise_level >= 5.0:
            assert saw_trimmed, "high-noise case was expected to trim"

    def test_all_trimmed_returns_origin(self):
        # Eigenvalues after the lam = 4*std ridge (-10 + 4 = -6) stay below
        # the 0.5*std trim tolerance, so no curvature survives.
        B, d = 3, 4
        M = np.stack([-10.0 * np.eye(d)] * B)
        alpha = np.ones((B, d))
        result = spectral_solve_stack(M, alpha, np.full(B, 1.0))
        np.testing.assert_array_equal(result.omega, np.zeros((B, d)))
        assert (result.trimmed == d).all()
        assert result.repaired.all()

    def test_custom_multiplier_matches(self):
        rng = np.random.default_rng(3)
        B, d = 5, 4
        M, alpha = random_noisy_stack(rng, B, d, 1.0)
        strategy = SpectralTrimming(multiplier=2.0, noise_relative_tol=0.1)
        batched = spectral_solve_stack(
            M, alpha, np.full(B, 1.0), multiplier=2.0, noise_relative_tol=0.1
        )
        for i in range(B):
            reference = strategy.solve(QuadraticForm(M=M[i], alpha=alpha[i]), 1.0)
            np.testing.assert_array_equal(batched.omega[i], reference.omega)


class TestPosdefOrPinvSolveStack:
    def test_mixed_stack(self):
        rng = np.random.default_rng(11)
        d = 4
        base = rng.normal(size=(30, d))
        posdef = base.T @ base / 30.0 + 0.1 * np.eye(d)
        singular = np.zeros((d, d))
        singular[0, 0] = 1.0
        M = np.stack([posdef, singular])
        alpha = rng.normal(size=(2, d))
        omega = posdef_or_pinv_solve_stack(M, alpha)
        np.testing.assert_array_equal(
            omega[0], np.linalg.solve(2.0 * posdef, -alpha[0])
        )
        np.testing.assert_array_equal(
            omega[1], np.linalg.pinv(2.0 * singular) @ (-alpha[1])
        )


class TestNormalEquationsSolveStack:
    def test_clean_stack_matches_percell_solve(self):
        rng = np.random.default_rng(13)
        B, n, d = 6, 40, 3
        X = rng.normal(size=(B, n, d))
        y = rng.normal(size=(B, n))
        gram = np.stack([X[i].T @ X[i] for i in range(B)])
        moment = np.stack([X[i].T @ y[i] for i in range(B)])
        called = []
        weights = normal_equations_solve_stack(
            gram, moment, lambda i: called.append(i)
        )
        assert not called
        for i in range(B):
            np.testing.assert_array_equal(
                weights[i], np.linalg.solve(gram[i], moment[i])
            )

    def test_singular_cell_triggers_only_its_fallback(self):
        rng = np.random.default_rng(17)
        n, d = 30, 2
        X_ok = rng.normal(size=(n, d))
        X_dup = np.repeat(rng.normal(size=(n, 1)), 2, axis=1)  # rank 1
        y = rng.normal(size=n)
        gram = np.stack([X_ok.T @ X_ok, X_dup.T @ X_dup])
        moment = np.stack([X_ok.T @ y, X_dup.T @ y])
        designs = [X_ok, X_dup]

        def fallback(i):
            weights, *_ = np.linalg.lstsq(designs[i], y, rcond=None)
            return weights

        weights = normal_equations_solve_stack(gram, moment, fallback)
        np.testing.assert_array_equal(
            weights[0], np.linalg.solve(gram[0], moment[0])
        )
        expected, *_ = np.linalg.lstsq(X_dup, y, rcond=None)
        np.testing.assert_array_equal(weights[1], expected)


class TestNewtonLogisticStack:
    def _random_cells(self, rng, B, n, d, separable=False):
        X = rng.uniform(-0.5, 0.5, size=(B, n, d))
        if separable:
            y = (X.sum(axis=2) > 0).astype(float)
        else:
            logits = X @ rng.normal(size=d)
            y = (rng.uniform(size=(B, n)) < 1.0 / (1.0 + np.exp(-4 * logits))).astype(
                float
            )
        return X, y

    @pytest.mark.parametrize("separable", [False, True])
    def test_bitwise_equal_to_percell_model(self, separable):
        rng = np.random.default_rng(19)
        B, n, d = 8, 120, 5
        X, y = self._random_cells(rng, B, n, d, separable=separable)
        batched = newton_logistic_stack(X, y, max_iterations=100, tolerance=1e-8)
        for i in range(B):
            model = LogisticRegressionModel().fit(X[i], y[i])
            np.testing.assert_array_equal(batched.x[i], model.coef_)
            reference = model.result_
            assert batched.iterations[i] == reference.iterations
            assert bool(batched.converged[i]) == reference.converged
            assert batched.gradient_norm[i] == reference.gradient_norm
            assert batched.fun[i] == reference.fun

    def test_matches_raw_newton_solver(self):
        """Directly against NewtonSolver, not just the model wrapper."""
        from repro.regression.logistic import (
            logistic_gradient,
            logistic_hessian,
            logistic_loss,
        )

        rng = np.random.default_rng(23)
        B, n, d = 4, 80, 3
        X, y = self._random_cells(rng, B, n, d)
        batched = newton_logistic_stack(X, y, max_iterations=100, tolerance=1e-8)
        solver = NewtonSolver(max_iterations=100, tolerance=1e-8)
        for i in range(B):
            reference = solver.minimize(
                lambda w: logistic_loss(w, X[i], y[i]),
                lambda w: logistic_gradient(w, X[i], y[i]),
                lambda w: logistic_hessian(w, X[i], y[i]),
                np.zeros(d),
            )
            np.testing.assert_array_equal(batched.x[i], reference.x)

    def test_cell_view(self):
        rng = np.random.default_rng(29)
        X, y = self._random_cells(rng, 2, 50, 3)
        batched = newton_logistic_stack(X, y)
        cell = batched.cell(0)
        np.testing.assert_array_equal(cell.x, batched.x[0])
        assert cell.converged == bool(batched.converged[0])

    def test_single_cell_stack(self):
        rng = np.random.default_rng(31)
        X, y = self._random_cells(rng, 1, 60, 4)
        batched = newton_logistic_stack(X, y)
        model = LogisticRegressionModel().fit(X[0], y[0])
        np.testing.assert_array_equal(batched.x[0], model.coef_)
