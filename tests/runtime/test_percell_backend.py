"""The generic per-cell paths dispatch through the ambient array backend.

PR-9 put the *stacked* kernels behind :class:`ArrayBackend`; this suite
covers the remaining generic per-cell linear algebra — quadratic-form
eigenvalues/minimize, spectral repair, the OLS Gram solve, Newton
directions, and the pseudo-inverse fallbacks — which now route through
``active_backend()`` too.  The numpy backend is bit-identical by
construction (its methods *are* the old calls); a counting subclass
proves the dispatch actually happens; the torch backend (when installed)
must agree numerically.
"""

import numpy as np
import pytest

from repro.baselines.objective_perturbation import ObjectivePerturbation
from repro.core.polynomial import QuadraticForm
from repro.core.postprocess import SpectralTrimming
from repro.regression.linear import LinearRegression
from repro.regression.solvers import NewtonSolver
from repro.runtime.backend import (
    NumpyBackend,
    backend_available,
    use_backend,
)


class CountingBackend(NumpyBackend):
    """Bit-identical to numpy, but counts every dispatched call."""

    name = "counting"

    def __init__(self):
        self.calls = {"solve": 0, "eigh": 0, "eigvalsh": 0, "pinv": 0}

    def solve(self, A, b):
        self.calls["solve"] += 1
        return super().solve(A, b)

    def eigh(self, A):
        self.calls["eigh"] += 1
        return super().eigh(A)

    def eigvalsh(self, A):
        self.calls["eigvalsh"] += 1
        return super().eigvalsh(A)

    def pinv(self, A):
        self.calls["pinv"] += 1
        return super().pinv(A)


def _form(d=4, seed=3, spd=True):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(d, d))
    M = A @ A.T / d + (np.eye(d) if spd else -2.0 * np.eye(d))
    return QuadraticForm(M=M, alpha=rng.normal(size=d), beta=0.5)


def _xy(n=80, d=4, seed=11):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d)) / (3.0 * np.sqrt(d))
    y = np.clip(X @ rng.normal(size=d) + 0.05 * rng.normal(size=n), -1, 1)
    return X, y


class TestDispatchIsCounted:
    def test_quadratic_form_paths(self):
        counting = CountingBackend()
        form = _form()
        with use_backend(counting):
            form.eigenvalues()
            form.minimize()
        assert counting.calls["eigvalsh"] >= 2  # minimize re-checks PD
        assert counting.calls["solve"] == 1

    def test_spectral_repair_eigh(self):
        counting = CountingBackend()
        with use_backend(counting):
            SpectralTrimming().solve(_form(spd=False), noise_std=0.5)
        assert counting.calls["eigh"] == 1

    def test_ols_gram_solve(self):
        counting = CountingBackend()
        X, y = _xy()
        with use_backend(counting):
            LinearRegression().fit(X, y)
        assert counting.calls["solve"] >= 1

    def test_newton_direction(self):
        counting = CountingBackend()
        solver = NewtonSolver(max_iterations=25, raise_on_failure=False)
        with use_backend(counting):
            solver.minimize(
                lambda w: float(w @ w) + float(w[0]),
                lambda w: 2.0 * w + np.eye(len(w))[0],
                lambda w: 2.0 * np.eye(len(w)),
                np.zeros(3),
            )
        assert counting.calls["solve"] >= 1

    def test_objective_perturbation_solve(self):
        counting = CountingBackend()
        X, y = _xy()
        with use_backend(counting):
            ObjectivePerturbation("linear", epsilon=1.0, rng=5).fit(X, y)
        assert counting.calls["solve"] >= 1


class TestNumpyBitIdentity:
    """The counting backend *is* numpy: ambient dispatch changes nothing."""

    def test_quadratic_form_results_identical(self):
        form = _form()
        base_eigs = form.eigenvalues()
        base_min = form.minimize()
        with use_backend(CountingBackend()):
            assert np.array_equal(form.eigenvalues(), base_eigs)
            assert np.array_equal(form.minimize(), base_min)

    def test_ols_identical(self):
        X, y = _xy()
        base = LinearRegression().fit(X, y).coef_
        with use_backend(CountingBackend()):
            routed = LinearRegression().fit(X, y).coef_
        assert np.array_equal(base, routed)

    def test_spectral_repair_identical(self):
        form = _form(spd=False)
        base = SpectralTrimming().solve(form, noise_std=0.5)
        with use_backend(CountingBackend()):
            routed = SpectralTrimming().solve(form, noise_std=0.5)
        assert np.array_equal(base.omega, routed.omega)
        assert base.repaired == routed.repaired


@pytest.mark.skipif(
    not backend_available("torch"), reason="torch backend not installed"
)
class TestTorchNumericEquivalence:
    def test_percell_paths_numerically_conforming(self):
        form = _form()
        X, y = _xy()
        base_min = form.minimize()
        base_ols = LinearRegression().fit(X, y).coef_
        with use_backend("torch"):
            torch_min = form.minimize()
            torch_ols = LinearRegression().fit(X, y).coef_
        np.testing.assert_allclose(torch_min, base_min, rtol=0, atol=1e-9)
        np.testing.assert_allclose(torch_ols, base_ols, rtol=0, atol=1e-9)
