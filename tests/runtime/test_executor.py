"""Executors must change where cells run, never what they compute."""

import pytest

from repro.exceptions import ExperimentError
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    plan_cells,
    run_plan,
)


class TestGetExecutor:
    def test_by_name(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_passthrough(self):
        executor = ThreadExecutor(max_workers=2)
        assert get_executor(executor) is executor

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            get_executor("gpu")


class TestExecutorMap:
    def test_serial_order(self):
        assert SerialExecutor().map(lambda v: v * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_preserves_order(self):
        items = list(range(32))
        assert ThreadExecutor(max_workers=4).map(lambda v: v * v, items) == [
            v * v for v in items
        ]

    def test_process_preserves_order(self):
        items = list(range(8))
        assert ProcessExecutor(max_workers=2).map(_square, items) == [
            v * v for v in items
        ]

    def test_single_item_short_circuits(self):
        assert ProcessExecutor().map(lambda v: v + 1, [41]) == [42]


def _square(v):
    return v * v


class TestExecutorScoreParity:
    @pytest.fixture(scope="class")
    def plan(self, us, tiny_preset):
        return plan_cells(
            "DPME", us, "linear", dims=5, epsilons=[0.8], preset=tiny_preset, seed=2
        )

    def test_thread_matches_serial(self, plan):
        serial = run_plan(plan, mode="percell", executor="serial")
        threaded = run_plan(plan, mode="percell", executor="thread")
        assert serial.scores[0.8] == threaded.scores[0.8]

    def test_process_matches_serial(self, plan):
        serial = run_plan(plan, mode="percell", executor="serial")
        forked = run_plan(plan, mode="percell", executor="process")
        assert serial.scores[0.8] == forked.scores[0.8]
