"""Shared fixtures for the runtime suite."""

import pytest

from repro.data.census import load_us
from repro.experiments.config import ScalePreset


@pytest.fixture(scope="package")
def us():
    return load_us(6000)


@pytest.fixture(scope="package")
def tiny_preset():
    """A preset small enough for the slow per-cell baselines (DPME, FP)."""
    return ScalePreset(name="tiny", max_records=900, folds=3, repetitions=1)
