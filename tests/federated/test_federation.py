"""End-to-end federation contracts: bit-identity, shares, budgets.

The acceptance criteria this suite pins:

* **Central-mode bit-identity** — the coordinator's fit over K process
  parties equals single-box ingestion of the concatenated rows *bitwise*
  (same released digest), across party counts and both merge-tree
  shapes, with the parties as real forked OS processes.
* **Share reconstruction** — the parties' mod-2^64 additive shares sum
  to the central standardized Laplace sample bit-exactly, so share-mode
  fits release the same digest as central mode.
* **Party budgets** — each party's durable ledger charges
  ``sum(epsilons)`` before its envelope exists and survives restore.
"""

import math
import os

import numpy as np
import pytest

from repro.engine.accumulator import MomentAccumulator
from repro.engine.sweep import EpsilonSweepEngine
from repro.exceptions import BudgetExhaustedError, FederatedError, InvalidBudgetError
from repro.experiments.harness import objective_for
from repro.federated import (
    FederatedCoordinator,
    FederationSpec,
    central_raw_sample,
    centralized_fit,
    combine_shares,
    noise_share,
    run_parties,
    split_rows,
    tree_merge,
)
from repro.privacy.budget import PrivacyBudget
from repro.privacy.rng import derive_substream
from repro.runtime.executor import PooledProcessExecutor

EPSILONS = (0.5, 1.0)
SEED = 7
BLOCK = 64


def _rows(n=600, d=3, seed=11):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X /= np.maximum(1.0, np.linalg.norm(X, axis=1, keepdims=True) * 1.01)
    y = np.clip(X @ rng.normal(size=d), -1.0, 1.0)
    return X, y


def _spec(parties, noise_mode="central", **overrides):
    base = dict(
        task="linear",
        dim=3,
        epsilons=EPSILONS,
        seed=SEED,
        parties=parties,
        noise_mode=noise_mode,
        block_size=BLOCK,
    )
    base.update(overrides)
    return FederationSpec(**base)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork processes")
class TestCentralBitIdentity:
    @pytest.mark.parametrize("parties", [2, 3, 5])
    @pytest.mark.parametrize("tree", ["sequential", "balanced"])
    def test_process_parties_match_single_box_bitwise(self, parties, tree):
        X, y = _rows()
        spec = _spec(parties)
        executor = PooledProcessExecutor(max_workers=min(parties, 4))
        try:
            blobs = run_parties(spec, X, y, executor=executor)
        finally:
            executor.close()
        coordinator = FederatedCoordinator(spec)
        for blob in blobs:
            coordinator.submit(blob)
        federated = coordinator.fit(tree=tree)
        baseline = centralized_fit(spec, X, y)
        assert federated.digest == baseline.digest
        assert np.array_equal(federated.coefficients, baseline.coefficients)
        assert federated.n_rows == baseline.n_rows == len(X)

    def test_every_party_holds_rows(self):
        # 600 rows / block 64 = 10 blocks across 5 parties: the block-
        # aligned split must give every party real work.
        slices = split_rows(*_rows(), 5, block_size=BLOCK)
        assert all(len(Xk) > 0 for Xk, _ in slices)
        assert sum(len(Xk) for Xk, _ in slices) == 600


class TestMergeTreeInvariance:
    def test_tree_shapes_bitwise_identical(self):
        X, y = _rows()
        slices = split_rows(X, y, 4, block_size=BLOCK)
        accs = [
            MomentAccumulator(3, block_size=BLOCK).update(Xk, yk)
            for Xk, yk in slices
        ]
        seq = tree_merge(accs, tree="sequential")
        bal = tree_merge(accs, tree="balanced")
        s1, s2 = seq.snapshot(), bal.snapshot()
        objective = objective_for("linear", 3)
        fa, fb = s1.quadratic_form(objective), s2.quadratic_form(objective)
        assert np.array_equal(fa.M, fb.M)
        assert np.array_equal(fa.alpha, fb.alpha)
        assert fa.beta == fb.beta

    def test_merge_does_not_mutate_inputs(self):
        X, y = _rows()
        accs = [
            MomentAccumulator(3, block_size=BLOCK).update(Xk, yk)
            for Xk, yk in split_rows(X, y, 3, block_size=BLOCK)
        ]
        before = [a.n_rows for a in accs]
        tree_merge(accs, tree="balanced")
        assert [a.n_rows for a in accs] == before


class TestShareMode:
    def test_shares_sum_to_central_sample_bitwise(self):
        raw = central_raw_sample(SEED, len(EPSILONS), 3, 2)
        shares = [noise_share(SEED, k, 3, len(EPSILONS), 3, 2) for k in range(3)]
        assert combine_shares(shares).tobytes() == raw.tobytes()

    def test_single_share_is_not_the_sample(self):
        raw = central_raw_sample(SEED, len(EPSILONS), 3, 2)
        share = noise_share(SEED, 0, 3, len(EPSILONS), 3, 2)
        assert share.view(np.float64).tobytes() != raw.tobytes()

    def test_share_fit_matches_central_digest(self):
        X, y = _rows()
        spec = _spec(3, noise_mode="share")
        blobs = run_parties(spec, X, y)
        coordinator = FederatedCoordinator(spec)
        for blob in blobs:
            coordinator.submit(blob)
        result = coordinator.fit()
        baseline = centralized_fit(_spec(3), X, y)
        assert result.digest == baseline.digest


class TestPartyMode:
    def test_clean_statistics_never_leave_a_party(self):
        X, y = _rows()
        spec = _spec(3, noise_mode="party")
        blobs = run_parties(spec, X, y)
        coordinator = FederatedCoordinator(spec)
        envelopes = [coordinator.submit(blob) for blob in blobs]
        assert all(e.accumulator is None for e in envelopes)
        with pytest.raises(FederatedError):
            coordinator.merged_accumulator()

    def test_party_fit_is_close_but_noisier(self):
        X, y = _rows()
        spec = _spec(3, noise_mode="party")
        blobs = run_parties(spec, X, y)
        coordinator = FederatedCoordinator(spec)
        for blob in blobs:
            coordinator.submit(blob)
        result = coordinator.fit()
        baseline = centralized_fit(_spec(3), X, y)
        assert result.coefficients.shape == baseline.coefficients.shape
        assert result.digest != baseline.digest
        # Noisier, but the same problem: coefficients stay in a sane ball.
        assert float(np.abs(result.coefficients - baseline.coefficients).max()) < 2.0


class TestPartyBudgets:
    def test_budgets_are_durable_and_per_party(self, tmp_path):
        X, y = _rows()
        spec = _spec(3, budget_dir=str(tmp_path))
        run_parties(spec, X, y)
        cost = math.fsum(EPSILONS)
        for k in range(3):
            journal = tmp_path / f"party-{k}.journal"
            assert journal.exists()
            budget = PrivacyBudget.restore(journal)
            assert budget.spent == pytest.approx(cost)
            assert f"party={k}" in budget.ledger[0].note
            budget.close()

    def test_exhausted_party_budget_refuses_before_envelope(self, tmp_path):
        X, y = _rows()
        spec = _spec(2, budget_dir=str(tmp_path), budget_total=math.fsum(EPSILONS))
        run_parties(spec, X, y)  # consumes each party's whole budget
        with pytest.raises(BudgetExhaustedError):
            run_parties(spec, X, y)


class TestSweepFromDraws:
    def test_matches_keyed_sweep_bitwise(self):
        X, y = _rows()
        acc = MomentAccumulator(3, block_size=BLOCK).update(X, y)
        objective = objective_for("linear", 3)
        direct = EpsilonSweepEngine(objective, acc).sweep(
            EPSILONS, rng=derive_substream(SEED, [0xFED01], 2)
        )
        raw = central_raw_sample(SEED, len(EPSILONS), 3, 2)
        injected = EpsilonSweepEngine(objective, acc).sweep_from_draws(EPSILONS, raw)
        assert np.array_equal(direct.coefficients, injected.coefficients)

    def test_wrong_shape_refused(self):
        X, y = _rows()
        acc = MomentAccumulator(3, block_size=BLOCK).update(X, y)
        engine = EpsilonSweepEngine(objective_for("linear", 3), acc)
        with pytest.raises(InvalidBudgetError):
            engine.sweep_from_draws(EPSILONS, np.zeros((len(EPSILONS), 5)))


class TestSpecValidation:
    def test_bad_modes_and_counts_refused(self):
        with pytest.raises(FederatedError):
            _spec(3, noise_mode="secure-agg")
        with pytest.raises(FederatedError):
            _spec(0)
        with pytest.raises(FederatedError):
            _spec(3, epsilons=())
        with pytest.raises(FederatedError):
            _spec(3, epsilons=(0.5, -1.0))

    def test_fingerprint_tracks_schema(self):
        assert _spec(3).fingerprint() == _spec(3).fingerprint()
        assert _spec(3).fingerprint() != _spec(4).fingerprint()
        assert _spec(3).fingerprint() != _spec(3, noise_mode="share").fingerprint()
