"""Wire-format fuzzing: every corruption is a typed, state-free rejection.

Satellite 3 of the federation PR.  The contract under test:

* any damaged blob — bit flips at arbitrary offsets, truncation at any
  length, an unsupported wire version, a tampered header field, a
  fingerprint that does not match the coordinator's schema — raises a
  member of the :class:`~repro.exceptions.FederatedError` family (never
  a bare ``ValueError``/``KeyError``/``zlib.error``), and
* a coordinator that rejects an envelope is left *exactly* as it was:
  nothing partially merged, later clean submissions still accepted.
"""

import json

import numpy as np
import pytest

from repro.exceptions import (
    FederatedError,
    ReproError,
    SchemaMismatchError,
    VersionMismatchError,
    WireFormatError,
)
from repro.federated import (
    FederatedCoordinator,
    FederationSpec,
    centralized_fit,
    decode_envelope,
    run_parties,
)

EPSILONS = (0.5, 1.0)
SEED = 21
BLOCK = 64
PARTIES = 3


def _rows(n=384, d=3, seed=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X /= np.maximum(1.0, np.linalg.norm(X, axis=1, keepdims=True) * 1.01)
    y = np.clip(X @ rng.normal(size=d), -1.0, 1.0)
    return X, y


def _spec(**overrides):
    base = dict(
        task="linear",
        dim=3,
        epsilons=EPSILONS,
        seed=SEED,
        parties=PARTIES,
        block_size=BLOCK,
    )
    base.update(overrides)
    return FederationSpec(**base)


@pytest.fixture(scope="module")
def federation():
    X, y = _rows()
    spec = _spec()
    return spec, X, y, run_parties(spec, X, y)


def _tamper_header(blob, **changes):
    """Rewrite header fields without touching the payload."""
    header_line, payload = blob.split(b"\n", 1)
    header = json.loads(header_line)
    header.update(changes)
    return json.dumps(header, sort_keys=True).encode() + b"\n" + payload


def _flip_bit(blob, offset, bit=0x01):
    out = bytearray(blob)
    out[offset] ^= bit
    return bytes(out)


class TestBitFlips:
    def test_every_sampled_flip_is_a_typed_rejection(self, federation):
        spec, _, _, blobs = federation
        blob = blobs[0]
        stride = max(1, len(blob) // 97)
        for offset in range(0, len(blob), stride):
            for bit in (0x01, 0x80):
                with pytest.raises(FederatedError):
                    decode_envelope(_flip_bit(blob, offset, bit), spec.fingerprint())

    def test_flip_never_leaks_untyped_exceptions(self, federation):
        spec, _, _, blobs = federation
        blob = blobs[1]
        for offset in range(0, len(blob), max(1, len(blob) // 211)):
            try:
                decode_envelope(_flip_bit(blob, offset, 0x10), spec.fingerprint())
            except FederatedError:
                continue
            except Exception as exc:  # pragma: no cover - the failure we forbid
                pytest.fail(f"offset {offset} leaked {type(exc).__name__}: {exc}")
            pytest.fail(f"flip at offset {offset} was silently accepted")

    def test_typed_errors_are_nonretryable_repro_errors(self):
        for cls in (WireFormatError, VersionMismatchError, SchemaMismatchError):
            assert issubclass(cls, FederatedError)
        assert issubclass(FederatedError, ReproError)
        assert FederatedError("x").retryable is False


class TestTruncation:
    def test_every_truncation_length_rejected(self, federation):
        spec, _, _, blobs = federation
        blob = blobs[0]
        newline = blob.find(b"\n")
        lengths = {0, 1, newline, newline + 1, len(blob) // 2, len(blob) - 1}
        for length in sorted(lengths):
            with pytest.raises(WireFormatError):
                decode_envelope(blob[:length], spec.fingerprint())

    def test_appended_garbage_rejected(self, federation):
        spec, _, _, blobs = federation
        with pytest.raises(WireFormatError):
            decode_envelope(blobs[0] + b"\x00" * 16, spec.fingerprint())


class TestVersionSkew:
    @pytest.mark.parametrize("version", [0, 2, 99, "1", None])
    def test_unsupported_wire_versions(self, federation, version):
        _, _, _, blobs = federation
        skewed = _tamper_header(blobs[0], wire=version)
        with pytest.raises(VersionMismatchError):
            decode_envelope(skewed)


class TestFingerprintMismatch:
    def test_wrong_expected_fingerprint(self, federation):
        _, _, _, blobs = federation
        with pytest.raises(SchemaMismatchError):
            decode_envelope(blobs[0], "0" * 64)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("task", "logistic"),
            ("dim", 4),
            ("block_size", 128),
            ("noise_mode", "share"),
            ("parties", 5),
            ("fingerprint", "f" * 64),
        ],
    )
    def test_tampered_header_contradicts_fingerprint(self, federation, field, value):
        _, _, _, blobs = federation
        tampered = _tamper_header(blobs[0], **{field: value})
        with pytest.raises(SchemaMismatchError):
            decode_envelope(tampered)


class TestHeaderSemantics:
    @pytest.mark.parametrize(
        "changes",
        [
            {"party": -1},
            {"party": 7},
            {"epsilons": []},
            {"epsilons": [0.5, -1.0]},
            {"n_rows": 1},  # contradicts the carried accumulator
        ],
    )
    def test_inconsistent_metadata_rejected(self, federation, changes):
        _, _, _, blobs = federation
        with pytest.raises(WireFormatError):
            decode_envelope(_tamper_header(blobs[0], **changes))


class TestCoordinatorStateInvariance:
    def test_rejections_leave_coordinator_untouched(self, federation):
        spec, X, y, blobs = federation
        coordinator = FederatedCoordinator(spec)
        poisons = [
            _flip_bit(blobs[0], len(blobs[0]) // 2),
            blobs[0][: len(blobs[0]) // 2],
            _tamper_header(blobs[0], wire=99),
            _tamper_header(blobs[0], task="logistic"),
            _tamper_header(blobs[0], seed=SEED + 1),  # decodes, fails spec check
        ]
        for poison in poisons:
            with pytest.raises(FederatedError):
                coordinator.submit(poison)
            assert coordinator.received == ()
            assert coordinator.n_rows == 0
        # After every rejection the clean federation still completes
        # and releases the single-box digest.
        for blob in blobs:
            coordinator.submit(blob)
        assert coordinator.missing == ()
        assert coordinator.fit().digest == centralized_fit(spec, X, y).digest

    def test_duplicate_submission_rejected_without_state_change(self, federation):
        spec, _, _, blobs = federation
        coordinator = FederatedCoordinator(spec)
        coordinator.submit(blobs[0])
        with pytest.raises(FederatedError):
            coordinator.submit(blobs[0])
        assert coordinator.received == (0,)
        assert coordinator.missing == tuple(range(1, PARTIES))

    def test_mismatched_federation_rejected(self, federation):
        spec, X, y, _ = federation
        foreign = run_parties(_spec(parties=2), *_rows())
        coordinator = FederatedCoordinator(spec)
        with pytest.raises(SchemaMismatchError):
            coordinator.submit(foreign[0])
        assert coordinator.received == ()

    def test_unreadable_path_is_typed(self, federation, tmp_path):
        spec, _, _, _ = federation
        coordinator = FederatedCoordinator(spec)
        with pytest.raises(FederatedError):
            coordinator.submit_path(tmp_path / "does-not-exist.fenv")
        assert coordinator.received == ()
