"""Execute the doctest examples embedded in public docstrings.

Docstrings with ``>>>`` examples are part of the documented contract;
running them keeps the documentation honest as the code evolves.
"""

import doctest

import pytest

import repro
import repro.analysis.calibration
import repro.core.basis
import repro.core.objectives
import repro.core.polynomial
import repro.core.taylor
import repro.data.transforms
import repro.engine.accumulator
import repro.engine.cache
import repro.engine.sharding
import repro.engine.sweep
import repro.privacy.budget
import repro.regression.features
import repro.regression.linear
import repro.regression.logistic
import repro.regression.preprocessing

MODULES = [
    repro.analysis.calibration,
    repro.core.basis,
    repro.core.objectives,
    repro.core.polynomial,
    repro.core.taylor,
    repro.data.transforms,
    repro.engine.accumulator,
    repro.engine.cache,
    repro.engine.sharding,
    repro.engine.sweep,
    repro.privacy.budget,
    repro.regression.features,
    repro.regression.linear,
    repro.regression.logistic,
    repro.regression.preprocessing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert failures == 0


def test_doctest_coverage_is_nontrivial():
    """At least some of the listed modules must actually carry examples."""
    attempted = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert attempted >= 10
