"""The ``python -m repro verify`` subcommand, end to end through main()."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    pytestmark = pytest.mark.tier1

    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.tier == "1"
        assert args.epsilon == 1.0
        assert args.trials is None
        assert not args.regen_golden
        assert args.backend == "torch"

    def test_tier_choices(self):
        parser = build_parser()
        assert parser.parse_args(["verify", "--tier", "3"]).tier == "3"
        assert parser.parse_args(["verify", "--tier", "numeric"]).tier == "numeric"
        with pytest.raises(SystemExit):
            parser.parse_args(["verify", "--tier", "4"])

    def test_golden_options(self):
        args = build_parser().parse_args(
            [
                "verify", "--tier", "3",
                "--golden-groups", "figure5-linear-sv1",
                "--golden-configs", "batched-serial-tile1",
                "--golden-store", "/tmp/x.json",
                "--regen-golden",
            ]
        )
        assert args.golden_groups == "figure5-linear-sv1"
        assert args.regen_golden


class TestTier1:
    pytestmark = pytest.mark.tier1

    def test_passes(self, capsys):
        assert main(["verify", "--tier", "1"]) == 0
        out = capsys.readouterr().out
        assert "tier 1: OK" in out
        assert "sensitivity certificate" in out
        assert "auditor teeth" in out

    def test_fails_on_broken_golden_store(self, tmp_path, capsys):
        bad = tmp_path / "store.json"
        bad.write_text("{}")
        assert main(["verify", "--tier", "1", "--golden-store", str(bad)]) == 1
        assert "[FAIL] golden store well-formed" in capsys.readouterr().out


class TestTier2:
    pytestmark = pytest.mark.tier2

    def test_filtered_audit_passes(self, capsys):
        code = main(
            ["verify", "--tier", "2", "--trials", "600", "--mechanisms", "FM"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tier 2: OK" in out
        assert "eps_lower" in out

    def test_full_panel_smoke(self, capsys):
        """All five private mechanisms at smoke trials: certified lower
        bounds must sit within budget (the acceptance criterion, scaled
        down for the default suite; CI runs the full-trials version)."""
        code = main(["verify", "--tier", "2", "--trials", "400"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("FM", "DPME", "FP", "OutputPerturbation", "ObjectivePerturbation"):
            assert name in out
        assert "not audited (no privacy claim): NoPrivacy, Truncated" in out

    def test_unknown_mechanism_errors(self, capsys):
        code = main(["verify", "--tier", "2", "--mechanisms", "Nope"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTier3:
    pytestmark = pytest.mark.tier1  # the filtered run is tier-1 sized

    def test_filtered_verify_passes(self, capsys):
        code = main(
            [
                "verify", "--tier", "3",
                "--golden-groups", "figure6-linear-sv2",
                "--golden-configs",
                "batched-serial-tiledefault,percell-thread-tile1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bitwise-equal" in out

    def test_regen_into_custom_store(self, tmp_path, capsys):
        store = tmp_path / "golden.json"
        code = main(
            [
                "verify", "--tier", "3", "--regen-golden",
                "--golden-store", str(store),
                "--golden-groups", "figure5-linear-sv1",
                "--golden-configs", "batched-serial-tiledefault,batched-process-tile1",
            ]
        )
        assert code == 0
        assert store.exists()
        assert "pinned" in capsys.readouterr().out
        code = main(
            [
                "verify", "--tier", "3",
                "--golden-store", str(store),
                "--golden-groups", "figure5-linear-sv1",
                "--golden-configs", "batched-serial-tiledefault",
            ]
        )
        assert code == 0

    def test_stale_store_fails(self, tmp_path, capsys):
        from repro.verify.golden import save_store

        store = tmp_path / "golden.json"
        save_store({"figure5-linear-sv1": "a" * 64}, store)
        code = main(
            [
                "verify", "--tier", "3",
                "--golden-store", str(store),
                "--golden-groups", "figure5-linear-sv1",
                "--golden-configs", "batched-serial-tiledefault",
            ]
        )
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out
