"""The adversarial sensitivity certifier.

The linear objective at d = 1 has a hand-computable adversarial optimum:
the realized coefficient L1 distance is maximized at 4.0 (e.g. the tuple
``(x=1, y=1)`` replaced by ``(x=1, y=-1)`` moves the linear coefficient by
4 while every even monomial is unchanged) — exactly half the paper's
``Delta = 2 (d + 1)^2 = 8``.  The search must find that optimum, certify
that it stays under the bound, and — handed a deliberately understated
bound — return the counterexample.
"""

import numpy as np
import pytest

from repro.core.objectives import LinearRegressionObjective, LogisticRegressionObjective
from repro.core.sensitivity import coefficient_l1_distance
from repro.verify.certify import certify_sensitivity

pytestmark = pytest.mark.tier1


class TestBoundsHold:
    @pytest.mark.parametrize("dim", [1, 3])
    @pytest.mark.parametrize("tight", [False, True])
    def test_linear(self, dim, tight):
        cert = certify_sensitivity(
            LinearRegressionObjective(dim), rng=0, tight=tight
        )
        assert cert.holds
        assert cert.best_distance > 0.0
        assert cert.evaluations > 0

    @pytest.mark.parametrize("dim", [1, 2])
    @pytest.mark.parametrize("tight", [False, True])
    def test_logistic(self, dim, tight):
        cert = certify_sensitivity(
            LogisticRegressionObjective(dim), rng=0, tight=tight
        )
        assert cert.holds


class TestSearchIsAdversarial:
    def test_linear_d1_finds_the_known_optimum(self):
        cert = certify_sensitivity(LinearRegressionObjective(1), rng=0)
        assert cert.best_distance == pytest.approx(4.0, rel=1e-6)
        assert cert.analytic_delta == pytest.approx(8.0)
        assert cert.utilization == pytest.approx(0.5, rel=1e-6)

    def test_best_pair_reproduces_best_distance(self):
        objective = LinearRegressionObjective(2)
        cert = certify_sensitivity(objective, rng=1)
        x_a, y_a, x_b, y_b = cert.best_pair
        replayed = coefficient_l1_distance(objective, (x_a, y_a), (x_b, y_b))
        assert replayed == pytest.approx(cert.best_distance)

    def test_best_pair_is_in_domain(self):
        cert = certify_sensitivity(LinearRegressionObjective(3), rng=2)
        x_a, y_a, x_b, y_b = cert.best_pair
        assert float(np.linalg.norm(x_a)) <= 1.0 + 1e-9
        assert float(np.linalg.norm(x_b)) <= 1.0 + 1e-9
        assert abs(y_a) <= 1.0 and abs(y_b) <= 1.0

    def test_tight_bound_is_better_utilized(self):
        """The sqrt(d) variant gives up less of the budget to slack."""
        paper = certify_sensitivity(LinearRegressionObjective(3), rng=0, tight=False)
        tight = certify_sensitivity(LinearRegressionObjective(3), rng=0, tight=True)
        assert tight.utilization > paper.utilization
        assert paper.best_distance == tight.best_distance  # same search space

    def test_deterministic(self):
        a = certify_sensitivity(LinearRegressionObjective(2), rng=5)
        b = certify_sensitivity(LinearRegressionObjective(2), rng=5)
        assert a.best_distance == b.best_distance
        assert a.evaluations == b.evaluations


class TestCounterexamples:
    def test_understated_bound_is_refuted(self):
        """Handed Delta/4 as the claimed bound, the certificate must fail
        and carry a concrete violating pair."""
        objective = LinearRegressionObjective(1)
        cert = certify_sensitivity(
            objective, rng=0, analytic_delta=objective.sensitivity() / 4.0
        )
        assert not cert.holds
        x_a, y_a, x_b, y_b = cert.best_pair
        distance = coefficient_l1_distance(objective, (x_a, y_a), (x_b, y_b))
        assert distance > cert.analytic_delta

    def test_invalid_budgets_rejected(self):
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            certify_sensitivity(LinearRegressionObjective(1), trials=-1)
