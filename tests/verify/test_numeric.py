"""The numeric-conformance tier has teeth.

The tier's whole value is the separation it enforces: ulp-scale
reassociation drift (what an honest alternative backend produces) must be
*accepted*, while the classic calibration bugs — ``Delta / (2 epsilon)``,
a dropped Laplace draw, an understated sensitivity — must be *rejected*
even though each leaves the protocol digest untouched.
"""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.verify.numeric import (
    DEFAULT_TOLERANCE,
    FAULT_KINDS,
    NumericTolerance,
    ReleaseOutcome,
    compare_releases,
    fm_release_stack,
    ulp_distance,
    ulp_perturb,
    verify_numeric,
)


class TestUlpDistance:
    def test_zero_for_identical(self):
        a = np.array([0.0, 1.0, -3.5, 1e300])
        assert np.all(ulp_distance(a, a.copy()) == 0)

    def test_counts_adjacent_doubles(self):
        a = np.array([1.0])
        b = np.nextafter(a, np.inf)
        assert ulp_distance(a, b)[0] == 1.0

    def test_crosses_zero_correctly(self):
        tiny = np.array([5e-324])  # one ulp above +0.0
        assert ulp_distance(tiny, np.array([0.0]))[0] == 1.0
        assert ulp_distance(tiny, -tiny)[0] == 2.0

    def test_sign_flip_is_enormous(self):
        assert ulp_distance(np.array([1.0]), np.array([-1.0]))[0] > 2**60

    def test_nan_is_infinite(self):
        assert ulp_distance(np.array([np.nan]), np.array([1.0]))[0] == np.inf
        assert ulp_distance(np.array([np.nan]), np.array([np.nan]))[0] == np.inf

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError, match="shape"):
            ulp_distance(np.zeros(2), np.zeros(3))


class TestUlpPerturb:
    def test_moves_exactly_n_ulps(self):
        values = np.array([1.0, -2.0, 0.0, 3.5])
        out = ulp_perturb(values, ulps=4)
        assert np.all(ulp_distance(values, out) == 4)

    def test_does_not_mutate_input(self):
        values = np.array([1.0, 2.0])
        ulp_perturb(values, ulps=8)
        assert np.array_equal(values, np.array([1.0, 2.0]))


class TestTolerance:
    def test_atol_governs_near_zero(self):
        tol = NumericTolerance(atol=1e-9, max_ulps=2)
        assert tol.conforms(np.array([0.0]), np.array([5e-10]))

    def test_ulps_govern_large_magnitudes(self):
        tol = NumericTolerance(atol=1e-30, max_ulps=8)
        big = np.array([1e12])
        assert tol.conforms(big, ulp_perturb(big, 4))

    def test_rejects_beyond_both(self):
        tol = NumericTolerance(atol=1e-9, max_ulps=8)
        assert not tol.conforms(np.array([1.0]), np.array([1.001]))


class TestReleaseBattery:
    def test_reference_is_deterministic(self):
        a = fm_release_stack("linear", 3, seed=11)
        b = fm_release_stack("linear", 3, seed=11)
        assert a.protocol_digest == b.protocol_digest
        assert np.array_equal(a.omega, b.omega)

    def test_seed_changes_protocol_and_values(self):
        a = fm_release_stack("linear", 3, seed=11)
        b = fm_release_stack("linear", 3, seed=12)
        assert a.protocol_digest != b.protocol_digest
        assert not np.array_equal(a.omega, b.omega)

    def test_ulp_perturbation_accepted(self):
        reference = fm_release_stack("linear", 3)
        drifted = ReleaseOutcome(
            protocol=reference.protocol,
            protocol_digest=reference.protocol_digest,
            omega=ulp_perturb(reference.omega, ulps=4),
        )
        verdict = compare_releases(reference, drifted, DEFAULT_TOLERANCE)
        assert verdict.conforming
        assert verdict.max_ulp == 4

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("task,dim", [("linear", 3), ("logistic", 4)])
    def test_calibration_faults_rejected(self, kind, task, dim):
        reference = fm_release_stack(task, dim)
        faulty = fm_release_stack(task, dim, fault=kind)
        verdict = compare_releases(reference, faulty, DEFAULT_TOLERANCE)
        # The fault is invisible to the protocol (the same stream is
        # drawn) — exactly why the coefficient comparison must have teeth.
        assert verdict.protocol_match
        assert not verdict.conforming
        assert verdict.max_abs_diff > DEFAULT_TOLERANCE.atol

    def test_unknown_fault_rejected(self):
        with pytest.raises(ExperimentError, match="fault"):
            fm_release_stack("linear", 3, fault="typo")

    def test_divergent_protocol_never_conforms(self):
        a = fm_release_stack("linear", 3, seed=1)
        b = fm_release_stack("linear", 3, seed=2)
        forged = ReleaseOutcome(
            protocol=b.protocol, protocol_digest=b.protocol_digest, omega=a.omega
        )
        assert not compare_releases(a, forged).conforming


class TestVerifyNumeric:
    def test_reference_battery_passes_without_candidate(self):
        report = verify_numeric(candidate="torch", sweep_group=None)
        assert report.passed
        labels = [check.label for check in report.checks]
        assert any("self-consistency" in label for label in labels)
        assert any("perturbation accepted" in label for label in labels)
        for kind in FAULT_KINDS:
            assert any(kind in label for label in labels)

    def test_missing_candidate_is_skipped_not_failed(self):
        report = verify_numeric(candidate="torch", sweep_group=None)
        if report.candidate_available:
            pytest.skip("torch installed; the skip path needs it absent")
        assert report.passed
        assert any("unavailable" in check.label for check in report.checks)

    def test_numpy_candidate_certifies_exactly(self):
        # numpy-vs-numpy exercises the full candidate path with zero drift.
        report = verify_numeric(candidate="numpy", sweep_group=None)
        assert report.candidate_available
        assert report.passed
        assert any("release conforms" in check.label for check in report.checks)

    def test_unknown_sweep_group_rejected(self):
        with pytest.raises(ExperimentError, match="golden group"):
            verify_numeric(candidate="numpy", sweep_group="nope")
