"""The Clopper–Pearson machinery, checked against closed forms and scipy.

The boundary counts have exact closed-form bounds (solve the binomial tail
equation by hand), so correctness is testable with no external reference;
scipy, when present, cross-checks the continued-fraction Beta quantiles at
interior counts.
"""

import math

import pytest

from repro.verify.bounds import (
    beta_ppf,
    clopper_pearson,
    log_ratio_lower_bound,
    regularized_incomplete_beta,
)

pytestmark = pytest.mark.tier1


class TestIncompleteBeta:
    def test_boundaries(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_uniform_special_case(self):
        """Beta(1, 1) is uniform: the CDF is the identity."""
        for x in (0.1, 0.5, 0.9):
            assert regularized_incomplete_beta(1.0, 1.0, x) == pytest.approx(x)

    def test_symmetry(self):
        """I_x(a, b) = 1 - I_{1-x}(b, a)."""
        value = regularized_incomplete_beta(3.5, 7.0, 0.3)
        mirror = regularized_incomplete_beta(7.0, 3.5, 0.7)
        assert value == pytest.approx(1.0 - mirror, abs=1e-12)

    def test_monotonic_in_x(self):
        values = [
            regularized_incomplete_beta(4.0, 9.0, x)
            for x in (0.1, 0.2, 0.4, 0.6, 0.8)
        ]
        assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            regularized_incomplete_beta(0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            regularized_incomplete_beta(1.0, 1.0, 1.5)


class TestBetaPpf:
    def test_inverts_cdf(self):
        for a, b, q in [(2.0, 5.0, 0.05), (50.5, 950.5, 0.99), (1.0, 3.0, 0.5)]:
            x = beta_ppf(q, a, b)
            assert regularized_incomplete_beta(a, b, x) == pytest.approx(q, abs=1e-9)

    def test_extremes(self):
        assert beta_ppf(0.0, 2.0, 2.0) == 0.0
        assert beta_ppf(1.0, 2.0, 2.0) == 1.0

    def test_against_scipy(self):
        st = pytest.importorskip("scipy.stats")
        for a, b, q in [(37.0, 164.0, 0.025), (1.0, 5000.0, 0.95), (12.5, 3.5, 0.5)]:
            assert beta_ppf(q, a, b) == pytest.approx(
                float(st.beta.ppf(q, a, b)), abs=1e-9
            )


class TestClopperPearson:
    def test_zero_successes_closed_form(self):
        """k = 0: lower is exactly 0, upper solves (1-p)^n = 1 - conf."""
        bounds = clopper_pearson(0, 50, confidence=0.95)
        assert bounds.lower == 0.0
        assert bounds.upper == pytest.approx(1.0 - 0.05 ** (1.0 / 50.0), abs=1e-9)

    def test_all_successes_closed_form(self):
        """k = n: upper is exactly 1, lower solves p^n = 1 - conf."""
        bounds = clopper_pearson(50, 50, confidence=0.95)
        assert bounds.upper == 1.0
        assert bounds.lower == pytest.approx(0.05 ** (1.0 / 50.0), abs=1e-9)

    def test_interval_brackets_the_rate(self):
        bounds = clopper_pearson(40, 100, confidence=0.95)
        assert bounds.lower < 0.4 < bounds.upper

    def test_narrows_with_trials(self):
        narrow = clopper_pearson(400, 1000)
        wide = clopper_pearson(40, 100)
        assert (narrow.upper - narrow.lower) < (wide.upper - wide.lower)

    def test_higher_confidence_widens(self):
        loose = clopper_pearson(40, 100, confidence=0.9)
        strict = clopper_pearson(40, 100, confidence=0.999)
        assert strict.lower < loose.lower
        assert strict.upper > loose.upper

    def test_against_scipy(self):
        st = pytest.importorskip("scipy.stats")
        k, n = 37, 200
        bounds = clopper_pearson(k, n, confidence=0.95)
        assert bounds.lower == pytest.approx(
            float(st.beta.ppf(0.05, k, n - k + 1)), abs=1e-9
        )
        assert bounds.upper == pytest.approx(
            float(st.beta.ppf(0.95, k + 1, n - k)), abs=1e-9
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            clopper_pearson(-1, 10)
        with pytest.raises(ValueError):
            clopper_pearson(11, 10)
        with pytest.raises(ValueError):
            clopper_pearson(5, 0)
        with pytest.raises(ValueError):
            clopper_pearson(5, 10, confidence=1.0)


class TestLogRatioLowerBound:
    def test_no_evidence_is_minus_infinity(self):
        assert log_ratio_lower_bound(0, 1000, 10, 1000) == -math.inf

    def test_certifies_strong_separation(self):
        """2000/4000 vs 270/4000 is a true ratio near e^2; the certified
        bound must sit between a safe floor and the plug-in estimate."""
        bound = log_ratio_lower_bound(2000, 4000, 270, 4000, confidence=0.95)
        plug_in = math.log(2000.0 / 270.0)
        assert 1.5 < bound < plug_in

    def test_conservative_under_equality(self):
        """Equal counts: the certified bound must be negative (no certified
        separation), never spuriously positive."""
        assert log_ratio_lower_bound(500, 1000, 500, 1000) < 0.0

    def test_tightens_with_confidence_relaxation(self):
        strict = log_ratio_lower_bound(600, 1000, 200, 1000, confidence=0.999)
        loose = log_ratio_lower_bound(600, 1000, 200, 1000, confidence=0.9)
        assert strict < loose
