"""Neighboring-dataset generators: domain validity and the neighbor relation."""

import numpy as np
import pytest

from repro.exceptions import DataError, DomainError
from repro.verify.neighbors import (
    NeighborPair,
    neighbor_pairs,
    random_neighbor_pair,
    worst_case_pair,
)

pytestmark = pytest.mark.tier1


class TestWorstCasePair:
    @pytest.mark.parametrize("task", ["linear", "logistic"])
    @pytest.mark.parametrize("dim", [1, 3, 5])
    def test_valid(self, task, dim):
        pair = worst_case_pair(task, dim)
        pair.validate()  # raises on any violation
        assert pair.dim == dim

    @pytest.mark.parametrize("task", ["linear", "logistic"])
    def test_differs_in_exactly_one_row(self, task):
        pair = worst_case_pair(task, 2)
        assert pair.differing_rows().tolist() == [2]

    def test_target_flip_moves_a_released_coefficient(self):
        """The canonical pair must not cancel in the degree-2 monomials
        (the failure mode a sign-flip replacement would have)."""
        from repro.core.objectives import LinearRegressionObjective

        pair = worst_case_pair("linear", 1)
        objective = LinearRegressionObjective(1)
        form_a = objective.aggregate_quadratic(pair.X_a, pair.y_a)
        form_b = objective.aggregate_quadratic(pair.X_b, pair.y_b)
        assert abs(float(form_a.alpha[0] - form_b.alpha[0])) == pytest.approx(4.0)
        assert float(form_a.M[0, 0]) == float(form_b.M[0, 0])

    def test_packed_layout(self):
        pair = worst_case_pair("linear", 3)
        db_a, db_b = pair.packed()
        assert db_a.shape == (3, 4)
        np.testing.assert_array_equal(db_a[:, :3], pair.X_a)
        np.testing.assert_array_equal(db_a[:, 3], pair.y_a)
        assert db_b.shape == db_a.shape

    def test_invalid_dim(self):
        with pytest.raises(DataError):
            worst_case_pair("linear", 0)


class TestRandomPairs:
    @pytest.mark.parametrize("task", ["linear", "logistic"])
    def test_valid_and_deterministic(self, task):
        pair_1 = random_neighbor_pair(task, dim=3, rng=7)
        pair_2 = random_neighbor_pair(task, dim=3, rng=7)
        pair_1.validate()
        np.testing.assert_array_equal(pair_1.X_a, pair_2.X_a)
        np.testing.assert_array_equal(pair_1.y_b, pair_2.y_b)

    def test_logistic_targets_boolean(self):
        pair = random_neighbor_pair("logistic", dim=2, rng=3)
        assert set(np.unique(pair.y_a)) <= {0.0, 1.0}
        assert set(np.unique(pair.y_b)) <= {0.0, 1.0}

    def test_battery_contents(self):
        pairs = neighbor_pairs("linear", dim=2, random_pairs=3, rng=0)
        assert len(pairs) == 4
        assert pairs[0].name.startswith("worst-case")
        assert all(p.differing_rows().size == 1 for p in pairs)


class TestValidation:
    def test_rejects_two_differing_rows(self):
        base = worst_case_pair("linear", 1)
        y_b = base.y_b.copy()
        y_b[0] = -base.y_a[0]
        broken = NeighborPair(
            name="two-rows", task="linear",
            X_a=base.X_a, y_a=base.y_a, X_b=base.X_b, y_b=y_b,
        )
        with pytest.raises(DataError, match="exactly one row"):
            broken.validate()

    def test_rejects_shape_mismatch(self):
        base = worst_case_pair("linear", 1)
        broken = NeighborPair(
            name="shapes", task="linear",
            X_a=base.X_a, y_a=base.y_a,
            X_b=base.X_b[:2], y_b=base.y_b[:2],
        )
        with pytest.raises(DataError, match="share a shape"):
            broken.validate()

    def test_rejects_domain_violation(self):
        """A pair outside ||x||_2 <= 1 would audit a sensitivity bound that
        does not apply — validate() must refuse it."""
        base = worst_case_pair("linear", 1)
        X = base.X_a.copy()
        X[2, 0] = 2.0
        broken = NeighborPair(
            name="norm", task="linear",
            X_a=X, y_a=base.y_a, X_b=X.copy(), y_b=base.y_b,
        )
        with pytest.raises(DomainError):
            broken.validate()
