"""The golden-oracle registry and its conformance matrix.

Two layers, by cost:

* tier-1 smoke — the store is well-formed and one group (the
  stream-version-2 figure-5 pipeline, so the v2 path runs end to end in
  the default suite) is bitwise-equivalent across a representative slice
  of execution configs;
* tier-3 matrix — every group across every config, strict against the
  committed digests (opt-in: ``--run-tier3`` / ``REPRO_TIER3=1``).
"""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.verify.golden import (
    GOLDEN_CONFIGS,
    GOLDEN_GROUPS,
    default_store_path,
    digest_sweep_result,
    environment_fingerprint,
    environment_matches,
    load_store,
    run_golden_case,
    save_store,
    verify_matrix,
)

#: A representative slice of the execution matrix for the default suite:
#: both runtimes, all three executors, both tilings appear at least once.
SMOKE_CONFIGS = [
    "batched-serial-tiledefault",
    "percell-serial-tile1",
    "batched-thread-tile1",
    "batched-process-tiledefault",
]


class TestStoreWellFormed:
    pytestmark = pytest.mark.tier1

    def test_committed_store_parses(self):
        store = load_store()
        assert store["format"] == 1
        assert set(store["environment"]) == {"python", "numpy", "machine", "system"}

    def test_every_group_is_pinned(self):
        store = load_store()
        assert set(store["groups"]) == {g.group_id for g in GOLDEN_GROUPS}

    def test_digests_are_sha256_hex(self):
        store = load_store()
        for entry in store["groups"].values():
            digest = entry["digest"]
            assert len(digest) == 64
            int(digest, 16)  # raises on non-hex

    def test_matrix_dimensions(self):
        """The acceptance floor: >= 2 figures x {percell, batched} x
        {serial, thread, process} x {tile 1, default} x {sv 1, 2}."""
        figures = {g.figure for g in GOLDEN_GROUPS}
        versions = {g.stream_version for g in GOLDEN_GROUPS}
        assert len(figures) >= 2
        assert versions == {1, 2}
        assert {c.runtime for c in GOLDEN_CONFIGS} == {"batched", "percell"}
        assert {c.executor for c in GOLDEN_CONFIGS} == {"serial", "thread", "process"}
        assert {c.tile_size for c in GOLDEN_CONFIGS} == {None, 1}

    def test_malformed_store_rejected(self, tmp_path):
        bad = tmp_path / "store.json"
        bad.write_text(json.dumps({"format": 1}))
        with pytest.raises(ExperimentError, match="missing key"):
            load_store(bad)
        bad.write_text("not json")
        with pytest.raises(ExperimentError, match="not valid JSON"):
            load_store(bad)
        with pytest.raises(ExperimentError, match="not found"):
            load_store(tmp_path / "absent.json")

    def test_selection_errors(self):
        with pytest.raises(ExperimentError, match="unknown golden groups"):
            verify_matrix(group_ids=["nope"])
        with pytest.raises(ExperimentError, match="unknown golden configs"):
            verify_matrix(config_ids=["nope"])


class TestDigesting:
    pytestmark = pytest.mark.tier1

    def test_digest_is_deterministic(self):
        group = GOLDEN_GROUPS[0]
        config = GOLDEN_CONFIGS[0]
        result = run_golden_case(group, config)
        assert digest_sweep_result(result) == digest_sweep_result(result)

    def test_digest_separates_stream_versions(self):
        """sv1 and sv2 reshuffle every noise stream: digests must differ."""
        config = GOLDEN_CONFIGS[0]
        sv1 = next(g for g in GOLDEN_GROUPS if g.group_id == "figure5-linear-sv1")
        sv2 = next(g for g in GOLDEN_GROUPS if g.group_id == "figure5-linear-sv2")
        d1 = digest_sweep_result(run_golden_case(sv1, config))
        d2 = digest_sweep_result(run_golden_case(sv2, config))
        assert d1 != d2

    def test_telemetry_never_changes_digests(self):
        """The observability invariant: tracing a case is digest-neutral."""
        config = GOLDEN_CONFIGS[0]
        for group_id in ("figure5-linear-sv1", "figure5-linear-sv2"):
            group = next(g for g in GOLDEN_GROUPS if g.group_id == group_id)
            off = digest_sweep_result(run_golden_case(group, config))
            trace = digest_sweep_result(
                run_golden_case(group, config, telemetry="trace")
            )
            summary = digest_sweep_result(
                run_golden_case(group, config, telemetry="summary")
            )
            assert off == trace == summary


class TestSmokeMatrix:
    pytestmark = pytest.mark.tier1

    def test_stream_v2_group_equivalent_across_paths(self):
        report = verify_matrix(
            group_ids=["figure5-linear-sv2"], config_ids=SMOKE_CONFIGS
        )
        assert report.all_equivalent
        outcome = report.outcomes[0]
        assert set(outcome.digests) == set(SMOKE_CONFIGS)
        if report.environment_match:
            assert outcome.matches_stored
        assert report.passed

    def test_regen_roundtrip(self, tmp_path):
        store_path = tmp_path / "golden.json"
        regen = verify_matrix(
            group_ids=["figure5-linear-sv1"],
            config_ids=["batched-serial-tiledefault", "percell-serial-tiledefault"],
            store_path=store_path,
            regen=True,
        )
        assert regen.passed
        check = verify_matrix(
            group_ids=["figure5-linear-sv1"],
            config_ids=["batched-serial-tiledefault"],
            store_path=store_path,
        )
        assert check.environment_match
        assert check.all_match_stored
        assert check.passed

    def test_partial_regen_preserves_other_pins(self, tmp_path):
        store_path = tmp_path / "golden.json"
        save_store({"figure6-linear-sv1": "0" * 64}, store_path)
        verify_matrix(
            group_ids=["figure5-linear-sv1"],
            config_ids=["batched-serial-tiledefault"],
            store_path=store_path,
            regen=True,
        )
        store = load_store(store_path)
        assert set(store["groups"]) == {"figure5-linear-sv1", "figure6-linear-sv1"}
        assert store["groups"]["figure6-linear-sv1"]["digest"] == "0" * 64

    def test_partial_regen_refused_across_environments(self, tmp_path):
        """Re-pinning a subset must not relabel another machine's pins
        with this environment's fingerprint."""
        store_path = tmp_path / "golden.json"
        store_path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "environment": {
                        "python": "0.0", "numpy": "0",
                        "machine": "elsewhere", "system": "elsewhere",
                    },
                    "groups": {"figure6-linear-sv1": {"digest": "0" * 64}},
                }
            )
        )
        with pytest.raises(ExperimentError, match="partial re-pin"):
            verify_matrix(
                group_ids=["figure5-linear-sv1"],
                config_ids=["batched-serial-tiledefault"],
                store_path=store_path,
                regen=True,
            )

    def test_stale_pin_detected(self, tmp_path):
        store_path = tmp_path / "golden.json"
        save_store({"figure5-linear-sv1": "f" * 64}, store_path)
        report = verify_matrix(
            group_ids=["figure5-linear-sv1"],
            config_ids=["batched-serial-tiledefault"],
            store_path=store_path,
        )
        assert report.all_equivalent
        assert not report.all_match_stored
        assert not report.passed  # environment matches, pin disagrees

    def test_environment_fingerprint_shape(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {"python", "numpy", "machine", "system"}
        assert environment_matches(
            {"environment": fingerprint}
        )


@pytest.mark.tier3
class TestFullMatrix:
    """The complete conformance table (CI's tier-3 job)."""

    @pytest.fixture(scope="class")
    def report(self):
        return verify_matrix()

    def test_every_group_equivalent_across_all_configs(self, report):
        for outcome in report.outcomes:
            assert outcome.equivalent, (
                f"{outcome.group_id}: execution paths diverged: {outcome.digests}"
            )
            assert len(outcome.digests) == len(GOLDEN_CONFIGS)

    def test_matches_committed_digests(self, report):
        """Strict in a pinned environment; elsewhere the mismatch list is
        surfaced for the re-pin workflow."""
        if not report.environment_match:
            pytest.skip(
                "environment fingerprint differs from the committed pins; "
                "within-run equivalence already verified — re-pin with "
                "`python -m repro verify --tier 3 --regen-golden`"
            )
        for outcome in report.outcomes:
            assert outcome.matches_stored, (
                f"{outcome.group_id}: digest {outcome.digest} != stored "
                f"{outcome.stored} — a refactor changed pinned numerics"
            )

    def test_store_is_current(self, report):
        assert default_store_path().exists()
        assert report.passed or not report.environment_match

    def test_full_matrix_is_telemetry_neutral(self, report):
        """All 48 cases re-run at telemetry='trace' produce the very same
        group digests as the untraced run."""
        traced = verify_matrix(telemetry="trace")
        assert traced.all_equivalent
        for untraced_outcome, traced_outcome in zip(
            report.outcomes, traced.outcomes
        ):
            assert untraced_outcome.group_id == traced_outcome.group_id
            assert untraced_outcome.digests == traced_outcome.digests
