"""The registry-driven conformance auditor: clean passes and seeded bugs.

These are statistical audits (tier 2): each runs a mechanism thousands of
times.  Trial counts are chosen so the whole module stays in seconds while
the certified verdicts remain deterministic at the pinned seeds.

The injected-bug half is the satellite requirement: the harness must flag
all three seeded DP violations — noise scaled ``Delta/(2 epsilon)``, a
dropped Laplace draw, and an understated sensitivity — each with a plug-in
``epsilon_hat`` above the nominal budget and a certified excess over the
pair-calibrated ceiling.
"""

import pytest

from repro.exceptions import ExperimentError
from repro.verify.conformance import (
    FAULT_KINDS,
    MechanismSpec,
    audit_all,
    audit_release,
    audit_spec,
    conformance_registry,
    faulty_fm_release,
)
from repro.verify.neighbors import neighbor_pairs, worst_case_pair

pytestmark = pytest.mark.tier2

EPSILON = 1.0


@pytest.fixture(scope="module")
def registry():
    return conformance_registry()


@pytest.fixture(scope="module")
def pair():
    return worst_case_pair("linear", 1)


class TestRegistry:
    def test_covers_every_private_baseline(self, registry):
        from repro.baselines.base import algorithm_is_private, algorithm_names

        private = {
            name for name in algorithm_names() if algorithm_is_private(name)
        }
        registered = {name.lower() for name in registry}
        # Every privacy-claiming baseline must be auditable; the registry
        # may additionally carry non-baseline mechanisms (the federated
        # coordinator views, which audit the protocol rather than an
        # estimator in the algorithm registry).
        assert private <= registered
        assert registered - private == {"fm-fed", "fm-fed-local"}

    def test_no_non_private_entries(self, registry):
        assert "NoPrivacy" not in registry
        assert "Truncated" not in registry

    def test_duplicate_registration_rejected(self, registry):
        from repro.verify.conformance import register_mechanism

        spec = registry["FM"]
        with pytest.raises(ExperimentError):
            register_mechanism(spec)

    def test_fm_declares_pair_calibration(self, registry):
        spec = registry["FM"]
        calibrated = spec.calibrated_epsilon(
            worst_case_pair("linear", 1), "linear", EPSILON
        )
        # The worst pair moves alpha[0] by 4 against Delta = 8: exactly
        # half the nominal budget is observable on a correct mechanism.
        assert calibrated == pytest.approx(0.5)


class TestCleanMechanismsPass:
    def test_fm_linear(self, registry):
        report = audit_spec(registry["FM"], epsilon=EPSILON, trials=4_000, rng=0)
        assert report.passed
        assert not report.violation
        assert report.epsilon_lower <= report.calibrated_epsilon <= EPSILON

    def test_fm_logistic(self, registry):
        report = audit_spec(
            registry["FM"], epsilon=EPSILON, task="logistic", trials=2_000, rng=0
        )
        assert report.passed

    def test_fm_across_random_pairs(self, registry):
        reports = audit_spec(
            registry["FM"],
            epsilon=EPSILON,
            trials=2_000,
            pairs=neighbor_pairs("linear", 1, random_pairs=1, rng=0),
            rng=0,
        )
        assert reports.passed

    @pytest.mark.parametrize(
        "name,trials",
        [
            ("OutputPerturbation", 2_000),
            ("ObjectivePerturbation", 2_000),
            ("DPME", 600),
            ("FP", 600),
        ],
    )
    def test_baselines(self, registry, name, trials):
        report = audit_spec(registry[name], epsilon=EPSILON, trials=trials, rng=0)
        assert report.passed, (report.epsilon_lower, report.calibrated_epsilon)

    def test_audit_all_filtered(self):
        reports = audit_all(
            epsilon=EPSILON, trials=600, mechanisms=["FM", "OutputPerturbation"], rng=0
        )
        assert [r.mechanism for r in reports] == ["FM", "OutputPerturbation"]
        assert all(r.passed for r in reports)


class TestInjectedBugsAreFlagged:
    """Satellite: seeded DP violations must trip the harness."""

    @pytest.fixture(scope="class")
    def reports(self, pair):
        from repro.verify.conformance import _fm_pair_calibration

        calibrated = _fm_pair_calibration(pair, "linear", EPSILON)
        return {
            kind: audit_release(
                faulty_fm_release(kind, EPSILON),
                pair,
                nominal_epsilon=EPSILON,
                trials=4_000,
                rng=0,
                mechanism=f"FM[{kind}]",
                calibrated_epsilon=calibrated,
            )
            for kind in FAULT_KINDS
        }

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_flagged_with_epsilon_hat_above_nominal(self, reports, kind):
        report = reports[kind]
        assert report.flagged, (kind, report)
        assert report.epsilon_hat > report.nominal_epsilon

    def test_half_noise_is_the_subtle_case(self, reports):
        """Noise scaled Delta/(2 eps) doubles the loss to exactly the
        nominal envelope — certifiable only against the pair-calibrated
        ceiling, which is the reason the spec declares one."""
        report = reports["half_noise"]
        assert report.epsilon_lower > report.calibrated_epsilon
        assert not report.violation  # sits at (not beyond) the DP envelope

    @pytest.mark.parametrize("kind", ["dropped_draw", "wrong_sensitivity"])
    def test_gross_bugs_are_certified_dp_violations(self, reports, kind):
        assert reports[kind].violation

    def test_dropped_draw_detected_even_at_smoke_trials(self, pair):
        """A deterministic leak separates in few trials — the tier-1 CLI
        teeth check relies on this."""
        report = audit_release(
            faulty_fm_release("dropped_draw", EPSILON),
            pair,
            nominal_epsilon=EPSILON,
            trials=400,
            rng=0,
        )
        assert report.violation

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ExperimentError):
            faulty_fm_release("bogus", EPSILON)


class TestAuditorContract:
    def test_too_few_trials_rejected(self, pair):
        with pytest.raises(ExperimentError, match="trials"):
            audit_release(
                faulty_fm_release("dropped_draw", EPSILON),
                pair,
                nominal_epsilon=EPSILON,
                trials=10,
            )

    def test_unsupported_task_rejected(self, registry):
        spec = MechanismSpec(
            name="linear-only",
            tasks=("linear",),
            build_release=registry["FM"].build_release,
        )
        with pytest.raises(ExperimentError, match="supports tasks"):
            audit_spec(spec, task="logistic", trials=200)

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ExperimentError, match="unknown mechanisms"):
            audit_all(mechanisms=["NotARealMechanism"], trials=200)

    def test_constant_release_measures_zero(self, pair):
        report = audit_release(
            lambda db, gen: 1.0,
            pair,
            nominal_epsilon=EPSILON,
            trials=200,
            rng=0,
        )
        assert report.epsilon_hat == 0.0
        assert report.epsilon_lower == 0.0
