"""stream_version=2 end to end: the alias-free derivation across the stack.

PR 3 introduced ``derive_substream(..., stream_version=2)`` behind unit
pins; PR 6 flipped the experiment default to it (v1 stays selectable and
pinned).  These tests parametrize the *harness-level* guarantees over both
stream versions: every claim the suite makes for version 1 —
batched == percell bitwise, tiling-invariance, executor-invariance, the
engine path's agreement, grouped-panel equality — must already hold for
version 2.  (The figure-pipeline layer is covered by the golden groups,
which pin both versions.)
"""

import numpy as np
import pytest

from repro.data.census import load_us
from repro.experiments.config import SMOKE
from repro.experiments.harness import (
    evaluate_algorithm,
    evaluate_algorithms,
    evaluate_fm_budget_sweep,
)

pytestmark = pytest.mark.tier1

EPSILONS = (0.1, 0.8, 3.2)


@pytest.fixture(scope="module")
def us():
    return load_us(6000)


@pytest.mark.parametrize("stream_version", [1, 2])
class TestRuntimeEquivalencePerVersion:
    def test_batched_equals_percell(self, us, stream_version):
        batched = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9,
            stream_version=stream_version,
        )
        percell = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9,
            runtime="percell", stream_version=stream_version,
        )
        assert batched.mean_score == percell.mean_score
        assert batched.std_score == percell.std_score

    def test_tiling_is_invariant(self, us, stream_version):
        eager = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=2,
            stream_version=stream_version,
        )
        tiled = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=2,
            tile_size=1, stream_version=stream_version,
        )
        assert eager.mean_score == tiled.mean_score
        assert eager.std_score == tiled.std_score

    def test_executor_is_invariant(self, us, stream_version):
        serial = evaluate_algorithm(
            "FM", us, "logistic", dims=5, epsilon=0.8, preset=SMOKE, seed=3,
            tile_size=1, stream_version=stream_version,
        )
        threaded = evaluate_algorithm(
            "FM", us, "logistic", dims=5, epsilon=0.8, preset=SMOKE, seed=3,
            tile_size=1, executor="thread", stream_version=stream_version,
        )
        assert serial.mean_score == threaded.mean_score

    def test_budget_sweep_batched_equals_percell(self, us, stream_version):
        batched = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=EPSILONS, preset=SMOKE, seed=4,
            stream_version=stream_version,
        )
        percell = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=EPSILONS, preset=SMOKE, seed=4,
            runtime="percell", stream_version=stream_version,
        )
        for epsilon in EPSILONS:
            assert batched[epsilon].mean_score == percell[epsilon].mean_score

    def test_engine_path_agrees(self, us, stream_version):
        """The streaming engine derives the same (seed, tag, version)
        noise streams; agreement is to accumulation accuracy."""
        engine = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, seed=4,
            runtime="engine", stream_version=stream_version,
        )
        batched = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, seed=4,
            stream_version=stream_version,
        )
        assert engine[0.8].mean_score == pytest.approx(
            batched[0.8].mean_score, rel=1e-9
        )

    def test_grouped_panel_equals_individual_runs(self, us, stream_version):
        grouped = evaluate_algorithms(
            ["FM", "NoPrivacy"], us, "linear", dims=5, epsilon=0.8,
            preset=SMOKE, seed=5, stream_version=stream_version,
        )
        for name in ("FM", "NoPrivacy"):
            alone = evaluate_algorithm(
                name, us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=5,
                stream_version=stream_version,
            )
            assert grouped[name].mean_score == alone.mean_score
            assert grouped[name].std_score == alone.std_score


class TestVersionsDiffer:
    def test_v2_reshuffles_fm_noise(self, us):
        """The two derivations must actually produce different noise streams
        (the alias fix reseeds every substream) — identical scores would mean
        the version flag is silently ignored somewhere in the stack."""
        v1 = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9,
            stream_version=1,
        )
        v2 = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=9,
            stream_version=2,
        )
        assert v1.mean_score != v2.mean_score

    def test_rep_data_stream_no_longer_aliases_fold0(self):
        """The root cause, end to end: under v1 the [key, rep] data stream
        equals the [key, rep, 0] fold-0 cell stream; under v2 they are
        independent."""
        from repro.privacy.rng import derive_substream

        key = 0x51
        v1_data = derive_substream(3, [key, 0]).integers(0, 1 << 31, size=4)
        v1_fold0 = derive_substream(3, [key, 0, 0]).integers(0, 1 << 31, size=4)
        np.testing.assert_array_equal(v1_data, v1_fold0)

        v2_data = derive_substream(3, [key, 0], stream_version=2).integers(
            0, 1 << 31, size=4
        )
        v2_fold0 = derive_substream(3, [key, 0, 0], stream_version=2).integers(
            0, 1 << 31, size=4
        )
        assert not np.array_equal(v2_data, v2_fold0)
