"""Tests for the sparse Polynomial and dense QuadraticForm representations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.polynomial import Polynomial, QuadraticForm, linear_form_power
from repro.exceptions import (
    DegreeError,
    DimensionMismatchError,
    UnboundedObjectiveError,
)


def random_quadratic(rng: np.random.Generator, dim: int, definite: bool = True) -> QuadraticForm:
    A = rng.normal(size=(dim, dim))
    M = A.T @ A + (np.eye(dim) if definite else -2.0 * np.eye(dim))
    return QuadraticForm(M=M, alpha=rng.normal(size=dim), beta=float(rng.normal()))


# ----------------------------------------------------------------------
# Polynomial construction and algebra
# ----------------------------------------------------------------------
class TestPolynomialConstruction:
    def test_zero_coefficients_dropped(self):
        p = Polynomial(2, {(1, 0): 0.0, (0, 1): 2.0})
        assert p.num_terms == 1

    def test_merges_duplicate_keys_listed_via_accumulation(self):
        p = Polynomial(2, {(1, 0): 1.5})
        q = p + Polynomial(2, {(1, 0): -1.5})
        assert q.num_terms == 0 and q.degree == 0

    def test_wrong_exponent_length_raises(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial(2, {(1, 0, 0): 1.0})

    def test_negative_exponent_raises(self):
        with pytest.raises(DegreeError):
            Polynomial(2, {(-1, 0): 1.0})

    def test_non_finite_coefficient_raises(self):
        with pytest.raises(ValueError):
            Polynomial(1, {(1,): float("nan")})

    def test_degree(self):
        p = Polynomial(2, {(0, 0): 1.0, (2, 1): 3.0})
        assert p.degree == 3

    def test_repr_mentions_terms(self):
        p = Polynomial(2, {(1, 1): 2.0})
        assert "w1*w2" in repr(p)

    def test_equality_and_hash(self):
        p = Polynomial(2, {(1, 0): 1.0})
        q = Polynomial(2, {(1, 0): 1.0})
        assert p == q and hash(p) == hash(q)


class TestPolynomialArithmetic:
    def test_add_scalar(self):
        p = Polynomial.linear([1.0, 2.0]) + 3.0
        assert p.coefficient((0, 0)) == 3.0

    def test_subtraction(self):
        p = Polynomial.linear([1.0]) - Polynomial.linear([1.0])
        assert p.num_terms == 0

    def test_rsub(self):
        p = 1.0 - Polynomial.linear([2.0])
        assert p.coefficient((0,)) == 1.0
        assert p.coefficient((1,)) == -2.0

    def test_multiplication_degrees_add(self):
        p = Polynomial.linear([1.0, 1.0])
        assert (p * p).degree == 2

    def test_known_product(self):
        # (w1 + 2)(w1 - 2) = w1^2 - 4
        a = Polynomial(1, {(1,): 1.0, (0,): 2.0})
        b = Polynomial(1, {(1,): 1.0, (0,): -2.0})
        product = a * b
        assert product.coefficient((2,)) == 1.0
        assert product.coefficient((0,)) == -4.0
        assert product.coefficient((1,)) == 0.0

    def test_power(self):
        p = Polynomial(1, {(1,): 1.0, (0,): 1.0})  # (w + 1)
        cubed = p**3
        assert [cubed.coefficient((k,)) for k in range(4)] == [1.0, 3.0, 3.0, 1.0]

    def test_power_zero_is_one(self):
        p = Polynomial.linear([5.0])
        assert (p**0).coefficient((0,)) == 1.0

    def test_negative_power_raises(self):
        with pytest.raises(DegreeError):
            Polynomial.linear([1.0]) ** -1

    def test_dim_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial.linear([1.0]) + Polynomial.linear([1.0, 2.0])

    def test_scalar_multiplication(self):
        p = Polynomial.linear([2.0]) * 0.5
        assert p.coefficient((1,)) == 1.0

    def test_sum_constructor(self):
        total = Polynomial.sum([Polynomial.linear([1.0]), Polynomial.linear([2.0])])
        assert total.coefficient((1,)) == 3.0

    def test_sum_empty_requires_dim(self):
        with pytest.raises(ValueError):
            Polynomial.sum([])
        assert Polynomial.sum([], dim=3).num_terms == 0


class TestPolynomialCalculus:
    def test_evaluate_figure2(self):
        p = Polynomial(1, {(2,): 2.06, (1,): -2.34, (0,): 1.25})
        w = 117.0 / 206.0
        assert p.evaluate(np.array([w])) == pytest.approx(2.06 * w**2 - 2.34 * w + 1.25)

    def test_gradient_matches_finite_difference(self, rng):
        p = Polynomial(3, {(2, 1, 0): 1.5, (0, 0, 3): -2.0, (1, 1, 1): 0.7})
        w = rng.normal(size=3)
        grad = p.gradient(w)
        eps = 1e-6
        for k in range(3):
            shift = np.zeros(3)
            shift[k] = eps
            fd = (p.evaluate(w + shift) - p.evaluate(w - shift)) / (2 * eps)
            assert grad[k] == pytest.approx(fd, rel=1e-4)

    def test_hessian_matches_finite_difference(self, rng):
        p = Polynomial(2, {(2, 0): 1.0, (1, 1): -3.0, (0, 4): 0.5})
        w = rng.normal(size=2)
        hess = p.hessian(w)
        eps = 1e-5
        for k in range(2):
            shift = np.zeros(2)
            shift[k] = eps
            fd = (p.gradient(w + shift) - p.gradient(w - shift)) / (2 * eps)
            np.testing.assert_allclose(hess[:, k], fd, rtol=1e-3, atol=1e-6)

    def test_hessian_symmetric(self, rng):
        p = Polynomial(3, {(1, 1, 1): 2.0, (2, 0, 1): -1.0})
        w = rng.normal(size=3)
        hess = p.hessian(w)
        np.testing.assert_allclose(hess, hess.T)

    def test_partial_derivative_symbolic(self):
        p = Polynomial(2, {(2, 1): 3.0})  # 3 w1^2 w2
        dp = p.partial_derivative(0)
        assert dp.coefficient((1, 1)) == 6.0

    def test_partial_derivative_of_constant_is_zero(self):
        assert Polynomial.constant(2, 5.0).partial_derivative(1).num_terms == 0

    def test_partial_derivative_bad_index(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial.constant(2, 1.0).partial_derivative(2)

    def test_evaluate_wrong_dim_raises(self):
        with pytest.raises(DimensionMismatchError):
            Polynomial.constant(2, 1.0).evaluate(np.zeros(3))

    def test_l1_norm(self):
        p = Polynomial(2, {(1, 0): -3.0, (0, 2): 4.0})
        assert p.l1_norm() == 7.0


class TestLinearFormPower:
    def test_power_zero(self):
        p = linear_form_power(np.array([2.0, 3.0]), 0)
        assert p.coefficient((0, 0)) == 1.0

    def test_power_one_recovers_vector(self):
        p = linear_form_power(np.array([2.0, -3.0]), 1)
        assert p.coefficient((1, 0)) == 2.0
        assert p.coefficient((0, 1)) == -3.0

    def test_square_cross_term(self):
        # (x1 w1 + x2 w2)^2 has coefficient 2 x1 x2 on w1 w2.
        p = linear_form_power(np.array([1.0, 2.0]), 2)
        assert p.coefficient((1, 1)) == 4.0
        assert p.coefficient((2, 0)) == 1.0
        assert p.coefficient((0, 2)) == 4.0

    @given(
        st.lists(st.floats(-2, 2, allow_nan=False), min_size=1, max_size=4),
        st.integers(0, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_expansion_matches_direct_power(self, x_list, power):
        x = np.array(x_list)
        p = linear_form_power(x, power)
        rng = np.random.default_rng(0)
        w = rng.normal(size=len(x_list))
        assert p.evaluate(w) == pytest.approx(float(x @ w) ** power, rel=1e-9, abs=1e-9)

    def test_l1_norm_is_abs_sum_power(self):
        # sum of |coefficients| of (x^T w)^k equals (sum |x_j|)^k — the
        # identity behind the Lemma-1 bounds.
        x = np.array([0.5, -0.25, 0.3])
        for k in range(4):
            p = linear_form_power(x, k)
            assert p.l1_norm() == pytest.approx(np.abs(x).sum() ** k)


# ----------------------------------------------------------------------
# QuadraticForm
# ----------------------------------------------------------------------
class TestQuadraticForm:
    def test_symmetrizes_M(self):
        q = QuadraticForm(M=np.array([[1.0, 2.0], [0.0, 1.0]]), alpha=np.zeros(2))
        np.testing.assert_allclose(q.M, q.M.T)

    def test_symmetrization_preserves_function(self, rng):
        M = rng.normal(size=(3, 3))
        alpha = rng.normal(size=3)
        q = QuadraticForm(M=M, alpha=alpha, beta=1.0)
        w = rng.normal(size=3)
        assert q.evaluate(w) == pytest.approx(float(w @ M @ w + alpha @ w + 1.0))

    def test_gradient(self, rng):
        q = random_quadratic(rng, 3)
        w = rng.normal(size=3)
        np.testing.assert_allclose(q.gradient(w), 2.0 * q.M @ w + q.alpha)

    def test_minimize_solves_stationarity(self, rng):
        q = random_quadratic(rng, 4)
        w_star = q.minimize()
        np.testing.assert_allclose(q.gradient(w_star), 0.0, atol=1e-8)

    def test_minimize_is_global_minimum(self, rng):
        q = random_quadratic(rng, 3)
        w_star = q.minimize()
        for _ in range(10):
            other = w_star + rng.normal(size=3)
            assert q.evaluate(other) >= q.evaluate(w_star) - 1e-12

    def test_minimize_indefinite_raises(self, rng):
        q = random_quadratic(rng, 3, definite=False)
        with pytest.raises(UnboundedObjectiveError):
            q.minimize()

    def test_with_ridge_shifts_eigenvalues(self, rng):
        q = random_quadratic(rng, 3)
        shifted = q.with_ridge(2.0)
        np.testing.assert_allclose(
            shifted.eigenvalues(), q.eigenvalues() + 2.0, atol=1e-9
        )

    def test_add(self, rng):
        a, b = random_quadratic(rng, 2), random_quadratic(rng, 2)
        w = rng.normal(size=2)
        assert (a + b).evaluate(w) == pytest.approx(a.evaluate(w) + b.evaluate(w))

    def test_scale(self, rng):
        q = random_quadratic(rng, 2)
        w = rng.normal(size=2)
        assert q.scale(2.5).evaluate(w) == pytest.approx(2.5 * q.evaluate(w))

    def test_non_square_raises(self):
        with pytest.raises(DimensionMismatchError):
            QuadraticForm(M=np.zeros((2, 3)), alpha=np.zeros(2))

    def test_alpha_length_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            QuadraticForm(M=np.eye(2), alpha=np.zeros(3))

    def test_non_finite_raises(self):
        M = np.array([[np.inf, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            QuadraticForm(M=M, alpha=np.zeros(2))

    def test_is_positive_definite(self):
        assert QuadraticForm(M=np.eye(2), alpha=np.zeros(2)).is_positive_definite()
        assert not QuadraticForm(M=-np.eye(2), alpha=np.zeros(2)).is_positive_definite()

    def test_copy_is_deep(self, rng):
        q = random_quadratic(rng, 2)
        c = q.copy()
        c.M[0, 0] += 100.0
        assert q.M[0, 0] != c.M[0, 0]

    def test_zero(self):
        q = QuadraticForm.zero(3)
        assert q.evaluate(np.ones(3)) == 0.0


class TestConversions:
    def test_roundtrip_quadratic_to_polynomial(self, rng):
        q = random_quadratic(rng, 3)
        p = q.to_polynomial()
        back = p.to_quadratic_form()
        np.testing.assert_allclose(back.M, q.M, atol=1e-12)
        np.testing.assert_allclose(back.alpha, q.alpha, atol=1e-12)
        assert back.beta == pytest.approx(q.beta)

    def test_polynomial_and_form_evaluate_identically(self, rng):
        q = random_quadratic(rng, 4)
        p = q.to_polynomial()
        for _ in range(5):
            w = rng.normal(size=4)
            assert p.evaluate(w) == pytest.approx(q.evaluate(w), rel=1e-10)

    def test_cross_term_convention(self):
        # coefficient of w1 w2 must equal 2 * M[0, 1] for symmetric M.
        q = QuadraticForm(M=np.array([[0.0, 1.5], [1.5, 0.0]]), alpha=np.zeros(2))
        assert q.to_polynomial().coefficient((1, 1)) == 3.0

    def test_degree_three_conversion_raises(self):
        p = Polynomial(2, {(2, 1): 1.0})
        with pytest.raises(DegreeError):
            p.to_quadratic_form()

    @given(st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, dim):
        rng = np.random.default_rng(dim)
        q = random_quadratic(rng, dim)
        back = q.to_polynomial().to_quadratic_form()
        np.testing.assert_allclose(back.M, q.M, atol=1e-10)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
