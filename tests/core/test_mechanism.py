"""Tests for Algorithm 1 (FunctionalMechanism)."""

import numpy as np
import pytest

from repro.core.mechanism import FunctionalMechanism
from repro.core.objectives import LinearRegressionObjective
from repro.core.polynomial import Polynomial, QuadraticForm
from repro.exceptions import InvalidBudgetError, SensitivityError
from repro.privacy.budget import PrivacyBudget


@pytest.fixture
def form(figure2_example):
    X, y = figure2_example
    return LinearRegressionObjective(1).aggregate_quadratic(X, y)


class TestConstruction:
    def test_rejects_zero_epsilon(self):
        with pytest.raises(InvalidBudgetError):
            FunctionalMechanism(0.0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(InvalidBudgetError):
            FunctionalMechanism(-1.0)

    def test_rejects_infinite_epsilon(self):
        with pytest.raises(InvalidBudgetError):
            FunctionalMechanism(float("inf"))


class TestPerturbQuadratic:
    def test_noise_scale_recorded(self, form):
        mech = FunctionalMechanism(epsilon=2.0, rng=0)
        _, record = mech.perturb_quadratic(form, sensitivity=8.0)
        assert record.noise_scale == pytest.approx(4.0)
        assert record.noise_std == pytest.approx(4.0 * np.sqrt(2.0))

    def test_coefficient_count_d1(self, form):
        mech = FunctionalMechanism(epsilon=1.0, rng=0)
        _, record = mech.perturb_quadratic(form, sensitivity=8.0)
        assert record.coefficients_perturbed == 3  # beta, alpha, M

    def test_coefficient_count_general(self):
        d = 4
        q = QuadraticForm.zero(d)
        mech = FunctionalMechanism(epsilon=1.0, rng=0)
        _, record = mech.perturb_quadratic(q, sensitivity=1.0)
        assert record.coefficients_perturbed == 1 + d + d * (d + 1) // 2

    def test_output_differs_from_input(self, form):
        mech = FunctionalMechanism(epsilon=1.0, rng=1)
        noisy, _ = mech.perturb_quadratic(form, sensitivity=8.0)
        assert abs(noisy.M[0, 0] - form.M[0, 0]) > 0.0

    def test_noisy_matrix_stays_symmetric(self):
        rng = np.random.default_rng(5)
        A = rng.normal(size=(5, 5))
        q = QuadraticForm(M=A.T @ A, alpha=rng.normal(size=5), beta=0.0)
        mech = FunctionalMechanism(epsilon=0.5, rng=2)
        noisy, _ = mech.perturb_quadratic(q, sensitivity=10.0)
        np.testing.assert_allclose(noisy.M, noisy.M.T)

    def test_deterministic_under_seed(self, form):
        a, _ = FunctionalMechanism(1.0, rng=42).perturb_quadratic(form, 8.0)
        b, _ = FunctionalMechanism(1.0, rng=42).perturb_quadratic(form, 8.0)
        np.testing.assert_allclose(a.M, b.M)
        np.testing.assert_allclose(a.alpha, b.alpha)
        assert a.beta == b.beta

    def test_noise_magnitude_scales_with_sensitivity(self, form):
        # Empirical: average |noise| should track the scale Delta/epsilon.
        deviations = {}
        for delta in (1.0, 100.0):
            samples = []
            mech = FunctionalMechanism(1.0, rng=7)
            for _ in range(200):
                noisy, _ = mech.perturb_quadratic(form, delta)
                samples.append(abs(noisy.beta - form.beta))
            deviations[delta] = np.mean(samples)
        assert deviations[100.0] > 20 * deviations[1.0]

    def test_rejects_zero_sensitivity(self, form):
        with pytest.raises(SensitivityError):
            FunctionalMechanism(1.0).perturb_quadratic(form, 0.0)

    def test_budget_charged(self, form):
        budget = PrivacyBudget(1.0)
        mech = FunctionalMechanism(0.4, budget=budget, rng=0)
        mech.perturb_quadratic(form, 8.0)
        assert budget.spent == pytest.approx(0.4)
        mech.perturb_quadratic(form, 8.0)
        assert budget.spent == pytest.approx(0.8)

    def test_budget_exhaustion_blocks(self, form):
        budget = PrivacyBudget(0.5)
        mech = FunctionalMechanism(0.4, budget=budget, rng=0)
        mech.perturb_quadratic(form, 8.0)
        with pytest.raises(Exception):
            mech.perturb_quadratic(form, 8.0)


class TestPerturbPolynomial:
    def test_all_basis_coefficients_receive_noise(self):
        # A zero polynomial of degree 2 in 2 vars must come back with
        # noise on all 6 basis monomials (not just stored terms).
        poly = Polynomial(2, {(2, 0): 1.0})
        mech = FunctionalMechanism(epsilon=1.0, rng=3)
        noisy, record = mech.perturb_polynomial(poly, sensitivity=5.0, max_degree=2)
        assert record.coefficients_perturbed == 6
        nonzero = sum(
            1 for exps in [(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)]
            if noisy.coefficient(exps) != 0.0
        )
        assert nonzero == 6

    def test_matches_quadratic_path_statistically(self, figure2_example):
        # Polynomial and quadratic perturbation paths draw from the same
        # distribution: compare standard deviation of the constant term.
        X, y = figure2_example
        obj = LinearRegressionObjective(1)
        poly = obj.aggregate_polynomial(X, y)
        form = obj.aggregate_quadratic(X, y)
        mech = FunctionalMechanism(1.0, rng=11)
        betas_p = [
            mech.perturb_polynomial(poly, 8.0)[0].coefficient((0,)) for _ in range(300)
        ]
        betas_q = [mech.perturb_quadratic(form, 8.0)[0].beta for _ in range(300)]
        assert np.std(betas_p) == pytest.approx(np.std(betas_q), rel=0.25)

    def test_degree_respected(self):
        poly = Polynomial(1, {(4,): 1.0})
        mech = FunctionalMechanism(1.0, rng=0)
        noisy, record = mech.perturb_polynomial(poly, 1.0)
        assert noisy.degree == 4
        assert record.coefficients_perturbed == 5


class TestZeroCoefficientsStillPerturbed:
    """Privacy invariant: Algorithm 1 never skips zero-valued coefficients.

    With a dead (all-zero) feature column, the aggregated database-level
    coefficients contain exact zeros.  The number of Laplace draws must
    still equal the *full* basis size 1 + d + d(d+1)/2 — skipping vanished
    coefficients would leak which ones vanished.  This guards the invariant
    across both objectives and the accumulator-backed entry point.
    """

    @staticmethod
    def _data_with_dead_column(n=200, d=3, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(n, d))
        X[:, 1] = 0.0  # zero column => zero rows/cols in X^T X and X^T y
        y_linear = np.clip(X @ np.full(d, 0.5), -1.0, 1.0)
        y_logistic = (y_linear > np.median(y_linear)).astype(float)
        return X, y_linear, y_logistic

    def test_linear_record_counts_full_basis(self):
        X, y, _ = self._data_with_dead_column()
        d = X.shape[1]
        obj = LinearRegressionObjective(d)
        form = obj.aggregate_quadratic(X, y)
        assert np.all(form.M[:, 1] == 0.0) and form.alpha[1] == 0.0
        noisy, record = FunctionalMechanism(1.0, rng=0).perturb_quadratic(
            form, obj.sensitivity()
        )
        assert record.coefficients_perturbed == 1 + d + d * (d + 1) // 2
        # The zero coefficients really received noise.
        assert np.all(noisy.M[:, 1] != 0.0)
        assert noisy.alpha[1] != 0.0

    def test_logistic_record_counts_full_basis(self):
        from repro.core.objectives import LogisticRegressionObjective

        X, _, y = self._data_with_dead_column()
        d = X.shape[1]
        obj = LogisticRegressionObjective(d)
        form = obj.aggregate_quadratic(X, y)
        assert np.all(form.M[:, 1] == 0.0)
        _, record = FunctionalMechanism(1.0, rng=0).perturb_quadratic(
            form, obj.sensitivity()
        )
        assert record.coefficients_perturbed == 1 + d + d * (d + 1) // 2

    @pytest.mark.parametrize("task", ["linear", "logistic"])
    def test_accumulator_path_counts_full_basis(self, task):
        from repro.core.objectives import LogisticRegressionObjective
        from repro.engine import MomentAccumulator

        X, y_linear, y_logistic = self._data_with_dead_column()
        d = X.shape[1]
        if task == "linear":
            obj, y = LinearRegressionObjective(d), y_linear
        else:
            obj, y = LogisticRegressionObjective(d), y_logistic
        accumulator = MomentAccumulator(d).update(X, y)
        noisy, record = FunctionalMechanism(1.0, rng=0).perturb_from_accumulator(
            accumulator, obj
        )
        assert record.coefficients_perturbed == 1 + d + d * (d + 1) // 2
        assert np.all(noisy.M[:, 1] != 0.0)
