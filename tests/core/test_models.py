"""Tests for the high-level FM estimators."""

import numpy as np
import pytest

from repro.core.models import FMLinearRegression, FMLogisticRegression
from repro.exceptions import DataError, DomainError, NotFittedError
from repro.privacy.budget import PrivacyBudget
from repro.regression.linear import LinearRegression
from repro.regression.logistic import LogisticRegressionModel


class TestFMLinearRegression:
    def test_fit_predict_shapes(self, linear_data):
        X, y, _ = linear_data
        model = FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)
        assert model.coef_.shape == (X.shape[1],)
        assert model.predict(X).shape == (X.shape[0],)

    def test_accuracy_approaches_ols_at_high_epsilon(self, linear_data):
        X, y, _ = linear_data
        ols = LinearRegression().fit(X, y)
        fm = FMLinearRegression(epsilon=1e7, rng=0).fit(X, y)
        np.testing.assert_allclose(fm.coef_, ols.coef_, atol=1e-3)

    def test_noise_decreases_with_epsilon(self, linear_data):
        X, y, _ = linear_data
        ols = LinearRegression().fit(X, y)
        errors = {}
        for epsilon in (0.1, 100.0):
            dists = [
                np.linalg.norm(
                    FMLinearRegression(epsilon=epsilon, rng=seed).fit(X, y).coef_
                    - ols.coef_
                )
                for seed in range(10)
            ]
            errors[epsilon] = np.mean(dists)
        assert errors[100.0] < errors[0.1]

    def test_seeded_determinism(self, linear_data):
        X, y, _ = linear_data
        a = FMLinearRegression(epsilon=1.0, rng=5).fit(X, y)
        b = FMLinearRegression(epsilon=1.0, rng=5).fit(X, y)
        np.testing.assert_allclose(a.coef_, b.coef_)

    def test_different_seeds_differ(self, linear_data):
        X, y, _ = linear_data
        a = FMLinearRegression(epsilon=1.0, rng=5).fit(X, y)
        b = FMLinearRegression(epsilon=1.0, rng=6).fit(X, y)
        assert not np.allclose(a.coef_, b.coef_)

    def test_record_exposes_paper_sensitivity(self, linear_data):
        X, y, _ = linear_data
        d = X.shape[1]
        model = FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)
        assert model.record_.sensitivity == pytest.approx(2.0 * (d + 1) ** 2)

    def test_tight_sensitivity_option(self, linear_data):
        X, y, _ = linear_data
        d = X.shape[1]
        model = FMLinearRegression(epsilon=1.0, rng=0, tight_sensitivity=True).fit(X, y)
        assert model.record_.sensitivity == pytest.approx(2.0 * (1 + np.sqrt(d)) ** 2)

    def test_unnormalized_features_rejected(self, rng):
        X = rng.uniform(0.0, 2.0, size=(50, 3))
        y = rng.uniform(-1, 1, size=50)
        with pytest.raises(DomainError):
            FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)

    def test_target_out_of_range_rejected(self, rng):
        X = rng.uniform(0.0, 0.5, size=(50, 3))
        y = rng.uniform(-5, 5, size=50)
        with pytest.raises(DomainError):
            FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)

    def test_empty_matrix_rejected(self):
        with pytest.raises(DataError):
            FMLinearRegression(epsilon=1.0).fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            FMLinearRegression(epsilon=1.0).predict(np.zeros((1, 2)))

    def test_budget_charged_once(self, linear_data):
        X, y, _ = linear_data
        budget = PrivacyBudget(1.0)
        FMLinearRegression(epsilon=0.7, rng=0, budget=budget).fit(X, y)
        assert budget.spent == pytest.approx(0.7)

    def test_rerun_strategy_charges_double(self, linear_data):
        X, y, _ = linear_data
        budget = PrivacyBudget(5.0)
        model = FMLinearRegression(
            epsilon=1.0, rng=0, budget=budget, post_processing="rerun"
        ).fit(X, y)
        assert budget.spent == pytest.approx(2.0)
        assert model.effective_epsilon == pytest.approx(2.0)

    def test_effective_epsilon_default(self, linear_data):
        X, y, _ = linear_data
        model = FMLinearRegression(epsilon=0.5, rng=0).fit(X, y)
        assert model.effective_epsilon == pytest.approx(0.5)

    def test_ridge_lambda_shrinks_solution(self, linear_data):
        X, y, _ = linear_data
        plain = FMLinearRegression(epsilon=10.0, rng=1).fit(X, y)
        ridged = FMLinearRegression(epsilon=10.0, rng=1, ridge_lambda=1e4).fit(X, y)
        assert np.linalg.norm(ridged.coef_) < np.linalg.norm(plain.coef_)

    def test_score_mse(self, linear_data):
        X, y, _ = linear_data
        model = FMLinearRegression(epsilon=5.0, rng=0).fit(X, y)
        assert model.score_mse(X, y) >= 0.0

    def test_wrong_predict_width_raises(self, linear_data):
        X, y, _ = linear_data
        model = FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)
        with pytest.raises(DataError):
            model.predict(np.zeros((3, X.shape[1] + 1)))


class TestFMLogisticRegression:
    def test_fit_predict_shapes(self, logistic_data):
        X, y, _ = logistic_data
        model = FMLogisticRegression(epsilon=1.0, rng=0).fit(X, y)
        assert model.coef_.shape == (X.shape[1],)
        proba = model.predict_proba(X)
        assert proba.shape == (X.shape[0],)
        assert np.all((proba >= 0) & (proba <= 1))
        labels = model.predict(X)
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_approaches_truncated_solution_at_high_epsilon(self, logistic_data):
        X, y, _ = logistic_data
        obj_free = FMLogisticRegression(epsilon=1e8, rng=0).fit(X, y)
        # The truncated (noise-free) optimum:
        from repro.baselines.truncated import Truncated

        truncated = Truncated(task="logistic").fit(X, y)
        np.testing.assert_allclose(obj_free.coef_, truncated.coef_, atol=1e-3)

    def test_paper_sensitivity(self, logistic_data):
        X, y, _ = logistic_data
        d = X.shape[1]
        model = FMLogisticRegression(epsilon=1.0, rng=0).fit(X, y)
        assert model.record_.sensitivity == pytest.approx(d**2 / 4 + 3 * d)

    def test_non_boolean_labels_rejected(self, linear_data):
        X, y, _ = linear_data  # continuous targets
        with pytest.raises(DomainError):
            FMLogisticRegression(epsilon=1.0, rng=0).fit(X, y)

    def test_chebyshev_variant_fits(self, logistic_data):
        X, y, _ = logistic_data
        model = FMLogisticRegression(
            epsilon=2.0, rng=0, approximation="chebyshev"
        ).fit(X, y)
        assert model.score_misclassification(X, y) <= 0.5

    def test_higher_order_fits(self, logistic_data):
        X, y, _ = logistic_data
        model = FMLogisticRegression(epsilon=8.0, rng=0, order=4).fit(X, y)
        assert model.coef_.shape == (X.shape[1],)
        assert np.linalg.norm(model.coef_) <= model.search_radius + 1e-9
        assert model.postprocess_.strategy == "projected-ball"

    def test_better_than_chance_at_moderate_epsilon(self, logistic_data):
        X, y, _ = logistic_data
        scores = [
            FMLogisticRegression(epsilon=3.2, rng=s).fit(X, y).score_misclassification(X, y)
            for s in range(5)
        ]
        assert np.mean(scores) < 0.5

    def test_seeded_determinism(self, logistic_data):
        X, y, _ = logistic_data
        a = FMLogisticRegression(epsilon=1.0, rng=9).fit(X, y)
        b = FMLogisticRegression(epsilon=1.0, rng=9).fit(X, y)
        np.testing.assert_allclose(a.coef_, b.coef_)

    def test_decision_function_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            FMLogisticRegression(epsilon=1.0).decision_function(np.zeros((1, 2)))

    def test_effective_epsilon(self, logistic_data):
        X, y, _ = logistic_data
        model = FMLogisticRegression(epsilon=0.8, rng=0).fit(X, y)
        assert model.effective_epsilon == pytest.approx(0.8)


@pytest.fixture
def rng():
    return np.random.default_rng(17)
