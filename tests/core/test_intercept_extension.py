"""Tests for the footnote-2 intercept extension of the FM estimators.

The paper's Definition 1 omits the intercept and footnote 2 notes the
general variant is a mechanical extension; here it is implemented by the
``(x, 1)/sqrt(2)`` augmentation, which preserves footnote-1 normalization
at dimensionality d+1.
"""

import numpy as np
import pytest

from repro.core.models import FMLinearRegression, FMLogisticRegression
from repro.regression.linear import LinearRegression


@pytest.fixture
def offset_data():
    """Linear data with a strong intercept that a no-intercept model misses."""
    rng = np.random.default_rng(0)
    d = 3
    X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(20_000, d))
    y = np.clip(0.5 + X @ np.array([0.3, -0.2, 0.1]), -1.0, 1.0)
    return X, y


class TestFMLinearIntercept:
    def test_recovers_offset(self, offset_data):
        X, y = offset_data
        model = FMLinearRegression(epsilon=100.0, rng=0, fit_intercept=True).fit(X, y)
        assert model.intercept_ == pytest.approx(0.5, abs=0.05)

    def test_matches_ols_with_intercept_at_high_epsilon(self, offset_data):
        X, y = offset_data
        fm = FMLinearRegression(epsilon=1e8, rng=0, fit_intercept=True).fit(X, y)
        ols = LinearRegression(fit_intercept=True).fit(X, y)
        np.testing.assert_allclose(fm.coef_, ols.coef_, atol=1e-3)
        assert fm.intercept_ == pytest.approx(ols.intercept_, abs=1e-3)

    def test_beats_no_intercept_variant(self, offset_data):
        X, y = offset_data
        with_b = FMLinearRegression(epsilon=10.0, rng=1, fit_intercept=True).fit(X, y)
        without = FMLinearRegression(epsilon=10.0, rng=1).fit(X, y)
        assert with_b.score_mse(X, y) < without.score_mse(X, y)

    def test_sensitivity_uses_augmented_dimension(self, offset_data):
        X, y = offset_data
        d = X.shape[1]
        model = FMLinearRegression(epsilon=1.0, rng=0, fit_intercept=True).fit(X, y)
        assert model.record_.sensitivity == pytest.approx(2.0 * (d + 2) ** 2)

    def test_default_has_zero_intercept(self, offset_data):
        X, y = offset_data
        model = FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)
        assert model.intercept_ == 0.0

    def test_predict_width_unchanged(self, offset_data):
        # The public predict still takes d columns (not d+1).
        X, y = offset_data
        model = FMLinearRegression(epsilon=1.0, rng=0, fit_intercept=True).fit(X, y)
        assert model.predict(X).shape == (X.shape[0],)

    def test_augmented_rows_stay_normalized(self, offset_data):
        from repro.core.models import _augment_intercept

        X, _ = offset_data
        augmented = _augment_intercept(X)
        assert np.linalg.norm(augmented, axis=1).max() <= 1.0 + 1e-9


class TestFMLogisticIntercept:
    def test_handles_imbalanced_classes(self):
        # Without an intercept, scores x^T w on non-negative features cannot
        # straddle 0 freely; the intercept variant can.
        rng = np.random.default_rng(1)
        d = 2
        X = rng.uniform(0.0, 1.0 / np.sqrt(d), size=(20_000, d))
        y = (X @ np.array([1.0, 1.0]) > 0.45).astype(float)  # ~minority positive
        with_b = FMLogisticRegression(epsilon=50.0, rng=0, fit_intercept=True).fit(X, y)
        without = FMLogisticRegression(epsilon=50.0, rng=0).fit(X, y)
        assert (
            with_b.score_misclassification(X, y)
            <= without.score_misclassification(X, y) + 1e-9
        )

    def test_intercept_recorded(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0.0, 0.5, size=(5000, 2))
        y = (rng.uniform(size=5000) < 0.8).astype(float)
        model = FMLogisticRegression(epsilon=100.0, rng=0, fit_intercept=True).fit(X, y)
        # 80/20 labels independent of x: the intercept must be positive.
        assert model.intercept_ > 0.0

    def test_sensitivity_uses_augmented_dimension(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0.0, 0.5, size=(100, 2))
        y = (rng.uniform(size=100) > 0.5).astype(float)
        model = FMLogisticRegression(epsilon=1.0, rng=0, fit_intercept=True).fit(X, y)
        d_aug = 3
        assert model.record_.sensitivity == pytest.approx(d_aug**2 / 4 + 3 * d_aug)
