"""Tests for the Section-5 Taylor machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.taylor import (
    ScalarTerm,
    logistic_truncation_error_bound,
    logistic_truncation_error_bound_two_sided,
    sigmoid_polynomial_derivative,
    softplus,
    softplus_derivatives,
    softplus_term,
    taylor_polynomial,
)
from repro.exceptions import DegreeError


class TestSoftplusDerivatives:
    def test_paper_values_at_zero(self):
        # Section 5.1: f(0) = log 2, f'(0) = 1/2, f''(0) = 1/4.
        values = softplus_derivatives(2)
        assert values[0] == pytest.approx(math.log(2.0))
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(0.25)

    def test_odd_higher_derivatives_vanish_at_zero(self):
        # Softplus minus z/2 is even, so odd derivatives >= 3 vanish at 0.
        values = softplus_derivatives(7)
        assert values[3] == pytest.approx(0.0, abs=1e-15)
        assert values[5] == pytest.approx(0.0, abs=1e-15)
        assert values[7] == pytest.approx(0.0, abs=1e-15)

    def test_fourth_derivative_at_zero(self):
        assert softplus_derivatives(4)[4] == pytest.approx(-0.125)

    def test_derivatives_match_finite_differences(self):
        at = 0.3
        values = softplus_derivatives(3, at=at)
        eps = 1e-5
        fd1 = (softplus(at + eps) - softplus(at - eps)) / (2 * eps)
        assert values[1] == pytest.approx(fd1, rel=1e-6)
        fd2 = (softplus(at + eps) - 2 * softplus(at) + softplus(at - eps)) / eps**2
        assert values[2] == pytest.approx(fd2, rel=1e-4)

    def test_negative_order_raises(self):
        with pytest.raises(DegreeError):
            softplus_derivatives(-1)

    @given(st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_first_derivative_is_sigmoid(self, z):
        values = softplus_derivatives(1, at=z)
        assert values[1] == pytest.approx(1.0 / (1.0 + math.exp(-z)), rel=1e-12)


class TestSigmoidPolynomialRecursion:
    def test_derivative_of_sigma(self):
        # d/dz s = s - s^2.
        assert sigmoid_polynomial_derivative([0.0, 1.0]) == [0.0, 1.0, -1.0]

    def test_derivative_of_constant_is_zero(self):
        # Output always has one more slot; a constant differentiates to 0.
        assert sigmoid_polynomial_derivative([3.0]) == [0.0, 0.0]

    def test_length_grows_by_one(self):
        assert len(sigmoid_polynomial_derivative([1.0, 2.0, 3.0])) == 4


class TestTaylorPolynomial:
    def test_degree_two_matches_paper_coefficients(self):
        x = np.array([0.5, -0.25])
        poly = taylor_polynomial(softplus_term(), x, 2)
        # log 2 + (1/2)(x^T w) + (1/8)(x^T w)^2 expanded.
        assert poly.coefficient((0, 0)) == pytest.approx(math.log(2.0))
        assert poly.coefficient((1, 0)) == pytest.approx(0.5 * 0.5)
        assert poly.coefficient((0, 1)) == pytest.approx(0.5 * -0.25)
        assert poly.coefficient((2, 0)) == pytest.approx(0.125 * 0.25)
        assert poly.coefficient((1, 1)) == pytest.approx(0.125 * 2 * 0.5 * -0.25)

    def test_approximation_quality_near_zero(self):
        x = np.array([0.6])
        poly = taylor_polynomial(softplus_term(), x, 2)
        for w in np.linspace(-1.0, 1.0, 21):
            exact = float(softplus(0.6 * w))
            approx = poly.evaluate(np.array([w]))
            assert abs(exact - approx) < 0.01

    def test_higher_order_improves_fit(self):
        x = np.array([1.0])
        p2 = taylor_polynomial(softplus_term(), x, 2)
        p4 = taylor_polynomial(softplus_term(), x, 4)
        grid = np.linspace(-1.0, 1.0, 41)
        err2 = max(abs(float(softplus(w)) - p2.evaluate(np.array([w]))) for w in grid)
        err4 = max(abs(float(softplus(w)) - p4.evaluate(np.array([w]))) for w in grid)
        assert err4 < err2

    def test_nonzero_expansion_point(self):
        term = ScalarTerm(
            name="exp", derivatives=lambda k, at: [math.exp(at)] * (k + 1),
            expansion_point=1.0,
        )
        x = np.array([1.0])
        poly = taylor_polynomial(term, x, 3)
        # Taylor of e^z at 1 evaluated at z = 1 must be exact.
        assert poly.evaluate(np.array([1.0])) == pytest.approx(math.e, rel=1e-9)

    def test_negative_order_raises(self):
        with pytest.raises(DegreeError):
            taylor_polynomial(softplus_term(), np.array([1.0]), -2)

    def test_order_zero_is_constant(self):
        poly = taylor_polynomial(softplus_term(), np.array([0.7, 0.1]), 0)
        assert poly.degree == 0
        assert poly.coefficient((0, 0)) == pytest.approx(math.log(2.0))


class TestErrorBounds:
    def test_paper_constant(self):
        # Section 5.2: (e^2 - e) / (6 (1 + e)^3) ~= 0.015.
        assert logistic_truncation_error_bound() == pytest.approx(0.01514, abs=2e-4)

    def test_two_sided_is_double(self):
        assert logistic_truncation_error_bound_two_sided() == pytest.approx(
            2.0 * logistic_truncation_error_bound()
        )

    def test_third_derivative_extrema_match_term_metadata(self):
        # Extrema over the Lemma-4 interval |z| <= 1 sit at the endpoints.
        term = softplus_term()
        lo, hi = term.third_derivative_range
        zs = np.linspace(-1, 1, 2001)
        s = 1.0 / (1.0 + np.exp(-zs))
        third = s * (1 - s) * (1 - 2 * s)
        assert third.max() == pytest.approx(hi, abs=1e-6)
        assert third.min() == pytest.approx(lo, abs=1e-6)

    def test_global_extrema_exceed_interval_extrema(self):
        # Sanity on the docstring claim: the global |f'''| max (~0.0962)
        # is larger than the paper's interval constant (~0.0908).
        term = softplus_term()
        zs = np.linspace(-6, 6, 8001)
        s = 1.0 / (1.0 + np.exp(-zs))
        third = s * (1 - s) * (1 - 2 * s)
        assert third.max() > term.third_derivative_range[1]


class TestScalarTerm:
    def test_taylor_coefficients_divide_by_factorial(self):
        term = softplus_term()
        coeffs = term.taylor_coefficients(2)
        assert coeffs[2] == pytest.approx(0.25 / 2.0)  # the paper's 1/8
