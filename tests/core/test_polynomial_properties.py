"""Hypothesis property tests for the polynomial algebra.

The Functional Mechanism's correctness rests on this algebra faithfully
representing objective functions, so its ring axioms and the
evaluation homomorphism are checked under randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.polynomial import Polynomial


@st.composite
def polynomials(draw, dim=2, max_degree=3, max_terms=5):
    """Random sparse polynomials with small-integer coefficients."""
    n_terms = draw(st.integers(0, max_terms))
    terms = {}
    for _ in range(n_terms):
        exps = tuple(
            draw(st.integers(0, max_degree)) for _ in range(dim)
        )
        terms[exps] = float(draw(st.integers(-5, 5)))
    return Polynomial(dim, terms)


def points(seed, dim=2):
    return np.random.default_rng(seed).uniform(-1.5, 1.5, size=dim)


class TestRingAxioms:
    @given(polynomials(), polynomials(), st.integers(0, 2**30))
    @settings(max_examples=60, deadline=None)
    def test_addition_commutative(self, p, q, seed):
        w = points(seed)
        assert (p + q).evaluate(w) == pytest.approx((q + p).evaluate(w), abs=1e-9)

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=40, deadline=None)
    def test_addition_associative(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials(), polynomials(), st.integers(0, 2**30))
    @settings(max_examples=40, deadline=None)
    def test_multiplication_commutative(self, p, q, seed):
        w = points(seed)
        assert (p * q).evaluate(w) == pytest.approx((q * p).evaluate(w), rel=1e-9, abs=1e-9)

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=30, deadline=None)
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    @settings(max_examples=30, deadline=None)
    def test_additive_inverse(self, p):
        assert (p + (-p)).num_terms == 0

    @given(polynomials())
    @settings(max_examples=30, deadline=None)
    def test_multiplicative_identity(self, p):
        one = Polynomial.constant(2, 1.0)
        assert p * one == p


class TestEvaluationHomomorphism:
    """evaluate() must be a ring homomorphism Polynomial -> R at any point."""

    @given(polynomials(), polynomials(), st.integers(0, 2**30))
    @settings(max_examples=60, deadline=None)
    def test_respects_addition(self, p, q, seed):
        w = points(seed)
        assert (p + q).evaluate(w) == pytest.approx(
            p.evaluate(w) + q.evaluate(w), abs=1e-8
        )

    @given(polynomials(), polynomials(), st.integers(0, 2**30))
    @settings(max_examples=60, deadline=None)
    def test_respects_multiplication(self, p, q, seed):
        w = points(seed)
        assert (p * q).evaluate(w) == pytest.approx(
            p.evaluate(w) * q.evaluate(w), rel=1e-8, abs=1e-8
        )

    @given(polynomials(), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_power_consistent_with_repeated_product(self, p, k):
        repeated = Polynomial.constant(2, 1.0)
        for _ in range(k):
            repeated = repeated * p
        assert p**k == repeated


class TestCalculusProperties:
    @given(polynomials(), polynomials())
    @settings(max_examples=30, deadline=None)
    def test_derivative_linear(self, p, q):
        assert (p + q).partial_derivative(0) == (
            p.partial_derivative(0) + q.partial_derivative(0)
        )

    @given(polynomials(), polynomials())
    @settings(max_examples=30, deadline=None)
    def test_product_rule(self, p, q):
        lhs = (p * q).partial_derivative(1)
        rhs = p.partial_derivative(1) * q + p * q.partial_derivative(1)
        assert lhs == rhs

    @given(polynomials())
    @settings(max_examples=30, deadline=None)
    def test_mixed_partials_commute(self, p):
        assert (
            p.partial_derivative(0).partial_derivative(1)
            == p.partial_derivative(1).partial_derivative(0)
        )

    @given(polynomials(), st.integers(0, 2**30))
    @settings(max_examples=40, deadline=None)
    def test_evaluation_bounded_by_l1_norm_on_unit_cube(self, p, seed):
        # |p(w)| <= sum |coeff| for ||w||_inf <= 1 — the inequality behind
        # the Lemma-1 style bounds.
        w = np.clip(points(seed), -1.0, 1.0)
        assert abs(p.evaluate(w)) <= p.l1_norm() + 1e-9
