"""Tests for the monomial basis Phi_j (Equation 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.basis import (
    MonomialIndex,
    basis_size,
    monomial_degree,
    monomial_string,
    monomials_of_degree,
    monomials_up_to_degree,
    multinomial_coefficient,
    total_basis_size,
)
from repro.exceptions import DegreeError


class TestBasisSize:
    def test_phi0_is_singleton(self):
        assert basis_size(5, 0) == 1

    def test_phi1_has_d_elements(self):
        assert basis_size(7, 1) == 7

    def test_phi2_matches_paper_example(self):
        # Phi_2 = {w_i w_j | i, j in [1, d]} has d(d+1)/2 distinct members.
        assert basis_size(4, 2) == 4 * 5 // 2

    def test_total_counts_all_degrees(self):
        assert total_basis_size(3, 2) == basis_size(3, 0) + basis_size(3, 1) + basis_size(3, 2)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            basis_size(0, 1)

    def test_rejects_negative_degree(self):
        with pytest.raises(DegreeError):
            basis_size(2, -1)


class TestEnumeration:
    def test_degree_zero_is_all_zeros(self):
        assert list(monomials_of_degree(3, 0)) == [(0, 0, 0)]

    def test_degree_two_dim_two(self):
        assert list(monomials_of_degree(2, 2)) == [(2, 0), (1, 1), (0, 2)]

    def test_enumeration_count_matches_size(self):
        for d, j in [(1, 3), (3, 2), (5, 4), (2, 0)]:
            assert len(list(monomials_of_degree(d, j))) == basis_size(d, j)

    def test_all_exponents_sum_to_degree(self):
        for exps in monomials_of_degree(4, 3):
            assert sum(exps) == 3

    def test_no_duplicates(self):
        exps = list(monomials_of_degree(5, 3))
        assert len(exps) == len(set(exps))

    def test_up_to_degree_is_degree_major(self):
        degrees = [monomial_degree(e) for e in monomials_up_to_degree(3, 3)]
        assert degrees == sorted(degrees)

    @given(st.integers(1, 6), st.integers(0, 4))
    def test_count_property(self, dim, degree):
        assert len(list(monomials_of_degree(dim, degree))) == math.comb(
            dim + degree - 1, degree
        )


class TestMultinomial:
    def test_binomial_case(self):
        # (x + y)^2 -> coefficient of xy is 2.
        assert multinomial_coefficient((1, 1)) == 2

    def test_pure_power(self):
        assert multinomial_coefficient((4, 0, 0)) == 1

    def test_trinomial(self):
        # 3! / (1! 1! 1!) = 6
        assert multinomial_coefficient((1, 1, 1)) == 6

    def test_rejects_negative(self):
        with pytest.raises(DegreeError):
            multinomial_coefficient((1, -1))

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=5))
    def test_sums_to_power_of_count(self, exps):
        # sum over all monomials of degree j of multinomial(c) = dim^j
        # (set every x_l = 1 in the multinomial theorem); verify via a
        # random instance by summing the enumeration.
        dim = len(exps)
        degree = sum(exps)
        total = sum(
            multinomial_coefficient(e) for e in monomials_of_degree(dim, degree)
        )
        assert total == dim**degree


class TestMonomialString:
    def test_constant(self):
        assert monomial_string((0, 0)) == "1"

    def test_mixed(self):
        assert monomial_string((2, 0, 1)) == "w1^2*w3"


class TestMonomialIndex:
    def test_roundtrip(self):
        index = MonomialIndex(3, 2)
        for i in range(len(index)):
            assert index.position(index.exponents(i)) == i

    def test_length(self):
        index = MonomialIndex(4, 2)
        assert len(index) == total_basis_size(4, 2)

    def test_contains(self):
        index = MonomialIndex(2, 2)
        assert (1, 1) in index
        assert (3, 0) not in index

    def test_unknown_monomial_raises(self):
        index = MonomialIndex(2, 2)
        with pytest.raises(DegreeError):
            index.position((3, 0))

    def test_degree_slice_covers_phi_j(self):
        index = MonomialIndex(3, 2)
        sl = index.degree_slice(2)
        members = [index.exponents(i) for i in range(sl.start, sl.stop)]
        assert members == list(monomials_of_degree(3, 2))

    def test_degree_slice_bounds(self):
        index = MonomialIndex(3, 2)
        with pytest.raises(DegreeError):
            index.degree_slice(3)

    def test_iteration_order_is_canonical(self):
        index = MonomialIndex(2, 2)
        assert list(index) == list(monomials_up_to_degree(2, 2))
