"""Tests for Section-6 post-processing (regularization, spectral trimming, rerun)."""

import numpy as np
import pytest

from repro.core.polynomial import QuadraticForm
from repro.core.postprocess import (
    NoRepair,
    Regularization,
    RerunUntilBounded,
    SpectralTrimming,
    get_strategy,
)
from repro.exceptions import UnboundedObjectiveError


def definite_form(dim: int = 3, seed: int = 0) -> QuadraticForm:
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(dim, dim))
    return QuadraticForm(M=A.T @ A + np.eye(dim), alpha=rng.normal(size=dim), beta=0.5)


def indefinite_form(dim: int = 3, seed: int = 0) -> QuadraticForm:
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(dim, dim))
    M = A.T @ A
    M[0, 0] -= 50.0  # force a strongly negative eigenvalue
    return QuadraticForm(M=M, alpha=rng.normal(size=dim), beta=0.0)


class TestNoRepair:
    def test_solves_definite(self):
        form = definite_form()
        result = NoRepair().solve(form, noise_std=1.0)
        np.testing.assert_allclose(result.omega, form.minimize())
        assert not result.repaired
        assert result.privacy_cost_factor == 1.0

    def test_raises_on_indefinite(self):
        with pytest.raises(UnboundedObjectiveError):
            NoRepair().solve(indefinite_form(), noise_std=1.0)


class TestRegularization:
    def test_lambda_is_four_times_noise_std(self):
        result = Regularization().solve(definite_form(), noise_std=2.5)
        assert result.lam == pytest.approx(10.0)

    def test_repairs_mildly_indefinite(self):
        # Smallest eigenvalue -0.5; lambda = 4 x 1.0 repairs it.
        form = QuadraticForm(
            M=np.diag([-0.5, 1.0, 2.0]), alpha=np.array([1.0, -1.0, 0.5]), beta=0.0
        )
        result = Regularization(multiplier=4.0).solve(form, noise_std=1.0)
        assert result.repaired
        assert np.all(np.isfinite(result.omega))

    def test_raises_when_lambda_insufficient(self):
        with pytest.raises(UnboundedObjectiveError):
            Regularization(multiplier=0.1).solve(indefinite_form(), noise_std=1.0)

    def test_ridge_biases_towards_origin(self):
        form = definite_form()
        raw = form.minimize()
        result = Regularization(multiplier=4.0).solve(form, noise_std=5.0)
        assert np.linalg.norm(result.omega) < np.linalg.norm(raw)

    def test_rejects_negative_multiplier(self):
        with pytest.raises(ValueError):
            Regularization(multiplier=-1.0)

    def test_marks_clean_solve_unrepaired(self):
        result = Regularization().solve(definite_form(), noise_std=0.001)
        assert not result.repaired


class TestSpectralTrimming:
    def test_clean_form_matches_regularization(self):
        form = definite_form()
        trim = SpectralTrimming().solve(form, noise_std=1.0)
        reg = Regularization().solve(form, noise_std=1.0)
        np.testing.assert_allclose(trim.omega, reg.omega, atol=1e-10)
        assert trim.trimmed == 0

    def test_repairs_strongly_indefinite(self):
        result = SpectralTrimming(multiplier=0.0).solve(indefinite_form(), noise_std=1.0)
        assert result.trimmed >= 1
        assert result.repaired
        assert np.all(np.isfinite(result.omega))

    def test_trimmed_solution_minimizes_in_subspace(self):
        form = indefinite_form(dim=4, seed=3)
        result = SpectralTrimming(multiplier=0.0).solve(form, noise_std=1.0)
        # In the retained eigenspace the gradient must vanish: project the
        # full gradient onto the positive eigenvectors.
        eigenvalues, eigenvectors = np.linalg.eigh(form.M)
        keep = eigenvalues > 1e-12
        Q = eigenvectors[:, keep].T
        projected_gradient = Q @ form.gradient(result.omega)
        np.testing.assert_allclose(projected_gradient, 0.0, atol=1e-8)

    def test_minimum_norm_preimage(self):
        # omega must lie in the span of the retained eigenvectors.
        form = indefinite_form(dim=4, seed=5)
        result = SpectralTrimming(multiplier=0.0).solve(form, noise_std=1.0)
        eigenvalues, eigenvectors = np.linalg.eigh(form.M)
        drop = eigenvectors[:, eigenvalues <= 1e-12]
        np.testing.assert_allclose(drop.T @ result.omega, 0.0, atol=1e-10)

    def test_all_negative_spectrum_returns_origin(self):
        form = QuadraticForm(M=-np.eye(3), alpha=np.ones(3), beta=0.0)
        result = SpectralTrimming(multiplier=0.0).solve(form, noise_std=0.0)
        np.testing.assert_allclose(result.omega, 0.0)
        assert result.trimmed == 3

    def test_never_raises_on_random_indefinite(self):
        for seed in range(25):
            rng = np.random.default_rng(seed)
            M = rng.normal(size=(4, 4))
            form = QuadraticForm(M=M + M.T, alpha=rng.normal(size=4), beta=0.0)
            result = SpectralTrimming().solve(form, noise_std=0.5)
            assert np.all(np.isfinite(result.omega))


class TestRerunUntilBounded:
    def test_privacy_cost_factor_is_two(self):
        form = definite_form()
        result = RerunUntilBounded().solve(form, noise_std=1.0, renoise=lambda: form)
        assert result.privacy_cost_factor == 2.0

    def test_redraws_until_definite(self):
        bad = indefinite_form()
        good = definite_form()
        calls = {"n": 0}

        def renoise():
            calls["n"] += 1
            return bad if calls["n"] < 3 else good

        result = RerunUntilBounded().solve(bad, noise_std=1.0, renoise=renoise)
        assert result.attempts == 4  # initial + 3 redraws
        assert result.repaired

    def test_requires_renoise(self):
        with pytest.raises(ValueError):
            RerunUntilBounded().solve(definite_form(), noise_std=1.0, renoise=None)

    def test_gives_up_after_max_attempts(self):
        bad = indefinite_form()
        with pytest.raises(UnboundedObjectiveError):
            RerunUntilBounded(max_attempts=5).solve(bad, noise_std=1.0, renoise=lambda: bad)


class TestStrategyRegistry:
    def test_resolve_by_name(self):
        assert isinstance(get_strategy("none"), NoRepair)
        assert isinstance(get_strategy("regularize"), Regularization)
        assert isinstance(get_strategy("spectral"), SpectralTrimming)
        assert isinstance(get_strategy("rerun"), RerunUntilBounded)

    def test_instance_passthrough(self):
        custom = SpectralTrimming(multiplier=2.0)
        assert get_strategy(custom) is custom

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_strategy("magic")
