"""Tests for the linear and logistic objectives (Definitions 1-2, Sections 4-5)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from repro.exceptions import DataError, DegreeError, DomainError
from repro.regression.logistic import logistic_loss


class TestLinearObjective:
    def test_figure2_aggregation(self, figure2_example):
        X, y = figure2_example
        form = LinearRegressionObjective(1).aggregate_quadratic(X, y)
        assert float(form.M[0, 0]) == pytest.approx(2.06)
        assert float(form.alpha[0]) == pytest.approx(-2.34)
        assert form.beta == pytest.approx(1.25)

    def test_figure2_minimizer(self, figure2_example):
        X, y = figure2_example
        form = LinearRegressionObjective(1).aggregate_quadratic(X, y)
        assert form.minimize()[0] == pytest.approx(117.0 / 206.0)

    def test_aggregate_equals_sum_of_tuple_polynomials(self, figure2_example):
        X, y = figure2_example
        obj = LinearRegressionObjective(1)
        total = obj.aggregate_polynomial(X, y)
        manual = obj.tuple_polynomial(X[0], y[0])
        for i in range(1, 3):
            manual = manual + obj.tuple_polynomial(X[i], y[i])
        assert total == manual

    def test_objective_value_is_sum_of_squares(self, rng):
        d = 3
        X = rng.uniform(0, 1.0 / math.sqrt(d), size=(50, d))
        y = rng.uniform(-1, 1, size=50)
        obj = LinearRegressionObjective(d)
        form = obj.aggregate_quadratic(X, y)
        w = rng.normal(size=d)
        direct = float(np.sum((y - X @ w) ** 2))
        assert form.evaluate(w) == pytest.approx(direct, rel=1e-10)
        assert obj.true_loss(w, X, y) == pytest.approx(direct, rel=1e-10)

    def test_sensitivity_paper_formula(self):
        # Delta = 2 (d + 1)^2 (Section 4.2); the paper's d=1 example is 8.
        assert LinearRegressionObjective(1).sensitivity() == 8.0
        assert LinearRegressionObjective(13).sensitivity() == 2.0 * 14**2

    def test_tight_sensitivity_smaller(self):
        obj = LinearRegressionObjective(9)
        assert obj.sensitivity(tight=True) == pytest.approx(2.0 * (1 + 3.0) ** 2)
        assert obj.sensitivity(tight=True) < obj.sensitivity()

    def test_validate_rejects_large_norm(self):
        obj = LinearRegressionObjective(2)
        X = np.array([[0.9, 0.9]])  # norm > 1
        with pytest.raises(DomainError):
            obj.validate(X, np.array([0.0]))

    def test_validate_rejects_target_out_of_range(self):
        obj = LinearRegressionObjective(1)
        with pytest.raises(DomainError):
            obj.validate(np.array([[0.5]]), np.array([1.5]))

    def test_validate_accepts_boundary(self):
        obj = LinearRegressionObjective(1)
        obj.validate(np.array([[1.0]]), np.array([-1.0]))

    def test_length_mismatch_raises(self):
        obj = LinearRegressionObjective(1)
        with pytest.raises(DataError):
            obj.validate(np.array([[0.5]]), np.array([0.1, 0.2]))

    def test_degree_is_two(self):
        assert LinearRegressionObjective(3).degree == 2


class TestLogisticObjective:
    def test_paper_sensitivity_formula(self):
        # Delta = d^2/4 + 3d (Section 5.3).
        for d in (1, 4, 13):
            assert LogisticRegressionObjective(d).sensitivity() == pytest.approx(
                d**2 / 4.0 + 3.0 * d
            )

    def test_tight_sensitivity(self):
        # 2 * (a1 sqrt(d) + a2 d + sqrt(d)) with a1 = 1/2, a2 = 1/8.
        d = 9
        expected = 2.0 * (0.5 * math.sqrt(d) + d / 8.0 + math.sqrt(d))
        assert LogisticRegressionObjective(d).sensitivity(tight=True) == pytest.approx(expected)

    def test_taylor_coefficients(self):
        obj = LogisticRegressionObjective(2)
        a0, a1, a2 = obj.softplus_coefficients
        assert a0 == pytest.approx(math.log(2.0))
        assert a1 == pytest.approx(0.5)
        assert a2 == pytest.approx(0.125)

    def test_aggregate_quadratic_structure(self, logistic_data):
        X, y, _ = logistic_data
        obj = LogisticRegressionObjective(X.shape[1])
        form = obj.aggregate_quadratic(X, y)
        np.testing.assert_allclose(form.M, 0.125 * X.T @ X, rtol=1e-12)
        np.testing.assert_allclose(form.alpha, 0.5 * X.sum(axis=0) - X.T @ y, rtol=1e-10)
        assert form.beta == pytest.approx(math.log(2.0) * X.shape[0])

    def test_aggregate_matches_tuple_sum(self, figure3_example):
        X, y = figure3_example
        obj = LogisticRegressionObjective(1)
        total = obj.aggregate_polynomial(X, y)
        manual = obj.tuple_polynomial(X[0], y[0])
        for i in range(1, 3):
            manual = manual + obj.tuple_polynomial(X[i], y[i])
        for exps in [(0,), (1,), (2,)]:
            assert total.coefficient(exps) == pytest.approx(manual.coefficient(exps))

    def test_true_loss_matches_regression_module(self, logistic_data):
        X, y, w = logistic_data
        obj = LogisticRegressionObjective(X.shape[1])
        assert obj.true_loss(w, X, y) == pytest.approx(logistic_loss(w, X, y), rel=1e-12)

    def test_approximate_loss_close_to_true_near_zero(self, figure3_example):
        X, y = figure3_example
        obj = LogisticRegressionObjective(1)
        for w in np.linspace(-1, 1, 11):
            gap = abs(
                obj.approximate_loss(np.array([w]), X, y)
                - obj.true_loss(np.array([w]), X, y)
            )
            assert gap <= 3 * 0.0151 + 1e-6  # n=3 tuples x paper constant

    def test_higher_order(self, figure3_example):
        X, y = figure3_example
        obj2 = LogisticRegressionObjective(1, order=2)
        obj4 = LogisticRegressionObjective(1, order=4)
        grid = np.linspace(-1, 1, 21)
        err2 = max(
            abs(obj2.approximate_loss(np.array([w]), X, y) - obj2.true_loss(np.array([w]), X, y))
            for w in grid
        )
        err4 = max(
            abs(obj4.approximate_loss(np.array([w]), X, y) - obj4.true_loss(np.array([w]), X, y))
            for w in grid
        )
        assert err4 < err2

    def test_odd_order_rejected(self):
        with pytest.raises(DegreeError):
            LogisticRegressionObjective(2, order=3)

    def test_order_zero_rejected(self):
        with pytest.raises(DegreeError):
            LogisticRegressionObjective(2, order=0)

    def test_chebyshev_variant(self):
        obj = LogisticRegressionObjective(3, approximation="chebyshev", radius=1.0)
        a0, a1, a2 = obj.softplus_coefficients
        assert a1 == pytest.approx(0.5, abs=1e-9)
        assert a2 == pytest.approx(0.120, abs=5e-3)

    def test_chebyshev_higher_order_rejected(self):
        with pytest.raises(DegreeError):
            LogisticRegressionObjective(2, approximation="chebyshev", order=4)

    def test_unknown_approximation_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionObjective(2, approximation="pade")

    def test_validate_rejects_non_boolean_labels(self):
        obj = LogisticRegressionObjective(1)
        with pytest.raises(DomainError):
            obj.validate(np.array([[0.5]]), np.array([0.3]))

    def test_higher_order_quadratic_access_raises(self, figure3_example):
        X, y = figure3_example
        obj = LogisticRegressionObjective(1, order=4)
        with pytest.raises(DegreeError):
            obj.aggregate_quadratic(X, y)

    def test_higher_order_sensitivity_includes_quartic_term(self):
        d = 3
        obj = LogisticRegressionObjective(d, order=4)
        # a_4 = f''''(0)/4! = -1/192; bound adds |a_4| d^4.
        expected = 2.0 * (d + 0.5 * d + 0.125 * d**2 + (1.0 / 192.0) * d**4)
        assert obj.sensitivity() == pytest.approx(expected)


class TestLemma1Property:
    """Hypothesis check of Lemma 1: per-tuple L1 mass never exceeds the bound."""

    @given(
        st.integers(1, 5),
        st.floats(-1.0, 1.0, allow_nan=False),
        st.integers(0, 2**30),
    )
    @settings(max_examples=60, deadline=None)
    def test_linear_per_tuple_bound(self, d, y_val, seed):
        gen = np.random.default_rng(seed)
        x = gen.normal(size=d)
        norm = np.linalg.norm(x)
        if norm > 1.0:
            x = x / norm
        obj = LinearRegressionObjective(d)
        realized = obj.tuple_polynomial(x, y_val).l1_norm()
        assert realized <= obj.per_tuple_l1_bound() + 1e-9
        assert realized <= obj.per_tuple_l1_bound(tight=True) + 1e-9

    @given(
        st.integers(1, 5),
        st.integers(0, 1),
        st.integers(0, 2**30),
    )
    @settings(max_examples=60, deadline=None)
    def test_logistic_per_tuple_bound(self, d, y_val, seed):
        gen = np.random.default_rng(seed)
        x = gen.normal(size=d)
        norm = np.linalg.norm(x)
        if norm > 1.0:
            x = x / norm
        obj = LogisticRegressionObjective(d)
        poly = obj.tuple_polynomial(x, float(y_val))
        # The bound excludes the tuple-constant a0 (it cancels in neighbor
        # differences); remove it before comparing.
        realized = poly.l1_norm() - abs(poly.coefficient((0,) * d))
        assert realized <= obj.per_tuple_l1_bound() + 1e-9
        assert realized <= obj.per_tuple_l1_bound(tight=True) + 1e-9


@pytest.fixture
def rng():
    return np.random.default_rng(31)
