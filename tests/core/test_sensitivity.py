"""Tests for Lemma-1 sensitivity verification machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from repro.core.sensitivity import (
    coefficient_l1_distance,
    empirical_per_tuple_l1,
    verify_lemma1,
)


def _unit_tuple(seed: int, d: int, task: str) -> tuple[np.ndarray, float]:
    gen = np.random.default_rng(seed)
    x = gen.normal(size=d)
    norm = np.linalg.norm(x)
    if norm > 1.0:
        x = x / norm
    if task == "linear":
        y = float(gen.uniform(-1.0, 1.0))
    else:
        y = float(gen.integers(0, 2))
    return x, y


class TestEmpiricalL1:
    def test_matches_manual_max(self, figure2_example):
        X, y = figure2_example
        obj = LinearRegressionObjective(1)
        manual = max(obj.tuple_polynomial(x, t).l1_norm() for x, t in zip(X, y))
        assert empirical_per_tuple_l1(obj, X, y) == pytest.approx(manual)

    def test_figure2_value(self, figure2_example):
        # Tuple (-0.5, -1): 1 + 2*0.5 + 0.25 = 2.25; tuple (1, 0.4):
        # 0.16 + 0.8 + 1 = 1.96 -> max is 2.25.
        X, y = figure2_example
        assert empirical_per_tuple_l1(LinearRegressionObjective(1), X, y) == pytest.approx(2.25)


class TestCoefficientDistance:
    def test_identical_tuples_have_zero_distance(self):
        obj = LinearRegressionObjective(2)
        t = (np.array([0.5, 0.2]), 0.3)
        assert coefficient_l1_distance(obj, t, t) == 0.0

    def test_triangle_inequality_with_lemma1(self):
        obj = LinearRegressionObjective(3)
        delta = obj.sensitivity()
        for seed in range(20):
            t1 = _unit_tuple(seed, 3, "linear")
            t2 = _unit_tuple(seed + 1000, 3, "linear")
            assert coefficient_l1_distance(obj, t1, t2) <= delta + 1e-9

    @given(st.integers(0, 2**30), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_logistic_lemma1_property(self, seed, d):
        obj = LogisticRegressionObjective(d)
        t1 = _unit_tuple(seed, d, "logistic")
        t2 = _unit_tuple(seed + 7, d, "logistic")
        # The constant coefficient log2 appears in both tuples and cancels,
        # so the raw distance is directly bounded by Delta.
        assert coefficient_l1_distance(obj, t1, t2) <= obj.sensitivity() + 1e-9

    @given(st.integers(0, 2**30), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_linear_lemma1_property(self, seed, d):
        obj = LinearRegressionObjective(d)
        t1 = _unit_tuple(seed, d, "linear")
        t2 = _unit_tuple(seed + 7, d, "linear")
        assert coefficient_l1_distance(obj, t1, t2) <= obj.sensitivity() + 1e-9


class TestVerifyLemma1:
    def test_report_holds_on_valid_data(self, rng):
        d = 3
        X = rng.uniform(0, 1 / np.sqrt(d), size=(100, d))
        y = rng.uniform(-1, 1, size=100)
        report = verify_lemma1(LinearRegressionObjective(d), X, y)
        assert report.holds
        assert report.slack >= 1.0

    def test_paper_bound_is_loose(self, rng):
        # The B = d bound should show measurable slack on unit-ball data.
        d = 9
        X = rng.uniform(0, 1 / np.sqrt(d), size=(200, d))
        y = rng.uniform(-1, 1, size=200)
        report = verify_lemma1(LinearRegressionObjective(d), X, y)
        assert report.slack > 2.0

    def test_tight_bound_still_holds(self, rng):
        d = 6
        X = rng.uniform(0, 1 / np.sqrt(d), size=(200, d))
        y = rng.uniform(-1, 1, size=200)
        report = verify_lemma1(LinearRegressionObjective(d), X, y, tight=True)
        assert report.holds

    def test_zero_data_gives_infinite_slack(self):
        obj = LinearRegressionObjective(2)
        report = verify_lemma1(obj, np.zeros((5, 2)), np.zeros(5))
        assert report.holds
        assert report.slack == float("inf")

    def test_rejects_invalid_domain(self, rng):
        obj = LinearRegressionObjective(2)
        X = np.full((3, 2), 0.9)
        with pytest.raises(Exception):
            verify_lemma1(obj, X, np.zeros(3))


@pytest.fixture
def rng():
    return np.random.default_rng(99)
