"""Tests for the Chebyshev alternative approximation (Section 8 direction)."""

import math

import numpy as np
import pytest

from repro.core.chebyshev import chebyshev_quadratic, chebyshev_softplus
from repro.core.taylor import softplus
from repro.exceptions import ApproximationError


class TestChebyshevQuadratic:
    def test_exact_on_quadratics(self):
        approx = chebyshev_quadratic(lambda z: 1.0 + 2.0 * z + 3.0 * z**2, radius=1.0)
        assert approx.a0 == pytest.approx(1.0, abs=1e-10)
        assert approx.a1 == pytest.approx(2.0, abs=1e-10)
        assert approx.a2 == pytest.approx(3.0, abs=1e-10)
        assert approx.max_error < 1e-9

    def test_exact_on_quadratics_scaled_interval(self):
        approx = chebyshev_quadratic(lambda z: 0.5 - z + 0.25 * z**2, radius=3.0)
        assert approx.a1 == pytest.approx(-1.0, abs=1e-10)
        assert approx.a2 == pytest.approx(0.25, abs=1e-10)

    def test_rejects_bad_radius(self):
        with pytest.raises(ApproximationError):
            chebyshev_quadratic(np.cos, radius=0.0)

    def test_rejects_few_nodes(self):
        with pytest.raises(ApproximationError):
            chebyshev_quadratic(np.cos, nodes=4)

    def test_rejects_non_finite_function(self):
        with pytest.raises(ApproximationError):
            chebyshev_quadratic(lambda z: np.where(z > 0, np.inf, 0.0), radius=1.0)

    def test_evaluate(self):
        approx = chebyshev_quadratic(lambda z: z**2, radius=1.0)
        assert approx.evaluate(0.5) == pytest.approx(0.25, abs=1e-9)


class TestChebyshevSoftplus:
    def test_coefficients_near_taylor(self):
        approx = chebyshev_softplus(radius=1.0)
        a0, a1, a2 = approx.coefficients()
        assert a0 == pytest.approx(math.log(2.0), abs=5e-3)
        assert a1 == pytest.approx(0.5, abs=5e-3)
        assert a2 == pytest.approx(0.125, abs=1e-2)

    def test_uniform_error_beats_taylor_on_interval(self):
        # The Chebyshev projection should have smaller worst-case error than
        # the Taylor polynomial over the same interval.
        radius = 2.0
        approx = chebyshev_softplus(radius=radius)
        grid = np.linspace(-radius, radius, 1001)
        taylor_vals = math.log(2.0) + 0.5 * grid + 0.125 * grid**2
        taylor_err = np.abs(softplus(grid) - taylor_vals).max()
        assert approx.max_error < taylor_err

    def test_sigmoid_symmetry_of_linear_coefficient(self):
        # softplus(z) - z/2 is even, so the degree-1 Chebyshev coefficient
        # equals exactly 1/2 regardless of the radius.
        for radius in (0.5, 1.0, 3.0):
            assert chebyshev_softplus(radius=radius).a1 == pytest.approx(0.5, abs=1e-9)

    def test_error_grows_with_radius(self):
        small = chebyshev_softplus(radius=0.5)
        large = chebyshev_softplus(radius=4.0)
        assert large.max_error > small.max_error
