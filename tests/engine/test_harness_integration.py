"""Integration tests: the experiment stack routed through repro.engine."""

import numpy as np
import pytest

from repro.data.census import load_us
from repro.experiments.config import PRIVACY_BUDGETS, SMOKE
from repro.experiments.figures import figure6_privacy_budget, figure9_time_budget
from repro.experiments.harness import evaluate_algorithm, evaluate_fm_budget_sweep
from repro.exceptions import ExperimentError


@pytest.fixture(scope="module")
def us():
    return load_us(6000)


class TestEvaluateFmBudgetSweep:
    def test_returns_result_per_epsilon(self, us):
        results = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.4, 0.8, 3.2), preset=SMOKE, seed=0
        )
        assert set(results) == {0.4, 0.8, 3.2}
        for result in results.values():
            assert result.algorithm == "FM"
            assert result.cells == SMOKE.folds * SMOKE.repetitions
            assert result.mean_fit_seconds > 0.0
            assert result.n_train > 0

    def test_seeded_reproducibility(self, us):
        a = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8, 3.2), preset=SMOKE, seed=3
        )
        b = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8, 3.2), preset=SMOKE, seed=3
        )
        assert a[0.8].mean_score == b[0.8].mean_score
        assert a[3.2].mean_score == b[3.2].mean_score

    def test_accuracy_improves_with_budget(self, us):
        results = evaluate_fm_budget_sweep(
            us, "linear", dims=14, epsilons=PRIVACY_BUDGETS, preset=SMOKE, seed=6
        )
        assert results[3.2].mean_score < results[0.1].mean_score

    def test_statistically_consistent_with_loop_path(self, us):
        """Engine and loop are the same mechanism — scores must be comparable."""
        epsilon = 3.2
        engine_result = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(epsilon,), preset=SMOKE, seed=0
        )[epsilon]
        loop_result = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=epsilon, preset=SMOKE, seed=0
        )
        # Independent noise draws, identical distribution: same order of
        # magnitude, far from degenerate.
        assert engine_result.mean_score < 10 * max(loop_result.mean_score, 1e-3)
        assert loop_result.mean_score < 10 * max(engine_result.mean_score, 1e-3)

    def test_logistic_task(self, us):
        results = evaluate_fm_budget_sweep(
            us, "logistic", dims=5, epsilons=(0.8, 3.2), preset=SMOKE, seed=0
        )
        for result in results.values():
            assert 0.0 <= result.mean_score <= 1.0

    def test_sharded_accumulation_path(self, us):
        results = evaluate_fm_budget_sweep(
            us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, seed=0, shards=4
        )
        assert results[0.8].cells == SMOKE.folds * SMOKE.repetitions

    def test_invalid_args(self, us):
        with pytest.raises(ExperimentError):
            evaluate_fm_budget_sweep(
                us, "linear", dims=5, epsilons=(), preset=SMOKE
            )
        with pytest.raises(ExperimentError):
            evaluate_fm_budget_sweep(
                us, "linear", dims=5, epsilons=(0.8,), preset=SMOKE, sampling_rate=0.0
            )


class TestFigureDriversUseEngine:
    def test_figure6_engine_and_loop_paths_agree_structurally(self, us):
        fast = figure6_privacy_budget(us, "linear", preset=SMOKE, engine=True)
        slow = figure6_privacy_budget(us, "linear", preset=SMOKE, engine=False)
        assert fast.values == slow.values
        assert list(fast.series) == list(slow.series)  # legend order preserved
        assert all(len(v) == len(fast.values) for v in fast.series.values())

    def test_figure6_fm_series_from_engine_is_sane(self, us):
        result = figure6_privacy_budget(us, "linear", preset=SMOKE)
        fm = dict(zip(result.values, result.metric_series("FM")))
        assert fm[3.2] < fm[0.1]

    def test_figure9_times_positive(self, us):
        result = figure9_time_budget(us, preset=SMOKE)
        assert all(t > 0 for t in result.time_series("FM"))

    def test_engine_budget_sweep_is_faster_per_epsilon(self, us):
        """The engine's per-epsilon cost excludes repeated data passes."""
        engine_fig = figure6_privacy_budget(us, "linear", preset=SMOKE, engine=True)
        loop_fig = figure6_privacy_budget(us, "linear", preset=SMOKE, engine=False)
        engine_time = sum(engine_fig.time_series("FM"))
        loop_time = sum(loop_fig.time_series("FM"))
        # Generous bound: the engine must not be slower in aggregate (it
        # shares one pass across six budgets); timing noise gets headroom.
        assert engine_time < loop_time * 1.5
