"""Hypothesis property tests for accumulator merging.

The sharded/distributed ingestion story rests on ``merge`` behaving like
the abelian-monoid operation it models — and thanks to the canonical-block
+ correctly-rounded-reduction design, the laws hold *exactly* (to the bit),
not merely within floating-point tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.accumulator import MomentAccumulator

DIM = 3
BLOCK = 8


def _snapshots_equal(a, b) -> bool:
    return (
        a.n == b.n
        and np.array_equal(a.S2, b.S2)
        and np.array_equal(a.S1, b.S1)
        and np.array_equal(a.Sxy, b.Sxy)
        and a.Sy == b.Sy
        and a.Syy == b.Syy
    )


@st.composite
def accumulators(draw):
    """Random accumulators: random row count, values, and chunking."""
    n = draw(st.integers(0, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0 / np.sqrt(DIM), 1.0 / np.sqrt(DIM), size=(n, DIM))
    y = rng.uniform(-1.0, 1.0, size=n)
    acc = MomentAccumulator(DIM, block_size=BLOCK)
    start = 0
    while start < n:
        step = draw(st.integers(1, 12))
        acc.update(X[start : start + step], y[start : start + step])
        start += step
    return acc


class TestMergeLaws:
    @given(accumulators(), accumulators())
    @settings(max_examples=50, deadline=None)
    def test_commutative_to_the_bit(self, a, b):
        assert _snapshots_equal((a + b).snapshot(), (b + a).snapshot())

    @given(accumulators(), accumulators(), accumulators())
    @settings(max_examples=40, deadline=None)
    def test_associative_to_the_bit(self, a, b, c):
        left = ((a + b) + c).snapshot()
        right = (a + (b + c)).snapshot()
        assert _snapshots_equal(left, right)

    @given(accumulators())
    @settings(max_examples=30, deadline=None)
    def test_empty_accumulator_is_identity(self, a):
        empty = MomentAccumulator(DIM, block_size=BLOCK)
        assert _snapshots_equal((a + empty).snapshot(), a.snapshot())
        assert _snapshots_equal((empty + a).snapshot(), a.snapshot())

    @given(accumulators(), accumulators())
    @settings(max_examples=30, deadline=None)
    def test_merge_counts_rows(self, a, b):
        merged = a + b
        assert merged.n_rows == a.n_rows + b.n_rows
        assert merged.snapshot().n == a.n_rows + b.n_rows

    @given(accumulators(), accumulators())
    @settings(max_examples=30, deadline=None)
    def test_add_leaves_operands_usable(self, a, b):
        before_a, before_b = a.snapshot(), b.snapshot()
        _ = a + b
        assert _snapshots_equal(a.snapshot(), before_a)
        assert _snapshots_equal(b.snapshot(), before_b)


class TestMergeErrors:
    def test_dim_mismatch(self):
        from repro.exceptions import DimensionMismatchError

        with pytest.raises(DimensionMismatchError):
            MomentAccumulator(2).merge(MomentAccumulator(3))

    def test_block_size_mismatch(self):
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            MomentAccumulator(2, block_size=8).merge(MomentAccumulator(2, block_size=16))

    def test_non_accumulator_rejected(self):
        with pytest.raises(TypeError):
            MomentAccumulator(2).merge(object())
