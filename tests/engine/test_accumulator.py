"""Tests for the streaming moment accumulator."""

import numpy as np
import pytest

from repro.core.mechanism import FunctionalMechanism
from repro.core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from repro.engine.accumulator import MomentAccumulator
from repro.exceptions import (
    DataError,
    DegreeError,
    DimensionMismatchError,
    DomainError,
)


class TestUpdateValidation:
    def test_rejects_wrong_width(self):
        with pytest.raises(DataError):
            MomentAccumulator(3).update(np.zeros((4, 2)), np.zeros(4))

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError):
            MomentAccumulator(2).update(np.zeros((4, 2)), np.zeros(3))

    def test_rejects_non_finite(self):
        X = np.array([[0.1, np.inf]])
        with pytest.raises(DataError):
            MomentAccumulator(2).update(X, np.zeros(1))

    def test_rejects_unnormalized_features(self):
        X = np.array([[2.0, 0.0]])
        with pytest.raises(DomainError):
            MomentAccumulator(2).update(X, np.zeros(1))

    def test_rejects_out_of_range_target(self):
        with pytest.raises(DomainError):
            MomentAccumulator(2).update(np.zeros((1, 2)), np.array([1.5]))

    def test_validate_false_skips_domain_checks(self):
        acc = MomentAccumulator(2, validate=False)
        acc.update(np.array([[2.0, 0.0]]), np.array([5.0]))
        assert acc.n_rows == 1

    def test_empty_chunk_is_noop(self):
        acc = MomentAccumulator(2)
        acc.update(np.zeros((0, 2)), np.zeros(0))
        assert acc.n_rows == 0
        snap = acc.snapshot()
        assert snap.n == 0
        assert np.array_equal(snap.S2, np.zeros((2, 2)))

    def test_invalid_constructor_args(self):
        with pytest.raises(DataError):
            MomentAccumulator(0)
        with pytest.raises(DataError):
            MomentAccumulator(2, block_size=0)


class TestAgainstDirectAggregation:
    def test_linear_coefficients_match(self, stream_data):
        X, y = stream_data
        objective = LinearRegressionObjective(X.shape[1])
        acc = MomentAccumulator(X.shape[1], block_size=512)
        for start in range(0, X.shape[0], 333):
            acc.update(X[start : start + 333], y[start : start + 333])
        form = acc.quadratic_form(objective)
        direct = objective.aggregate_quadratic(X, y)
        np.testing.assert_allclose(form.M, direct.M, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(form.alpha, direct.alpha, rtol=1e-12, atol=1e-14)
        assert form.beta == pytest.approx(direct.beta, rel=1e-12)

    def test_logistic_coefficients_match(self, stream_data, labels):
        X, _ = stream_data
        objective = LogisticRegressionObjective(X.shape[1])
        acc = MomentAccumulator(X.shape[1], block_size=512).update(X, labels)
        form = acc.quadratic_form(objective)
        direct = objective.aggregate_quadratic(X, labels)
        np.testing.assert_allclose(form.M, direct.M, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(form.alpha, direct.alpha, rtol=1e-12, atol=1e-14)
        assert form.beta == pytest.approx(direct.beta, rel=1e-12)

    def test_chebyshev_logistic_supported(self, stream_data, labels):
        X, _ = stream_data
        objective = LogisticRegressionObjective(X.shape[1], approximation="chebyshev")
        acc = MomentAccumulator(X.shape[1]).update(X, labels)
        form = acc.quadratic_form(objective)
        direct = objective.aggregate_quadratic(X, labels)
        np.testing.assert_allclose(form.M, direct.M, rtol=1e-12, atol=1e-14)

    def test_higher_order_logistic_rejected(self, stream_data, labels):
        X, _ = stream_data
        acc = MomentAccumulator(X.shape[1]).update(X, labels)
        with pytest.raises(DegreeError):
            acc.quadratic_form(LogisticRegressionObjective(X.shape[1], order=4))

    def test_dim_mismatch_rejected(self, stream_data):
        X, y = stream_data
        acc = MomentAccumulator(X.shape[1]).update(X, y)
        with pytest.raises(DimensionMismatchError):
            acc.quadratic_form(LinearRegressionObjective(X.shape[1] + 1))


class TestChunkInvariance:
    def test_chunking_never_changes_bits(self, stream_data, bit_identical):
        X, y = stream_data
        reference = MomentAccumulator(X.shape[1], block_size=256).update(X, y)
        for chunk in (1, 7, 100, 256, 999, 5000):
            acc = MomentAccumulator(X.shape[1], block_size=256)
            for start in range(0, X.shape[0], chunk):
                acc.update(X[start : start + chunk], y[start : start + chunk])
            assert bit_identical(acc.snapshot(), reference.snapshot()), chunk

    def test_snapshot_does_not_mutate(self, stream_data, bit_identical):
        X, y = stream_data
        acc = MomentAccumulator(X.shape[1], block_size=4096)
        acc.update(X[:100], y[:100])  # pending tail only
        first = acc.snapshot()
        acc.update(X[100:200], y[100:200])
        reference = MomentAccumulator(X.shape[1], block_size=4096).update(X[:200], y[:200])
        assert bit_identical(acc.snapshot(), reference.snapshot())
        assert first.n == 100

    def test_caller_mutation_after_update_is_harmless(self):
        X = np.full((3, 2), 0.1)
        y = np.full(3, 0.5)
        acc = MomentAccumulator(2).update(X, y)
        X[:] = 0.7  # tail rows must have been copied
        snap = acc.snapshot()
        assert snap.S1[0] == pytest.approx(0.3)


class TestSerialization:
    def test_npz_round_trip_bit_identical(self, tmp_path, stream_data, bit_identical):
        X, y = stream_data
        acc = MomentAccumulator(X.shape[1], block_size=512).update(X, y)
        path = tmp_path / "acc.npz"
        acc.save(path)
        loaded = MomentAccumulator.load(path)
        assert loaded.dim == acc.dim
        assert loaded.block_size == acc.block_size
        assert bit_identical(loaded.snapshot(), acc.snapshot())

    def test_round_trip_of_empty_accumulator(self, tmp_path, bit_identical):
        acc = MomentAccumulator(4)
        path = tmp_path / "empty.npz"
        acc.save(path)
        loaded = MomentAccumulator.load(path)
        assert loaded.n_rows == 0
        assert bit_identical(loaded.snapshot(), acc.snapshot())

    def test_save_is_non_mutating(self, tmp_path, stream_data, bit_identical):
        X, y = stream_data
        acc = MomentAccumulator(X.shape[1], block_size=4096).update(X[:10], y[:10])
        acc.save(tmp_path / "a.npz")
        acc.update(X[10:20], y[10:20])
        reference = MomentAccumulator(X.shape[1], block_size=4096).update(X[:20], y[:20])
        assert bit_identical(acc.snapshot(), reference.snapshot())

    def test_mid_stream_round_trip_resumes_exact_block_boundaries(
        self, tmp_path, stream_data, bit_identical
    ):
        """A save/load cycle between two updates must be invisible: the
        pending partial tail round-trips as raw rows, so later blocks
        form at the same canonical boundaries (serve's evict-and-reload
        path relies on this for fit-digest identity)."""
        X, y = stream_data
        acc = MomentAccumulator(X.shape[1], block_size=256).update(X[:100], y[:100])
        path = tmp_path / "mid.npz"
        acc.save(path)
        resumed = MomentAccumulator.load(path).update(X[100:500], y[100:500])
        reference = MomentAccumulator(X.shape[1], block_size=256).update(
            X[:500], y[:500]
        )
        assert resumed.n_rows == 500
        assert bit_identical(resumed.snapshot(), reference.snapshot())


class TestMechanismEntryPoint:
    def test_perturb_from_accumulator_matches_quadratic_path(self, stream_data):
        X, y = stream_data
        objective = LinearRegressionObjective(X.shape[1])
        acc = MomentAccumulator(X.shape[1]).update(X, y)
        noisy_a, record_a = FunctionalMechanism(1.0, rng=5).perturb_from_accumulator(
            acc, objective
        )
        noisy_b, record_b = FunctionalMechanism(1.0, rng=5).perturb_quadratic(
            acc.quadratic_form(objective), objective.sensitivity()
        )
        np.testing.assert_array_equal(noisy_a.M, noisy_b.M)
        np.testing.assert_array_equal(noisy_a.alpha, noisy_b.alpha)
        assert noisy_a.beta == noisy_b.beta
        assert record_a == record_b
