"""Shared fixtures for the engine test suite."""

from __future__ import annotations

import numpy as np
import pytest


def _snapshots_bit_identical(a, b) -> bool:
    return (
        a.dim == b.dim
        and a.n == b.n
        and np.array_equal(a.S2, b.S2)
        and np.array_equal(a.S1, b.S1)
        and np.array_equal(a.Sxy, b.Sxy)
        and a.Sy == b.Sy
        and a.Syy == b.Syy
    )


@pytest.fixture
def bit_identical():
    """Predicate: two MomentSnapshot instances agree to the bit."""
    return _snapshots_bit_identical


@pytest.fixture
def stream_data():
    """(X, y): 5000 normalized rows with targets in [-1, 1]."""
    rng = np.random.default_rng(2024)
    d = 6
    X = rng.uniform(-1.0 / np.sqrt(d), 1.0 / np.sqrt(d), size=(5000, d))
    y = np.clip(X @ rng.uniform(-1, 1, d) + rng.normal(0, 0.1, 5000), -1.0, 1.0)
    return X, y


@pytest.fixture
def labels(stream_data):
    """Boolean labels aligned with stream_data's rows."""
    _, y = stream_data
    return (y > 0).astype(float)
