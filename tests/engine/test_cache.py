"""Tests for the content-addressed accumulator cache."""

import numpy as np
import pytest

from repro.core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from repro.engine.accumulator import MomentAccumulator
from repro.engine.cache import AccumulatorCache, dataset_fingerprint, objective_tag


@pytest.fixture
def cache(tmp_path):
    return AccumulatorCache(tmp_path / "cache")


class TestFingerprint:
    def test_deterministic(self, stream_data):
        X, y = stream_data
        assert dataset_fingerprint(X, y) == dataset_fingerprint(X, y)

    def test_sensitive_to_any_value(self, stream_data):
        X, y = stream_data
        X2 = X.copy()
        X2[17, 0] = np.nextafter(X2[17, 0], 1.0)
        assert dataset_fingerprint(X, y) != dataset_fingerprint(X2, y)
        y2 = y.copy()
        y2[-1] = np.nextafter(y2[-1], 1.0)
        assert dataset_fingerprint(X, y) != dataset_fingerprint(X, y2)

    def test_sensitive_to_shape(self):
        flat = np.arange(6, dtype=float) / 10.0
        assert dataset_fingerprint(flat.reshape(2, 3), np.zeros(2)) != dataset_fingerprint(
            flat.reshape(3, 2), np.zeros(3)
        )


class TestObjectiveTag:
    def test_distinguishes_objectives(self):
        tags = {
            objective_tag(LinearRegressionObjective(5)),
            objective_tag(LinearRegressionObjective(6)),
            objective_tag(LogisticRegressionObjective(5)),
            objective_tag(LogisticRegressionObjective(5, approximation="chebyshev")),
            objective_tag(LogisticRegressionObjective(5, approximation="chebyshev", radius=2.0)),
            objective_tag(LogisticRegressionObjective(5, order=4)),
        }
        assert len(tags) == 6


class TestCacheRoundTrip:
    def test_miss_then_hit(self, cache, stream_data):
        X, y = stream_data
        objective = LinearRegressionObjective(X.shape[1])
        key = AccumulatorCache.make_key(X, y, objective)
        builds = []

        def builder():
            builds.append(1)
            return MomentAccumulator(X.shape[1]).update(X, y)

        first, hit1 = cache.get_or_build(key, builder)
        second, hit2 = cache.get_or_build(key, builder)
        assert (hit1, hit2) == (False, True)
        assert len(builds) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_round_trip_statistics_bit_identical(self, cache, stream_data, bit_identical):
        X, y = stream_data
        objective = LinearRegressionObjective(X.shape[1])
        key = AccumulatorCache.make_key(X, y, objective)
        original = MomentAccumulator(X.shape[1]).update(X, y)
        cache.put(key, original)
        loaded = cache.get(key)
        assert loaded is not None
        assert bit_identical(loaded.snapshot(), original.snapshot())

    def test_key_changes_with_data_objective_and_blocks(self, stream_data):
        X, y = stream_data
        linear = LinearRegressionObjective(X.shape[1])
        logistic = LogisticRegressionObjective(X.shape[1])
        base = AccumulatorCache.make_key(X, y, linear)
        assert AccumulatorCache.make_key(X, y, logistic) != base
        assert AccumulatorCache.make_key(X, y, linear, block_size=128) != base
        assert AccumulatorCache.make_key(X[:-1], y[:-1], linear) != base

    def test_get_missing_returns_none(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_root_created(self, tmp_path):
        root = tmp_path / "a" / "b"
        AccumulatorCache(root)
        assert root.is_dir()
