"""Tests for sharded accumulation: partitioning, invariance, RNG streams."""

import numpy as np
import pytest

from repro.engine.accumulator import MomentAccumulator
from repro.engine.sharding import ShardedAccumulator, shard_slices, tree_merge
from repro.exceptions import DataError


class TestShardSlices:
    def test_covers_all_rows_without_overlap(self):
        for n in (0, 1, 5, 16, 17, 100):
            for shards in (1, 2, 3, 4, 7):
                slices = shard_slices(n, shards, block_size=4)
                assert len(slices) == shards
                covered = []
                for sl in slices:
                    covered.extend(range(sl.start, sl.stop))
                assert covered == list(range(n)), (n, shards)

    def test_boundaries_are_block_aligned(self):
        for n in (5, 16, 17, 100, 1001):
            for shards in (2, 3, 4):
                for sl in shard_slices(n, shards, block_size=8)[:-1]:
                    assert sl.start % 8 == 0
                    assert sl.stop % 8 == 0 or sl.stop == n

    def test_more_shards_than_blocks_gives_empty_tail_slices(self):
        slices = shard_slices(4, 8, block_size=4)  # one block, eight shards
        assert sum(sl.stop - sl.start for sl in slices) == 4
        assert any(sl.start == sl.stop for sl in slices)

    def test_invalid_args(self):
        with pytest.raises(DataError):
            shard_slices(-1, 2)
        with pytest.raises(DataError):
            shard_slices(10, 0)


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bit_identical_to_monolithic(self, shards, stream_data, bit_identical):
        X, y = stream_data
        monolithic = MomentAccumulator(X.shape[1], block_size=256).update(X, y)
        sharded = ShardedAccumulator(
            X.shape[1], shards=shards, block_size=256
        ).accumulate(X, y)
        assert bit_identical(sharded.snapshot(), monolithic.snapshot())

    def test_fitted_coefficients_shard_invariant(self, stream_data):
        """Same seed + any shard count => bit-identical released model."""
        from repro.core.objectives import LinearRegressionObjective
        from repro.engine.sweep import EpsilonSweepEngine

        X, y = stream_data
        objective = LinearRegressionObjective(X.shape[1])
        omegas = []
        for shards in (1, 2, 4):
            acc = ShardedAccumulator(X.shape[1], shards=shards).accumulate(X, y)
            engine = EpsilonSweepEngine(objective, acc)
            sweep = engine.sweep([0.5, 2.0], rng=np.random.default_rng(99))
            omegas.append(sweep.coefficients)
        np.testing.assert_array_equal(omegas[0], omegas[1])
        np.testing.assert_array_equal(omegas[0], omegas[2])

    def test_row_count_preserved(self, stream_data):
        X, y = stream_data
        acc = ShardedAccumulator(X.shape[1], shards=3, block_size=128).accumulate(X, y)
        assert acc.n_rows == X.shape[0]

    def test_validation_still_applies_per_shard(self):
        from repro.exceptions import DomainError

        X = np.full((40, 2), 0.9)  # ||x|| > 1
        with pytest.raises(DomainError):
            ShardedAccumulator(2, shards=2, block_size=8).accumulate(X, np.zeros(40))


class TestTreeMerge:
    def test_empty_rejected(self):
        with pytest.raises(DataError):
            tree_merge([])

    def test_single_passthrough(self):
        acc = MomentAccumulator(2)
        assert tree_merge([acc]) is acc

    def test_odd_count(self, stream_data, bit_identical):
        X, y = stream_data
        parts = [
            MomentAccumulator(X.shape[1], block_size=64).update(X[s::3], y[s::3])
            for s in range(3)
        ]
        merged = tree_merge(parts)
        assert merged.n_rows == X.shape[0]
        # Strided partitions reorder rows across blocks, so compare against
        # an accumulator built from the same strided pieces linearly.
        linear = MomentAccumulator(X.shape[1], block_size=64)
        for s in range(3):
            linear.merge(MomentAccumulator(X.shape[1], block_size=64).update(X[s::3], y[s::3]))
        assert bit_identical(merged.snapshot(), linear.snapshot())


class TestShardSubstreams:
    def test_deterministic_per_shard(self):
        sharded = ShardedAccumulator(2, shards=4)
        first = [g.integers(0, 2**30) for g in sharded.shard_substreams(123)]
        second = [g.integers(0, 2**30) for g in sharded.shard_substreams(123)]
        assert first == second

    def test_shards_get_distinct_streams(self):
        sharded = ShardedAccumulator(2, shards=4)
        draws = [int(g.integers(0, 2**30)) for g in sharded.shard_substreams(123)]
        assert len(set(draws)) == len(draws)

    def test_tag_separates_uses(self):
        sharded = ShardedAccumulator(2, shards=2)
        a = sharded.shard_substreams(7, tag=[1])
        b = sharded.shard_substreams(7, tag=[2])
        assert a[0].integers(0, 2**30) != b[0].integers(0, 2**30)
