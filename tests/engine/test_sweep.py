"""Tests for the one-pass multi-epsilon sweep engine."""

import numpy as np
import pytest

from repro.core.mechanism import FunctionalMechanism
from repro.core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from repro.core.postprocess import get_strategy
from repro.engine.accumulator import MomentAccumulator
from repro.engine.sweep import EpsilonSweepEngine
from repro.exceptions import InvalidBudgetError
from repro.privacy.budget import PrivacyBudget

EPSILONS = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8)  # >= 8 sweep points


class CountingAccumulator(MomentAccumulator):
    """Test double counting data passes and statistics reads."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.update_calls = 0
        self.quadratic_form_calls = 0

    def update(self, X_chunk, y_chunk):
        self.update_calls += 1
        return super().update(X_chunk, y_chunk)

    def quadratic_form(self, objective):
        self.quadratic_form_calls += 1
        return super().quadratic_form(objective)


@pytest.fixture
def linear_setup(stream_data):
    X, y = stream_data
    objective = LinearRegressionObjective(X.shape[1])
    accumulator = MomentAccumulator(X.shape[1]).update(X, y)
    return X, y, objective, accumulator


class TestOnePass:
    def test_eight_epsilons_one_data_pass(self, stream_data):
        X, y = stream_data
        counting = CountingAccumulator(X.shape[1])
        counting.update(X, y)
        assert counting.update_calls == 1
        engine = EpsilonSweepEngine(
            LinearRegressionObjective(X.shape[1]), counting
        )
        sweep = engine.sweep(EPSILONS, rng=0)
        assert len(sweep.points) == len(EPSILONS) >= 8
        # The engine touched the data exactly once — at ingestion — and read
        # the finalized statistics exactly once, at construction.
        assert counting.update_calls == 1
        assert counting.quadratic_form_calls == 1

    def test_variance_estimation_adds_no_passes(self, stream_data):
        X, y = stream_data
        counting = CountingAccumulator(X.shape[1]).update(X, y)
        engine = EpsilonSweepEngine(LinearRegressionObjective(X.shape[1]), counting)
        engine.variance_estimate(EPSILONS, repeats=5, rng=0)
        assert counting.update_calls == 1
        assert counting.quadratic_form_calls == 1


class TestLoopEquivalence:
    """The vectorized sweep must reproduce the per-epsilon loop exactly."""

    @pytest.mark.parametrize("objective_cls", [LinearRegressionObjective, LogisticRegressionObjective])
    def test_bitwise_equal_to_mechanism_loop(self, stream_data, labels, objective_cls):
        X, y = stream_data
        if objective_cls is LogisticRegressionObjective:
            y = labels
        objective = objective_cls(X.shape[1])
        accumulator = MomentAccumulator(X.shape[1]).update(X, y)
        engine = EpsilonSweepEngine(objective, accumulator)

        sweep = engine.sweep(EPSILONS, rng=np.random.default_rng(7))

        generator = np.random.default_rng(7)
        strategy = get_strategy("spectral")
        form = engine.form
        for point in sweep.points:
            mechanism = FunctionalMechanism(point.epsilon, rng=generator)
            noisy, record = mechanism.perturb_quadratic(form, objective.sensitivity())
            loop_omega = strategy.solve(noisy, record.noise_std).omega
            np.testing.assert_array_equal(point.omega, loop_omega)
            assert point.record.noise_scale == record.noise_scale
            assert point.record.coefficients_perturbed == record.coefficients_perturbed

    def test_sweep_points_are_independent_draws(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        sweep = engine.sweep([1.0, 1.0, 1.0], rng=0)
        a, b, c = (p.omega for p in sweep.points)
        assert not np.array_equal(a, b)
        assert not np.array_equal(b, c)

    def test_seeded_reproducibility(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        one = engine.sweep(EPSILONS, rng=11).coefficients
        two = engine.sweep(EPSILONS, rng=11).coefficients
        np.testing.assert_array_equal(one, two)


class TestRecordsAndResults:
    def test_records_carry_correct_scales(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        sweep = engine.sweep(EPSILONS, rng=0)
        d = objective.dim
        for point in sweep.points:
            assert point.record.noise_scale == pytest.approx(
                objective.sensitivity() / point.epsilon
            )
            assert point.record.coefficients_perturbed == 1 + d + d * (d + 1) // 2
            assert point.solve_seconds >= 0.0

    def test_coefficients_matrix_shape(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        sweep = EpsilonSweepEngine(objective, accumulator).sweep(EPSILONS, rng=0)
        assert sweep.coefficients.shape == (len(EPSILONS), objective.dim)

    def test_point_at(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        sweep = EpsilonSweepEngine(objective, accumulator).sweep([0.4, 0.8], rng=0)
        assert sweep.point_at(0.8).epsilon == 0.8
        with pytest.raises(KeyError):
            sweep.point_at(7.0)

    def test_more_budget_means_less_noise(self, linear_setup):
        X, y, objective, accumulator = linear_setup
        exact = accumulator.quadratic_form(objective).minimize()
        engine = EpsilonSweepEngine(objective, accumulator)
        distances = {
            e: [] for e in (0.1, 100.0)
        }
        for seed in range(10):
            sweep = engine.sweep([0.1, 100.0], rng=seed)
            for point in sweep.points:
                distances[point.epsilon].append(
                    float(np.linalg.norm(point.omega - exact))
                )
        assert np.mean(distances[100.0]) < np.mean(distances[0.1])


class TestVariance:
    def test_shapes_and_determinism(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        var = engine.variance_estimate([0.2, 0.8], repeats=12, rng=3)
        assert var.mean.shape == (2, objective.dim)
        assert var.std.shape == (2, objective.dim)
        again = engine.variance_estimate([0.2, 0.8], repeats=12, rng=3)
        np.testing.assert_array_equal(var.std, again.std)

    def test_spread_shrinks_with_budget(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        var = engine.variance_estimate([0.1, 10.0], repeats=25, rng=0)
        assert var.std[1].mean() < var.std[0].mean()

    def test_repeats_validated(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        with pytest.raises(InvalidBudgetError):
            engine.variance_estimate([0.5], repeats=1, rng=0)


class TestBudgetAccounting:
    def test_sweep_charges_sum_of_epsilons(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        budget = PrivacyBudget(100.0)
        engine = EpsilonSweepEngine(objective, accumulator, budget=budget)
        engine.sweep(EPSILONS, rng=0)
        assert budget.spent == pytest.approx(sum(EPSILONS))

    def test_invalid_epsilons_rejected(self, linear_setup):
        _, _, objective, accumulator = linear_setup
        engine = EpsilonSweepEngine(objective, accumulator)
        with pytest.raises(InvalidBudgetError):
            engine.sweep([], rng=0)
        with pytest.raises(InvalidBudgetError):
            engine.sweep([0.5, -1.0], rng=0)
