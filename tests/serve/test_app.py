"""ServeApp: the transport-independent service core and its spend barrier."""

import pytest

from repro.serve.app import ServeApp
from repro.serve.protocol import (
    BadRequestError,
    BudgetRefusedError,
    Deadline,
    DeadlineExceededError,
    NotReadyError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.serve.loadgen import synthetic_batch
from repro.session import ExecutionPolicy, Session


def _policy(**overrides):
    base = dict(
        scale="smoke", telemetry="summary", executor="serial",
        failure_mode="fallback",
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


def _app(tmp_path, **policy_overrides):
    return ServeApp(tmp_path / "data", Session(_policy(**policy_overrides)))


def _ingest_body(tenant="acme", rows=60, dims=3, batch=0):
    X, y = synthetic_batch(11, 0, batch, rows, dims)
    return {
        "tenant": tenant, "task": "linear", "dims": dims,
        "x": X.tolist(), "y": y.tolist(),
    }


def _fit_body(tenant="acme", epsilons=(0.5, 1.0), seed=42, dims=3):
    return {
        "tenant": tenant, "task": "linear", "dims": dims,
        "epsilons": list(epsilons), "seed": seed,
    }


class TestLifecycle:
    def test_create_ingest_fit_status(self, tmp_path):
        with _app(tmp_path) as app:
            created = app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            assert created["budget"]["remaining"] == 10.0
            ingested = app.ingest(_ingest_body())
            assert ingested["n_rows"] == 60
            result = app.fit(_fit_body())
            assert result["n_rows"] == 60
            assert result["spent_epsilon"] == pytest.approx(1.5)
            assert len(result["omegas"]) == 2
            assert len(result["digest"]) == 64
            status = app.status("acme")
            assert status["budget"]["spent"] == pytest.approx(1.5)
            assert status["accumulators"]["linear-d3"]["n_rows"] == 60

    def test_duplicate_tenant(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})
            with pytest.raises(TenantExistsError):
                app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})

    def test_unknown_tenant_routes(self, tmp_path):
        with _app(tmp_path) as app:
            with pytest.raises(UnknownTenantError):
                app.ingest(_ingest_body(tenant="ghost"))
            with pytest.raises(UnknownTenantError):
                app.fit(_fit_body(tenant="ghost"))
            with pytest.raises(UnknownTenantError):
                app.status("ghost")

    def test_fit_without_rows_rejected(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})
            with pytest.raises(BadRequestError, match="no rows"):
                app.fit(_fit_body())

    def test_out_of_domain_rows_rejected(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})
            body = _ingest_body()
            body["x"][0] = [5.0, 5.0, 5.0]  # ||x|| > 1
            with pytest.raises(BadRequestError):
                app.ingest(body)
            # the batch was rejected atomically — nothing ingested
            accs = app.status("acme")["accumulators"]
            assert all(entry["n_rows"] == 0 for entry in accs.values())

    def test_close_is_idempotent_and_drains(self, tmp_path):
        app = _app(tmp_path)
        app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})
        app.close()
        app.close()
        with pytest.raises(NotReadyError):
            app.fit(_fit_body())
        with pytest.raises(NotReadyError):
            app.readyz()
        assert app.healthz()["status"] == "closed"


class TestSpendBarrier:
    def test_budget_refusal_is_durable_409(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 2.0})
            app.ingest(_ingest_body())
            app.fit(_fit_body(epsilons=(0.5, 1.0)))  # spends 1.5 of 2.0
            with pytest.raises(BudgetRefusedError):
                app.fit(_fit_body(epsilons=(1.0,), seed=43))
            # the refused request spent nothing
            assert app.status("acme")["budget"]["spent"] == pytest.approx(1.5)

    def test_expired_deadline_rejects_before_any_spend(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            app.ingest(_ingest_body())
            expired = Deadline.after_ms(1, now=-10.0)
            with pytest.raises(DeadlineExceededError):
                app.fit(_fit_body(), deadline=expired)
            # retryable contract: a deadline rejection left the ledger alone
            assert app.status("acme")["budget"]["spent"] == 0.0

    def test_sequential_composition_across_requests(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 5.0})
            app.ingest(_ingest_body())
            for seed in (1, 2, 3):
                app.fit(_fit_body(epsilons=(0.5,), seed=seed))
            status = app.status("acme")
            assert status["budget"]["spent"] == pytest.approx(1.5)
            assert status["budget"]["entries"] == 3


class TestDeterminism:
    def _digest(self, tmp_path, name, **policy_overrides):
        with ServeApp(
            tmp_path / name, Session(_policy(**policy_overrides))
        ) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            app.ingest(_ingest_body())
            return app.fit(_fit_body())["digest"]

    def test_digest_is_executor_independent(self, tmp_path):
        serial = self._digest(tmp_path, "serial", executor="serial")
        thread = self._digest(tmp_path, "thread", executor="thread", max_workers=2)
        process = self._digest(
            tmp_path, "process", executor="process", max_workers=2
        )
        assert serial == thread == process

    def test_digest_survives_worker_crashes(self, tmp_path):
        clean = self._digest(tmp_path, "clean", executor="process", max_workers=2)
        chaos = self._digest(
            tmp_path, "chaos", executor="process", max_workers=2,
            faults="seed=5;worker.crash=1.0x1",
        )
        assert chaos == clean

    def test_digest_survives_full_fallback_chain(self, tmp_path):
        # enough certain crashes to break the process pool past its
        # retries: failure_mode="fallback" degrades to threads/serial and
        # the keyed substreams keep the released models bitwise identical
        clean = self._digest(tmp_path, "clean", executor="process", max_workers=2)
        degraded = self._digest(
            tmp_path, "degraded", executor="process", max_workers=2,
            faults="seed=5;worker.crash=1.0x20", max_retries=1,
        )
        assert degraded == clean

    def test_same_request_twice_same_omegas(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            app.ingest(_ingest_body())
            first = app.fit(_fit_body(seed=7))
            second = app.fit(_fit_body(seed=7))
            assert first["omegas"] == second["omegas"]
            assert first["digest"] == second["digest"]
            # but both spent: determinism never bypasses the ledger
            assert app.status("acme")["budget"]["spent"] == pytest.approx(3.0)


class TestRestart:
    def test_restart_restores_budget_and_rows(self, tmp_path):
        data = tmp_path / "data"
        with ServeApp(data, Session(_policy())) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            app.ingest(_ingest_body())
            before = app.fit(_fit_body())
        # close() took a final forced snapshot; a fresh app restores all
        with ServeApp(data, Session(_policy())) as app:
            assert app.restored_tenants == 1
            status = app.status("acme")
            assert status["budget"]["spent"] == pytest.approx(1.5)
            assert status["accumulators"]["linear-d3"]["n_rows"] == 60
            again = app.fit(_fit_body())
            assert again["digest"] == before["digest"]
            assert again["omegas"] == before["omegas"]

    def test_restart_never_resets_spent_budget(self, tmp_path):
        data = tmp_path / "data"
        with ServeApp(data, Session(_policy())) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 2.0})
            app.ingest(_ingest_body())
            app.fit(_fit_body(epsilons=(1.5,)))
        with ServeApp(data, Session(_policy())) as app:
            with pytest.raises(BudgetRefusedError):
                app.fit(_fit_body(epsilons=(1.0,), seed=43))


class TestAmbience:
    def test_app_lifecycle_restores_the_ambient_slots(self, tmp_path):
        """Regression: the app installs its session's recorder/injector as
        the process ambience once (concurrent per-request swaps would race
        their save/restore); close() must put the previous ambience back,
        or a chaos app would leak its fault plan into every later forked
        pool in the process."""
        import repro.faults.injector as injector_module
        import repro.obs as obs_module

        before_injector = injector_module._ACTIVE
        before_recorder = obs_module._ACTIVE
        app = _app(tmp_path, faults="seed=5;worker.crash=1.0x5")
        assert injector_module._ACTIVE is app.session.injector
        assert obs_module._ACTIVE is app.session.recorder
        app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})
        app.close()
        assert injector_module._ACTIVE is before_injector
        assert obs_module._ACTIVE is before_recorder


class TestObservability:
    def test_fit_counters_and_spans(self, tmp_path):
        session = Session(_policy())
        with ServeApp(tmp_path / "data", session) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            app.ingest(_ingest_body())
            app.fit(_fit_body())
        summary = session.recorder.summary()
        counters = summary["counters"]
        assert counters["serve.rows_ingested"] == 60
        assert counters["serve.fits"] == 1
        assert counters["serve.fit_models"] == 2
        assert counters["serve.tenants_created"] == 1
        assert "serve.fit" in summary["spans"]

    def test_budget_refusal_counter(self, tmp_path):
        session = Session(_policy())
        with ServeApp(tmp_path / "data", session) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 0.1})
            app.ingest(_ingest_body())
            with pytest.raises(BudgetRefusedError):
                app.fit(_fit_body())
        assert session.recorder.summary()["counters"]["serve.budget_refusals"] == 1
