"""Durable tenant state: registries, journals, snapshots, the writer lock."""

import json
import threading

import numpy as np
import pytest

from repro.exceptions import InvalidBudgetError, TransientIOError
from repro.faults import make_injector, use_injector
from repro.obs import make_recorder, use_recorder
from repro.privacy.budget import PrivacyBudget
from repro.serve.loadgen import synthetic_batch
from repro.serve.protocol import TenantExistsError, UnknownTenantError
from repro.serve.state import TenantRegistry


def _rows(n=50, dims=3, seed=9, tenant=0, batch=0):
    return synthetic_batch(seed, tenant, batch, n, dims)


def _observed(recorder_mode="summary"):
    recorder = make_recorder(recorder_mode)
    return recorder, use_recorder(recorder)


class TestRegistryLifecycle:
    def test_create_get_names(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.create("alpha", 5.0)
        registry.create("beta", 2.0)
        assert registry.names() == ["alpha", "beta"]
        assert registry.get("alpha").budget.total == 5.0
        registry.close()

    def test_duplicate_create_refused(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.create("alpha", 5.0)
        with pytest.raises(TenantExistsError):
            registry.create("alpha", 9.0)
        registry.close()

    def test_unknown_tenant(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        with pytest.raises(UnknownTenantError):
            registry.get("ghost")
        registry.close()

    def test_tenant_layout_on_disk(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.create("alpha", 5.0)
        root = tmp_path / "tenants" / "alpha"
        meta = json.loads((root / "meta.json").read_text())
        assert meta["total_epsilon"] == 5.0
        assert (root / "budget.journal").exists()
        registry.close()


class TestRestore:
    def test_spends_survive_close_and_restore(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        tenant = registry.create("alpha", 10.0)
        tenant.budget.spend(1.5, note="fit 1")
        tenant.budget.spend(2.0, note="fit 2")
        registry.close()

        fresh = TenantRegistry(tmp_path)
        assert fresh.restore_all() == 1
        restored = fresh.get("alpha")
        assert restored.budget.spent == pytest.approx(3.5)
        assert restored.budget.total == 10.0
        fresh.close()

    def test_accumulators_survive_via_snapshots(self, tmp_path):
        recorder, scope = _observed()
        with scope:
            registry = TenantRegistry(tmp_path)
            tenant = registry.create("alpha", 10.0)
            X, y = _rows(80)
            with tenant.locked():
                tenant.ingest("linear", 3, X, y)
            assert tenant.snapshot() == 1
            registry.close()

            fresh = TenantRegistry(tmp_path)
            fresh.restore_all()
            acc = fresh.get("alpha").accumulator("linear", 3)
            assert acc.n_rows == 80
            fresh.close()
        assert recorder.summary()["counters"]["serve.snapshot_writes"] == 1

    def test_restored_statistics_bitwise_equal(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        tenant = registry.create("alpha", 10.0)
        X, y = _rows(64)
        with tenant.locked():
            tenant.ingest("linear", 3, X, y)
        before = tenant.accumulator("linear", 3).snapshot()
        tenant.snapshot()
        registry.close()

        fresh = TenantRegistry(tmp_path)
        fresh.restore_all()
        after = fresh.get("alpha").accumulator("linear", 3).snapshot()
        np.testing.assert_array_equal(before.S2, after.S2)
        np.testing.assert_array_equal(before.Sxy, after.Sxy)
        assert before.Syy == after.Syy and before.n == after.n
        fresh.close()

    def test_dir_without_meta_is_invisible(self, tmp_path):
        # a crash mid-create publishes meta.json last; its absence means
        # the tenant never existed
        registry = TenantRegistry(tmp_path)
        (tmp_path / "tenants" / "half-created").mkdir(parents=True)
        assert registry.restore_all() == 0
        assert registry.names() == []
        registry.close()

    def test_restore_is_idempotent(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.create("alpha", 10.0)
        registry.close()
        fresh = TenantRegistry(tmp_path)
        assert fresh.restore_all() == 1
        assert fresh.restore_all() == 0
        fresh.close()


class TestJournalGuard:
    def test_fresh_constructor_refuses_existing_journal(self, tmp_path):
        journal = tmp_path / "budget.journal"
        budget = PrivacyBudget(4.0, journal_path=journal)
        budget.spend(1.0)
        budget.close()
        # silently re-creating the ledger would erase a durable spend
        with pytest.raises(InvalidBudgetError, match="restore"):
            PrivacyBudget(4.0, journal_path=journal)
        restored = PrivacyBudget.restore(journal)
        assert restored.spent == pytest.approx(1.0)
        restored.close()


class TestSnapshotIntegrity:
    def _with_snapshot(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        tenant = registry.create("alpha", 10.0)
        X, y = _rows(40)
        with tenant.locked():
            tenant.ingest("linear", 3, X, y)
        tenant.snapshot()
        registry.close()
        return tmp_path / "tenants" / "alpha" / "acc" / "linear-d3.acc"

    def test_corrupt_container_quarantined_not_loaded(self, tmp_path):
        path = self._with_snapshot(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        recorder, scope = _observed()
        with scope:
            fresh = TenantRegistry(tmp_path)
            fresh.restore_all()
            tenant = fresh.get("alpha")
            # statistics are never fabricated: the accumulator restarts empty
            assert tenant.accumulator("linear", 3).n_rows == 0
            fresh.close()
        assert recorder.summary()["counters"]["serve.snapshot_quarantined"] == 1
        assert not path.exists()
        quarantined = tmp_path / "tenants" / "alpha" / "quarantine" / "linear-d3.acc"
        assert quarantined.exists()

    def test_budget_survives_snapshot_corruption(self, tmp_path):
        # rows are re-sendable data; spends are not — corruption of the
        # one must never touch the other
        registry = TenantRegistry(tmp_path)
        tenant = registry.create("alpha", 10.0)
        X, y = _rows(40)
        with tenant.locked():
            tenant.ingest("linear", 3, X, y)
        tenant.budget.spend(2.5)
        tenant.snapshot()
        registry.close()
        acc_path = tmp_path / "tenants" / "alpha" / "acc" / "linear-d3.acc"
        acc_path.write_bytes(b"garbage")

        fresh = TenantRegistry(tmp_path)
        fresh.restore_all()
        assert fresh.get("alpha").budget.spent == pytest.approx(2.5)
        fresh.close()


class TestTransientIO:
    def test_bounded_retries_absorb_transients(self, tmp_path):
        recorder = make_recorder("summary")
        with use_recorder(recorder), use_injector(
            make_injector("seed=3;io.transient=1.0x2")
        ):
            registry = TenantRegistry(tmp_path)
            tenant = registry.create("alpha", 10.0)
            X, y = _rows(30)
            with tenant.locked():
                tenant.ingest("linear", 3, X, y)
            assert tenant.snapshot() == 1  # third attempt lands
            registry.close()
        assert recorder.summary()["counters"]["serve.io_retries"] == 2

    def test_exhausted_retries_raise_and_stay_dirty(self, tmp_path):
        with use_injector(make_injector("seed=3;io.transient=1.0x10")):
            registry = TenantRegistry(tmp_path)
            tenant = registry.create("alpha", 10.0)
            X, y = _rows(30)
            with tenant.locked():
                tenant.ingest("linear", 3, X, y)
            with pytest.raises(TransientIOError):
                tenant.snapshot()
        # outside the fault scope the retry succeeds: the key stayed dirty
        assert tenant.snapshot() == 1
        registry.close()

    def test_snapshot_all_contains_per_tenant_failures(self, tmp_path):
        recorder = make_recorder("summary")
        registry = TenantRegistry(tmp_path)
        for name in ("alpha", "beta"):
            tenant = registry.create(name, 10.0)
            X, y = _rows(30, tenant=hash(name) % 7)
            with tenant.locked():
                tenant.ingest("linear", 3, X, y)
        # break exactly one tenant's snapshot path persistently
        broken = registry.get("alpha")
        broken.snapshot = lambda force=False: (_ for _ in ()).throw(OSError("disk"))
        with use_recorder(recorder):
            written = registry.snapshot_all(force=True)
        assert written == 1  # beta's snapshot still landed
        assert recorder.summary()["counters"]["serve.snapshot_failures"] == 1
        registry.close()


class TestWriterLock:
    def test_contention_is_counted(self, tmp_path):
        recorder = make_recorder("summary")
        registry = TenantRegistry(tmp_path)
        tenant = registry.create("alpha", 10.0)
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with use_recorder(recorder):
                with tenant.locked():
                    holding.set()
                    release.wait(5.0)

        def contender():
            with use_recorder(recorder):
                with tenant.locked():
                    pass

        first = threading.Thread(target=holder)
        first.start()
        assert holding.wait(5.0)
        second = threading.Thread(target=contender)
        second.start()
        # give the contender time to hit the non-blocking acquire and count
        for _ in range(100):
            if recorder.summary()["counters"].get("serve.lock_contention"):
                break
            second.join(0.02)
        release.set()
        first.join(5.0)
        second.join(5.0)
        assert recorder.summary()["counters"]["serve.lock_contention"] == 1
        registry.close()

    def test_uncontended_acquire_is_silent(self, tmp_path):
        recorder = make_recorder("summary")
        registry = TenantRegistry(tmp_path)
        tenant = registry.create("alpha", 10.0)
        with use_recorder(recorder):
            with tenant.locked():
                pass
        assert "serve.lock_contention" not in recorder.summary()["counters"]
        registry.close()
