"""Wire-protocol contracts: validation, error taxonomy, deadlines, digests."""

import time

import numpy as np
import pytest

from repro.serve.protocol import (
    BadRequestError,
    BudgetRefusedError,
    Deadline,
    DeadlineExceededError,
    NotReadyError,
    OverloadedError,
    ServeError,
    UnknownTenantError,
    fit_digest,
    parse_fit_request,
    parse_ingest_request,
    parse_tenant_request,
)


class TestErrorTaxonomy:
    def test_retryable_errors_carry_the_flag_on_the_wire(self):
        for cls in (OverloadedError, NotReadyError, DeadlineExceededError):
            wire = cls("x").to_wire()
            assert wire["error"]["retryable"] is True
            assert wire["error"]["code"] == cls.code

    def test_non_retryable_errors_are_final(self):
        for cls in (BadRequestError, BudgetRefusedError, UnknownTenantError):
            assert cls("x").to_wire()["error"]["retryable"] is False

    def test_budget_refusal_is_a_conflict_not_a_server_error(self):
        # Over-spend is the *ledger working*, not the service failing:
        # 409, non-retryable, so clients cannot hammer an exhausted tenant.
        assert BudgetRefusedError.status == 409
        assert BudgetRefusedError.retryable is False

    def test_overload_is_shed_retryably(self):
        assert OverloadedError.status == 503
        assert OverloadedError.retryable is True

    def test_details_ride_along(self):
        wire = OverloadedError("full", queue_waiting=9).to_wire()
        assert wire["error"]["details"] == {"queue_waiting": 9}

    def test_all_serve_errors_share_the_base(self):
        for cls in (BadRequestError, OverloadedError, DeadlineExceededError):
            assert issubclass(cls, ServeError)


class TestDeadline:
    def test_counts_down_on_the_monotonic_clock(self):
        deadline = Deadline.after_ms(10_000)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired

    def test_expires(self):
        deadline = Deadline.after_ms(1, now=time.monotonic() - 1.0)
        assert deadline.expired
        assert deadline.remaining() < 0

    def test_anchoring_at_receipt_charges_queue_wait(self):
        received = time.monotonic()
        deadline = Deadline.after_ms(50, now=received)
        assert deadline.expires_at == pytest.approx(received + 0.05)


class TestTenantRequest:
    def test_valid(self):
        assert parse_tenant_request({"tenant": "acme-1", "total_epsilon": 2}) == (
            "acme-1", 2.0,
        )

    @pytest.mark.parametrize("name", ["", "a" * 129, "bad/name", "a b", 7, None])
    def test_bad_names(self, name):
        with pytest.raises(BadRequestError):
            parse_tenant_request({"tenant": name, "total_epsilon": 1.0})

    @pytest.mark.parametrize("total", [0, -1.0, float("inf"), float("nan"), "1", True, None])
    def test_bad_totals(self, total):
        with pytest.raises(BadRequestError):
            parse_tenant_request({"tenant": "t", "total_epsilon": total})


class TestIngestRequest:
    def _body(self, **overrides):
        body = {
            "tenant": "t", "task": "linear", "dims": 2,
            "x": [[0.1, 0.2], [0.3, 0.1]], "y": [0.5, -0.5],
        }
        body.update(overrides)
        return body

    def test_valid(self):
        name, task, dims, partition, X, y, durable = parse_ingest_request(
            self._body()
        )
        assert (name, task, dims, durable) == ("t", "linear", 2, False)
        assert partition is None
        assert X.shape == (2, 2) and y.shape == (2,)

    def test_partition_passes_through(self):
        *_, partition, X, y, durable = parse_ingest_request(
            self._body(partition="p0")
        )
        assert partition == "p0"

    @pytest.mark.parametrize("bad", ["", "a b", "x" * 65, 3, True, ["p"]])
    def test_bad_partitions_rejected(self, bad):
        with pytest.raises(BadRequestError):
            parse_ingest_request(self._body(partition=bad))

    def test_row_width_must_match_dims(self):
        with pytest.raises(BadRequestError):
            parse_ingest_request(self._body(x=[[0.1], [0.2]]))

    def test_xy_length_mismatch(self):
        with pytest.raises(BadRequestError):
            parse_ingest_request(self._body(y=[0.5]))

    def test_empty_batch_rejected(self):
        with pytest.raises(BadRequestError):
            parse_ingest_request(self._body(x=[], y=[]))

    def test_non_numeric_entries_rejected(self):
        with pytest.raises(BadRequestError):
            parse_ingest_request(self._body(x=[["a", "b"], [0.1, 0.2]]))

    def test_unknown_task_rejected(self):
        with pytest.raises(BadRequestError):
            parse_ingest_request(self._body(task="poisson"))


class TestFitRequest:
    def test_scalar_epsilon_normalizes_to_tuple(self):
        *_, epsilons, seed = parse_fit_request(
            {"tenant": "t", "task": "linear", "dims": 2, "epsilon": 0.5, "seed": 1}
        )
        assert epsilons == (0.5,) and seed == 1

    def test_partition_defaults_to_none(self):
        _, _, _, partition, _, _ = parse_fit_request(
            {"tenant": "t", "task": "linear", "dims": 2, "epsilon": 0.5, "seed": 1}
        )
        assert partition is None

    def test_seed_is_mandatory(self):
        # Reproducibility (and therefore digest checking) by construction.
        with pytest.raises(BadRequestError):
            parse_fit_request(
                {"tenant": "t", "task": "linear", "dims": 2, "epsilons": [1.0]}
            )

    @pytest.mark.parametrize("eps", [[], [0.0], [-1.0], [float("nan")], ["1"], [True]])
    def test_bad_epsilons(self, eps):
        with pytest.raises(BadRequestError):
            parse_fit_request(
                {"tenant": "t", "task": "linear", "dims": 2,
                 "epsilons": eps, "seed": 1}
            )


class TestFitDigest:
    def test_deterministic(self):
        omegas = np.arange(6.0).reshape(2, 3)
        a = fit_digest("linear", 3, (0.5, 1.0), 7, 100, omegas)
        b = fit_digest("linear", 3, (0.5, 1.0), 7, 100, omegas.copy())
        assert a == b

    def test_sensitive_to_every_identity_field(self):
        omegas = np.arange(6.0).reshape(2, 3)
        base = fit_digest("linear", 3, (0.5, 1.0), 7, 100, omegas)
        assert fit_digest("logistic", 3, (0.5, 1.0), 7, 100, omegas) != base
        assert fit_digest("linear", 3, (0.5, 2.0), 7, 100, omegas) != base
        assert fit_digest("linear", 3, (0.5, 1.0), 8, 100, omegas) != base
        assert fit_digest("linear", 3, (0.5, 1.0), 7, 101, omegas) != base

    def test_sensitive_to_a_single_bit_of_output(self):
        omegas = np.arange(6.0).reshape(2, 3)
        flipped = omegas.copy()
        flipped[1, 2] = np.nextafter(flipped[1, 2], np.inf)
        assert fit_digest("linear", 3, (1.0,), 7, 10, omegas) != fit_digest(
            "linear", 3, (1.0,), 7, 10, flipped
        )
