"""Chaos acceptance: a live service under faults + concurrent load.

The two invariants the serving layer stakes its name on, asserted here
end to end:

* **No under-recorded spends.**  Whatever crashes — workers, IO, the
  budget journal itself, or the whole process via ``kill -9`` — the
  durable ledger never records less than the sum of spends the service
  *accepted*.
* **No digest divergence.**  Every fit released under chaos is bitwise
  identical to the same fit computed in a clean run (and to an offline
  recomputation with no service at all), because noise streams are keyed
  by the request, not by execution order.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.app import ServeApp
from repro.serve.check import verify_report
from repro.serve.http import ServeHTTP
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.session import ExecutionPolicy, Session

_CHAOS_PLAN = "seed=7;worker.crash=0.5x3;io.transient=0.4x4"


def _policy(**overrides):
    base = dict(
        scale="smoke", telemetry="summary", executor="process",
        max_workers=2, failure_mode="fallback",
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


def _config(port, **overrides):
    base = dict(
        port=port, tenants=2, batches=2, rows_per_batch=100, dims=3,
        fits=2, epsilons=(0.5, 1.0), seed=123, total_epsilon=100.0,
    )
    base.update(overrides)
    return LoadgenConfig(**base)


def _serve_and_load(tmp_path, name, faults=None, **load_overrides):
    """Boot a background server, drive it with the loadgen, stop cleanly."""
    data = tmp_path / name
    app = ServeApp(data, Session(_policy(faults=faults)))
    http = ServeHTTP(app, port=0, snapshot_interval=0.2)
    thread = http.start_background()
    try:
        report = run_loadgen(_config(http.bound_port, **load_overrides))
    finally:
        http.request_stop()
        thread.join(20.0)
    assert not thread.is_alive()
    return data, report


def _digests_by_seed(report):
    return {
        fit["seed"]: fit["digest"]
        for tenant in report["tenants"]
        for fit in tenant["fits"]
    }


class TestLiveChaos:
    def test_chaos_run_matches_clean_run_and_ledger(self, tmp_path):
        clean_data, clean = _serve_and_load(tmp_path, "clean")
        chaos_data, chaos = _serve_and_load(tmp_path, "chaos", faults=_CHAOS_PLAN)

        # the clean run accepted everything and verifies strictly
        assert clean["totals"]["failures"] == 0
        assert clean["totals"]["fits_ok"] == 4
        result = verify_report(clean, clean_data, strict=True)
        assert result["ok"], result["violations"]

        # chaos may reject retryably/serverside, but never corrupts:
        # every accepted spend is in the ledger, every released digest is
        # the clean one
        result = verify_report(chaos, chaos_data)
        assert result["ok"], result["violations"]
        clean_digests = _digests_by_seed(clean)
        chaos_digests = _digests_by_seed(chaos)
        assert chaos_digests, "chaos run released no fits at all"
        for seed, digest in chaos_digests.items():
            assert digest == clean_digests[seed], (
                f"fit seed={seed} diverged under chaos"
            )

    def test_worker_crashes_are_invisible_in_results(self, tmp_path):
        # certain crash on the first triggers: the fallback chain must
        # still release every model, bitwise
        clean_data, clean = _serve_and_load(tmp_path, "c2-clean")
        chaos_data, chaos = _serve_and_load(
            tmp_path, "c2-chaos", faults="seed=11;worker.crash=1.0x2"
        )
        assert chaos["totals"]["failures"] == 0
        assert _digests_by_seed(chaos) == _digests_by_seed(clean)
        assert verify_report(chaos, chaos_data, strict=True)["ok"]


class TestKillMinusNine:
    """The CLI service, murdered mid-flight, must leave a replayable ledger."""

    @pytest.fixture
    def service(self, tmp_path):
        data = tmp_path / "data"
        port_file = tmp_path / "port.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--data-dir", str(data), "--port", "0",
                "--port-file", str(port_file),
                "--executor", "process", "--max-workers", "2",
                "--failure-mode", "fallback",
                "--faults", "seed=7;worker.crash=0.4x2;io.transient=0.4x3;budget.crash=0.3x2",
                "--snapshot-interval", "0.2",
                "--telemetry", "summary",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 30.0
        while not port_file.exists() and time.monotonic() < deadline:
            if proc.poll() is not None:
                out = proc.stdout.read().decode(errors="replace")
                pytest.fail(f"service exited during startup:\n{out}")
            time.sleep(0.05)
        assert port_file.exists(), "service never published its port"
        port = int(port_file.read_text())
        yield proc, data, port
        if proc.poll() is None:
            proc.kill()
        proc.wait(10)
        proc.stdout.close()

    def test_sigkill_leaves_no_underrecorded_spend(self, tmp_path, service):
        proc, data, port = service
        report = run_loadgen(
            _config(port, durable_ingest=True, total_epsilon=1000.0)
        )
        # chaos may produce non-retryable 500s (an injected budget.crash is
        # deliberately *not* retryable: its intent may already be durable);
        # accepted fits are what the ledger owes us
        assert report["totals"]["fits_ok"] > 0, json.dumps(report["tenants"])

        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(10)

        # verify from the corpse: journals replay conservatively, digests
        # recompute bitwise offline
        result = verify_report(report, data)
        assert result["ok"], result["violations"]
        assert result["digests_checked"] == report["totals"]["fits_ok"]

        # and a fresh service over the same directory restores it all:
        # every tenant, every spend, rows from the last durable snapshot
        with ServeApp(data, Session(_policy())) as app:
            assert app.restored_tenants == report["config"]["tenants"]
            for tenant_report in report["tenants"]:
                status = app.status(tenant_report["tenant"])
                accepted = tenant_report["accepted_epsilon"]
                assert status["budget"]["spent"] >= accepted - 1e-9
