"""The HTTP transport: routing, admission control, health, graceful stop."""

import threading
import time

import pytest

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeResponseError
from repro.serve.http import ServeHTTP
from repro.serve.loadgen import synthetic_batch
from repro.session import ExecutionPolicy, Session


def _policy(**overrides):
    base = dict(
        scale="smoke", telemetry="summary", executor="serial",
        failure_mode="fallback",
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


@pytest.fixture
def server(tmp_path):
    """A live background server on an ephemeral port, torn down cleanly."""
    app = ServeApp(tmp_path / "data", Session(_policy()))
    http = ServeHTTP(app, port=0, snapshot_interval=0.0)
    thread = http.start_background()
    yield http
    http.request_stop()
    thread.join(15.0)
    assert not thread.is_alive()


def _client(server):
    return ServeClient("127.0.0.1", server.bound_port, timeout=30)


def _seed_tenant(client, name="acme", rows=60, dims=3):
    client.create_tenant(name, 10.0)
    X, y = synthetic_batch(11, 0, 0, rows, dims)
    client.ingest(name, "linear", dims, X.tolist(), y.tolist())


class TestRoutes:
    def test_full_roundtrip(self, server):
        with _client(server) as client:
            assert client.healthz()["status"] == "ok"
            assert client.readyz()["ready"] is True
            _seed_tenant(client)
            result = client.fit("acme", "linear", 3, [0.5, 1.0], seed=42)
            assert result["n_rows"] == 60
            assert len(result["digest"]) == 64
            status = client.status("acme")
            assert status["budget"]["spent"] == pytest.approx(1.5)
            assert client.snapshot()["snapshots_written"] >= 1

    def test_error_statuses_on_the_wire(self, server):
        with _client(server) as client:
            with pytest.raises(ServeResponseError) as exc:
                client.status("ghost")
            assert exc.value.status == 404 and not exc.value.retryable
            with pytest.raises(ServeResponseError) as exc:
                client.request("POST", "/v1/tenants", {"tenant": "", "total_epsilon": 1})
            assert exc.value.status == 400
            with pytest.raises(ServeResponseError) as exc:
                client.request("GET", "/v1/nope", None)
            assert exc.value.status == 404

    def test_malformed_json_is_a_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.bound_port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/tenants", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_budget_refusal_maps_to_409(self, server):
        with _client(server) as client:
            _seed_tenant(client)
            client.fit("acme", "linear", 3, [9.0], seed=1)
            with pytest.raises(ServeResponseError) as exc:
                client.fit("acme", "linear", 3, [9.0], seed=2)
            assert exc.value.status == 409
            assert exc.value.code == "budget_exhausted"
            assert not exc.value.retryable

    def test_readyz_reports_admission_gauges(self, server):
        with _client(server) as client:
            body = client.readyz()
            assert body["max_inflight"] == server.max_inflight
            assert body["max_queue"] == server.max_queue
            assert body["inflight"] >= 0


class TestBackpressure:
    @pytest.fixture
    def tiny_server(self, tmp_path):
        """One inflight slot, zero queue slots: the sheddiest possible box."""
        app = ServeApp(tmp_path / "data", Session(_policy()))
        release = threading.Event()
        entered = threading.Event()
        original = app.status

        def slow_status(name):
            entered.set()
            release.wait(10.0)
            return original(name)

        app.status = slow_status
        http = ServeHTTP(app, port=0, max_inflight=1, max_queue=0,
                         snapshot_interval=0.0)
        thread = http.start_background()
        yield http, entered, release
        release.set()
        http.request_stop()
        thread.join(15.0)
        assert not thread.is_alive()

    def test_overload_sheds_retryably_never_queues(self, tiny_server):
        http, entered, release = tiny_server
        with ServeClient("127.0.0.1", http.bound_port, timeout=30) as client:
            client.create_tenant("acme", 10.0)

            blocker_error = []
            def blocker():
                blocked = ServeClient("127.0.0.1", http.bound_port, timeout=30)
                try:
                    blocked.status("acme")
                except ServeResponseError as err:  # pragma: no cover
                    blocker_error.append(err)
                finally:
                    blocked.close()

            thread = threading.Thread(target=blocker)
            thread.start()
            assert entered.wait(10.0), "blocker request never reached the app"
            # slot busy + queue of zero: this request must shed immediately,
            # not wait behind the blocker
            started = time.monotonic()
            with pytest.raises(ServeResponseError) as exc:
                client.status("acme")
            assert time.monotonic() - started < 5.0
            assert exc.value.status == 503
            assert exc.value.code == "overloaded"
            assert exc.value.retryable
            # health probes bypass admission even while saturated
            assert client.healthz()["status"] == "ok"
            ready = client.readyz()
            assert ready["inflight"] == 1
            release.set()
            thread.join(10.0)
            assert not blocker_error
        summary = http.app.session.recorder.summary()
        assert summary["counters"]["serve.shed_requests"] >= 1
        assert summary["gauges"]["serve.inflight"]["max"] >= 1.0

    def test_shed_clients_recover_with_retries(self, tiny_server):
        http, entered, release = tiny_server
        with ServeClient("127.0.0.1", http.bound_port, timeout=30) as client:
            client.create_tenant("acme", 10.0)
            thread = threading.Thread(
                target=lambda: ServeClient(
                    "127.0.0.1", http.bound_port, timeout=30
                ).status("acme")
            )
            thread.start()
            assert entered.wait(10.0)
            # schedule the slot to free up while the shed client backs off
            threading.Timer(0.3, release.set).start()
            result = client.with_retries(
                lambda: client.status("acme"), max_retries=10,
                backoff_seconds=0.1,
            )
            assert result["tenant"] == "acme"
            thread.join(10.0)


class TestDeadlines:
    def test_deadline_header_rejects_retryably(self, server):
        with _client(server) as client:
            _seed_tenant(client)
            # 1ms can expire crossing the wire / queue — and must reject
            # *before* the spend when it does
            accepted = 0
            rejected = 0
            for seed in range(3):
                try:
                    client.fit(
                        "acme", "linear", 3, [0.5], seed=seed, deadline_ms=1
                    )
                    accepted += 1
                except ServeResponseError as err:
                    assert err.status == 504
                    assert err.code == "deadline_exceeded"
                    assert err.retryable
                    rejected += 1
            # the ledger records exactly the accepted fits: a deadline
            # rejection happens strictly before the spend becomes durable
            spent = client.status("acme")["budget"]["spent"]
            assert spent == pytest.approx(0.5 * accepted)
            assert accepted + rejected == 3

    def test_generous_deadline_passes_through(self, server):
        with _client(server) as client:
            _seed_tenant(client)
            result = client.fit(
                "acme", "linear", 3, [0.5], seed=1, deadline_ms=60_000
            )
            assert result["spent_epsilon"] == pytest.approx(0.5)

    def test_bad_deadline_rejected(self, server):
        with _client(server) as client:
            _seed_tenant(client)
            with pytest.raises(ServeResponseError) as exc:
                client.request(
                    "POST", "/v1/fit",
                    {"tenant": "acme", "task": "linear", "dims": 3,
                     "epsilons": [0.5], "seed": 1, "deadline_ms": -5},
                )
            assert exc.value.status == 400


class TestShutdown:
    def test_shutdown_endpoint_drains_and_persists(self, tmp_path):
        app = ServeApp(tmp_path / "data", Session(_policy()))
        http = ServeHTTP(app, port=0, snapshot_interval=0.0)
        thread = http.start_background()
        with ServeClient("127.0.0.1", http.bound_port, timeout=30) as client:
            _seed_tenant(client)
            client.fit("acme", "linear", 3, [1.0], seed=5)
            assert client.shutdown()["status"] == "draining"
        thread.join(15.0)
        assert not thread.is_alive()
        # the drain snapshot made the rows durable alongside the ledger
        fresh = ServeApp(tmp_path / "data", Session(_policy()))
        try:
            status = fresh.status("acme")
            assert status["budget"]["spent"] == pytest.approx(1.0)
            assert status["accumulators"]["linear-d3"]["n_rows"] == 60
        finally:
            fresh.close()

    def test_periodic_snapshot_loop_runs(self, tmp_path):
        session = Session(_policy())
        app = ServeApp(tmp_path / "data", session)
        http = ServeHTTP(app, port=0, snapshot_interval=0.05)
        thread = http.start_background()
        try:
            with ServeClient("127.0.0.1", http.bound_port, timeout=30) as client:
                _seed_tenant(client)
                deadline = time.monotonic() + 10.0
                acc = tmp_path / "data" / "tenants" / "acme" / "acc" / "linear-d3.acc"
                while not acc.exists() and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert acc.exists(), "periodic snapshot never wrote the container"
        finally:
            http.request_stop()
            thread.join(15.0)
        assert session.recorder.summary()["counters"]["serve.snapshot_writes"] >= 1
