"""Tenant-cache eviction: bounded residency, transparent reload, bit-identity.

The leak this guards against: ``TenantRegistry`` historically kept every
``TenantState`` (accumulators, ledger, journal handle) in memory forever —
unbounded growth under many-tenant load.  Eviction must bound the map
*without* being observable in results: a forced snapshot before the drop
plus journal-backed budgets make the post-eviction fit bitwise identical
to an unevicted run.
"""

import numpy as np

from repro.serve.app import ServeApp
from repro.serve.loadgen import synthetic_batch
from repro.serve.state import TenantRegistry
from repro.session import ExecutionPolicy, Session


def _policy(**overrides):
    base = dict(
        scale="smoke", telemetry="summary", executor="serial",
        failure_mode="fallback",
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


def _app(tmp_path, **app_kwargs):
    return ServeApp(tmp_path / "data", Session(_policy()), **app_kwargs)


def _ingest_body(tenant, rows=60, dims=3, batch=0):
    X, y = synthetic_batch(11, 0, batch, rows, dims)
    return {
        "tenant": tenant, "task": "linear", "dims": dims,
        "x": X.tolist(), "y": y.tolist(),
    }


def _fit_body(tenant, epsilons=(0.5, 1.0), seed=42, dims=3):
    return {
        "tenant": tenant, "task": "linear", "dims": dims,
        "epsilons": list(epsilons), "seed": seed,
    }


class TestBoundedResidency:
    def test_lru_cap_bounds_map_under_many_tenant_load(self, tmp_path):
        with _app(tmp_path, max_resident_tenants=3) as app:
            for i in range(12):
                name = f"t{i:02d}"
                app.create_tenant({"tenant": name, "total_epsilon": 10.0})
                app.ingest(_ingest_body(name))
                assert len(app.registry._tenants) <= 3
            summary = app.session.telemetry_summary()
            assert summary["counters"]["serve.tenant_evictions"] >= 9
            # Every tenant is still reachable (reload from disk) ...
            for i in range(12):
                assert app.status(f"t{i:02d}")["accumulators"]
            # ... and residency never exceeded the cap to answer that.
            assert len(app.registry._tenants) <= 3

    def test_idle_ttl_evicts_on_periodic_cycle(self, tmp_path):
        with _app(tmp_path, tenant_idle_ttl=1e-6) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            app.ingest(_ingest_body("acme"))
            app.periodic_snapshot()  # cycle: snapshot + evict (idle >> ttl)
            assert "acme" not in app.registry._tenants
            # Transparent reload on next touch.
            assert app.status("acme")["accumulators"]

    def test_leased_tenant_is_never_evicted(self, tmp_path):
        with _app(tmp_path, tenant_idle_ttl=1e-6) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            with app.registry.lease("acme") as tenant:
                app.registry.evict_idle()
                assert "acme" in app.registry._tenants
                assert not tenant._evicted
            app.registry.evict_idle()
            assert "acme" not in app.registry._tenants

    def test_registry_rejects_nonsense_bounds(self, tmp_path):
        import pytest

        from repro.serve.protocol import BadRequestError

        with pytest.raises(BadRequestError):
            TenantRegistry(tmp_path / "d1", max_resident=0)
        with pytest.raises(BadRequestError):
            TenantRegistry(tmp_path / "d2", idle_ttl=0.0)


class TestEvictionBitIdentity:
    import pytest as _pytest

    @_pytest.mark.parametrize("evict_point", ["mid-stream", "before-fit"])
    def test_post_eviction_fit_is_bitwise_identical(self, tmp_path, evict_point):
        """The regression teeth: evict either between two ingests (the
        accumulator's partial tail must survive the snapshot as raw rows,
        or block boundaries shift and bits move) or between ingest and
        fit, then compare against an unevicted control run — digests and
        coefficient bits must match exactly."""

        def run(root, evict):
            with ServeApp(
                root, Session(_policy()), tenant_idle_ttl=1e-6
            ) as app:
                app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
                app.ingest(_ingest_body("acme"))
                if evict and evict_point == "mid-stream":
                    assert app.registry.evict_idle() == 1
                    assert "acme" not in app.registry._tenants
                app.ingest(_ingest_body("acme", batch=1))  # reloads if evicted
                if evict and evict_point == "before-fit":
                    assert app.registry.evict_idle() == 1
                    assert "acme" not in app.registry._tenants
                result = app.fit(_fit_body("acme"))
                return result

        control = run(tmp_path / "control", evict=False)
        evicted = run(tmp_path / "evicted", evict=True)
        assert evicted["digest"] == control["digest"]
        assert np.array_equal(
            np.asarray(evicted["omegas"], dtype=float),
            np.asarray(control["omegas"], dtype=float),
        )
        assert evicted["n_rows"] == control["n_rows"]
        assert evicted["spent_epsilon"] == control["spent_epsilon"]

    def test_budget_survives_eviction(self, tmp_path):
        with _app(tmp_path, tenant_idle_ttl=1e-6) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 2.0})
            app.ingest(_ingest_body("acme"))
            app.fit(_fit_body("acme", epsilons=(0.5, 1.0)))
            app.registry.evict_idle()
            # The reloaded ledger remembers the 1.5 spend: the next fit
            # must refuse, not double-spend.
            import pytest

            from repro.serve.protocol import BudgetRefusedError

            with pytest.raises(BudgetRefusedError):
                app.fit(_fit_body("acme", epsilons=(0.4, 0.4)))
            status = app.status("acme")
            assert status["budget"]["spent"] == 1.5
