"""Partitioned tenants: parallel-composition budget accounting.

Partitions declare disjoint user subsets, so per-partition fit costs
compose as a running **maximum** against the tenant's sequential ledger
— each partitioned fit charges only the amount by which its partition's
new total exceeds the previous maximum, and fits fully covered by the
maximum are recorded as durable zero-cost annotations.  The accounting
must survive a restart bitwise (the totals are re-derived from tagged
ledger notes), and partitioned releases must not share noise streams
with each other or with the unpartitioned fit under one seed.
"""

import math

import pytest

from repro.exceptions import BudgetExhaustedError
from repro.serve.app import ServeApp
from repro.serve.loadgen import synthetic_batch
from repro.serve.protocol import BadRequestError, BudgetRefusedError
from repro.serve.state import TenantState, partition_note_tag
from repro.session import ExecutionPolicy, Session


def _app(tmp_path, **policy_overrides):
    base = dict(
        scale="smoke", telemetry="summary", executor="serial",
        failure_mode="fallback",
    )
    base.update(policy_overrides)
    return ServeApp(tmp_path / "data", Session(ExecutionPolicy(**base)))


def _ingest(app, partition=None, batch=0, rows=40, dims=3, tenant="acme"):
    X, y = synthetic_batch(11, 0, batch, rows, dims)
    body = {
        "tenant": tenant, "task": "linear", "dims": dims,
        "x": X.tolist(), "y": y.tolist(),
    }
    if partition is not None:
        body["partition"] = partition
    return app.ingest(body)


def _fit(app, partition=None, epsilons=(0.5,), seed=42, dims=3, tenant="acme"):
    body = {
        "tenant": tenant, "task": "linear", "dims": dims,
        "epsilons": list(epsilons), "seed": seed,
    }
    if partition is not None:
        body["partition"] = partition
    return app.fit(body)


class TestAccKey:
    def test_partition_suffix_is_unambiguous(self):
        assert TenantState.acc_key("linear", 3) == "linear-d3"
        assert TenantState.acc_key("linear", 3, "p0") == "linear-d3+p0"
        # '+' is outside the partition alphabet, so the two key spaces
        # cannot collide.
        assert TenantState.acc_key("linear", 3, "p0") != TenantState.acc_key(
            "linear", 3
        )


class TestPartitionedAccumulators:
    def test_rows_route_to_their_partition(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0", rows=40)
            _ingest(app, partition="p1", rows=30, batch=1)
            status = app.status("acme")
            accs = status["accumulators"]
            assert accs["linear-d3+p0"]["n_rows"] == 40
            assert accs["linear-d3+p1"]["n_rows"] == 30
            assert "linear-d3" not in accs

    def test_partition_fit_needs_partition_rows(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0")
            with pytest.raises(BadRequestError):
                _fit(app, partition="p1")
            with pytest.raises(BadRequestError):
                _fit(app)  # unpartitioned accumulator has no rows either


class TestParallelComposition:
    def test_max_not_sum(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            for k, partition in enumerate(("p0", "p1", "p2")):
                _ingest(app, partition=partition, batch=k)
            # First fit raises the maximum from 0 -> 0.5: full charge.
            r0 = _fit(app, partition="p0", epsilons=(0.5,))
            assert r0["spent_epsilon"] == pytest.approx(0.5)
            assert r0["partition_epsilon"] == pytest.approx(0.5)
            # p1 at the same cost is fully covered by the maximum.
            r1 = _fit(app, partition="p1", epsilons=(0.5,))
            assert r1["spent_epsilon"] == 0.0
            # p2 exceeding the maximum charges only the excess.
            r2 = _fit(app, partition="p2", epsilons=(0.8,))
            assert r2["spent_epsilon"] == pytest.approx(0.3)
            status = app.status("acme")
            assert status["budget"]["spent"] == pytest.approx(0.8)
            assert status["budget"]["partitions"] == pytest.approx(
                {"p0": 0.5, "p1": 0.5, "p2": 0.8}
            )

    def test_repeat_fits_on_one_partition_compose_sequentially(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0")
            _fit(app, partition="p0", epsilons=(0.5,))
            # Same partition again: its own total grows 0.5 -> 1.0, all
            # of which exceeds the old maximum.
            r = _fit(app, partition="p0", epsilons=(0.5,))
            assert r["spent_epsilon"] == pytest.approx(0.5)
            assert app.status("acme")["budget"]["spent"] == pytest.approx(1.0)

    def test_mixed_with_unpartitioned_fits(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app)
            _ingest(app, partition="p0", batch=1)
            plain = _fit(app, epsilons=(1.0,))
            assert plain["spent_epsilon"] == pytest.approx(1.0)
            part = _fit(app, partition="p0", epsilons=(0.5,))
            assert part["spent_epsilon"] == pytest.approx(0.5)
            # ledger = unpartitioned sum + partition maximum.
            assert app.status("acme")["budget"]["spent"] == pytest.approx(1.5)

    def test_refusal_leaves_totals_unchanged(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 1.0})
            _ingest(app, partition="p0")
            _fit(app, partition="p0", epsilons=(0.9,))
            with pytest.raises(BudgetRefusedError):
                _fit(app, partition="p0", epsilons=(0.9,))
            status = app.status("acme")
            assert status["budget"]["partitions"] == pytest.approx({"p0": 0.9})
            assert status["budget"]["spent"] == pytest.approx(0.9)

    def test_zero_delta_is_durably_annotated(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0")
            _ingest(app, partition="p1", batch=1)
            _fit(app, partition="p0", epsilons=(0.5,))
            _fit(app, partition="p1", epsilons=(0.5,))
            with app.registry.lease("acme") as tenant:
                notes = [e.note for e in tenant.budget.ledger]
                zero = [e for e in tenant.budget.ledger if e.epsilon == 0.0]
            assert any("parallel-covered" in note for note in notes)
            assert len(zero) == 1
            assert partition_note_tag("p1", 0.5) in zero[0].note


class TestRestartRebuild:
    def test_partition_totals_survive_restart(self, tmp_path):
        data = tmp_path / "data"
        with ServeApp(
            data, Session(ExecutionPolicy(executor="serial", scale="smoke"))
        ) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0")
            _ingest(app, partition="p1", batch=1)
            _fit(app, partition="p0", epsilons=(0.5,))
            _fit(app, partition="p1", epsilons=(0.7,))
            before = app.status("acme")["budget"]
        with ServeApp(
            data, Session(ExecutionPolicy(executor="serial", scale="smoke"))
        ) as app:
            after = app.status("acme")["budget"]
            assert after["partitions"] == pytest.approx(before["partitions"])
            assert after["spent"] == pytest.approx(before["spent"])
            # The restored maxima keep charging deltas, not full costs.
            r = _fit(app, partition="p0", epsilons=(0.5,))
            assert r["spent_epsilon"] == pytest.approx(0.3)  # 1.0 - max(0.7)

    def test_charge_partitioned_direct_restore_equivalence(self, tmp_path):
        """The TenantState-level rule, without the HTTP-ish plumbing."""
        from repro.privacy.budget import PrivacyBudget

        journal = tmp_path / "b.journal"
        budget = PrivacyBudget(10.0, journal_path=journal)
        tenant = TenantState("t", tmp_path, budget)
        assert tenant.charge_partitioned("a", 0.4, "fit") == pytest.approx(0.4)
        assert tenant.charge_partitioned("b", 0.3, "fit") == 0.0
        assert tenant.charge_partitioned("b", 0.3, "fit") == pytest.approx(0.2)
        assert budget.spent == pytest.approx(0.6)
        budget.close()

        restored = PrivacyBudget.restore(journal)
        rebuilt = TenantState("t", tmp_path, restored)
        assert rebuilt.partition_spent() == pytest.approx({"a": 0.4, "b": 0.6})
        assert restored.spent == pytest.approx(0.6)
        restored.close()


class TestPartitionNoiseIndependence:
    def test_partitions_do_not_share_noise_under_one_seed(self, tmp_path):
        """Same rows, same seed, different partitions => different noise.

        With shared draws, subtracting two releases over identical rows
        would cancel the noise exactly; keyed partition substreams make
        the difference nonzero.
        """
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0", batch=0)
            _ingest(app, partition="p1", batch=0)  # identical rows
            _ingest(app, batch=0)  # and the unpartitioned accumulator
            r0 = _fit(app, partition="p0", seed=42)
            r1 = _fit(app, partition="p1", seed=42)
            plain = _fit(app, seed=42)
            assert r0["omegas"] != r1["omegas"]
            assert r0["omegas"] != plain["omegas"]

    def test_partition_fit_is_reproducible(self, tmp_path):
        with _app(tmp_path) as app:
            app.create_tenant({"tenant": "acme", "total_epsilon": 10.0})
            _ingest(app, partition="p0")
            a = _fit(app, partition="p0", seed=7)
        with _app(tmp_path, executor="thread") as app:
            b = _fit(app, partition="p0", seed=7)
            assert a["digest"] == b["digest"]
