"""Stream independence and stability of the harness's cell substreams.

The reproducibility contract of the cell runtime has two legs:

* every (algorithm, repetition, fold) cell owns a statistically independent
  substream — no two cells may collide, or their "independent" noise draws
  would be identical;
* the per-algorithm key derivation is **stable**: the values below are part
  of the on-disk reproducibility story, and silently changing them (for
  example by renaming an algorithm) would reshuffle every published noise
  stream.  A rename must therefore show up here as a failing pin.
"""

import numpy as np
import pytest

from repro.experiments.config import FULL, SMOKE
from repro.experiments.harness import _algorithm_stream_key
from repro.privacy.rng import derive_substream
from repro.runtime import algorithm_stream_key

#: All registered Table-2 algorithms (linear + logistic panels + extensions).
ALGORITHMS = (
    "FM",
    "DPME",
    "FP",
    "NoPrivacy",
    "Truncated",
    "ObjectivePerturbation",
    "OutputPerturbation",
)

#: Pinned key values.  These MUST NOT change: they seed every published
#: noise stream.  If this test fails after renaming an algorithm, the rename
#: silently reshuffled the noise — revert or bump results explicitly.
PINNED_KEYS = {
    "FM": 3698514594,
    "DPME": 2956131501,
    "FP": 2223591879,
    "NoPrivacy": 3776807705,
    "Truncated": 3654941939,
    "ObjectivePerturbation": 1643546876,
    "OutputPerturbation": 2366692690,
}


class TestStreamKeyStability:
    def test_pinned_values(self):
        for name, expected in PINNED_KEYS.items():
            assert algorithm_stream_key(name) == expected, name

    def test_harness_alias_is_the_same_function(self):
        assert _algorithm_stream_key is algorithm_stream_key

    def test_case_sensitive(self):
        # The registry lower-cases lookups but the stream key is derived
        # from the display name; a case change is a rename.
        assert algorithm_stream_key("FM") != algorithm_stream_key("fm")

    def test_all_algorithm_keys_distinct(self):
        keys = [algorithm_stream_key(name) for name in ALGORITHMS]
        assert len(set(keys)) == len(keys)


class TestSubstreamIndependence:
    @pytest.mark.parametrize("preset", [SMOKE, FULL], ids=lambda p: p.name)
    def test_no_collisions_across_cells(self, preset):
        """First 64-bit draws of every (algorithm, rep, fold) cell differ.

        At the paper's FULL scale this covers 7 x 50 x 5 = 1750 cells; a
        single shared draw would make two cells' "independent" Laplace
        noise identical.
        """
        draws = {}
        for name in ALGORITHMS:
            key = algorithm_stream_key(name)
            for rep in range(preset.repetitions):
                for fold in range(preset.folds):
                    gen = derive_substream(0, [key, rep, fold])
                    value = int(gen.integers(0, 2**63))
                    assert value not in draws, (
                        f"substream collision: {(name, rep, fold)} vs "
                        f"{draws[value]}"
                    )
                    draws[value] = (name, rep, fold)

    def test_rep_streams_disjoint_from_nonzero_fold_streams(self):
        """The (key, rep) data stream never equals a fold >= 1 cell stream."""
        key = algorithm_stream_key("FM")
        rep_draws = {
            int(derive_substream(0, [key, rep]).integers(0, 2**63))
            for rep in range(FULL.repetitions)
        }
        cell_draws = {
            int(derive_substream(0, [key, rep, fold]).integers(0, 2**63))
            for rep in range(FULL.repetitions)
            for fold in range(1, FULL.folds)
        }
        assert not rep_draws & cell_draws

    def test_known_fold0_aliasing_is_pinned(self):
        """Documented quirk: the rep stream IS the fold-0 cell stream.

        ``numpy.random.SeedSequence`` zero-pads entropy to its 4-word pool,
        so ``[seed, key, rep]`` and ``[seed, key, rep, 0]`` seed identical
        streams whenever the tag fits inside the pool.  The harness has
        always derived its repetition data stream and its fold-0 noise
        stream from exactly those two tags — the fold-0 noise bits replay
        the bits that drew the subsample and shuffle.  Marginal noise
        distributions are unaffected, but the streams are not independent.

        Pinned deliberately: "fixing" the derivation reshuffles every noise
        stream ever produced by the harness, which must be an explicit,
        versioned decision (see ROADMAP), not a silent side effect.
        """
        key = algorithm_stream_key("FM")
        a = derive_substream(0, [key, 3]).integers(0, 2**63)
        b = derive_substream(0, [key, 3, 0]).integers(0, 2**63)
        assert a == b

    def test_same_tag_reproduces(self):
        key = algorithm_stream_key("FM")
        a = derive_substream(7, [key, 3, 1]).laplace(0.0, 1.0, size=8)
        b = derive_substream(7, [key, 3, 1]).laplace(0.0, 1.0, size=8)
        np.testing.assert_array_equal(a, b)

    def test_seed_separates_everything(self):
        key = algorithm_stream_key("FM")
        a = derive_substream(0, [key, 0, 0]).integers(0, 2**63)
        b = derive_substream(1, [key, 0, 0]).integers(0, 2**63)
        assert a != b


class TestStreamVersions:
    """Both derivation formats are pinned; version 2 kills the alias.

    Version 1 is the historical derivation behind every published stream;
    version 2 appends a length/domain-separator word so trailing-zero tags
    stop aliasing.  Each version's streams must never move — the pins below
    fail loudly if either derivation changes.
    """

    def test_version1_is_the_default_and_unchanged(self):
        key = algorithm_stream_key("FM")
        default = derive_substream(0, [key, 3]).integers(0, 2**63)
        explicit = derive_substream(0, [key, 3], stream_version=1).integers(0, 2**63)
        assert default == explicit

    def test_version2_breaks_the_fold0_alias(self):
        """The quirk version 2 exists to fix: rep stream != fold-0 stream."""
        key = algorithm_stream_key("FM")
        a = derive_substream(0, [key, 3], stream_version=2).integers(0, 2**63)
        b = derive_substream(0, [key, 3, 0], stream_version=2).integers(0, 2**63)
        assert a != b

    def test_version2_no_collisions_across_cells(self):
        """Version 2 keeps the cross-cell independence version 1 had."""
        draws = {}
        for name in ALGORITHMS:
            key = algorithm_stream_key(name)
            for rep in range(FULL.repetitions):
                for fold in range(FULL.folds):
                    gen = derive_substream(0, [key, rep, fold], stream_version=2)
                    value = int(gen.integers(0, 2**63))
                    assert value not in draws, (name, rep, fold)
                    draws[value] = (name, rep, fold)
        # ... and adds the rep-stream disjointness version 1 lacked at fold 0.
        for name in ALGORITHMS:
            key = algorithm_stream_key(name)
            for rep in range(FULL.repetitions):
                gen = derive_substream(0, [key, rep], stream_version=2)
                assert int(gen.integers(0, 2**63)) not in draws, (name, rep)

    def test_both_versions_pinned(self):
        """First draws of both derivations MUST NOT change.

        A version-1 drift silently reshuffles every published stream; a
        version-2 drift reshuffles anything opted into the fix.  Either
        must be an explicit new stream_version, not an edit.
        """
        v1 = derive_substream(0, [1, 2], stream_version=1).integers(0, 2**63)
        v2 = derive_substream(0, [1, 2], stream_version=2).integers(0, 2**63)
        assert v1 == 8132279761646769457
        assert v2 == 4791994034454347323

    def test_versions_are_reproducible_and_distinct(self):
        a = derive_substream(7, [5, 6], stream_version=2).laplace(0.0, 1.0, size=4)
        b = derive_substream(7, [5, 6], stream_version=2).laplace(0.0, 1.0, size=4)
        np.testing.assert_array_equal(a, b)
        c = derive_substream(7, [5, 6], stream_version=1).laplace(0.0, 1.0, size=4)
        assert not np.array_equal(a, c)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            derive_substream(0, [1], stream_version=3)
