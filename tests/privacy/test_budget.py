"""Tests for the privacy-budget accountant."""

import pytest

from repro.exceptions import BudgetExhaustedError, InvalidBudgetError
from repro.privacy.budget import PrivacyBudget


class TestConstruction:
    def test_valid(self):
        assert PrivacyBudget(1.0).total == 1.0

    def test_rejects_zero(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(0.0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(-1.0)

    def test_rejects_infinite(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(float("inf"))


class TestSpending:
    def test_sequential_composition_adds(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.25)
        budget.spend(0.25)
        assert budget.spent == pytest.approx(0.5)
        assert budget.remaining == pytest.approx(0.5)

    def test_exhaustion_raises_with_context(self):
        budget = PrivacyBudget(0.5)
        budget.spend(0.4)
        with pytest.raises(BudgetExhaustedError) as err:
            budget.spend(0.2)
        assert err.value.requested == pytest.approx(0.2)
        assert err.value.remaining == pytest.approx(0.1)

    def test_can_spend(self):
        budget = PrivacyBudget(1.0)
        assert budget.can_spend(1.0)
        budget.spend(0.7)
        assert not budget.can_spend(0.4)

    def test_exact_exhaustion_allowed(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.5)
        budget.spend(0.5)
        assert budget.remaining == pytest.approx(0.0)

    def test_float_accumulation_tolerated(self):
        budget = PrivacyBudget(1.0)
        for _ in range(10):
            budget.spend(0.1)
        assert budget.remaining == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("total", [1.0, 7.0, 1e6, 1e-3])
    def test_sevenths_exhaust_exactly_at_any_magnitude(self, total):
        """Regression: ``total/7`` seven times must always be spendable.

        The slack must scale with the total — an absolute 1e-12 tolerance
        passes at total=1.0 but rejects the seventh spend at total=1e6,
        where one ulp is already ~1.2e-10.
        """
        budget = PrivacyBudget(total)
        for _ in range(7):
            budget.spend(total / 7)
        assert budget.remaining == pytest.approx(0.0, abs=1e-6 * total)
        with pytest.raises(BudgetExhaustedError):
            budget.spend(total * 1e-3)

    def test_rejects_non_positive_spend(self):
        budget = PrivacyBudget(1.0)
        with pytest.raises(InvalidBudgetError):
            budget.spend(0.0)
        with pytest.raises(InvalidBudgetError):
            budget.spend(-0.1)

    def test_ledger_records_notes(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.3, note="histogram")
        budget.spend(0.2, note="fit")
        assert [e.note for e in budget.ledger] == ["histogram", "fit"]
        assert [e.epsilon for e in budget.ledger] == [0.3, 0.2]

    def test_repr(self):
        budget = PrivacyBudget(2.0)
        budget.spend(0.5)
        text = repr(budget)
        assert "2" in text and "0.5" in text


class TestSplit:
    def test_children_share_parent_budget(self):
        budget = PrivacyBudget(1.0)
        children = budget.split([0.5, 0.5])
        assert [c.total for c in children] == [0.5, 0.5]
        assert budget.remaining == pytest.approx(0.0)

    def test_partial_fractions_allowed(self):
        budget = PrivacyBudget(1.0)
        children = budget.split([0.25, 0.25])
        assert [c.total for c in children] == [0.25, 0.25]

    def test_split_respects_prior_spend(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.5)
        children = budget.split([1.0])
        assert children[0].total == pytest.approx(0.5)

    def test_overcommitted_fractions_rejected(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(1.0).split([0.7, 0.7])

    def test_empty_fractions_rejected(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(1.0).split([])

    def test_non_positive_fraction_rejected(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(1.0).split([0.5, 0.0])

    def test_exhausted_budget_cannot_split(self):
        budget = PrivacyBudget(1.0)
        budget.spend(1.0)
        with pytest.raises(BudgetExhaustedError):
            budget.split([0.5])


class TestParallelComposition:
    def test_max_rule(self):
        assert PrivacyBudget.parallel_composition([0.1, 0.5, 0.3]) == 0.5

    def test_single(self):
        assert PrivacyBudget.parallel_composition([0.2]) == 0.2

    def test_rejects_empty(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget.parallel_composition([])

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget.parallel_composition([0.1, -0.2])
