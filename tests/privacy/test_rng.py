"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.privacy.rng import derive_substream, ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).integers(0, 1 << 30)
        b = ensure_rng(42).integers(0, 1 << 30)
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_legacy_randomstate_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(np.random.RandomState(0))

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_count(self):
        children = spawn(0, 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = spawn(0, 2)
        a = children[0].normal(size=100)
        b = children[1].normal(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_zero_count(self):
        assert spawn(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)


class TestDeriveSubstream:
    def test_same_tag_same_stream(self):
        a = derive_substream(7, [1, 2]).integers(0, 1 << 30)
        b = derive_substream(7, [1, 2]).integers(0, 1 << 30)
        assert a == b

    def test_different_tags_differ(self):
        a = derive_substream(7, [1, 2]).integers(0, 1 << 30, size=4)
        b = derive_substream(7, [1, 3]).integers(0, 1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_scalar_tag(self):
        a = derive_substream(7, 3).integers(0, 1 << 30)
        b = derive_substream(7, [3]).integers(0, 1 << 30)
        assert a == b

    def test_integer_seed_not_consumed(self):
        # Deriving from an int seed must not depend on call order.
        first = derive_substream(11, [0]).integers(0, 1 << 30)
        derive_substream(11, [5])  # unrelated derivation in between
        second = derive_substream(11, [0]).integers(0, 1 << 30)
        assert first == second

    def test_generator_parent_accepted(self):
        gen = np.random.default_rng(0)
        child = derive_substream(gen, [1])
        assert isinstance(child, np.random.Generator)
