"""Tests for the two-sided geometric mechanism."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidBudgetError, SensitivityError
from repro.privacy.geometric import GeometricMechanism, two_sided_geometric_noise


class TestNoise:
    def test_integer_output(self):
        noise = two_sided_geometric_noise(1.0, 1.0, rng=0)
        assert isinstance(noise, int)

    def test_array_dtype(self):
        noise = two_sided_geometric_noise(1.0, 1.0, size=10, rng=0)
        assert noise.dtype == np.int64

    def test_zero_sensitivity(self):
        assert two_sided_geometric_noise(0.0, 1.0, rng=0) == 0

    def test_symmetric(self):
        draws = two_sided_geometric_noise(1.0, 1.0, size=100_000, rng=1)
        assert abs(float(np.mean(draws))) < 0.02

    def test_variance_matches_theory(self):
        # Var = 2a / (1 - a)^2 with a = exp(-eps/S).
        eps, S = 1.0, 1.0
        a = math.exp(-eps / S)
        expected = 2 * a / (1 - a) ** 2
        draws = two_sided_geometric_noise(S, eps, size=200_000, rng=2)
        assert float(np.var(draws)) == pytest.approx(expected, rel=0.03)

    def test_pmf_ratio_bounded_by_exp_eps(self):
        # Adjacent-count probability ratio <= e^eps: empirical check.
        eps = 0.5
        draws = two_sided_geometric_noise(1.0, eps, size=400_000, rng=3)
        values, counts = np.unique(draws, return_counts=True)
        probs = dict(zip(values.tolist(), (counts / draws.size).tolist()))
        for k in range(-3, 3):
            if probs.get(k, 0) > 1e-3 and probs.get(k + 1, 0) > 1e-3:
                ratio = probs[k] / probs[k + 1]
                assert ratio <= math.exp(eps) * 1.1

    def test_rejects_bad_epsilon(self):
        with pytest.raises(InvalidBudgetError):
            two_sided_geometric_noise(1.0, 0.0)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(SensitivityError):
            two_sided_geometric_noise(-1.0, 1.0)


class TestMechanism:
    def test_randomize_integer_counts(self):
        mech = GeometricMechanism(epsilon=1.0, sensitivity=2.0, rng=0)
        counts = np.array([5, 0, 12], dtype=np.int64)
        noisy = mech.randomize(counts)
        assert noisy.dtype == np.int64
        assert noisy.shape == counts.shape

    def test_rejects_float_counts(self):
        mech = GeometricMechanism(epsilon=1.0, rng=0)
        with pytest.raises(TypeError):
            mech.randomize(np.array([1.5, 2.5]))

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidBudgetError):
            GeometricMechanism(epsilon=-1.0)
        with pytest.raises(SensitivityError):
            GeometricMechanism(epsilon=1.0, sensitivity=-2.0)
