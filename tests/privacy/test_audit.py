"""Tests for the empirical privacy auditor.

The auditor must (a) report a loss consistent with the nominal epsilon for a
correctly calibrated mechanism and (b) *detect* a miscalibrated mechanism —
both directions are exercised so the audit itself is trustworthy when the
integration suite points it at the Functional Mechanism.
"""

import numpy as np
import pytest

from repro.privacy.audit import audit_mechanism, estimate_privacy_loss
from repro.privacy.laplace import laplace_noise


def _sum_query_mechanism(scale_factor: float):
    """Laplace mechanism on a sum query with sensitivity 1, budget 1.

    ``scale_factor < 1`` deliberately under-noises (breaks the guarantee).
    """

    def mechanism(db: np.ndarray, gen: np.random.Generator) -> float:
        return float(db.sum()) + float(gen.laplace(0.0, scale_factor * 1.0))

    return mechanism


@pytest.fixture
def neighbor_dbs():
    a = np.zeros(8)
    b = np.zeros(8)
    b[0] = 1.0  # replace-one neighbor, sum query sensitivity 1
    return a, b


class TestEstimatePrivacyLoss:
    def test_identical_samples_give_zero(self):
        samples = np.random.default_rng(0).normal(size=5000)
        eps_hat, bins = estimate_privacy_loss(samples, samples.copy())
        assert eps_hat == pytest.approx(0.0, abs=0.05)
        assert bins > 0

    def test_constant_output_gives_zero(self):
        eps_hat, bins = estimate_privacy_loss(np.ones(100), np.ones(100))
        assert eps_hat == 0.0

    def test_shifted_distributions_detected(self):
        gen = np.random.default_rng(1)
        a = gen.laplace(0.0, 1.0, size=50_000)
        b = gen.laplace(3.0, 1.0, size=50_000)
        eps_hat, _ = estimate_privacy_loss(a, b)
        assert eps_hat > 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_privacy_loss(np.array([]), np.array([1.0]))


@pytest.mark.tier2
class TestAuditMechanism:
    def test_calibrated_mechanism_passes(self, neighbor_dbs):
        a, b = neighbor_dbs
        estimate = audit_mechanism(
            _sum_query_mechanism(1.0), a, b, nominal_epsilon=1.0,
            trials=15_000, rng=0,
        )
        assert estimate.consistent, f"estimated {estimate.epsilon_hat}"

    def test_undernoised_mechanism_detected(self, neighbor_dbs):
        a, b = neighbor_dbs
        # Noise scaled at 1/4 of the required amount -> ~4 epsilon loss.
        estimate = audit_mechanism(
            _sum_query_mechanism(0.25), a, b, nominal_epsilon=1.0,
            trials=15_000, rng=1,
        )
        assert not estimate.consistent
        assert estimate.epsilon_hat > 2.0

    def test_noise_free_mechanism_maximally_leaky(self, neighbor_dbs):
        a, b = neighbor_dbs

        def leaky(db, gen):
            return float(db.sum()) + float(gen.laplace(0.0, 1e-3))

        estimate = audit_mechanism(leaky, a, b, nominal_epsilon=1.0, trials=4000, rng=2)
        assert not estimate.consistent

    def test_vector_output_index(self, neighbor_dbs):
        a, b = neighbor_dbs

        def vector_mechanism(db, gen):
            return np.array([0.0, float(db.sum()) + float(gen.laplace(0.0, 1.0))])

        estimate = audit_mechanism(
            vector_mechanism, a, b, nominal_epsilon=1.0,
            trials=10_000, output_index=1, rng=3,
        )
        assert estimate.epsilon_hat > 0.0
        assert estimate.consistent
