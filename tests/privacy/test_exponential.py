"""Tests for the exponential mechanism."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidBudgetError, SensitivityError
from repro.privacy.exponential import (
    ExponentialMechanism,
    exponential_mechanism_probabilities,
)


class TestProbabilities:
    def test_normalized(self):
        probs = exponential_mechanism_probabilities([1.0, 2.0, 3.0], 1.0, 1.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_in_score(self):
        probs = exponential_mechanism_probabilities([1.0, 2.0, 3.0], 1.0, 1.0)
        assert probs[0] < probs[1] < probs[2]

    def test_exact_two_candidate_ratio(self):
        # p2/p1 = exp(eps (q2 - q1) / (2 S)).
        eps, S = 2.0, 1.0
        probs = exponential_mechanism_probabilities([0.0, 1.0], eps, S)
        assert probs[1] / probs[0] == pytest.approx(math.exp(eps / 2.0))

    def test_uniform_for_equal_scores(self):
        probs = exponential_mechanism_probabilities([5.0, 5.0, 5.0], 1.0, 1.0)
        np.testing.assert_allclose(probs, 1.0 / 3.0)

    def test_large_scores_no_overflow(self):
        probs = exponential_mechanism_probabilities([1e6, 1e6 + 1], 10.0, 1.0)
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(InvalidBudgetError):
            exponential_mechanism_probabilities([1.0], 0.0, 1.0)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(SensitivityError):
            exponential_mechanism_probabilities([1.0], 1.0, 0.0)

    def test_rejects_empty_scores(self):
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([], 1.0, 1.0)

    def test_rejects_non_finite_scores(self):
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([1.0, float("inf")], 1.0, 1.0)


class TestSelection:
    def test_select_returns_valid_index(self):
        mech = ExponentialMechanism(epsilon=1.0, rng=0)
        for _ in range(20):
            assert 0 <= mech.select([1.0, 2.0, 3.0]) < 3

    def test_empirical_frequencies_match_probabilities(self):
        mech = ExponentialMechanism(epsilon=2.0, rng=1)
        scores = [0.0, 1.0, 2.0]
        expected = mech.probabilities(scores)
        draws = np.array([mech.select(scores) for _ in range(20_000)])
        for i in range(3):
            assert np.mean(draws == i) == pytest.approx(expected[i], abs=0.015)

    def test_high_epsilon_concentrates_on_best(self):
        mech = ExponentialMechanism(epsilon=200.0, rng=2)
        draws = [mech.select([0.0, 0.5, 1.0]) for _ in range(100)]
        assert all(d == 2 for d in draws)
