"""Concurrent spenders against one durable ledger.

The serving layer points many request threads at one tenant's
``PrivacyBudget``; these tests pin down what that must mean:

* interleaved spends compose sequentially — the ledger total is the
  exact fsum of every accepted spend, no lost updates;
* over-subscription is refused atomically — accepted spends never
  exceed the total, no matter the interleaving;
* a process that dies *mid-spend* (``os._exit`` between the intent and
  commit journal records) can only ever over-count, never under-count.
"""

import math
import os
import subprocess
import sys
import threading

import pytest

from repro.exceptions import BudgetExhaustedError, InvalidBudgetError
from repro.privacy.budget import PrivacyBudget

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _hammer(budget, amounts, accepted, barrier):
    barrier.wait()
    for amount in amounts:
        try:
            budget.spend(amount, note=f"t{threading.get_ident()}")
        except BudgetExhaustedError:
            continue
        accepted.append(amount)


class TestThreadedSpenders:
    def test_interleaved_spends_never_lose_an_update(self, tmp_path):
        journal = tmp_path / "budget.journal"
        budget = PrivacyBudget(10_000.0, journal_path=journal)
        threads, accepted = [], []
        amounts = [0.013, 0.107, 0.005, 0.29] * 25  # 100 spends per thread
        barrier = threading.Barrier(8)
        for _ in range(8):
            mine = []
            accepted.append(mine)
            threads.append(
                threading.Thread(target=_hammer, args=(budget, amounts, mine, barrier))
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        flat = [a for chunk in accepted for a in chunk]
        assert len(flat) == 8 * len(amounts)  # nothing refused, nothing lost
        assert budget.spent == pytest.approx(math.fsum(flat), abs=1e-9)
        assert len(budget.ledger) == len(flat)
        budget.close()

        # and the journal replays to the same exact total
        restored = PrivacyBudget.restore(journal)
        assert restored.spent == budget.spent
        assert len(restored.ledger) == len(flat)
        restored.close()

    def test_oversubscription_refused_atomically(self, tmp_path):
        journal = tmp_path / "budget.journal"
        total = 1.0
        budget = PrivacyBudget(total, journal_path=journal)
        amounts = [0.3] * 10
        barrier = threading.Barrier(6)
        chunks = []
        threads = []
        for _ in range(6):
            mine = []
            chunks.append(mine)
            threads.append(
                threading.Thread(target=_hammer, args=(budget, amounts, mine, barrier))
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        flat = [a for chunk in chunks for a in chunk]
        # exactly 3 spends of 0.3 fit in 1.0 — whoever won the race
        assert len(flat) == 3
        assert budget.spent == pytest.approx(0.9)
        assert budget.spent <= total + 1e-12
        budget.close()
        restored = PrivacyBudget.restore(journal)
        assert restored.spent == pytest.approx(0.9)
        restored.close()


class TestHardCrash:
    def test_concurrent_spenders_with_midspend_kill_never_underrecord(
        self, tmp_path
    ):
        """Two threads spend concurrently while an armed injector kills the
        whole process between one spend's intent and commit records: the
        replayed ledger must cover every spend the process *reported*
        accepted (written to stdout post-commit), and may legally exceed
        them by at most the one interrupted spend."""
        journal = tmp_path / "budget.journal"
        script = f"""
import os, sys, threading
from repro.privacy.budget import PrivacyBudget

class _Exiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
    def consume(self, site, index):
        if site != "budget.crash":
            return False
        with self._lock:
            self._count += 1
            if self._count == 7:  # die mid-way through the workload
                sys.stdout.flush()
                os._exit(9)
        return False

import repro.faults.injector as injector_module
injector_module._ACTIVE = _Exiter()

budget = PrivacyBudget(1000.0, journal_path={str(journal)!r})
lock = threading.Lock()

def spender(tag):
    for i in range(10):
        budget.spend(0.125, note=f"{{tag}}-{{i}}")
        with lock:
            print(f"ACCEPTED {{tag}}-{{i}}", flush=True)

threads = [threading.Thread(target=spender, args=(t,)) for t in "ab"]
for t in threads: t.start()
for t in threads: t.join()
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 9, result.stderr
        accepted = [
            line for line in result.stdout.splitlines()
            if line.startswith("ACCEPTED")
        ]
        assert accepted, "process died before any spend committed"
        restored = PrivacyBudget.restore(journal)
        reported = 0.125 * len(accepted)
        # conservative replay: never below what callers saw accepted...
        assert restored.spent >= reported - 1e-12
        # ...and at most the in-flight spends above it (one per thread)
        assert restored.spent <= reported + 2 * 0.125 + 1e-12
        restored.close()

    def test_restored_ledger_keeps_composing_sequentially(self, tmp_path):
        journal = tmp_path / "budget.journal"
        budget = PrivacyBudget(2.0, journal_path=journal)
        budget.spend(0.5, note="before crash")
        budget.close()
        restored = PrivacyBudget.restore(journal)
        restored.spend(0.5, note="after restore")
        with pytest.raises(BudgetExhaustedError):
            restored.spend(1.5)  # 1.0 spent, only 1.0 left
        assert restored.spent == pytest.approx(1.0)
        restored.close()
        # a second replay sees both generations of spends
        final = PrivacyBudget.restore(journal)
        assert [e.note for e in final.ledger] == ["before crash", "after restore"]
        final.close()


class TestConstructorGuard:
    def test_fresh_budget_refuses_to_shadow_a_live_journal(self, tmp_path):
        journal = tmp_path / "budget.journal"
        budget = PrivacyBudget(5.0, journal_path=journal)
        budget.spend(1.0)
        budget.close()
        with pytest.raises(InvalidBudgetError, match="restore"):
            PrivacyBudget(5.0, journal_path=journal)

    def test_empty_journal_file_is_fine(self, tmp_path):
        journal = tmp_path / "budget.journal"
        journal.touch()
        budget = PrivacyBudget(5.0, journal_path=journal)
        budget.spend(1.0)
        budget.close()
        assert PrivacyBudget.restore(journal).spent == pytest.approx(1.0)
