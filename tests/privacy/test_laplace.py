"""Tests for the Laplace mechanism and distribution helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidBudgetError, SensitivityError
from repro.privacy.budget import PrivacyBudget
from repro.privacy.laplace import (
    LaplaceMechanism,
    laplace_cdf,
    laplace_logpdf,
    laplace_noise,
    laplace_pdf,
    laplace_scale,
)


class TestLaplaceScale:
    def test_basic(self):
        assert laplace_scale(8.0, 2.0) == 4.0

    def test_zero_sensitivity_allowed(self):
        assert laplace_scale(0.0, 1.0) == 0.0

    def test_rejects_bad_epsilon(self):
        for eps in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidBudgetError):
                laplace_scale(1.0, eps)

    def test_rejects_bad_sensitivity(self):
        for s in (-1.0, float("nan"), float("inf")):
            with pytest.raises(SensitivityError):
                laplace_scale(s, 1.0)


class TestLaplaceNoise:
    def test_scalar_output(self):
        noise = laplace_noise(1.0, 1.0, rng=0)
        assert isinstance(noise, float)

    def test_array_shape(self):
        noise = laplace_noise(1.0, 1.0, size=(3, 4), rng=0)
        assert noise.shape == (3, 4)

    def test_zero_sensitivity_is_exact(self):
        assert laplace_noise(0.0, 1.0, rng=0) == 0.0
        assert np.all(laplace_noise(0.0, 1.0, size=5, rng=0) == 0.0)

    def test_empirical_scale(self):
        draws = laplace_noise(2.0, 1.0, size=200_000, rng=1)
        # For Laplace(b): E|X| = b.
        assert np.mean(np.abs(draws)) == pytest.approx(2.0, rel=0.02)

    def test_zero_mean(self):
        draws = laplace_noise(1.0, 1.0, size=200_000, rng=2)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.02)

    def test_seeded_reproducibility(self):
        a = laplace_noise(1.0, 1.0, size=10, rng=3)
        b = laplace_noise(1.0, 1.0, size=10, rng=3)
        np.testing.assert_array_equal(a, b)


class TestDistributionHelpers:
    def test_pdf_integrates_to_one(self):
        xs = np.linspace(-40, 40, 200_001)
        pdf = laplace_pdf(xs, scale=2.0)
        assert np.trapezoid(pdf, xs) == pytest.approx(1.0, abs=1e-6)

    def test_logpdf_consistent(self):
        xs = np.array([-1.0, 0.0, 2.5])
        np.testing.assert_allclose(
            laplace_logpdf(xs, 1.5), np.log(laplace_pdf(xs, 1.5))
        )

    def test_cdf_limits(self):
        assert laplace_cdf(-50.0, 1.0) == pytest.approx(0.0, abs=1e-12)
        assert laplace_cdf(50.0, 1.0) == pytest.approx(1.0, abs=1e-12)
        assert laplace_cdf(0.0, 1.0) == pytest.approx(0.5)

    def test_cdf_monotone(self):
        xs = np.linspace(-5, 5, 101)
        cdf = laplace_cdf(xs, 0.7)
        assert np.all(np.diff(cdf) >= 0)

    def test_cdf_matches_empirical(self):
        draws = laplace_noise(1.0, 1.0, size=100_000, rng=4)
        for q in (-1.0, 0.5, 2.0):
            empirical = np.mean(draws <= q)
            assert laplace_cdf(q, 1.0) == pytest.approx(empirical, abs=0.01)

    def test_helpers_reject_bad_scale(self):
        with pytest.raises(ValueError):
            laplace_pdf(0.0, 0.0)
        with pytest.raises(ValueError):
            laplace_logpdf(0.0, -1.0)
        with pytest.raises(ValueError):
            laplace_cdf(0.0, 0.0)


class TestLaplaceMechanism:
    def test_randomize_scalar(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=0)
        out = mech.randomize(10.0)
        assert isinstance(out, float) and out != 10.0

    def test_randomize_vector_shape(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=0)
        assert mech.randomize(np.zeros(7)).shape == (7,)

    def test_noise_std_formula(self):
        mech = LaplaceMechanism(epsilon=2.0, sensitivity=8.0)
        assert mech.scale == 4.0
        assert mech.noise_std == pytest.approx(4.0 * math.sqrt(2.0))

    def test_budget_integration(self):
        budget = PrivacyBudget(1.0)
        mech = LaplaceMechanism(epsilon=0.6, sensitivity=1.0, budget=budget, rng=0)
        mech.randomize(0.0)
        assert budget.remaining == pytest.approx(0.4)
        with pytest.raises(Exception):
            mech.randomize(0.0)

    @given(st.floats(0.1, 10.0), st.floats(0.1, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_scale_property(self, sensitivity, epsilon):
        mech = LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity)
        assert mech.scale == pytest.approx(sensitivity / epsilon)
