"""Tests for the baseline algorithms and registry."""

import numpy as np
import pytest

from repro.baselines import (
    DPME,
    FMBaseline,
    FilterPriority,
    NoPrivacy,
    ObjectivePerturbation,
    OutputPerturbation,
    Truncated,
    algorithm_names,
    make_algorithm,
)
from repro.baselines.dpme import build_joint_grid, fit_on_synthetic
from repro.baselines.synthesize import SyntheticData
from repro.exceptions import ExperimentError, NotFittedError
from repro.regression.linear import LinearRegression


@pytest.fixture(scope="module")
def task_data():
    rng = np.random.default_rng(0)
    d = 4
    X = rng.uniform(0, 1 / np.sqrt(d), size=(6000, d))
    w = np.array([0.9, -0.5, 0.3, 0.1])
    y_lin = np.clip(X @ w + rng.normal(0, 0.05, 6000), -1, 1)
    y_log = (X @ w + rng.normal(0, 0.1, 6000) > 0.2).astype(float)
    return X, y_lin, y_log


class TestRegistry:
    def test_all_expected_algorithms_registered(self):
        names = algorithm_names()
        for expected in ("fm", "dpme", "fp", "noprivacy", "truncated"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(ExperimentError):
            make_algorithm("magic", "linear")

    def test_private_requires_epsilon(self):
        with pytest.raises(ExperimentError):
            make_algorithm("FM", "linear")

    def test_case_insensitive(self, task_data):
        X, y_lin, _ = task_data
        alg = make_algorithm("fm", "linear", epsilon=1.0, rng=0)
        assert alg.name == "FM"

    def test_invalid_task_rejected(self):
        with pytest.raises(ExperimentError):
            NoPrivacy(task="poisson")

    def test_kwargs_forwarded(self, task_data):
        X, y_lin, _ = task_data
        alg = make_algorithm(
            "FM", "linear", epsilon=1.0, rng=0, post_processing="regularize"
        )
        alg.fit(X, y_lin)
        assert alg._model.postprocess_.strategy == "regularize"


class TestNoPrivacy:
    def test_linear_matches_ols(self, task_data):
        X, y_lin, _ = task_data
        baseline = NoPrivacy(task="linear").fit(X, y_lin)
        ols = LinearRegression().fit(X, y_lin)
        np.testing.assert_allclose(baseline.coef_, ols.coef_)

    def test_score_is_mse_for_linear(self, task_data):
        X, y_lin, _ = task_data
        baseline = NoPrivacy(task="linear").fit(X, y_lin)
        assert baseline.score(X, y_lin) == pytest.approx(
            np.mean((y_lin - baseline.predict(X)) ** 2)
        )

    def test_logistic_predictions_are_labels(self, task_data):
        X, _, y_log = task_data
        baseline = NoPrivacy(task="logistic").fit(X, y_log)
        assert set(np.unique(baseline.predict(X))) <= {0.0, 1.0}

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            NoPrivacy(task="linear").predict(np.zeros((1, 2)))


class TestTruncated:
    def test_linear_equals_noprivacy(self, task_data):
        # The linear objective is exact, so Truncated == NoPrivacy (the
        # reason the paper omits it from linear panels).
        X, y_lin, _ = task_data
        truncated = Truncated(task="linear").fit(X, y_lin)
        plain = NoPrivacy(task="linear").fit(X, y_lin)
        np.testing.assert_allclose(truncated.coef_, plain.coef_, atol=1e-8)

    def test_logistic_close_to_exact_mle(self, task_data):
        # Lemma 3/4: the truncated optimum is near the exact optimum.
        X, _, y_log = task_data
        truncated = Truncated(task="logistic").fit(X, y_log)
        exact = NoPrivacy(task="logistic").fit(X, y_log)
        assert truncated.score(X, y_log) <= exact.score(X, y_log) + 0.02

    def test_chebyshev_variant(self, task_data):
        X, _, y_log = task_data
        model = Truncated(task="logistic", approximation="chebyshev").fit(X, y_log)
        assert model.score(X, y_log) < 0.5


class TestDPME:
    def test_fit_predict(self, task_data):
        X, y_lin, _ = task_data
        model = DPME(task="linear", epsilon=1.0, rng=0).fit(X, y_lin)
        assert model.coef_.shape == (4,)
        assert model.grid_ is not None
        assert model.synthetic_size_ > 0

    def test_logistic_labels(self, task_data):
        X, _, y_log = task_data
        model = DPME(task="logistic", epsilon=1.0, rng=0).fit(X, y_log)
        assert set(np.unique(model.predict(X))) <= {0.0, 1.0}

    def test_better_with_more_budget(self, task_data):
        X, y_lin, _ = task_data
        loose = np.mean([
            DPME(task="linear", epsilon=0.05, rng=s).fit(X, y_lin).score(X, y_lin)
            for s in range(5)
        ])
        tight = np.mean([
            DPME(task="linear", epsilon=10.0, rng=s).fit(X, y_lin).score(X, y_lin)
            for s in range(5)
        ])
        assert tight <= loose

    def test_weighted_mode_close_to_points_center(self, task_data):
        X, y_lin, _ = task_data
        a = DPME(task="linear", epsilon=5.0, rng=3, synthesis_mode="weighted").fit(X, y_lin)
        b = DPME(
            task="linear", epsilon=5.0, rng=3, synthesis_mode="points",
            placement="center",
        ).fit(X, y_lin)
        np.testing.assert_allclose(a.coef_, b.coef_, atol=1e-8)

    def test_grid_uses_binary_target_for_logistic(self, task_data):
        X, _, y_log = task_data
        model = DPME(task="logistic", epsilon=1.0, rng=0).fit(X, y_log)
        assert model.grid_.bins_per_dim[-1] == 2

    def test_empty_input_rejected(self):
        with pytest.raises(Exception):
            DPME(task="linear", epsilon=1.0).fit(np.zeros((0, 2)), np.zeros(0))


class TestBuildJointGrid:
    def test_linear_target_range(self):
        grid = build_joint_grid(1000, 3, "linear")
        assert grid.lower[-1] == -1.0 and grid.upper[-1] == 1.0

    def test_logistic_target_binary(self):
        grid = build_joint_grid(1000, 3, "logistic")
        assert grid.bins_per_dim[-1] == 2
        assert grid.lower[-1] == 0.0 and grid.upper[-1] == 1.0

    def test_feature_box(self):
        grid = build_joint_grid(1000, 4, "linear")
        np.testing.assert_allclose(grid.upper[:-1], 0.5)


class TestFitOnSynthetic:
    def test_zero_mass_returns_zero_parameter(self):
        synth = SyntheticData(X=np.zeros((1, 3)), y=np.zeros(1), weights=np.zeros(1))
        coef = fit_on_synthetic(synth, "linear", 3)
        np.testing.assert_array_equal(coef, 0.0)

    def test_single_class_logistic_returns_zero(self):
        synth = SyntheticData(
            X=np.random.default_rng(0).uniform(size=(10, 2)),
            y=np.ones(10),
            weights=np.ones(10),
        )
        coef = fit_on_synthetic(synth, "logistic", 2)
        np.testing.assert_array_equal(coef, 0.0)


class TestFilterPriority:
    def test_fit_predict(self, task_data):
        X, y_lin, _ = task_data
        model = FilterPriority(task="linear", epsilon=1.0, rng=0).fit(X, y_lin)
        assert model.coef_.shape == (4,)
        assert model.published_cells_ > 0

    def test_output_size_bounded_by_priority(self, task_data):
        X, y_lin, _ = task_data
        model = FilterPriority(
            task="linear", epsilon=1.0, rng=0, output_factor=0.5
        ).fit(X, y_lin)
        # Published cells cannot exceed m = 0.5 * nonzero cells (priority cap).
        assert model.published_cells_ <= model.grid_.total_cells

    def test_sparser_output_than_dpme(self, task_data):
        # FP's whole point: it publishes far fewer cells than the grid has.
        X, y_lin, _ = task_data
        model = FilterPriority(task="linear", epsilon=1.0, rng=1).fit(X, y_lin)
        assert model.published_cells_ < model.grid_.total_cells

    def test_explicit_theta(self, task_data):
        X, y_lin, _ = task_data
        model = FilterPriority(task="linear", epsilon=1.0, rng=0, theta=5.0).fit(X, y_lin)
        assert np.all(np.isfinite(model.coef_))

    def test_rejects_bad_output_factor(self):
        with pytest.raises(ValueError):
            FilterPriority(task="linear", epsilon=1.0, output_factor=0.0)

    def test_logistic(self, task_data):
        X, _, y_log = task_data
        model = FilterPriority(task="logistic", epsilon=1.0, rng=0).fit(X, y_log)
        assert set(np.unique(model.predict(X))) <= {0.0, 1.0}


class TestOutputPerturbation:
    def test_fit_predict(self, task_data):
        X, y_lin, _ = task_data
        model = OutputPerturbation(task="linear", epsilon=1.0, rng=0).fit(X, y_lin)
        assert model.coef_.shape == (4,)
        assert model.sensitivity_ > 0

    def test_sensitivity_shrinks_with_n(self, task_data):
        X, y_lin, _ = task_data
        full = OutputPerturbation(task="linear", epsilon=1.0, rng=0).fit(X, y_lin)
        half = OutputPerturbation(task="linear", epsilon=1.0, rng=0).fit(
            X[:3000], y_lin[:3000]
        )
        assert full.sensitivity_ < half.sensitivity_

    def test_logistic(self, task_data):
        X, _, y_log = task_data
        model = OutputPerturbation(task="logistic", epsilon=1.0, rng=0).fit(X, y_log)
        assert set(np.unique(model.predict(X))) <= {0.0, 1.0}

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            OutputPerturbation(task="linear", epsilon=1.0, lam=0.0)

    def test_more_regularization_less_noise_more_bias(self, task_data):
        # With huge lambda the noise vanishes but the estimate collapses to
        # ~0: the bias/noise tension the paper criticizes.
        X, y_lin, _ = task_data
        model = OutputPerturbation(task="linear", epsilon=1.0, rng=0, lam=1e6).fit(X, y_lin)
        assert np.linalg.norm(model.coef_) < 0.05


class TestObjectivePerturbation:
    def test_fit_both_tasks(self, task_data):
        X, y_lin, y_log = task_data
        lin = ObjectivePerturbation(task="linear", epsilon=1.0, rng=0).fit(X, y_lin)
        log = ObjectivePerturbation(task="logistic", epsilon=1.0, rng=0).fit(X, y_log)
        assert lin.coef_.shape == log.coef_.shape == (4,)

    def test_budget_correction_recorded(self, task_data):
        X, _, y_log = task_data
        model = ObjectivePerturbation(task="logistic", epsilon=1.0, rng=0).fit(X, y_log)
        assert 0 < model.epsilon_prime_ <= 1.0

    def test_lambda_fallback_for_tiny_epsilon(self, task_data):
        # With tiny epsilon and tiny lambda, epsilon' <= 0 triggers the
        # fallback that raises lambda and halves the budget.
        X, _, y_log = task_data
        model = ObjectivePerturbation(
            task="logistic", epsilon=0.001, rng=0, lam=1e-9
        ).fit(X[:100], y_log[:100])
        assert model.epsilon_prime_ == pytest.approx(0.0005)
        assert model.lam_effective_ > 1e-9

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            ObjectivePerturbation(task="linear", epsilon=1.0, lam=-1.0)


class TestFMBaseline:
    def test_wraps_estimators(self, task_data):
        X, y_lin, y_log = task_data
        lin = FMBaseline(task="linear", epsilon=2.0, rng=0).fit(X, y_lin)
        log = FMBaseline(task="logistic", epsilon=2.0, rng=0).fit(X, y_log)
        assert lin.score(X, y_lin) >= 0
        assert 0 <= log.score(X, y_log) <= 1

    def test_predictions_match_underlying_model(self, task_data):
        X, y_lin, _ = task_data
        wrapped = FMBaseline(task="linear", epsilon=2.0, rng=5).fit(X, y_lin)
        np.testing.assert_allclose(wrapped.predict(X), X @ wrapped.coef_)
