"""Tests for synthetic-data regeneration from noisy counts."""

import numpy as np
import pytest

from repro.baselines.histogram import Grid
from repro.baselines.synthesize import SyntheticData, synthesize_from_counts
from repro.exceptions import DataError


@pytest.fixture
def joint_grid():
    # 2 feature dims + 1 target dim.
    return Grid(
        lower=np.array([0.0, 0.0, -1.0]),
        upper=np.array([1.0, 1.0, 1.0]),
        bins_per_dim=np.array([2, 2, 2]),
    )


class TestWeightedMode:
    def test_shapes(self, joint_grid):
        counts = np.arange(8, dtype=float)
        synth = synthesize_from_counts(joint_grid, counts, mode="weighted")
        assert synth.X.shape[1] == 2
        assert synth.y.shape[0] == synth.X.shape[0] == synth.weights.shape[0]

    def test_negative_counts_clamped(self, joint_grid):
        counts = np.full(8, -5.0)
        counts[3] = 4.0
        synth = synthesize_from_counts(joint_grid, counts, mode="weighted")
        assert synth.effective_size == 4.0
        assert synth.X.shape[0] == 1

    def test_fractional_counts_rounded(self, joint_grid):
        counts = np.zeros(8)
        counts[0] = 2.6
        synth = synthesize_from_counts(joint_grid, counts, mode="weighted")
        assert synth.weights[0] == 3.0

    def test_all_zero_counts_degenerate(self, joint_grid):
        synth = synthesize_from_counts(joint_grid, np.zeros(8), mode="weighted")
        assert synth.effective_size == 0.0
        assert synth.X.shape[0] == 1  # placeholder row with zero weight

    def test_y_is_last_dimension(self, joint_grid):
        counts = np.zeros(8)
        counts[1] = 1.0  # cell (0, 0, 1): last dim bin 1 -> y center 0.5
        synth = synthesize_from_counts(joint_grid, counts, mode="weighted")
        assert synth.y[0] == pytest.approx(0.5)
        np.testing.assert_allclose(synth.X[0], [0.25, 0.25])


class TestPointsMode:
    def test_row_counts(self, joint_grid):
        counts = np.zeros(8)
        counts[0] = 3.0
        counts[7] = 2.0
        synth = synthesize_from_counts(joint_grid, counts, mode="points")
        assert synth.X.shape[0] == 5
        assert np.all(synth.weights == 1.0)

    def test_center_placement_matches_weighted_moments(self, joint_grid, rng):
        counts = rng.integers(0, 5, size=8).astype(float)
        weighted = synthesize_from_counts(joint_grid, counts, mode="weighted")
        points = synthesize_from_counts(
            joint_grid, counts, mode="points", placement="center"
        )
        # First moments must agree exactly.
        w_mean = (weighted.X * weighted.weights[:, None]).sum(0) / weighted.effective_size
        np.testing.assert_allclose(points.X.mean(axis=0), w_mean, atol=1e-12)

    def test_uniform_placement_within_cells(self, joint_grid):
        counts = np.zeros(8)
        counts[0] = 200.0
        synth = synthesize_from_counts(
            joint_grid, counts, mode="points", placement="uniform", rng=0
        )
        assert np.all(synth.X >= 0.0) and np.all(synth.X <= 0.5)
        assert np.all(synth.y >= -1.0) and np.all(synth.y <= 0.0)
        # Spread within the cell, not collapsed to the center.
        assert synth.X[:, 0].std() > 0.05

    def test_row_cap_enforced(self, joint_grid):
        counts = np.zeros(8)
        counts[0] = 6_000_000.0
        with pytest.raises(DataError):
            synthesize_from_counts(joint_grid, counts, mode="points")

    def test_invalid_mode(self, joint_grid):
        with pytest.raises(ValueError):
            synthesize_from_counts(joint_grid, np.zeros(8), mode="bootstrap")

    def test_invalid_placement(self, joint_grid):
        counts = np.zeros(8)
        counts[0] = 1.0
        with pytest.raises(ValueError):
            synthesize_from_counts(joint_grid, counts, mode="points", placement="corner")

    def test_wrong_count_length(self, joint_grid):
        with pytest.raises(DataError):
            synthesize_from_counts(joint_grid, np.zeros(7))


@pytest.fixture
def rng():
    return np.random.default_rng(13)
