"""Tests for the multi-dimensional grid histogram substrate."""

import numpy as np
import pytest

from repro.baselines.histogram import (
    Grid,
    choose_bins_per_dim,
    histogram_counts,
)
from repro.exceptions import DataError, DomainError


@pytest.fixture
def unit_grid():
    return Grid(lower=np.zeros(2), upper=np.ones(2), bins_per_dim=np.array([4, 4]))


class TestGrid:
    def test_total_cells(self, unit_grid):
        assert unit_grid.total_cells == 16

    def test_cell_widths(self, unit_grid):
        np.testing.assert_allclose(unit_grid.cell_widths, 0.25)

    def test_cell_indices_corners(self, unit_grid):
        idx = unit_grid.cell_indices(np.array([[0.0, 0.0], [0.99, 0.99]]))
        assert idx[0] == 0
        assert idx[1] == 15

    def test_upper_boundary_in_last_bin(self, unit_grid):
        idx = unit_grid.cell_indices(np.array([[1.0, 1.0]]))
        assert idx[0] == 15

    def test_out_of_box_raises(self, unit_grid):
        with pytest.raises(DomainError):
            unit_grid.cell_indices(np.array([[1.5, 0.5]]))
        with pytest.raises(DomainError):
            unit_grid.cell_indices(np.array([[-0.1, 0.5]]))

    def test_cell_center_roundtrip(self, unit_grid):
        for flat in range(unit_grid.total_cells):
            center = unit_grid.cell_center(flat)
            back = unit_grid.cell_indices(center[None, :])
            assert back[0] == flat

    def test_cell_center_vectorized(self, unit_grid):
        centers = unit_grid.cell_center(np.arange(unit_grid.total_cells))
        assert centers.shape == (16, 2)

    def test_cell_center_out_of_range(self, unit_grid):
        with pytest.raises(DataError):
            unit_grid.cell_center(16)

    def test_sample_in_cells_stays_inside(self, unit_grid):
        flats = np.array([0, 5, 15])
        points = unit_grid.sample_in_cells(flats, rng=0)
        back = unit_grid.cell_indices(points)
        np.testing.assert_array_equal(back, flats)

    def test_asymmetric_bins(self):
        grid = Grid(lower=np.zeros(2), upper=np.ones(2), bins_per_dim=np.array([2, 3]))
        assert grid.total_cells == 6
        idx = grid.cell_indices(np.array([[0.9, 0.9]]))
        assert idx[0] == 5

    def test_invalid_construction(self):
        with pytest.raises(DomainError):
            Grid(lower=np.ones(2), upper=np.zeros(2), bins_per_dim=np.array([2, 2]))
        with pytest.raises(DataError):
            Grid(lower=np.zeros(2), upper=np.ones(2), bins_per_dim=np.array([0, 2]))
        with pytest.raises(DataError):
            Grid(lower=np.zeros(2), upper=np.ones(3), bins_per_dim=np.array([2, 2]))

    def test_wrong_point_width(self, unit_grid):
        with pytest.raises(DataError):
            unit_grid.cell_indices(np.zeros((2, 3)))


class TestHistogramCounts:
    def test_total_mass_preserved(self, unit_grid, rng):
        points = rng.uniform(0, 1, size=(500, 2))
        counts = histogram_counts(unit_grid, points)
        assert counts.sum() == 500
        assert counts.shape == (16,)

    def test_known_placement(self, unit_grid):
        points = np.array([[0.1, 0.1], [0.1, 0.1], [0.9, 0.9]])
        counts = histogram_counts(unit_grid, points)
        assert counts[0] == 2
        assert counts[15] == 1

    def test_replace_one_changes_l1_by_at_most_two(self, unit_grid, rng):
        # The sensitivity claim behind Lap(2/eps) count noise.
        points = rng.uniform(0, 1, size=(100, 2))
        counts_before = histogram_counts(unit_grid, points)
        modified = points.copy()
        modified[0] = rng.uniform(0, 1, size=2)
        counts_after = histogram_counts(unit_grid, modified)
        assert np.abs(counts_before - counts_after).sum() <= 2


class TestChooseBins:
    def test_more_data_finer_bins(self):
        coarse = choose_bins_per_dim(1000, 3)
        fine = choose_bins_per_dim(1_000_000, 3)
        assert fine[0] >= coarse[0]

    def test_higher_dims_coarser_bins(self):
        low_d = choose_bins_per_dim(100_000, 3)
        high_d = choose_bins_per_dim(100_000, 14)
        assert high_d[0] <= low_d[0]

    def test_binary_dims_pinned_to_two(self):
        mask = np.array([False, False, True])
        bins = choose_bins_per_dim(100_000, 3, binary_dims=mask)
        assert bins[2] == 2
        assert bins[0] == bins[1] >= 2

    def test_cell_budget_respected(self):
        bins = choose_bins_per_dim(10_000_000, 10, cell_budget=1024)
        assert int(np.prod(bins.astype(object))) <= 1024

    def test_minimum_two_bins_when_budget_allows(self):
        bins = choose_bins_per_dim(100, 4)
        assert np.all(bins >= 2)

    def test_mask_length_checked(self):
        with pytest.raises(DataError):
            choose_bins_per_dim(100, 3, binary_dims=np.array([True]))

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            choose_bins_per_dim(0, 3)
        with pytest.raises(DataError):
            choose_bins_per_dim(10, 0)


@pytest.fixture
def rng():
    return np.random.default_rng(21)
