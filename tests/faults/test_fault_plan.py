"""The fault-plan grammar and the injector's decision determinism."""

import pytest

from repro.faults import (
    DEFAULT_HANG_SECONDS,
    EXECUTOR_SITES,
    FAULT_SITES,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active_injector,
    make_injector,
    use_injector,
)


class TestGrammar:
    def test_parse_full_plan(self):
        plan = FaultPlan.parse("seed=7;hang=0.2;worker.crash=0.5x2;cache.corrupt=1.0")
        assert plan.seed == 7
        assert plan.hang_seconds == 0.2
        assert plan.spec_for("worker.crash") == FaultSpec("worker.crash", 0.5, 2)
        assert plan.spec_for("cache.corrupt") == FaultSpec("cache.corrupt", 1.0, 1)
        assert plan.spec_for("tile.hang") is None

    def test_comma_and_semicolon_separators_equivalent(self):
        assert FaultPlan.parse("seed=3,io.transient=0.5") == FaultPlan.parse(
            "seed=3;io.transient=0.5"
        )

    def test_entry_order_is_normalized(self):
        a = FaultPlan.parse("cache.corrupt=1.0;worker.crash=0.5")
        b = FaultPlan.parse("worker.crash=0.5;cache.corrupt=1.0")
        assert a == b

    def test_describe_round_trips(self):
        for text in (
            "seed=0",
            "seed=7;hang=0.2;worker.crash=0.5x2;cache.corrupt=1.0",
            "seed=-3;tile.hang=1.0;budget.crash=0.25x4",
        ):
            plan = FaultPlan.parse(text)
            assert FaultPlan.parse(plan.describe()) == plan

    def test_none_and_empty_are_inert(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("seed=5")
        assert FaultPlan.parse("seed=5;worker.crash=0.5")

    @pytest.mark.parametrize(
        "text",
        [
            "worker.crash",  # no value
            "worker.crash=",  # empty value
            "bogus.site=1.0",  # unregistered site
            "worker.crash=2.0",  # probability out of range
            "worker.crash=0.5x0",  # zero trigger cap
            "hang=0",  # non-positive hang
            "worker.crash=0.5;worker.crash=1.0",  # duplicate site
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_default_hang_omitted_from_describe(self):
        plan = FaultPlan.parse("seed=1;worker.crash=1.0")
        assert plan.hang_seconds == DEFAULT_HANG_SECONDS
        assert "hang=" not in plan.describe()

    def test_executor_sites_are_registered(self):
        assert set(EXECUTOR_SITES) <= set(FAULT_SITES)


class TestRetryPolicy:
    def test_defaults(self):
        retry = RetryPolicy()
        assert retry.max_retries == 2
        assert retry.tile_timeout is None
        assert retry.failure_mode == "raise"

    def test_backoff_doubles_then_caps(self):
        retry = RetryPolicy(backoff_seconds=0.1, backoff_cap=0.35)
        assert retry.delay(0) == pytest.approx(0.1)
        assert retry.delay(1) == pytest.approx(0.2)
        assert retry.delay(2) == pytest.approx(0.35)
        assert retry.delay(10) == pytest.approx(0.35)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(backoff_seconds=-0.1),
            dict(tile_timeout=0.0),
            dict(failure_mode="explode"),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestInjectorDeterminism:
    def test_decisions_replay_identically(self):
        plan = FaultPlan.parse("seed=11;worker.crash=0.5x3")
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        pattern_a = [a.decide("worker.crash", i) for i in range(64)]
        pattern_b = [b.decide("worker.crash", i) for i in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)  # p=0.5 over 64 points

    def test_decision_is_independent_of_attempt_below_cap(self):
        """The draw is per (site, index); the cap alone silences retries —
        that is what makes ``x2`` mean "fail twice, then succeed"."""
        injector = FaultInjector(FaultPlan.parse("seed=1;worker.crash=1.0x2"))
        assert injector.decide("worker.crash", 5, attempt=0)
        assert injector.decide("worker.crash", 5, attempt=1)
        assert not injector.decide("worker.crash", 5, attempt=2)

    def test_seed_changes_pattern(self):
        pattern = lambda seed: [  # noqa: E731
            FaultInjector(FaultPlan.parse(f"seed={seed};worker.crash=0.5")).decide(
                "worker.crash", i
            )
            for i in range(64)
        ]
        assert pattern(1) != pattern(2)

    def test_sites_draw_from_distinct_streams(self):
        plan = FaultPlan.parse("seed=1;worker.crash=0.5;payload.corrupt=0.5")
        injector = FaultInjector(plan)
        crash = [injector.decide("worker.crash", i) for i in range(64)]
        corrupt = [injector.decide("payload.corrupt", i) for i in range(64)]
        assert crash != corrupt

    def test_consume_counts_triggers(self):
        injector = FaultInjector(FaultPlan.parse("seed=1;cache.corrupt=1.0x2"))
        assert injector.consume("cache.corrupt", 9)
        assert injector.consume("cache.corrupt", 9)
        assert not injector.consume("cache.corrupt", 9)  # cap reached
        assert injector.consume("cache.corrupt", 10)  # other points unaffected

    def test_corrupt_bytes_changes_exactly_one_byte_deterministically(self):
        injector = FaultInjector(FaultPlan.parse("seed=5;cache.corrupt=1.0"))
        data = bytes(range(256))
        once = injector.corrupt_bytes(data, "cache.corrupt", 3)
        again = injector.corrupt_bytes(data, "cache.corrupt", 3)
        assert once == again
        assert once != data
        assert sum(x != y for x, y in zip(once, data)) == 1

    def test_null_injector_never_fires(self):
        assert not NULL_INJECTOR.active
        assert not NULL_INJECTOR.decide("worker.crash", 0)
        assert not NULL_INJECTOR.consume("cache.corrupt", 0)


class TestActiveSlot:
    def test_use_injector_nests_and_restores(self):
        inner = make_injector("seed=1;worker.crash=1.0")
        assert active_injector() is NULL_INJECTOR
        with use_injector(inner):
            assert active_injector() is inner
            with use_injector(NULL_INJECTOR):
                assert active_injector() is NULL_INJECTOR
            assert active_injector() is inner
        assert active_injector() is NULL_INJECTOR

    def test_make_injector_inert_inputs_share_the_null_injector(self):
        assert make_injector(None) is NULL_INJECTOR
        assert make_injector("seed=9") is NULL_INJECTOR  # no specs
        assert make_injector("seed=9;io.transient=1.0") is not NULL_INJECTOR
