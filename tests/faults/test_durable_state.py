"""Crash-safe durable state: cache entries, the golden store, budget WAL."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.engine.accumulator import MomentAccumulator
from repro.engine.cache import AccumulatorCache
from repro.exceptions import (
    ExperimentError,
    InvalidBudgetError,
    TransientIOError,
)
from repro.faults import make_injector, use_injector
from repro.obs import make_recorder, use_recorder
from repro.privacy.budget import PrivacyBudget
from repro.verify.golden import load_store, save_store


def _accumulator() -> MomentAccumulator:
    rng = np.random.default_rng(3)
    X = rng.normal(size=(40, 3))
    X /= 2.0 * np.linalg.norm(X, axis=1, keepdims=True)  # footnote-1 bound
    y = np.clip(rng.normal(size=40), -1.0, 1.0)
    return MomentAccumulator(3).update(X, y)


def _assert_same_stats(a: MomentAccumulator, b: MomentAccumulator) -> None:
    sa, sb = a.snapshot(), b.snapshot()
    assert sa.n == sb.n
    for field in ("S2", "S1", "Sxy"):
        np.testing.assert_array_equal(getattr(sa, field), getattr(sb, field))
    assert sa.Sy == sb.Sy and sa.Syy == sb.Syy


def _chaos(spec: str):
    return use_injector(make_injector(spec))


class TestCacheDurability:
    def test_round_trip_is_bit_faithful(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        acc = _accumulator()
        cache.put("a" * 64, acc)
        _assert_same_stats(cache.get("a" * 64), acc)

    def test_corrupted_entry_is_quarantined_and_rebuilt(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        key = "b" * 64
        acc = _accumulator()
        cache.put(key, acc)
        recorder = make_recorder("summary")
        with use_recorder(recorder), _chaos("seed=5;cache.corrupt=1.0x1"):
            rebuilt, hit = cache.get_or_build(key, _accumulator)
        assert not hit  # the damaged entry must read as a miss
        _assert_same_stats(rebuilt, acc)
        # the corrupt bytes moved to quarantine, a healthy entry replaced them
        assert len(list(cache.quarantine_dir.iterdir())) == 1
        assert cache.get(key) is not None
        counters = recorder.summary()["counters"]
        assert counters.get("accumulator_cache.quarantined") == 1

    def test_manual_truncation_is_also_caught(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        key = "c" * 64
        cache.put(key, _accumulator())
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:-7])
        assert cache.get(key) is None
        assert not path.exists()  # quarantined out of the key namespace

    def test_transient_io_errors_are_retried(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        key = "d" * 64
        recorder = make_recorder("summary")
        with use_recorder(recorder), _chaos("seed=5;io.transient=1.0x2"):
            cache.put(key, _accumulator())  # 2 injected failures, 3 attempts
        assert recorder.summary()["counters"]["accumulator_cache.io_retries"] == 2
        assert cache.get(key) is not None

    def test_transient_io_exhaustion_raises(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        with _chaos("seed=5;io.transient=1.0x99"):
            with pytest.raises(TransientIOError):
                cache.put("e" * 64, _accumulator())

    def test_legacy_npz_entry_is_a_miss(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        key = "f" * 64
        _accumulator().save(tmp_path / f"{key}.npz")  # historical format
        assert cache.get(key) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = AccumulatorCache(tmp_path)
        cache.put("1" * 64, _accumulator())
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []


class TestGoldenStoreDurability:
    def test_save_embeds_verifiable_checksum(self, tmp_path):
        path = tmp_path / "store.json"
        store = save_store({"g": "0" * 64}, path)
        assert store["sha256"]
        assert load_store(path)["sha256"] == store["sha256"]

    def test_checksum_survives_reformatting(self, tmp_path):
        path = tmp_path / "store.json"
        save_store({"g": "0" * 64}, path)
        path.write_text(json.dumps(json.loads(path.read_text()), indent=8))
        load_store(path)  # content unchanged -> still verifies

    def test_tampered_digest_fails_the_checksum(self, tmp_path):
        path = tmp_path / "store.json"
        save_store({"g": "0" * 64}, path)
        store = json.loads(path.read_text())
        store["groups"]["g"]["digest"] = "1" * 64
        path.write_text(json.dumps(store))
        with pytest.raises(ExperimentError, match="self-checksum"):
            load_store(path)

    def test_legacy_store_without_checksum_accepted(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(
            json.dumps({"format": 1, "environment": {}, "groups": {}})
        )
        load_store(path)


class TestBudgetJournal:
    def test_restore_replays_committed_spends(self, tmp_path):
        journal = tmp_path / "budget.journal"
        with PrivacyBudget(1.0, journal_path=journal) as budget:
            budget.spend(0.25, note="first")
            budget.spend(0.25, note="second")
        restored = PrivacyBudget.restore(journal)
        assert restored.spent == pytest.approx(0.5)
        assert [e.note for e in restored.ledger] == ["first", "second"]

    def test_uncommitted_intent_is_conservatively_spent(self, tmp_path):
        journal = tmp_path / "budget.journal"
        budget = PrivacyBudget(1.0, journal_path=journal)
        budget.spend(0.2, note="ok")
        from repro.exceptions import InjectedFaultError

        with _chaos("seed=1;budget.crash=1.0"):
            with pytest.raises(InjectedFaultError):
                budget.spend(0.3, note="interrupted")
        restored = PrivacyBudget.restore(journal)
        # never under-recorded: the interrupted spend counts as spent
        assert restored.spent >= 0.5 - 1e-12
        assert any("recovered" in e.note for e in restored.ledger)
        # a second replay reaches the identical ledger (recovery commits
        # were journaled, making the repair idempotent)
        again = PrivacyBudget.restore(journal)
        assert again.spent == restored.spent
        assert [e.note for e in again.ledger] == [
            e.note for e in restored.ledger
        ]

    def test_torn_final_line_is_ignored(self, tmp_path):
        journal = tmp_path / "budget.journal"
        with PrivacyBudget(1.0, journal_path=journal) as budget:
            budget.spend(0.5)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"op": "intent", "id"')  # crash mid-write
        assert PrivacyBudget.restore(journal).spent == pytest.approx(0.5)

    def test_torn_interior_line_is_fatal(self, tmp_path):
        journal = tmp_path / "budget.journal"
        with PrivacyBudget(1.0, journal_path=journal) as budget:
            budget.spend(0.5)
        lines = journal.read_text().splitlines()
        lines[0] = lines[0][:-4]
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget.restore(journal)

    def test_hard_process_crash_mid_spend_never_underrecords(self, tmp_path):
        """The real thing: a child process dies with ``os._exit`` between
        the intent and commit records; replay must count the interrupted
        spend."""
        journal = tmp_path / "budget.journal"
        script = f"""
import os
from repro.privacy.budget import PrivacyBudget

class _Exiter:
    def consume(self, site, index):
        if site == "budget.crash" and index >= 2:  # let the first spend commit
            os._exit(9)
        return False

import repro.faults.injector as injector_module
injector_module._ACTIVE = _Exiter()

budget = PrivacyBudget(1.0, journal_path={str(journal)!r})
budget.spend(0.25, note="survivor")
budget.spend(0.5, note="victim")  # dies between intent and commit
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert result.returncode == 9
        restored = PrivacyBudget.restore(journal)
        assert restored.spent >= 0.75 - 1e-12  # intended total
        notes = [e.note for e in restored.ledger]
        assert notes[0] == "survivor" and "victim" in notes[1]

    def test_journal_telemetry_counters(self, tmp_path):
        journal = tmp_path / "budget.journal"
        recorder = make_recorder("summary")
        with use_recorder(recorder):
            with PrivacyBudget(1.0, journal_path=journal) as budget:
                budget.spend(0.5)
            PrivacyBudget.restore(journal).close()
        counters = recorder.summary()["counters"]
        assert counters.get("budget.journal_records", 0) >= 3  # open+intent+commit
        assert counters.get("budget.journal_replays") == 1
