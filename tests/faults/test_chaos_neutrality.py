"""Chaos neutrality: injected faults must leave pipeline digests bitwise
identical to fault-free runs.

This is the tentpole acceptance criterion.  A miniature golden case (the
same figure pipeline / digest function the tier-3 conformance matrix
uses, at a smaller preset) runs fault-free once, and then under each
chaos scenario — worker crashes, hung tiles with timeouts, on-disk cache
corruption — asserting one digest throughout.  Keyed RNG substreams are
what make this possible: a retried tile redraws identical noise wherever
(and whenever) it re-executes.
"""

import pytest

from repro.data.census import load_us
from repro.experiments.config import ScalePreset
from repro.session import ExecutionPolicy, Session
from repro.verify.golden import digest_sweep_result

_PRESET = ScalePreset(name="chaos", max_records=300, folds=2, repetitions=2)
_RECORDS = 340
_SEED = 31


@pytest.fixture(scope="module")
def dataset():
    return load_us(_RECORDS)


def _digest(policy: ExecutionPolicy, dataset) -> str:
    with Session(policy) as session:
        result = session.figure(
            "figure5", dataset, "linear", preset=_PRESET, values=(0.5, 1.0)
        )
    return digest_sweep_result(result)


@pytest.fixture(scope="module")
def clean_digest(dataset):
    return _digest(ExecutionPolicy(executor="serial", seed=_SEED), dataset)


class TestDigestNeutrality:
    def test_worker_crashes_do_not_change_the_digest(self, dataset, clean_digest):
        policy = ExecutionPolicy(
            executor="process",
            tile_size=1,
            seed=_SEED,
            faults="seed=9;worker.crash=1.0x1",
        )
        assert _digest(policy, dataset) == clean_digest

    def test_hung_tiles_do_not_change_the_digest(self, dataset, clean_digest):
        policy = ExecutionPolicy(
            executor="process",
            tile_size=1,
            seed=_SEED,
            faults="seed=9;hang=20.0;tile.hang=0.5x1",
            tile_timeout=1.0,
        )
        assert _digest(policy, dataset) == clean_digest

    def test_fallback_degradation_does_not_change_the_digest(
        self, dataset, clean_digest
    ):
        policy = ExecutionPolicy(
            executor="process",
            tile_size=1,
            seed=_SEED,
            faults="seed=9;worker.crash=1.0x99",
            max_retries=0,
            failure_mode="fallback",
        )
        assert _digest(policy, dataset) == clean_digest

    def test_thread_executor_ignores_fault_plan(self, dataset, clean_digest):
        """Executor fault sites live in process workers; a thread policy
        with the same plan must run clean and agree."""
        policy = ExecutionPolicy(
            executor="thread", seed=_SEED, faults="seed=9;worker.crash=1.0x1"
        )
        assert _digest(policy, dataset) == clean_digest
