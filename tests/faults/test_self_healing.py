"""Self-healing executors: injected chaos must never change a result.

Every test here asserts the same contract from a different angle: a map
that survives worker crashes, hangs, corrupt result envelopes or a
genuinely killed pool returns *exactly* what the fault-free map returns
— recovery is invisible in the results, visible only in telemetry.
"""

import os
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ExecutorBrokenError
from repro.faults import FaultPlan, RetryPolicy, make_injector, use_injector
from repro.obs import make_recorder, use_recorder
from repro.runtime import (
    PooledProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
)
from repro.runtime.executor import _SHARED_WORK
from repro.runtime.runner import _mapped


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"genuine bug at {value}")


def _chaos(spec: str):
    """An injector context for one executor-level chaos scenario."""
    return use_injector(make_injector(spec))


class TestCrashRecovery:
    def test_one_shot_process_recovers_from_certain_crash(self):
        items = list(range(6))
        executor = ProcessExecutor(max_workers=2)
        with _chaos("seed=2;worker.crash=1.0x1"):
            assert executor.map(_square, items) == [v * v for v in items]

    def test_pooled_process_recovers_from_certain_crash(self):
        items = list(range(6))
        with PooledProcessExecutor(max_workers=2) as executor:
            with _chaos("seed=2;worker.crash=1.0x1"):
                assert executor.map(_square, items) == [v * v for v in items]
            # the rebuilt pool keeps serving fault-free maps
            assert executor.map(_square, items) == [v * v for v in items]

    def test_payload_corruption_detected_and_retried(self):
        items = list(range(5))
        recorder = make_recorder("summary")
        executor = ProcessExecutor(max_workers=2)
        with use_recorder(recorder), _chaos("seed=4;payload.corrupt=1.0x1"):
            assert executor.map(_square, items) == [v * v for v in items]
        counters = recorder.summary()["counters"]
        assert counters.get("executor.payload_corruptions", 0) >= 1
        assert counters.get("executor.retries", 0) >= 1

    def test_hung_tile_times_out_and_retries(self):
        items = list(range(3))
        retry = RetryPolicy(tile_timeout=0.5, backoff_seconds=0.01)
        executor = ProcessExecutor(max_workers=2, retry=retry)
        with _chaos("seed=6;hang=30.0;tile.hang=1.0x1"):
            start = time.monotonic()
            assert executor.map(_square, items) == [v * v for v in items]
            # recovery must come from the timeout, not from waiting out the hang
            assert time.monotonic() - start < 25.0

    def test_real_killed_pool_worker_recovers(self):
        """Not an injected crash: SIGKILL a live worker process and assert
        the pooled executor rebuilds and completes the next map."""
        items = list(range(4))
        with PooledProcessExecutor(max_workers=2) as executor:
            assert executor.map(_square, items) == [v * v for v in items]
            victim = next(iter(executor.pool._processes))
            os.kill(victim, signal.SIGKILL)
            recorder = make_recorder("summary")
            with use_recorder(recorder):
                assert executor.map(_square, items) == [v * v for v in items]
            counters = recorder.summary()["counters"]
            assert counters.get("executor.pool_rebuilds", 0) >= 1


class TestRetryExhaustion:
    def test_raise_mode_surfaces_broken_error_with_progress(self):
        retry = RetryPolicy(max_retries=1, backoff_seconds=0.01)
        executor = ProcessExecutor(max_workers=2, retry=retry)
        with _chaos("seed=2;worker.crash=1.0x99"):
            with pytest.raises(ExecutorBrokenError) as excinfo:
                executor.map(_square, list(range(4)))
        error = excinfo.value
        assert error.failure_mode == "raise"
        assert set(error.completed) | set(error.pending) == set(range(4))

    def test_fallback_mode_finishes_on_degraded_executor(self):
        retry = RetryPolicy(
            max_retries=0, backoff_seconds=0.01, failure_mode="fallback"
        )
        executor = ProcessExecutor(max_workers=2, retry=retry)
        items = list(range(5))
        recorder = make_recorder("summary")
        with use_recorder(recorder), _chaos("seed=2;worker.crash=1.0x99"):
            assert _mapped(executor, _square, items) == [v * v for v in items]
        counters = recorder.summary()["counters"]
        assert counters.get("executor.fallbacks", 0) >= 1

    def test_zero_retries_restores_fail_fast(self):
        retry = RetryPolicy(max_retries=0, backoff_seconds=0.01)
        executor = ProcessExecutor(max_workers=2, retry=retry)
        with _chaos("seed=2;worker.crash=1.0x99"):
            with pytest.raises(ExecutorBrokenError):
                executor.map(_square, list(range(3)))


class TestGenuineExceptions:
    def test_work_exceptions_propagate_without_retry(self):
        """A deterministic bug must fail immediately — retrying it would
        only turn a wrong answer into a slow wrong answer."""
        recorder = make_recorder("summary")
        executor = ProcessExecutor(max_workers=2)
        with use_recorder(recorder):
            with pytest.raises(ValueError, match="genuine bug"):
                executor.map(_boom, list(range(3)))
        assert recorder.summary()["counters"].get("executor.retries", 0) == 0

    def test_shared_work_registry_never_leaks(self):
        """Satellite regression: a raising work item must not leave its
        fork-sharing token behind (mapped twice to catch growth)."""
        executor = ProcessExecutor(max_workers=2)
        for _ in range(2):
            with pytest.raises(ValueError):
                executor.map(_boom, list(range(3)))
        assert len(_SHARED_WORK) == 0
        # the chaos path releases its token too, even through fallback
        retry = RetryPolicy(
            max_retries=0, backoff_seconds=0.01, failure_mode="fallback"
        )
        chaotic = ProcessExecutor(max_workers=2, retry=retry)
        with _chaos("seed=2;worker.crash=1.0x99"):
            _mapped(chaotic, _square, list(range(3)))
        assert len(_SHARED_WORK) == 0


class TestChaosNeutralityProperty:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        site=st.sampled_from(["worker.crash", "payload.corrupt"]),
        seed=st.integers(min_value=0, max_value=2**16),
        n_items=st.integers(min_value=1, max_value=6),
        probability=st.sampled_from([0.5, 1.0]),
        pooled=st.booleans(),
    )
    def test_recovered_map_equals_serial_map(
        self, site, seed, n_items, probability, pooled
    ):
        items = list(range(n_items))
        expected = SerialExecutor().map(_square, items)
        retry = RetryPolicy(max_retries=3, backoff_seconds=0.01)
        executor = (
            PooledProcessExecutor(max_workers=2, retry=retry)
            if pooled
            else ProcessExecutor(max_workers=2, retry=retry)
        )
        plan = FaultPlan.parse(f"seed={seed};{site}={probability}x1")
        try:
            with use_injector(make_injector(plan)):
                assert executor.map(_square, items) == expected
        finally:
            if pooled:
                executor.close()
