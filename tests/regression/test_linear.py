"""Tests for the from-scratch linear/ridge regression."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.regression.linear import LinearRegression, RidgeRegression


class TestLinearRegression:
    def test_exact_recovery_noise_free(self, rng):
        X = rng.normal(size=(100, 3))
        w = np.array([1.5, -2.0, 0.5])
        model = LinearRegression().fit(X, X @ w)
        np.testing.assert_allclose(model.coef_, w, atol=1e-10)

    def test_residual_orthogonality(self, rng):
        # OLS normal equations: X^T (y - X w) = 0.
        X = rng.normal(size=(200, 4))
        y = X @ np.array([1.0, 0.0, -1.0, 2.0]) + rng.normal(0, 0.1, 200)
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(X.T @ (y - model.predict(X)), 0.0, atol=1e-8)

    def test_intercept_variant(self, rng):
        X = rng.normal(size=(500, 2))
        y = X @ np.array([2.0, -1.0]) + 3.0 + rng.normal(0, 0.01, 500)
        model = LinearRegression(fit_intercept=True).fit(X, y)
        assert model.intercept_ == pytest.approx(3.0, abs=0.05)
        np.testing.assert_allclose(model.coef_, [2.0, -1.0], atol=0.05)

    def test_no_intercept_by_default(self, rng):
        X = rng.normal(size=(50, 2))
        model = LinearRegression().fit(X, X.sum(axis=1))
        assert model.intercept_ == 0.0

    def test_singular_design_falls_back_to_lstsq(self):
        # Duplicated column: normal equations singular; lstsq must resolve.
        X = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)

    def test_sample_weight_equivalent_to_replication(self, rng):
        X = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        weights = rng.integers(1, 4, size=20).astype(float)
        weighted = LinearRegression().fit(X, y, sample_weight=weights)
        X_rep = np.repeat(X, weights.astype(int), axis=0)
        y_rep = np.repeat(y, weights.astype(int))
        replicated = LinearRegression().fit(X_rep, y_rep)
        np.testing.assert_allclose(weighted.coef_, replicated.coef_, atol=1e-8)

    def test_zero_weights_ignored(self, rng):
        X = rng.normal(size=(30, 2))
        y = X @ np.array([1.0, 2.0])
        y_corrupted = y.copy()
        y_corrupted[:10] += 100.0
        weights = np.ones(30)
        weights[:10] = 0.0
        model = LinearRegression().fit(X, y_corrupted, sample_weight=weights)
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-8)

    def test_rejects_bad_weights(self, rng):
        X = rng.normal(size=(5, 2))
        y = rng.normal(size=5)
        with pytest.raises(DataError):
            LinearRegression().fit(X, y, sample_weight=np.ones(4))
        with pytest.raises(DataError):
            LinearRegression().fit(X, y, sample_weight=-np.ones(5))
        with pytest.raises(DataError):
            LinearRegression().fit(X, y, sample_weight=np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_shape_validation(self, rng):
        with pytest.raises(DataError):
            LinearRegression().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(DataError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(DataError):
            LinearRegression().fit(np.full((3, 2), np.nan), np.zeros(3))

    def test_predict_width_validation(self, rng):
        model = LinearRegression().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(DataError):
            model.predict(np.zeros((2, 3)))

    def test_score_mse(self, rng):
        X = rng.normal(size=(50, 2))
        y = X @ np.array([1.0, 1.0])
        model = LinearRegression().fit(X, y)
        assert model.score_mse(X, y) == pytest.approx(0.0, abs=1e-16)


class TestRidgeRegression:
    def test_zero_lambda_matches_ols(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(lam=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-10)

    def test_shrinkage_monotone(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        norms = [
            np.linalg.norm(RidgeRegression(lam=lam).fit(X, y).coef_)
            for lam in (0.0, 1.0, 10.0, 100.0)
        ]
        assert norms == sorted(norms, reverse=True)

    def test_closed_form(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        lam = 2.5
        ridge = RidgeRegression(lam=lam).fit(X, y)
        expected = np.linalg.solve(X.T @ X + lam * np.eye(2), X.T @ y)
        np.testing.assert_allclose(ridge.coef_, expected, atol=1e-10)

    def test_intercept_not_penalized(self, rng):
        X = rng.normal(size=(2000, 2))
        y = X @ np.array([0.5, 0.5]) + 10.0 + rng.normal(0, 0.01, 2000)
        model = RidgeRegression(lam=1e4, fit_intercept=True).fit(X, y)
        # Slopes shrink hard, intercept must absorb the mean.
        assert model.intercept_ == pytest.approx(y.mean(), abs=0.3)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            RidgeRegression(lam=-1.0)

    def test_handles_singular_design(self):
        X = np.array([[1.0, 1.0], [1.0, 1.0]])
        y = np.array([1.0, 1.0])
        model = RidgeRegression(lam=0.5).fit(X, y)
        assert np.all(np.isfinite(model.coef_))


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestSolveNormalEquations:
    """The shared solve-with-fallback helper behind OLS and ridge."""

    def test_well_posed_matches_direct_solve(self, rng):
        from repro.regression.linear import _solve_normal_equations

        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        gram, moment = X.T @ X, X.T @ y
        weights = _solve_normal_equations(gram, moment, X, y)
        np.testing.assert_array_equal(weights, np.linalg.solve(gram, moment))

    def test_singular_gram_falls_back_to_lstsq(self):
        from repro.regression.linear import _solve_normal_equations

        # Duplicated column: the Gram matrix is exactly rank 1.
        X = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        y = np.array([2.0, 4.0, 6.0])
        weights = _solve_normal_equations(X.T @ X, X.T @ y, X, y)
        expected, *_ = np.linalg.lstsq(X, y, rcond=None)
        np.testing.assert_array_equal(weights, expected)
        np.testing.assert_allclose(X @ weights, y, atol=1e-10)

    def test_nonfinite_solution_falls_back_to_lstsq(self):
        from repro.regression.linear import _solve_normal_equations

        # A Gram matrix that LAPACK does not flag singular but that yields
        # non-finite weights: inf entries survive the solve.
        gram = np.array([[1.0, 0.0], [0.0, 1.0]])
        moment = np.array([np.inf, 0.0])
        X = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        y = np.array([1.0, 2.0, 3.0])
        weights = _solve_normal_equations(gram, moment, X, y)
        expected, *_ = np.linalg.lstsq(X, y, rcond=None)
        np.testing.assert_array_equal(weights, expected)

    def test_ridge_shares_the_fallback(self):
        # lam=0 ridge on a singular design goes through the same helper.
        X = np.array([[1.0, 1.0], [2.0, 2.0], [5.0, 5.0]])
        y = np.array([1.0, 2.0, 5.0])
        model = RidgeRegression(lam=0.0).fit(X, y)
        expected, *_ = np.linalg.lstsq(X, y, rcond=None)
        np.testing.assert_allclose(model.coef_, expected, atol=1e-12)

    def test_weighted_singular_design(self):
        # The histogram baselines hit the fallback with sample weights.
        X = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [4.0, 4.0]])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        w = np.array([1.0, 2.0, 1.0, 0.5])
        model = LinearRegression().fit(X, y, sample_weight=w)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-10)
