"""Tests for the paper's accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.regression.metrics import (
    accuracy,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    misclassification_rate,
    r2_score,
    root_mean_squared_error,
)


class TestMSE:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, -1.0]) == 1.0

    def test_rmse(self):
        assert root_mean_squared_error([0.0, 0.0], [2.0, -2.0]) == 2.0

    def test_mae(self):
        assert mean_absolute_error([0.0, 0.0], [1.0, -3.0]) == 2.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_nonnegative(self, values):
        y = np.array(values)
        shifted = y + 1.0
        assert mean_squared_error(y, shifted) >= 0.0


class TestR2:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_constant_target_perfect_prediction(self):
        y = np.ones(5)
        assert r2_score(y, y) == 0.0

    def test_constant_target_bad_prediction_finite(self):
        assert np.isfinite(r2_score(np.ones(5), np.zeros(5)))


class TestMisclassification:
    def test_all_correct(self):
        y = np.array([0.0, 1.0, 1.0])
        assert misclassification_rate(y, y) == 0.0

    def test_all_wrong(self):
        assert misclassification_rate([0, 1], [1, 0]) == 1.0

    def test_accepts_probabilities(self):
        # Probabilities threshold at 0.5, matching the paper's rule.
        assert misclassification_rate([1.0, 0.0], [0.9, 0.2]) == 0.0
        assert misclassification_rate([1.0, 0.0], [0.4, 0.6]) == 1.0

    def test_accuracy_complement(self):
        y_true = np.array([0.0, 1.0, 1.0, 0.0])
        y_pred = np.array([0.0, 0.0, 1.0, 0.0])
        assert accuracy(y_true, y_pred) + misclassification_rate(y_true, y_pred) == 1.0


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert log_loss([1.0, 0.0], [0.999, 0.001]) < 0.01

    def test_uniform_prediction(self):
        assert log_loss([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2.0))

    def test_clipping_prevents_infinity(self):
        assert np.isfinite(log_loss([1.0], [0.0]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            log_loss([1.0], [1.5])
