"""Tests for the norm-preserving polynomial feature map."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.models import FMLinearRegression
from repro.exceptions import DataError
from repro.regression.features import PolynomialFeatureMap
from repro.regression.linear import LinearRegression


class TestShape:
    def test_output_dim(self):
        assert PolynomialFeatureMap(2).output_dim == 5  # x1 x2 x1^2 x1x2 x2^2
        assert PolynomialFeatureMap(3).output_dim == 3 + 6

    def test_quadratic_only(self):
        phi = PolynomialFeatureMap(3, include_linear=False)
        assert phi.output_dim == 6

    def test_feature_names(self):
        names = PolynomialFeatureMap(2).feature_names(["a", "b"])
        assert names == ["a", "b", "a^2", "a*b", "b^2"]

    def test_wrong_name_count(self):
        with pytest.raises(DataError):
            PolynomialFeatureMap(2).feature_names(["only-one"])

    def test_invalid_dim(self):
        with pytest.raises(DataError):
            PolynomialFeatureMap(0)

    def test_wrong_width(self):
        with pytest.raises(DataError):
            PolynomialFeatureMap(2).transform(np.zeros((3, 3)))


class TestNormPreservation:
    def test_unit_vector_maps_to_unit_norm(self):
        phi = PolynomialFeatureMap(2)
        out = phi.transform(np.array([[0.6, 0.8]]))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    @given(st.integers(1, 5), st.integers(0, 2**30))
    @settings(max_examples=50, deadline=None)
    def test_ball_maps_into_ball(self, d, seed):
        gen = np.random.default_rng(seed)
        x = gen.normal(size=d)
        norm = np.linalg.norm(x)
        if norm > 1.0:
            x = x / norm * gen.uniform(0, 1)
        phi = PolynomialFeatureMap(d)
        out = phi.transform(x[None, :])
        assert np.linalg.norm(out) <= 1.0 + 1e-9

    def test_quadratic_block_is_frobenius_flattening(self):
        # ||v(x)|| must equal ||x||^2 exactly.
        x = np.array([[0.3, -0.5, 0.2]])
        phi = PolynomialFeatureMap(3, include_linear=False)
        out = phi.transform(x)
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(x) ** 2)


class TestPrivatePolynomialRegression:
    def test_captures_curvature_plain_fm_cannot(self):
        # y = x^2 relationship on [-1, 1]-ish domain: the linear model is
        # helpless, the expanded model fits it.
        rng = np.random.default_rng(0)
        x = rng.uniform(-0.9, 0.9, size=(20_000, 1))
        y = np.clip(x[:, 0] ** 2 + rng.normal(0, 0.02, 20_000), -1, 1)
        phi = PolynomialFeatureMap(1)
        X_expanded = phi.transform(x)

        plain = FMLinearRegression(epsilon=10.0, rng=1).fit(x, y)
        curved = FMLinearRegression(epsilon=10.0, rng=1).fit(X_expanded, y)
        assert curved.score_mse(X_expanded, y) < 0.25 * plain.score_mse(x, y)

    def test_matches_nonprivate_polynomial_fit_at_high_epsilon(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-0.7, 0.7, size=(5_000, 2))
        y = np.clip(
            0.5 * x[:, 0] ** 2 - 0.3 * x[:, 0] * x[:, 1] + 0.2 * x[:, 1], -1, 1
        )
        phi = PolynomialFeatureMap(2)
        X_expanded = phi.transform(x)
        fm = FMLinearRegression(epsilon=1e8, rng=0).fit(X_expanded, y)
        ols = LinearRegression().fit(X_expanded, y)
        np.testing.assert_allclose(fm.coef_, ols.coef_, atol=1e-3)

    def test_sensitivity_grows_with_expanded_dimension(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-0.5, 0.5, size=(100, 2))
        y = np.clip(x[:, 0], -1, 1)
        phi = PolynomialFeatureMap(2)
        model = FMLinearRegression(epsilon=1.0, rng=0).fit(phi.transform(x), y)
        # Expanded d = 5 -> Delta = 2 * 6^2.
        assert model.record_.sensitivity == pytest.approx(72.0)
