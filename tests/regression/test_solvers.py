"""Tests for the from-scratch optimization solvers."""

import numpy as np
import pytest

from repro.core.polynomial import QuadraticForm
from repro.exceptions import ConvergenceError, SolverError
from repro.regression.solvers import GradientDescent, NewtonSolver, solve_quadratic


def rosenbrock(w):
    return float(100.0 * (w[1] - w[0] ** 2) ** 2 + (1 - w[0]) ** 2)


def rosenbrock_grad(w):
    return np.array([
        -400.0 * w[0] * (w[1] - w[0] ** 2) - 2.0 * (1 - w[0]),
        200.0 * (w[1] - w[0] ** 2),
    ])


def rosenbrock_hess(w):
    return np.array([
        [1200.0 * w[0] ** 2 - 400.0 * w[1] + 2.0, -400.0 * w[0]],
        [-400.0 * w[0], 200.0],
    ])


class TestSolveQuadratic:
    def test_exact_solution(self):
        form = QuadraticForm(M=np.diag([1.0, 2.0]), alpha=np.array([-2.0, -8.0]), beta=0.0)
        result = solve_quadratic(form)
        np.testing.assert_allclose(result.x, [1.0, 2.0])
        assert result.converged
        assert result.iterations == 0

    def test_reports_objective_value(self):
        form = QuadraticForm(M=np.eye(1), alpha=np.array([-2.0]), beta=5.0)
        result = solve_quadratic(form)
        assert result.fun == pytest.approx(form.evaluate(result.x))


class TestGradientDescent:
    def test_quadratic_bowl(self):
        solver = GradientDescent(max_iterations=500, tolerance=1e-9)
        result = solver.minimize(
            lambda w: float(w @ w), lambda w: 2.0 * w, np.array([3.0, -4.0])
        )
        assert result.converged
        np.testing.assert_allclose(result.x, 0.0, atol=1e-6)

    def test_shifted_quadratic(self):
        target = np.array([1.0, -2.0, 0.5])
        solver = GradientDescent(max_iterations=1000, tolerance=1e-10)
        result = solver.minimize(
            lambda w: float((w - target) @ (w - target)),
            lambda w: 2.0 * (w - target),
            np.zeros(3),
        )
        np.testing.assert_allclose(result.x, target, atol=1e-6)

    def test_iteration_budget_respected(self):
        solver = GradientDescent(max_iterations=3)
        result = solver.minimize(rosenbrock, rosenbrock_grad, np.array([-1.2, 1.0]))
        assert not result.converged
        assert result.iterations <= 3

    def test_raise_on_failure_option(self):
        solver = GradientDescent(max_iterations=2, raise_on_failure=True)
        with pytest.raises(ConvergenceError):
            solver.minimize(rosenbrock, rosenbrock_grad, np.array([-1.2, 1.0]))

    def test_non_finite_start_raises(self):
        solver = GradientDescent()
        with pytest.raises(SolverError):
            solver.minimize(lambda w: float("inf"), lambda w: w, np.zeros(2))

    def test_monotone_decrease(self):
        # Track objective values: each accepted step must not increase f.
        values = []

        def f(w):
            v = float(w @ w + 0.5 * w[0])
            return v

        solver = GradientDescent(max_iterations=50)
        result = solver.minimize(f, lambda w: 2.0 * w + np.array([0.5, 0.0]), np.array([5.0, 5.0]))
        assert result.fun <= f(np.array([5.0, 5.0]))


class TestNewtonSolver:
    def test_quadratic_in_one_step(self):
        form = QuadraticForm(M=np.diag([2.0, 1.0]), alpha=np.array([-4.0, -2.0]), beta=0.0)
        solver = NewtonSolver()
        result = solver.minimize(
            form.evaluate, form.gradient, form.hessian, np.zeros(2)
        )
        assert result.converged
        assert result.iterations <= 2
        np.testing.assert_allclose(result.x, form.minimize(), atol=1e-8)

    def test_rosenbrock(self):
        solver = NewtonSolver(max_iterations=200, tolerance=1e-8)
        result = solver.minimize(
            rosenbrock, rosenbrock_grad, rosenbrock_hess, np.array([-1.2, 1.0])
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-5)

    def test_singular_hessian_fallback(self):
        # f(w) = w1^4 has a singular Hessian at 0-ish points; the solver
        # must still make progress via damping / steepest descent.
        solver = NewtonSolver(max_iterations=200, tolerance=1e-6)
        result = solver.minimize(
            lambda w: float(w[0] ** 4),
            lambda w: np.array([4.0 * w[0] ** 3]),
            lambda w: np.array([[12.0 * w[0] ** 2]]),
            np.array([2.0]),
        )
        assert abs(result.x[0]) < 0.1

    def test_raise_on_failure(self):
        solver = NewtonSolver(max_iterations=1, raise_on_failure=True, tolerance=1e-16)
        with pytest.raises(ConvergenceError):
            solver.minimize(
                rosenbrock, rosenbrock_grad, rosenbrock_hess, np.array([-1.2, 1.0])
            )

    def test_non_finite_start_raises(self):
        solver = NewtonSolver()
        with pytest.raises(SolverError):
            solver.minimize(
                lambda w: float("nan"), lambda w: w, lambda w: np.eye(2), np.zeros(2)
            )
