"""Tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.regression.logistic import (
    LogisticRegressionModel,
    logistic_gradient,
    logistic_hessian,
    logistic_loss,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 21)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), 1.0, atol=1e-12)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))

    def test_monotone(self):
        z = np.linspace(-10, 10, 101)
        assert np.all(np.diff(sigmoid(z)) > 0)


class TestLossDerivatives:
    def test_loss_matches_definition(self, rng):
        X = rng.normal(size=(20, 3))
        y = (rng.uniform(size=20) > 0.5).astype(float)
        w = rng.normal(size=3)
        z = X @ w
        direct = float(np.sum(np.log(1.0 + np.exp(z)) - y * z))
        assert logistic_loss(w, X, y) == pytest.approx(direct, rel=1e-10)

    def test_gradient_finite_difference(self, rng):
        X = rng.normal(size=(30, 3))
        y = (rng.uniform(size=30) > 0.5).astype(float)
        w = rng.normal(size=3) * 0.1
        grad = logistic_gradient(w, X, y)
        eps = 1e-6
        for k in range(3):
            e = np.zeros(3)
            e[k] = eps
            fd = (logistic_loss(w + e, X, y) - logistic_loss(w - e, X, y)) / (2 * eps)
            assert grad[k] == pytest.approx(fd, rel=1e-5)

    def test_hessian_finite_difference(self, rng):
        X = rng.normal(size=(30, 2))
        y = (rng.uniform(size=30) > 0.5).astype(float)
        w = rng.normal(size=2) * 0.1
        hess = logistic_hessian(w, X, y)
        eps = 1e-6
        for k in range(2):
            e = np.zeros(2)
            e[k] = eps
            fd = (logistic_gradient(w + e, X, y) - logistic_gradient(w - e, X, y)) / (2 * eps)
            np.testing.assert_allclose(hess[:, k], fd, rtol=1e-4, atol=1e-8)

    def test_hessian_positive_semidefinite(self, rng):
        X = rng.normal(size=(50, 4))
        y = (rng.uniform(size=50) > 0.5).astype(float)
        w = rng.normal(size=4)
        eigenvalues = np.linalg.eigvalsh(logistic_hessian(w, X, y))
        assert eigenvalues.min() >= -1e-10

    def test_l2_term(self, rng):
        X = rng.normal(size=(10, 2))
        y = (rng.uniform(size=10) > 0.5).astype(float)
        w = np.array([1.0, -2.0])
        plain = logistic_loss(w, X, y)
        regularized = logistic_loss(w, X, y, l2=2.0)
        assert regularized == pytest.approx(plain + 0.5 * 2.0 * 5.0)

    def test_sample_weight_scales_contributions(self, rng):
        X = rng.normal(size=(10, 2))
        y = (rng.uniform(size=10) > 0.5).astype(float)
        w = rng.normal(size=2)
        doubled = logistic_loss(w, X, y, sample_weight=np.full(10, 2.0))
        assert doubled == pytest.approx(2.0 * logistic_loss(w, X, y), rel=1e-12)


class TestLogisticModel:
    def test_separable_data_classified(self):
        X = np.array([[-1.0], [-0.5], [0.5], [1.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = LogisticRegressionModel().fit(X, y)
        np.testing.assert_array_equal(model.predict(X), y)

    def test_recovers_direction(self, rng):
        d = 3
        w_true = np.array([2.0, -1.0, 0.5])
        X = rng.normal(size=(20_000, d))
        probs = sigmoid(X @ w_true)
        y = (rng.uniform(size=20_000) < probs).astype(float)
        model = LogisticRegressionModel().fit(X, y)
        np.testing.assert_allclose(model.coef_, w_true, atol=0.1)

    def test_gd_and_newton_agree(self, rng):
        X = rng.normal(size=(500, 2))
        y = (sigmoid(X @ np.array([1.0, -1.0])) > rng.uniform(size=500)).astype(float)
        newton = LogisticRegressionModel(solver="newton").fit(X, y)
        gd = LogisticRegressionModel(solver="gd", max_iterations=5000).fit(X, y)
        np.testing.assert_allclose(newton.coef_, gd.coef_, atol=2e-2)

    def test_predict_proba_range(self, rng):
        X = rng.normal(size=(100, 2))
        y = (rng.uniform(size=100) > 0.5).astype(float)
        model = LogisticRegressionModel().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_balanced_intercept_free_prediction(self, rng):
        # With symmetric X and balanced y, the score distribution straddles 0.
        X = rng.normal(size=(1000, 2))
        y = (X[:, 0] > 0).astype(float)
        model = LogisticRegressionModel().fit(X, y)
        assert model.score_misclassification(X, y) < 0.05

    def test_rejects_non_boolean_labels(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            LogisticRegressionModel().fit(X, rng.uniform(size=10))

    def test_rejects_wrong_solver(self, rng):
        X = rng.normal(size=(10, 2))
        y = (rng.uniform(size=10) > 0.5).astype(float)
        with pytest.raises(ValueError):
            LogisticRegressionModel(solver="adam").fit(X, y)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegressionModel().predict(np.zeros((1, 2)))

    def test_l2_shrinks_solution(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(float)  # separable -> unregularized blows up
        small = LogisticRegressionModel(l2=0.01).fit(X, y)
        large = LogisticRegressionModel(l2=10.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_sample_weight_equivalent_to_replication(self, rng):
        X = rng.normal(size=(30, 2))
        y = (rng.uniform(size=30) > 0.5).astype(float)
        weights = rng.integers(1, 3, size=30).astype(float)
        weighted = LogisticRegressionModel(l2=0.1).fit(X, y, sample_weight=weights)
        X_rep = np.repeat(X, weights.astype(int), axis=0)
        y_rep = np.repeat(y, weights.astype(int))
        replicated = LogisticRegressionModel(l2=0.1).fit(X_rep, y_rep)
        np.testing.assert_allclose(weighted.coef_, replicated.coef_, atol=1e-5)

    def test_rejects_bad_sample_weight(self, rng):
        X = rng.normal(size=(10, 2))
        y = (rng.uniform(size=10) > 0.5).astype(float)
        with pytest.raises(DataError):
            LogisticRegressionModel().fit(X, y, sample_weight=np.ones(9))
        with pytest.raises(DataError):
            LogisticRegressionModel().fit(X, y, sample_weight=-np.ones(10))

    def test_result_metadata(self, rng):
        X = rng.normal(size=(100, 2))
        y = (rng.uniform(size=100) > 0.5).astype(float)
        model = LogisticRegressionModel().fit(X, y)
        assert model.result_ is not None
        assert model.result_.converged


@pytest.fixture
def rng():
    return np.random.default_rng(8)
