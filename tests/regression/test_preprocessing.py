"""Tests for footnote-1 normalization and resampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DataError, DomainError
from repro.regression.preprocessing import (
    FeatureScaler,
    KFold,
    TargetScaler,
    binarize_labels,
    max_feature_norm,
    train_test_split,
)


class TestFeatureScaler:
    def test_norm_bound_at_extremes(self):
        d = 6
        scaler = FeatureScaler(lower=np.zeros(d), upper=np.full(d, 10.0))
        X = np.full((4, d), 10.0)  # every attribute at its maximum
        assert max_feature_norm(scaler.transform(X)) == pytest.approx(1.0)

    def test_footnote1_formula(self):
        scaler = FeatureScaler(lower=np.array([0.0, 10.0]), upper=np.array([4.0, 20.0]))
        X = np.array([[2.0, 15.0]])
        out = scaler.transform(X)
        np.testing.assert_allclose(out, [[0.5 / np.sqrt(2), 0.5 / np.sqrt(2)]])

    def test_degenerate_attribute_maps_to_zero(self):
        scaler = FeatureScaler(lower=np.array([1.0, 0.0]), upper=np.array([1.0, 2.0]))
        out = scaler.transform(np.array([[1.0, 1.0]]))
        assert out[0, 0] == 0.0

    def test_clip_confines_out_of_domain(self):
        scaler = FeatureScaler(lower=np.zeros(2), upper=np.ones(2))
        out = scaler.transform(np.array([[5.0, -3.0]]))
        assert out[0, 0] == pytest.approx(1.0 / np.sqrt(2))
        assert out[0, 1] == 0.0

    def test_no_clip_raises_out_of_domain(self):
        scaler = FeatureScaler(lower=np.zeros(2), upper=np.ones(2), clip=False)
        with pytest.raises(DomainError):
            scaler.transform(np.array([[2.0, 0.5]]))

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            FeatureScaler(lower=np.array([1.0]), upper=np.array([0.0]))

    def test_mismatched_bounds(self):
        with pytest.raises(DataError):
            FeatureScaler(lower=np.zeros(2), upper=np.ones(3))

    def test_from_data_non_private(self):
        X = np.array([[0.0, 5.0], [10.0, 15.0]])
        scaler = FeatureScaler.from_data_non_private(X)
        np.testing.assert_allclose(scaler.lower, [0.0, 5.0])
        np.testing.assert_allclose(scaler.upper, [10.0, 15.0])

    def test_wrong_width_rejected(self):
        scaler = FeatureScaler(lower=np.zeros(2), upper=np.ones(2))
        with pytest.raises(DataError):
            scaler.transform(np.zeros((3, 3)))

    @given(st.integers(1, 10), st.integers(0, 2**30))
    @settings(max_examples=40, deadline=None)
    def test_norm_invariant_property(self, d, seed):
        gen = np.random.default_rng(seed)
        lower = gen.uniform(-5, 0, size=d)
        upper = lower + gen.uniform(0.1, 10, size=d)
        scaler = FeatureScaler(lower=lower, upper=upper)
        X = gen.uniform(lower, upper, size=(20, d))
        assert max_feature_norm(scaler.transform(X)) <= 1.0 + 1e-9


class TestTargetScaler:
    def test_endpoints(self):
        scaler = TargetScaler(lower=0.0, upper=100.0)
        np.testing.assert_allclose(scaler.transform([0.0, 50.0, 100.0]), [-1.0, 0.0, 1.0])

    def test_roundtrip(self):
        scaler = TargetScaler(lower=-3.0, upper=7.0)
        y = np.array([-3.0, 0.0, 5.0, 7.0])
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(y)), y)

    def test_clip(self):
        scaler = TargetScaler(lower=0.0, upper=1.0)
        assert scaler.transform([2.0])[0] == 1.0

    def test_no_clip_raises(self):
        scaler = TargetScaler(lower=0.0, upper=1.0, clip=False)
        with pytest.raises(DomainError):
            scaler.transform([2.0])

    def test_invalid_domain(self):
        with pytest.raises(DomainError):
            TargetScaler(lower=1.0, upper=1.0)


class TestBinarize:
    def test_threshold_strict(self):
        out = binarize_labels(np.array([1.0, 2.0, 3.0]), threshold=2.0)
        np.testing.assert_array_equal(out, [0.0, 0.0, 1.0])

    def test_output_is_float_boolean(self):
        out = binarize_labels(np.array([5.0]), threshold=0.0)
        assert out.dtype == float and out[0] == 1.0


class TestTrainTestSplit:
    def test_partition(self):
        train, test = train_test_split(100, test_fraction=0.2, rng=0)
        assert len(train) + len(test) == 100
        assert len(np.intersect1d(train, test)) == 0
        assert len(test) == 20

    def test_minimum_sizes(self):
        train, test = train_test_split(2, test_fraction=0.5, rng=0)
        assert len(train) == 1 and len(test) == 1

    def test_rejects_tiny_n(self):
        with pytest.raises(DataError):
            train_test_split(1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.0)


class TestKFold:
    def test_every_index_tested_once(self):
        folds = list(KFold(n_splits=5, rng=0).split(103))
        tested = np.concatenate([test for _, test in folds])
        assert sorted(tested.tolist()) == list(range(103))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=4, rng=1).split(50):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == 50

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(n_splits=5, rng=0).split(102)]
        assert max(sizes) - min(sizes) <= 1

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(n_splits=2, shuffle=False).split(10))
        np.testing.assert_array_equal(folds[0][1], np.arange(5))

    def test_rejects_more_folds_than_samples(self):
        with pytest.raises(DataError):
            list(KFold(n_splits=5).split(3))

    def test_rejects_single_fold(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_seeded_reproducibility(self):
        a = list(KFold(n_splits=3, rng=7).split(30))
        b = list(KFold(n_splits=3, rng=7).split(30))
        for (ta, sa), (tb, sb) in zip(a, b):
            np.testing.assert_array_equal(ta, tb)
            np.testing.assert_array_equal(sa, sb)
