"""Exact reproduction of every concrete number the paper states.

These tests are the tightest form of reproduction check: Section 4.2's
worked example, the quoted sensitivity formulas, the Taylor coefficients of
Section 5.1, and the Section 5.2 error constant.
"""

import math

import numpy as np
import pytest

from repro.core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from repro.core.taylor import (
    logistic_truncation_error_bound,
    softplus_derivatives,
)


class TestSection42Example:
    """D = {(1, 0.4), (0.9, 0.3), (-0.5, -1)}; f_D = 2.06w^2 - 2.34w + 1.25."""

    def setup_method(self):
        self.X = np.array([[1.0], [0.9], [-0.5]])
        self.y = np.array([0.4, 0.3, -1.0])
        self.objective = LinearRegressionObjective(1)

    def test_objective_coefficients(self):
        poly = self.objective.aggregate_polynomial(self.X, self.y)
        assert poly.coefficient((2,)) == pytest.approx(2.06)
        assert poly.coefficient((1,)) == pytest.approx(-2.34)
        assert poly.coefficient((0,)) == pytest.approx(1.25)

    def test_optimal_omega_is_117_over_206(self):
        form = self.objective.aggregate_quadratic(self.X, self.y)
        assert form.minimize()[0] == pytest.approx(117.0 / 206.0, rel=1e-12)

    def test_delta_is_8(self):
        # "Line 1 of Algorithm 1 would set Delta = 2 (d + 1)^2 = 8".
        assert self.objective.sensitivity() == 8.0


class TestQuotedFormulas:
    def test_linear_sensitivity_2d_plus_1_squared(self):
        for d in range(1, 20):
            assert LinearRegressionObjective(d).sensitivity() == pytest.approx(
                2.0 * (1.0 + 2.0 * d + d * d)
            )

    def test_logistic_sensitivity_quarter_d_squared_plus_3d(self):
        for d in range(1, 20):
            assert LogisticRegressionObjective(d).sensitivity() == pytest.approx(
                d * d / 4.0 + 3.0 * d
            )

    def test_section51_taylor_values(self):
        # f1^(0)(0) = log 2, f1^(1)(0) = 1/2, f1^(2)(0) = 1/4.
        f0, f1, f2 = softplus_derivatives(2)
        assert f0 == pytest.approx(math.log(2.0))
        assert f1 == pytest.approx(0.5)
        assert f2 == pytest.approx(0.25)

    def test_section52_error_constant(self):
        # (e^2 - e) / (6 (1 + e)^3) ~= 0.015.
        expected = (math.e**2 - math.e) / (6.0 * (1.0 + math.e) ** 3)
        assert logistic_truncation_error_bound() == pytest.approx(expected)
        assert expected == pytest.approx(0.015, abs=2e-4)

    def test_noise_scale_per_coefficient(self):
        # Algorithm 1 adds Lap(2(d+1)^2 / eps) for linear regression.
        d, eps = 13, 0.8
        obj = LinearRegressionObjective(d)
        assert obj.sensitivity() / eps == pytest.approx(2 * (d + 1) ** 2 / eps)
