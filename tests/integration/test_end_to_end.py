"""End-to-end pipeline tests: census data -> normalization -> all algorithms."""

import numpy as np
import pytest

from repro.baselines import make_algorithm
from repro.data import load_brazil, load_us
from repro.experiments import SMOKE, figure4_dimensionality, summarize_ordering
from repro.experiments.harness import evaluate_algorithm


@pytest.fixture(scope="module")
def us():
    return load_us(50_000)


ALL_ALGORITHMS = [
    "NoPrivacy",
    "Truncated",
    "FM",
    "DPME",
    "FP",
    "OutputPerturbation",
    "ObjectivePerturbation",
]


class TestFullPipeline:
    @pytest.mark.parametrize("task", ["linear", "logistic"])
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_every_algorithm_runs_on_census(self, us, task, name):
        prepared = us.take(np.arange(8000)).regression_task(task, dims=8)
        model = make_algorithm(name, task, epsilon=0.8, rng=0)
        model.fit(prepared.X, prepared.y)
        score = model.score(prepared.X, prepared.y)
        assert np.isfinite(score)
        if task == "logistic":
            assert 0.0 <= score <= 1.0

    def test_brazil_pipeline(self):
        brazil = load_brazil(8000)
        prepared = brazil.regression_task("logistic", dims=11)
        model = make_algorithm("FM", "logistic", epsilon=1.6, rng=0)
        model.fit(prepared.X, prepared.y)
        assert model.score(prepared.X, prepared.y) <= 0.6

    def test_fm_tracks_noprivacy_at_scale(self, us):
        """FM approaches the NoPrivacy floor on linear regression when n is
        large — the core accuracy claim of Figures 4-5."""
        lin = evaluate_algorithm(
            "NoPrivacy", us, "linear", dims=8, epsilon=0.8,
            preset=_preset(40_000), seed=0,
        )
        fm = evaluate_algorithm(
            "FM", us, "linear", dims=8, epsilon=0.8,
            preset=_preset(40_000), seed=0,
        )
        assert fm.mean_score <= 2.5 * lin.mean_score

    def test_truncated_tracks_noprivacy_logistic(self, us):
        """Figure 4c-d: Truncated ~ NoPrivacy (the truncation is cheap)."""
        base = evaluate_algorithm(
            "NoPrivacy", us, "logistic", dims=8, epsilon=0.8,
            preset=_preset(20_000), seed=0,
        )
        trunc = evaluate_algorithm(
            "Truncated", us, "logistic", dims=8, epsilon=0.8,
            preset=_preset(20_000), seed=0,
        )
        assert trunc.mean_score <= base.mean_score + 0.03


def _preset(n):
    from repro.experiments.config import ScalePreset

    return ScalePreset(name="test", max_records=n, folds=3, repetitions=1)


@pytest.mark.slow
@pytest.mark.tier2
class TestPaperOrderings:
    """The headline orderings at a cardinality above the FM crossover."""

    def test_linear_figure4_orderings(self):
        us = load_us(150_000)
        preset = _preset(150_000)
        scores = {}
        for name in ("NoPrivacy", "FM", "DPME", "FP"):
            scores[name] = np.mean([
                evaluate_algorithm(
                    name, us, "linear", dims=dims, epsilon=0.8,
                    preset=preset, seed=dims,
                ).mean_score
                for dims in (11, 14)
            ])
        assert scores["NoPrivacy"] <= scores["FM"]
        assert scores["FM"] < scores["DPME"]
        assert scores["FM"] < scores["FP"]
