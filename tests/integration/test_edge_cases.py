"""Failure injection and degenerate-input behaviour across the stack.

A production library must fail predictably (or degrade gracefully) on the
inputs real pipelines produce by accident: single-row tables, constant
features, single-class labels, extreme budgets.  Every behaviour asserted
here is the *documented* one — raise a library error or return a finite,
well-defined answer, never crash with a numpy internals traceback.
"""

import numpy as np
import pytest

from repro.baselines import DPME, FilterPriority, NoPrivacy, Truncated
from repro.core.models import FMLinearRegression, FMLogisticRegression
from repro.exceptions import DataError, ReproError
from repro.regression.linear import LinearRegression
from repro.regression.logistic import LogisticRegressionModel


class TestSingleRow:
    def test_fm_linear_single_row(self):
        model = FMLinearRegression(epsilon=1.0, rng=0)
        model.fit(np.array([[0.5]]), np.array([0.3]))
        assert np.isfinite(model.coef_).all()

    def test_fm_logistic_single_row(self):
        model = FMLogisticRegression(epsilon=1.0, rng=0)
        model.fit(np.array([[0.5]]), np.array([1.0]))
        assert np.isfinite(model.coef_).all()

    def test_dpme_single_row(self):
        model = DPME(task="linear", epsilon=1.0, rng=0)
        model.fit(np.array([[0.5]]), np.array([0.3]))
        assert np.isfinite(model.coef_).all()

    def test_fp_single_row(self):
        model = FilterPriority(task="linear", epsilon=1.0, rng=0)
        model.fit(np.array([[0.5]]), np.array([0.3]))
        assert np.isfinite(model.coef_).all()


class TestConstantFeatures:
    def test_all_zero_features_linear(self):
        # X = 0 -> M = 0 -> the noisy objective's curvature is pure noise;
        # the spectral repair must still release something finite.
        X = np.zeros((100, 3))
        y = np.random.default_rng(0).uniform(-1, 1, 100)
        model = FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_duplicate_columns_linear(self):
        rng = np.random.default_rng(1)
        col = rng.uniform(0, 0.5, size=(200, 1))
        X = np.hstack([col, col])  # rank 1
        y = np.clip(col.ravel() * 0.8, -1, 1)
        model = FMLinearRegression(epsilon=2.0, rng=0).fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_truncated_rank_deficient(self):
        col = np.full((50, 1), 0.3)
        X = np.hstack([col, col])
        y = np.full(50, 0.5)
        model = Truncated(task="linear").fit(X, y)
        assert np.isfinite(model.coef_).all()


class TestSingleClassLabels:
    def test_fm_logistic_all_ones(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 0.5, size=(500, 2))
        model = FMLogisticRegression(epsilon=1.0, rng=0).fit(X, np.ones(500))
        assert np.isfinite(model.coef_).all()

    def test_exact_logistic_all_zeros_does_not_crash(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 0.5, size=(200, 2))
        model = LogisticRegressionModel(max_iterations=25).fit(X, np.zeros(200))
        # MLE diverges towards -inf scores; the solver must stop cleanly.
        assert np.isfinite(model.coef_).all()

    def test_dpme_logistic_single_class(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 0.5, size=(500, 2))
        model = DPME(task="logistic", epsilon=1.0, rng=0).fit(X, np.ones(500))
        assert np.isfinite(model.coef_).all()


class TestExtremeBudgets:
    def test_tiny_epsilon_still_finite(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 0.5, size=(300, 2))
        y = np.clip(X @ np.array([0.5, -0.5]), -1, 1)
        model = FMLinearRegression(epsilon=1e-6, rng=0).fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_huge_epsilon_recovers_ols(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(0, 0.5, size=(300, 2))
        y = np.clip(X @ np.array([0.5, -0.5]) + rng.normal(0, 0.01, 300), -1, 1)
        fm = FMLinearRegression(epsilon=1e9, rng=0).fit(X, y)
        ols = LinearRegression().fit(X, y)
        np.testing.assert_allclose(fm.coef_, ols.coef_, atol=1e-4)

    def test_non_positive_epsilon_rejected(self):
        with pytest.raises(ReproError):
            FMLinearRegression(epsilon=0.0).fit(np.array([[0.1]]), np.array([0.1]))


class TestDimensionOne:
    def test_d1_pipeline(self, figure2_example):
        X, y = figure2_example
        for model in (
            FMLinearRegression(epsilon=2.0, rng=0),
            NoPrivacy(task="linear"),
            Truncated(task="linear"),
        ):
            model.fit(X, y)
            assert np.isfinite(model.predict(X)).all()


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        # A caller guarding with `except ReproError` must catch everything.
        cases = [
            lambda: FMLinearRegression(epsilon=1.0).fit(
                np.array([[5.0]]), np.array([0.0])  # norm violation
            ),
            lambda: FMLogisticRegression(epsilon=1.0).fit(
                np.array([[0.1]]), np.array([0.5])  # non-boolean label
            ),
            lambda: LinearRegression().fit(np.zeros((0, 1)), np.zeros(0)),
            lambda: DPME(task="linear", epsilon=1.0).fit(
                np.zeros((0, 1)), np.zeros(0)
            ),
        ]
        for case in cases:
            with pytest.raises(ReproError):
                case()
