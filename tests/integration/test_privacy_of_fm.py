"""Empirical differential-privacy audit of the Functional Mechanism.

Theorem 1 proves Algorithm 1 is epsilon-DP; these tests *measure* it.  The
released objective coefficients on two neighboring databases are compared
with the threshold-event estimator of :mod:`repro.privacy.audit`; a
calibration bug (wrong Delta, wrong noise placement) would blow the estimate
past the nominal budget.  A deliberately broken mechanism is audited too, to
prove the test has teeth.
"""

import numpy as np
import pytest

from repro.core.mechanism import FunctionalMechanism
from repro.core.objectives import LinearRegressionObjective
from repro.privacy.audit import audit_mechanism

# Statistical audits belong to verification tier 2 (still part of the
# default run; the certified-lower-bound variants live in tests/verify/).
pytestmark = pytest.mark.tier2


def _neighbor_databases():
    """Two 1-d linear-regression databases differing in one tuple.

    The replaced tuple flips ``(x, y) = (1, 1)`` to ``(1, -1)``: the linear
    coefficient ``-2 sum y x`` moves by 4 — the per-coefficient worst case —
    while ``x^2`` and ``y^2`` stay fixed.  (A replacement like
    ``(1,1) -> (-1,-1)`` would leave *every* coefficient unchanged and audit
    nothing.)
    """
    X_a = np.array([[0.6], [0.2], [1.0]])
    y_a = np.array([0.5, -0.3, 1.0])
    X_b = X_a.copy()
    y_b = y_a.copy()
    y_b[2] = -1.0
    return (X_a, y_a), (X_b, y_b)


def _fm_release(epsilon: float, coefficient: str):
    objective = LinearRegressionObjective(1)
    delta = objective.sensitivity()

    def mechanism(db, gen):
        X = db[:, :1]
        y = db[:, 1]
        mech = FunctionalMechanism(epsilon, rng=gen)
        noisy, _ = mech.perturb_quadratic(
            objective.aggregate_quadratic(X, y), delta
        )
        if coefficient == "quadratic":
            return float(noisy.M[0, 0])
        if coefficient == "linear":
            return float(noisy.alpha[0])
        return noisy.beta

    return mechanism


def _pack(X, y):
    return np.hstack([X, y[:, None]])


class TestFMPrivacyAudit:
    @pytest.mark.parametrize("coefficient", ["quadratic", "linear", "constant"])
    def test_each_coefficient_within_budget(self, coefficient):
        (Xa, ya), (Xb, yb) = _neighbor_databases()
        epsilon = 1.0
        estimate = audit_mechanism(
            _fm_release(epsilon, coefficient),
            _pack(Xa, ya),
            _pack(Xb, yb),
            nominal_epsilon=epsilon,
            trials=12_000,
            rng=0,
        )
        assert estimate.consistent, (
            f"{coefficient} coefficient leaked epsilon_hat="
            f"{estimate.epsilon_hat:.3f} > nominal {epsilon}"
        )

    def test_broken_mechanism_detected(self):
        """Scaling noise by Delta/4 (a plausible off-by-4 bug) must fail."""
        objective = LinearRegressionObjective(1)
        delta = objective.sensitivity() / 4.0  # WRONG on purpose
        epsilon = 1.0

        def broken(db, gen):
            X, y = db[:, :1], db[:, 1]
            mech = FunctionalMechanism(epsilon, rng=gen)
            noisy, _ = mech.perturb_quadratic(
                objective.aggregate_quadratic(X, y), delta
            )
            return float(noisy.alpha[0])

        (Xa, ya), (Xb, yb) = _neighbor_databases()
        estimate = audit_mechanism(
            broken, _pack(Xa, ya), _pack(Xb, yb),
            nominal_epsilon=epsilon, trials=12_000, rng=1,
        )
        assert not estimate.consistent

    def test_low_epsilon_audit(self):
        (Xa, ya), (Xb, yb) = _neighbor_databases()
        estimate = audit_mechanism(
            _fm_release(0.4, "linear"),
            _pack(Xa, ya), _pack(Xb, yb),
            nominal_epsilon=0.4, trials=12_000, rng=2,
        )
        assert estimate.consistent


class TestPostProcessingCostsNothing:
    def test_released_parameter_also_private(self):
        """Auditing the *minimizer* (after spectral repair): still within
        budget, since it is post-processing of the noisy coefficients."""
        from repro.core.models import FMLinearRegression

        (Xa, ya), (Xb, yb) = _neighbor_databases()
        epsilon = 1.0

        def release_omega(db, gen):
            X, y = db[:, :1], db[:, 1]
            model = FMLinearRegression(epsilon=epsilon, rng=gen)
            model.fit(X, y)
            return float(model.coef_[0])

        estimate = audit_mechanism(
            release_omega, _pack(Xa, ya), _pack(Xb, yb),
            nominal_epsilon=epsilon, trials=6_000, rng=3,
        )
        assert estimate.consistent
