"""Reproducibility and metamorphic properties of the full stack.

Determinism is a stated design goal (DESIGN.md #6): seeded runs are
bit-identical, and experiment cells are keyed by position so results do not
depend on which other algorithms happen to run in the same sweep.
Metamorphic checks exploit structure the mechanism must respect: row order
cannot matter (the objective is a sum over tuples), and the constant
coefficient cannot influence the released parameter (argmin is shift-
invariant).
"""

import numpy as np
import pytest

from repro.core.mechanism import FunctionalMechanism
from repro.core.models import FMLinearRegression
from repro.core.objectives import LinearRegressionObjective
from repro.core.polynomial import QuadraticForm
from repro.data.census import load_us
from repro.experiments.config import SMOKE
from repro.experiments.figures import figure4_dimensionality
from repro.experiments.harness import evaluate_algorithm


class TestSeededDeterminism:
    def test_sweep_bit_identical(self):
        us = load_us(5000)
        a = figure4_dimensionality(us, "linear", preset=SMOKE, seed=7)
        b = figure4_dimensionality(us, "linear", preset=SMOKE, seed=7)
        for name in a.series:
            assert [r.mean_score for r in a.series[name]] == [
                r.mean_score for r in b.series[name]
            ]

    def test_cell_results_independent_of_cohort(self):
        # FM evaluated alone must equal FM evaluated alongside others:
        # substreams are keyed by (algorithm, repetition, fold), not by
        # execution order.
        us = load_us(5000)
        alone = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=11
        )
        for other in ("NoPrivacy", "DPME"):
            evaluate_algorithm(
                other, us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=11
            )
        again = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=11
        )
        assert alone.mean_score == again.mean_score


class TestMetamorphicProperties:
    def test_row_permutation_invariance(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 0.5, size=(500, 3))
        y = np.clip(X @ np.array([0.5, -0.2, 0.1]), -1, 1)
        permutation = rng.permutation(500)
        a = FMLinearRegression(epsilon=1.0, rng=42).fit(X, y)
        b = FMLinearRegression(epsilon=1.0, rng=42).fit(X[permutation], y[permutation])
        np.testing.assert_allclose(a.coef_, b.coef_)

    def test_constant_coefficient_does_not_move_argmin(self):
        # Shift beta by an arbitrary constant: identical noise stream =>
        # identical minimizer (the argmin ignores the constant term).
        rng = np.random.default_rng(1)
        A = rng.normal(size=(3, 3))
        base = QuadraticForm(
            M=A.T @ A + 10.0 * np.eye(3), alpha=rng.normal(size=3), beta=0.0
        )
        shifted = QuadraticForm(M=base.M.copy(), alpha=base.alpha.copy(), beta=123.0)
        noisy_a, _ = FunctionalMechanism(1.0, rng=5).perturb_quadratic(base, 0.5)
        noisy_b, _ = FunctionalMechanism(1.0, rng=5).perturb_quadratic(shifted, 0.5)
        np.testing.assert_allclose(noisy_a.minimize(), noisy_b.minimize())

    def test_duplicated_dataset_doubles_coefficients(self):
        # f_{D + D}(w) = 2 f_D(w): aggregation is additive over tuples.
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 0.5, size=(100, 2))
        y = rng.uniform(-1, 1, size=100)
        obj = LinearRegressionObjective(2)
        single = obj.aggregate_quadratic(X, y)
        double = obj.aggregate_quadratic(
            np.vstack([X, X]), np.concatenate([y, y])
        )
        np.testing.assert_allclose(double.M, 2 * single.M, rtol=1e-12)
        np.testing.assert_allclose(double.alpha, 2 * single.alpha, rtol=1e-12)
        assert double.beta == pytest.approx(2 * single.beta)

    def test_duplication_leaves_exact_minimizer_unchanged(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 0.5, size=(200, 2))
        y = np.clip(X @ np.array([0.7, -0.3]) + rng.normal(0, 0.01, 200), -1, 1)
        obj = LinearRegressionObjective(2)
        w1 = obj.aggregate_quadratic(X, y).minimize()
        w2 = obj.aggregate_quadratic(np.vstack([X, X]), np.concatenate([y, y])).minimize()
        np.testing.assert_allclose(w1, w2, atol=1e-10)
