"""Tests for the timing harness."""

import numpy as np
import pytest

from repro.experiments.timing import fm_speedup_over, time_fit


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    d = 6
    X = rng.uniform(0, 1 / np.sqrt(d), size=(20_000, d))
    w = rng.normal(0, 0.5, d)
    y = (X @ w > np.median(X @ w)).astype(float)
    return X, y


class TestTimeFit:
    def test_basic(self, data):
        X, y = data
        timing = time_fit("FM", X, y, "logistic", repetitions=2)
        assert timing.mean_seconds > 0
        assert timing.min_seconds <= timing.mean_seconds
        assert timing.repetitions == 2

    def test_kwargs_forwarded(self, data):
        X, y = data
        timing = time_fit(
            "FM", X, y, "logistic", repetitions=1,
            algorithm_kwargs={"post_processing": "regularize"},
        )
        assert timing.mean_seconds > 0


class TestSpeedup:
    def test_fm_faster_than_noprivacy_logistic(self, data):
        # The Figure-7 headline: FM solves a quadratic, NoPrivacy iterates
        # Newton over all tuples.  At 20k x 6 the gap is already large.
        X, y = data
        speedup = fm_speedup_over("NoPrivacy", X, y, task="logistic", repetitions=2)
        assert speedup > 3.0
