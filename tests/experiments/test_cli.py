"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_defaults(self):
        args = build_parser().parse_args(["figure4"])
        assert args.country == "us"
        assert args.task == "linear"
        assert args.scale == "smoke"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--scale", "galactic"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "sampling rates" in out
        assert "0.1" in out and "3.2" in out

    def test_figure2(self, capsys):
        assert main(["figure2", "--epsilon", "1.0", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "2.06" in out and "argmin" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        assert "f^_D(w)" in capsys.readouterr().out

    def test_figure4_smoke(self, capsys):
        assert main(["figure4", "--scale", "smoke", "--task", "linear"]) == 0
        out = capsys.readouterr().out
        assert "mean square error vs dimensionality" in out
        assert "ordering flags" in out

    def test_figure6_logistic_smoke(self, capsys):
        assert (
            main(["figure6", "--scale", "smoke", "--task", "logistic",
                  "--country", "brazil"]) == 0
        )
        out = capsys.readouterr().out
        assert "misclassification rate" in out
        assert "Truncated" in out

    def test_figure7_smoke(self, capsys):
        assert main(["figure7", "--scale", "smoke"]) == 0
        assert "computation time" in capsys.readouterr().out

    def test_convergence(self, capsys):
        assert main(["convergence", "--task", "linear"]) == 0
        assert "noise/signal" in capsys.readouterr().out
