"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_defaults(self):
        args = build_parser().parse_args(["figure4"])
        assert args.country == "us"
        assert args.task == "linear"
        # Execution flags default to None so REPRO_* env vars can fill
        # them in; the policy resolver's CLI base supplies smoke scale.
        assert args.scale is None
        assert args.runtime is None
        assert args.executor is None

    def test_env_only_configuration(self, capsys, monkeypatch):
        """REPRO_* variables alone configure a figure run end to end."""
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        monkeypatch.setenv("REPRO_TILE_SIZE", "1")
        monkeypatch.setenv("REPRO_RUNTIME", "batched")
        assert main(["figure4", "--task", "linear"]) == 0
        out = capsys.readouterr().out
        assert "mean square error vs dimensionality" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--scale", "galactic"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "sampling rates" in out
        assert "0.1" in out and "3.2" in out

    def test_figure2(self, capsys):
        assert main(["figure2", "--epsilon", "1.0", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "2.06" in out and "argmin" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        assert "f^_D(w)" in capsys.readouterr().out

    def test_figure4_smoke(self, capsys):
        assert main(["figure4", "--scale", "smoke", "--task", "linear"]) == 0
        out = capsys.readouterr().out
        assert "mean square error vs dimensionality" in out
        assert "ordering flags" in out

    def test_figure6_logistic_smoke(self, capsys):
        assert (
            main(["figure6", "--scale", "smoke", "--task", "logistic",
                  "--country", "brazil"]) == 0
        )
        out = capsys.readouterr().out
        assert "misclassification rate" in out
        assert "Truncated" in out

    def test_figure7_smoke(self, capsys):
        assert main(["figure7", "--scale", "smoke"]) == 0
        assert "computation time" in capsys.readouterr().out

    def test_convergence(self, capsys):
        assert main(["convergence", "--task", "linear"]) == 0
        assert "noise/signal" in capsys.readouterr().out


class TestEngineCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["engine"])
        assert args.task == "linear"
        assert args.shards == 1
        assert args.epsilons == "0.1,0.2,0.4,0.8,1.6,3.2"
        assert args.cache_dir is None

    def test_linear_sweep_smoke(self, capsys):
        assert main(["engine", "--task", "linear", "--epsilons", "0.1,1,10",
                     "--shards", "4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "one pass, 3 budgets" in out
        assert "mean square error" in out

    def test_logistic_sweep_with_error_bars(self, capsys):
        assert main(["engine", "--task", "logistic", "--epsilons", "0.5,2",
                     "--scale", "smoke", "--repeats", "3"]) == 0
        out = capsys.readouterr().out
        assert "misclassification rate" in out
        assert "coef std" in out

    def test_cache_round_trip(self, capsys, tmp_path):
        argv = ["engine", "--epsilons", "1.0", "--scale", "smoke",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hit" not in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        # Identical statistics + seed => identical metric and ||omega||
        # (the trailing solve-time column is wall clock, so exclude it).
        assert first.splitlines()[-2].split()[:3] == second.splitlines()[-2].split()[:3]

    def test_bad_epsilons_exit_code(self, capsys):
        assert main(["engine", "--epsilons", "abc"]) == 2

    def test_nonpositive_epsilons_exit_code(self, capsys):
        assert main(["engine", "--epsilons", "0.5,-1"]) == 2
        assert "positive budget" in capsys.readouterr().err

    def test_invalid_shards_exit_code(self, capsys):
        assert main(["engine", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_trace_flag_writes_valid_jsonl(self, capsys, tmp_path):
        from repro.obs import load_trace

        path = tmp_path / "fig4.jsonl"
        assert main(["figure4", "--scale", "smoke", "--trace", str(path)]) == 0
        assert "trace written" in capsys.readouterr().out
        lines = load_trace(path)  # raises on schema violations
        assert lines[0]["policy"]["telemetry"] == "trace"
        assert any(l.get("name") == "session.figure" for l in lines)

    def test_trace_with_telemetry_off_rejected(self, capsys, tmp_path):
        argv = ["figure4", "--scale", "smoke", "--telemetry", "off",
                "--trace", str(tmp_path / "t.jsonl")]
        assert main(argv) == 2
        assert "--trace" in capsys.readouterr().err

    def test_engine_trace(self, capsys, tmp_path):
        from repro.obs import load_trace

        path = tmp_path / "engine.jsonl"
        assert main(["engine", "--epsilons", "1.0", "--scale", "smoke",
                     "--trace", str(path)]) == 0
        lines = load_trace(path)
        assert lines[0]["entry_point"] == "engine"
        names = {l.get("name") for l in lines}
        assert "engine.ingest" in names
        assert "engine.sweep_batched" in names

    def test_trace_summarize_command(self, capsys, tmp_path):
        path = tmp_path / "fig4.jsonl"
        assert main(["figure4", "--scale", "smoke", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mode=trace" in out
        assert "session.figure" in out
        assert "runner.laplace_draws" in out or "counter" in out

    def test_trace_summarize_missing_file(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_telemetry_off_unchanged_output(self, capsys):
        """Same figure, telemetry on vs off: identical printed table."""
        assert main(["figure4", "--scale", "smoke"]) == 0
        plain = capsys.readouterr().out
        assert main(["figure4", "--scale", "smoke", "--telemetry", "trace"]) == 0
        traced = capsys.readouterr().out
        assert plain == traced
