"""Tests for the per-figure experiment drivers."""

import numpy as np
import pytest

from repro.data.census import load_us
from repro.experiments.config import SMOKE
from repro.experiments.figures import (
    FIGURE2_DATABASE,
    FIGURE3_DATABASE,
    accuracy_sweep,
    figure2_objective_example,
    figure3_approximation_example,
    figure4_dimensionality,
    figure5_cardinality,
    figure6_privacy_budget,
    figure7_time_dimensionality,
)


@pytest.fixture(scope="module")
def us():
    return load_us(6000)


class TestFigure2:
    def test_exact_coefficients_match_paper(self):
        curve = figure2_objective_example(rng=0)
        a, b, c = curve.exact_coefficients
        assert a == pytest.approx(2.06)
        assert b == pytest.approx(-2.34)
        assert c == pytest.approx(1.25)

    def test_exact_minimizer(self):
        curve = figure2_objective_example(rng=0)
        assert curve.minimizers[0] == pytest.approx(117.0 / 206.0, abs=0.005)

    def test_perturbed_differs(self):
        curve = figure2_objective_example(epsilon=1.0, rng=1)
        assert curve.perturbed_coefficients != curve.exact_coefficients

    def test_high_epsilon_approaches_exact(self):
        curve = figure2_objective_example(epsilon=1e7, rng=2)
        a, b, c = curve.perturbed_coefficients
        assert a == pytest.approx(2.06, abs=1e-3)
        assert abs(curve.minimizers[0] - curve.minimizers[1]) <= 0.01

    def test_example_database_is_footnote_compliant(self):
        X, y = FIGURE2_DATABASE
        assert np.all(np.linalg.norm(X, axis=1) <= 1.0)
        assert np.all(np.abs(y) <= 1.0)

    def test_custom_grid(self):
        grid = np.linspace(0.4, 0.8, 11)
        curve = figure2_objective_example(rng=0, grid=grid)
        assert curve.omega_grid.shape == (11,)
        assert curve.exact.shape == (11,)


class TestFigure3:
    def test_approximation_close(self):
        curve = figure3_approximation_example()
        # Figure 3's y-axis spans ~1.9-2.3; the curves nearly overlap.
        assert np.max(np.abs(curve.exact - curve.perturbed)) < 0.15

    def test_minimizers_close(self):
        curve = figure3_approximation_example()
        assert abs(curve.minimizers[0] - curve.minimizers[1]) < 0.2

    def test_example_database(self):
        X, y = FIGURE3_DATABASE
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert np.all(np.linalg.norm(X, axis=1) <= 1.0)


class TestSweeps:
    def test_figure4_structure(self, us):
        result = figure4_dimensionality(us, "linear", preset=SMOKE)
        assert result.values == (5, 8, 11, 14)
        assert set(result.series) == {"FM", "DPME", "FP", "NoPrivacy"}
        assert len(result.metric_series("FM")) == 4

    def test_figure4_logistic_includes_truncated(self, us):
        result = figure4_dimensionality(us, "logistic", preset=SMOKE)
        assert "Truncated" in result.series

    def test_figure5_values_are_rates(self, us):
        result = figure5_cardinality(us, "linear", preset=SMOKE, rates=(0.5, 1.0))
        assert result.values == (0.5, 1.0)
        assert result.series["NoPrivacy"][0].n_train < result.series["NoPrivacy"][1].n_train

    def test_figure6_noprivacy_flat(self, us):
        result = figure6_privacy_budget(us, "linear", preset=SMOKE)
        series = result.metric_series("NoPrivacy")
        # NoPrivacy ignores epsilon: identical data + seeds per sweep point
        # still vary by fold shuffling, but the spread must be tiny compared
        # to FM's.
        fm = result.metric_series("FM")
        assert np.std(series) < np.std(fm) + 1e-9

    def test_figure6_fm_improves_with_budget(self, us):
        result = figure6_privacy_budget(us, "linear", preset=SMOKE)
        fm = dict(zip(result.values, result.metric_series("FM")))
        assert fm[3.2] < fm[0.1]

    def test_timing_views(self, us):
        result = figure7_time_dimensionality(us, preset=SMOKE)
        assert result.task == "logistic"
        times = result.time_series("FM")
        assert all(t > 0 for t in times)

    def test_panel_naming(self, us):
        result = accuracy_sweep(
            us, "linear", "epsilon", (0.8,), figure="figure6", preset=SMOKE
        )
        assert result.panel == "US-Linear"
