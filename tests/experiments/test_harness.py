"""Tests for the repeated cross-validation harness."""

import numpy as np
import pytest

from repro.data.census import load_us
from repro.exceptions import ExperimentError
from repro.experiments.config import SMOKE, ScalePreset
from repro.experiments.harness import evaluate_algorithm, evaluate_algorithms


@pytest.fixture(scope="module")
def us():
    return load_us(6000)


class TestEvaluateAlgorithm:
    def test_basic_run(self, us):
        result = evaluate_algorithm(
            "NoPrivacy", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=0
        )
        assert result.algorithm == "NoPrivacy"
        assert result.cells == SMOKE.folds * SMOKE.repetitions
        assert 0.0 <= result.mean_score < 1.0
        assert result.mean_fit_seconds > 0.0

    def test_train_size_accounts_for_folds(self, us):
        result = evaluate_algorithm(
            "NoPrivacy", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=0
        )
        expected_n = SMOKE.cardinality(us.n)
        assert result.n_train == pytest.approx(expected_n * 2 / 3, abs=2)

    def test_seeded_reproducibility(self, us):
        a = evaluate_algorithm("FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3)
        b = evaluate_algorithm("FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3)
        assert a.mean_score == b.mean_score

    def test_different_seeds_differ(self, us):
        a = evaluate_algorithm("FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=3)
        b = evaluate_algorithm("FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=4)
        assert a.mean_score != b.mean_score

    def test_sampling_rate_shrinks_training(self, us):
        full = evaluate_algorithm(
            "NoPrivacy", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=0
        )
        half = evaluate_algorithm(
            "NoPrivacy", us, "linear", dims=5, epsilon=0.8, preset=SMOKE,
            sampling_rate=0.5, seed=0,
        )
        assert half.n_train < full.n_train

    def test_invalid_sampling_rate(self, us):
        with pytest.raises(ExperimentError):
            evaluate_algorithm(
                "NoPrivacy", us, "linear", dims=5, epsilon=0.8,
                preset=SMOKE, sampling_rate=0.0,
            )

    def test_logistic_task(self, us):
        result = evaluate_algorithm(
            "Truncated", us, "logistic", dims=5, epsilon=0.8, preset=SMOKE, seed=0
        )
        assert 0.0 <= result.mean_score <= 0.5

    def test_algorithm_kwargs_forwarded(self, us):
        result = evaluate_algorithm(
            "FM", us, "linear", dims=5, epsilon=0.8, preset=SMOKE, seed=0,
            algorithm_kwargs={"tight_sensitivity": True},
        )
        assert result.mean_score >= 0.0

    def test_held_out_scoring(self, us):
        # NoPrivacy test MSE must be near train MSE but strictly computed on
        # held-out data: use a tiny preset so overfit would show.
        tiny = ScalePreset(name="tiny", max_records=60, folds=3, repetitions=1)
        result = evaluate_algorithm(
            "NoPrivacy", us, "linear", dims=14, epsilon=0.8, preset=tiny, seed=0
        )
        # 13 features on 40 training rows overfits; held-out error must
        # exceed the *training* error of a comparable direct fit.
        assert result.mean_score > 0.0


class TestEvaluateAlgorithms:
    def test_returns_all(self, us):
        results = evaluate_algorithms(
            ["NoPrivacy", "FM"], us, "linear", dims=5, epsilon=0.8,
            preset=SMOKE, seed=0,
        )
        assert set(results) == {"NoPrivacy", "FM"}

    def test_noprivacy_at_least_as_good_on_average(self, us):
        results = evaluate_algorithms(
            ["NoPrivacy", "FM"], us, "linear", dims=5, epsilon=0.4,
            preset=SMOKE, seed=1,
        )
        assert results["NoPrivacy"].mean_score <= results["FM"].mean_score + 1e-6
