"""Tests for the Table-2 configuration."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import (
    DEFAULT,
    DEFAULT_DIMENSIONALITY,
    DEFAULT_EPSILON,
    DEFAULT_SAMPLING_RATE,
    DIMENSIONALITIES,
    FULL,
    LINEAR_ALGORITHMS,
    LOGISTIC_ALGORITHMS,
    PRIVACY_BUDGETS,
    SAMPLING_RATES,
    SMOKE,
    ScalePreset,
)


class TestTable2:
    def test_sampling_rates(self):
        assert SAMPLING_RATES == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def test_dimensionalities(self):
        assert DIMENSIONALITIES == (5, 8, 11, 14)

    def test_privacy_budgets(self):
        assert PRIVACY_BUDGETS == (3.2, 1.6, 0.8, 0.4, 0.2, 0.1)

    def test_defaults_in_ranges(self):
        assert DEFAULT_SAMPLING_RATE in SAMPLING_RATES
        assert DEFAULT_DIMENSIONALITY in DIMENSIONALITIES
        assert DEFAULT_EPSILON in PRIVACY_BUDGETS

    def test_algorithm_panels(self):
        # Truncated only appears on the logistic panels (Section 7.1).
        assert "Truncated" not in LINEAR_ALGORITHMS
        assert "Truncated" in LOGISTIC_ALGORITHMS
        for name in ("FM", "DPME", "FP", "NoPrivacy"):
            assert name in LINEAR_ALGORITHMS
            assert name in LOGISTIC_ALGORITHMS


class TestScalePreset:
    def test_full_matches_paper_protocol(self):
        assert FULL.folds == 5
        assert FULL.repetitions == 50
        assert FULL.max_records is None

    def test_cardinality_capped(self):
        assert DEFAULT.cardinality(10**9) == DEFAULT.max_records
        assert SMOKE.cardinality(1000) == 1000

    def test_full_uses_everything(self):
        assert FULL.cardinality(370_000) == 370_000

    def test_invalid_folds(self):
        with pytest.raises(ExperimentError):
            ScalePreset(name="bad", max_records=None, folds=1, repetitions=1)

    def test_invalid_repetitions(self):
        with pytest.raises(ExperimentError):
            ScalePreset(name="bad", max_records=None, folds=5, repetitions=0)

    def test_records_below_folds_rejected(self):
        with pytest.raises(ExperimentError):
            ScalePreset(name="bad", max_records=3, folds=5, repetitions=1)
