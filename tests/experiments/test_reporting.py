"""Tests for result rendering."""

import pytest

from repro.experiments.figures import (
    SweepResult,
    figure2_objective_example,
)
from repro.experiments.harness import EvaluationResult
from repro.experiments.reporting import (
    format_objective_curve,
    format_sweep_table,
    format_time_table,
    summarize_ordering,
)


def _result(name: str, score: float, seconds: float = 0.01) -> EvaluationResult:
    return EvaluationResult(
        algorithm=name, task="linear", mean_score=score, std_score=0.0,
        mean_fit_seconds=seconds, cells=5, n_train=100,
    )


@pytest.fixture
def sweep():
    return SweepResult(
        figure="figure4",
        panel="US-Linear",
        task="linear",
        parameter="dimensionality",
        values=(5, 8),
        series={
            "FM": (_result("FM", 0.06), _result("FM", 0.07)),
            "DPME": (_result("DPME", 0.09, 0.5), _result("DPME", 0.12, 0.6)),
            "NoPrivacy": (_result("NoPrivacy", 0.05), _result("NoPrivacy", 0.05)),
        },
    )


class TestTables:
    def test_sweep_table_contains_all_columns(self, sweep):
        table = format_sweep_table(sweep)
        for name in ("FM", "DPME", "NoPrivacy"):
            assert name in table
        assert "mean square error" in table
        assert "dimensionality" in table

    def test_sweep_table_rows(self, sweep):
        table = format_sweep_table(sweep)
        assert "0.0600" in table and "0.1200" in table

    def test_time_table(self, sweep):
        table = format_time_table(sweep)
        assert "computation time" in table
        assert "0.5" in table

    def test_objective_curve_rendering(self):
        curve = figure2_objective_example(rng=0)
        text = format_objective_curve(curve, ("f_D", "noisy"))
        assert "2.06" in text
        assert "argmin" in text


class TestOrderingSummary:
    def test_flags(self, sweep):
        flags = summarize_ordering(sweep)
        assert flags["fm_beats_dpme"] is True
        assert flags["noprivacy_best"] is True

    def test_fm_losing_detected(self):
        sweep = SweepResult(
            figure="figure4", panel="US-Linear", task="linear",
            parameter="dimensionality", values=(5,),
            series={
                "FM": (_result("FM", 0.5),),
                "DPME": (_result("DPME", 0.1),),
            },
        )
        assert summarize_ordering(sweep)["fm_beats_dpme"] is False
