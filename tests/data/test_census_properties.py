"""Hypothesis property tests for the census generator.

Whatever the seed, size or country, generated data must satisfy the
declared schema invariants — the privacy analysis depends on them (domain
bounds feed the sensitivity), so a generator that strays breaks the DP
guarantee silently.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.census import generate_census
from repro.data.schema import CENSUS_ATTRIBUTES, INCOME_CAP


@given(
    st.sampled_from(["us", "brazil"]),
    st.integers(1, 400),
    st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_domains_hold_for_any_seed(country, n, seed):
    ds = generate_census(country, n, rng=seed)
    for i, spec in enumerate(CENSUS_ATTRIBUTES):
        column = ds.features[:, i]
        assert column.min() >= spec.lower - 1e-9
        assert column.max() <= spec.upper + 1e-9
        if spec.kind == "binary":
            assert set(np.unique(column)) <= {0.0, 1.0}
    assert ds.income.min() >= 0.0
    assert ds.income.max() <= INCOME_CAP[country] + 1e-6


@given(
    st.sampled_from(["us", "brazil"]),
    st.integers(50, 400),
    st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_structural_invariants_for_any_seed(country, n, seed):
    ds = generate_census(country, n, rng=seed)
    single = ds.column("Is Single")
    married = ds.column("Is Married")
    assert np.max(single + married) <= 1.0
    assert np.all(ds.column("Number of Children") <= ds.column("Family Size"))
    hours = ds.column("Working Hours per Week")
    assert np.all((hours == 0.0) | (hours >= 1.0))


@given(st.integers(2, 200), st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_normalized_task_always_footnote_compliant(n, seed):
    ds = generate_census("us", n, rng=seed)
    for task in ("linear", "logistic"):
        prepared = ds.regression_task(task, dims=14)
        assert np.linalg.norm(prepared.X, axis=1).max() <= 1.0 + 1e-9
        if task == "linear":
            assert np.abs(prepared.y).max() <= 1.0
        else:
            assert set(np.unique(prepared.y)) <= {0.0, 1.0}
