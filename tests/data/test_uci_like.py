"""Tests for the UCI-Adult-like dataset."""

import numpy as np
import pytest

from repro.core.models import FMLogisticRegression
from repro.data.uci_like import ADULT_ATTRIBUTES, AdultLikeDataset, load_adult_like
from repro.exceptions import DataError
from repro.regression.logistic import LogisticRegressionModel


@pytest.fixture(scope="module")
def adult():
    return load_adult_like()


class TestGeneration:
    def test_default_size_matches_uci_train_split(self, adult):
        assert adult.n == 30_162

    def test_positive_rate_near_canonical(self, adult):
        # UCI Adult: ~24.8% of the cleaned train split earns > 50K.
        assert 0.18 <= adult.label.mean() <= 0.32

    def test_domains_respected(self, adult):
        for i, (name, lower, upper) in enumerate(ADULT_ATTRIBUTES):
            column = adult.features[:, i]
            assert column.min() >= lower - 1e-9, name
            assert column.max() <= upper + 1e-9, name

    def test_capital_gain_zero_inflated(self, adult):
        gains = adult.features[:, 3]
        assert np.mean(gains == 0.0) > 0.8
        assert gains.max() > 10_000

    def test_reproducible(self):
        a = load_adult_like(500)
        b = load_adult_like(500)
        np.testing.assert_array_equal(a.features, b.features)

    def test_invalid_size(self):
        with pytest.raises(DataError):
            load_adult_like(0)

    def test_container_validation(self):
        with pytest.raises(DataError):
            AdultLikeDataset(np.zeros((5, 3)), np.zeros(5))
        with pytest.raises(DataError):
            AdultLikeDataset(np.zeros((5, 6)), np.zeros(4))


class TestTask:
    def test_normalization(self, adult):
        X, y = adult.logistic_task()
        assert np.linalg.norm(X, axis=1).max() <= 1.0 + 1e-9
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_signal_is_learnable(self, adult):
        # Non-private reference fit with an intercept column (the >50K
        # boundary is a shifted halfspace, not a cone through the origin).
        X, y = adult.logistic_task()
        X_b = np.hstack([X, np.ones((X.shape[0], 1))])
        model = LogisticRegressionModel().fit(X_b, y)
        majority_error = min(y.mean(), 1 - y.mean())
        assert model.score_misclassification(X_b, y) < majority_error

    def test_fm_fits_privately(self, adult):
        X, y = adult.logistic_task()
        model = FMLogisticRegression(epsilon=0.8, rng=0, fit_intercept=True).fit(X, y)
        assert model.score_misclassification(X, y) <= 0.5
