"""Tests for the synthetic census generator."""

import numpy as np
import pytest

from repro.data.census import (
    BRAZIL_DEFAULT_SIZE,
    US_DEFAULT_SIZE,
    generate_census,
    load_brazil,
    load_us,
)
from repro.data.schema import CENSUS_ATTRIBUTES, INCOME_CAP
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def us():
    return load_us(30_000)


@pytest.fixture(scope="module")
def brazil():
    return load_brazil(30_000)


class TestGeneration:
    def test_default_sizes_match_paper(self):
        assert US_DEFAULT_SIZE == 370_000
        assert BRAZIL_DEFAULT_SIZE == 190_000

    def test_shapes(self, us):
        assert us.features.shape == (30_000, 13)
        assert us.income.shape == (30_000,)

    def test_reproducible_default_seed(self):
        a = load_us(100)
        b = load_us(100)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.income, b.income)

    def test_different_seeds_differ(self):
        a = generate_census("us", 100, rng=1)
        b = generate_census("us", 100, rng=2)
        assert not np.array_equal(a.features, b.features)

    def test_rejects_unknown_country(self):
        with pytest.raises(DataError):
            generate_census("narnia", 10)

    def test_rejects_zero_rows(self):
        with pytest.raises(DataError):
            generate_census("us", 0)


class TestDomains:
    def test_all_attributes_within_declared_domains(self, us, brazil):
        for ds in (us, brazil):
            for i, spec in enumerate(CENSUS_ATTRIBUTES):
                column = ds.features[:, i]
                assert column.min() >= spec.lower - 1e-9, spec.name
                assert column.max() <= spec.upper + 1e-9, spec.name

    def test_income_within_cap(self, us, brazil):
        for ds in (us, brazil):
            assert ds.income.min() >= 0.0
            assert ds.income.max() <= INCOME_CAP[ds.country]

    def test_binary_attributes_are_binary(self, us):
        for i, spec in enumerate(CENSUS_ATTRIBUTES):
            if spec.kind == "binary":
                assert set(np.unique(us.features[:, i])) <= {0.0, 1.0}, spec.name


class TestRealism:
    def test_marital_binaries_mutually_exclusive(self, us):
        single = us.column("Is Single")
        married = us.column("Is Married")
        assert np.max(single + married) <= 1.0

    def test_some_divorced_or_widowed_exist(self, us):
        single = us.column("Is Single")
        married = us.column("Is Married")
        assert np.mean((single == 0) & (married == 0)) > 0.01

    def test_income_right_skewed(self, us):
        # Census income: mean above median, long right tail.
        assert us.income.mean() > np.median(us.income)
        assert np.percentile(us.income, 99) > 3 * np.median(us.income)

    def test_income_concentated_below_cap(self, us):
        # The concentration that starves 2-bin histograms of signal.
        assert np.median(us.income) < 0.25 * INCOME_CAP["us"]

    def test_hours_spike_at_forty(self, us):
        hours = us.column("Working Hours per Week")
        workers = hours[hours > 0]
        assert np.mean(workers == 40.0) > 0.3

    def test_some_non_workers(self, us):
        hours = us.column("Working Hours per Week")
        assert np.mean(hours == 0.0) > 0.05

    def test_education_milestone_spikes(self, us):
        edu = us.column("Education")
        assert np.mean(edu == 12.0) > 0.1

    def test_education_income_correlation_positive(self, us):
        corr = np.corrcoef(us.column("Education"), us.income)[0, 1]
        assert corr > 0.2

    def test_disability_increases_with_age(self, us):
        age = us.column("Age")
        dis = us.column("Disability")
        young = dis[age < 35].mean()
        old = dis[age > 65].mean()
        assert old > 2 * young

    def test_married_rate_rises_with_age(self, us):
        age = us.column("Age")
        married = us.column("Is Married")
        assert married[age > 40].mean() > married[age < 25].mean()

    def test_brazil_lower_education(self, us, brazil):
        assert brazil.column("Education").mean() < us.column("Education").mean()

    def test_brazil_lower_income(self, us, brazil):
        assert np.median(brazil.income) < np.median(us.income)

    def test_children_bounded_by_family(self, us):
        children = us.column("Number of Children")
        family = us.column("Family Size")
        assert np.all(children <= family)

    def test_ownership_correlates_with_income(self, us):
        own = us.column("Ownership of Dwelling")
        assert us.income[own == 1].mean() > us.income[own == 0].mean()
