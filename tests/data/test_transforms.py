"""Tests for stand-alone data transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    census_feature_scaler,
    expand_marital_status,
    prepare_linear_target,
    prepare_logistic_target,
)
from repro.exceptions import DataError


class TestMaritalExpansion:
    def test_paper_semantics(self):
        single, married = expand_marital_status(np.array([0, 1, 2, 1, 0]))
        np.testing.assert_array_equal(single, [1, 0, 0, 0, 1])
        np.testing.assert_array_equal(married, [0, 1, 0, 1, 0])

    def test_divorced_widowed_zero_on_both(self):
        single, married = expand_marital_status(np.array([2, 2]))
        assert single.sum() == 0 and married.sum() == 0

    def test_invalid_code_rejected(self):
        with pytest.raises(DataError):
            expand_marital_status(np.array([0, 3]))


class TestCensusFeatureScaler:
    def test_matches_subset_width(self):
        for dims in (5, 8, 11, 14):
            scaler = census_feature_scaler(dims)
            assert scaler.dim == dims - 1

    def test_age_bounds_from_schema(self):
        scaler = census_feature_scaler(5)
        assert scaler.lower[0] == 16.0 and scaler.upper[0] == 95.0

    def test_scaled_norm_bound(self):
        scaler = census_feature_scaler(5)
        X = np.array([[95.0, 1.0, 18.0, 15.0]])  # everything at max
        assert np.linalg.norm(scaler.transform(X)) == pytest.approx(1.0)


class TestTargetPreparation:
    def test_linear_range(self):
        y = prepare_linear_target(np.array([0.0, 150_000.0, 300_000.0]), cap=300_000.0)
        np.testing.assert_allclose(y, [-1.0, 0.0, 1.0])

    def test_logistic_threshold(self):
        y = prepare_logistic_target(np.array([10.0, 30.0]), threshold=20.0)
        np.testing.assert_array_equal(y, [0.0, 1.0])
