"""Tests for the census attribute schema."""

import pytest

from repro.data.schema import (
    CENSUS_ATTRIBUTES,
    INCOME_CAP,
    INCOME_THRESHOLD,
    SUBSET_BY_DIMENSIONALITY,
    AttributeSpec,
    feature_names,
    subset_for_dims,
)


class TestSchema:
    def test_thirteen_predictors(self):
        # 12 raw attributes + marital expansion = 13 predictors (paper: 14
        # dims including income).
        assert len(CENSUS_ATTRIBUTES) == 13

    def test_marital_expanded(self):
        names = feature_names()
        assert "Is Single" in names and "Is Married" in names
        assert "Marital Status" not in names

    def test_binary_attributes_have_unit_domain(self):
        for spec in CENSUS_ATTRIBUTES:
            if spec.kind == "binary":
                assert (spec.lower, spec.upper) == (0.0, 1.0)

    def test_all_domains_valid(self):
        for spec in CENSUS_ATTRIBUTES:
            assert spec.upper > spec.lower

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("Broken", "binary", 1.0, 0.0)

    def test_caps_and_thresholds_for_both_countries(self):
        for country in ("us", "brazil"):
            assert INCOME_CAP[country] > INCOME_THRESHOLD[country] > 0


class TestSubsets:
    def test_table2_dimensionalities(self):
        assert sorted(SUBSET_BY_DIMENSIONALITY) == [5, 8, 11, 14]

    def test_subset_sizes_match_paper(self):
        # dims counts attributes including Annual Income.
        for dims, subset in SUBSET_BY_DIMENSIONALITY.items():
            assert len(subset) == dims - 1

    def test_paper_five_dim_subset(self):
        assert subset_for_dims(5) == ("Age", "Gender", "Education", "Family Size")

    def test_subsets_are_nested(self):
        s5, s8, s11, s14 = (set(subset_for_dims(d)) for d in (5, 8, 11, 14))
        assert s5 < s8 < s11 < s14

    def test_eleven_adds_marital_and_children(self):
        added = set(subset_for_dims(11)) - set(subset_for_dims(8))
        assert added == {"Is Single", "Is Married", "Number of Children"}

    def test_fourteen_is_everything(self):
        assert set(subset_for_dims(14)) == set(feature_names())

    def test_unknown_dims_rejected(self):
        with pytest.raises(ValueError):
            subset_for_dims(7)
