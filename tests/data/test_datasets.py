"""Tests for the dataset container and task preparation."""

import numpy as np
import pytest

from repro.data.census import load_us
from repro.data.datasets import CensusDataset
from repro.data.schema import CENSUS_ATTRIBUTES, INCOME_THRESHOLD
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def us():
    return load_us(20_000)


class TestContainer:
    def test_column_access(self, us):
        age = us.column("Age")
        assert age.shape == (20_000,)
        assert age.min() >= 16.0

    def test_unknown_column(self, us):
        with pytest.raises(DataError):
            us.column("Blood Type")

    def test_wrong_width_rejected(self):
        with pytest.raises(DataError):
            CensusDataset("us", np.zeros((5, 3)), np.zeros(5))

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            CensusDataset("us", np.zeros((5, 13)), np.zeros(4))

    def test_unknown_country_rejected(self):
        with pytest.raises(DataError):
            CensusDataset("atlantis", np.zeros((5, 13)), np.zeros(5))

    def test_repr(self, us):
        assert "us" in repr(us) and "20000" in repr(us)


class TestSampling:
    def test_rate_one_is_identity(self, us):
        assert us.sample(1.0) is us

    def test_sample_size(self, us):
        sub = us.sample(0.25, rng=0)
        assert sub.n == 5000

    def test_sample_without_replacement(self, us):
        sub = us.sample(0.5, rng=0)
        # No duplicated rows beyond what the base data contains: check by
        # re-deriving indices through unique row hashing on a small slice.
        assert sub.n == 10_000

    def test_invalid_rate(self, us):
        with pytest.raises(DataError):
            us.sample(0.0)
        with pytest.raises(DataError):
            us.sample(1.5)

    def test_take(self, us):
        sub = us.take(np.arange(10))
        assert sub.n == 10
        np.testing.assert_array_equal(sub.income, us.income[:10])


class TestRegressionTask:
    def test_linear_task_normalized(self, us):
        task = us.regression_task("linear", dims=14)
        assert task.dim == 13
        assert np.linalg.norm(task.X, axis=1).max() <= 1.0 + 1e-9
        assert task.y.min() >= -1.0 and task.y.max() <= 1.0

    def test_logistic_task_binary(self, us):
        task = us.regression_task("logistic", dims=14)
        assert set(np.unique(task.y)) <= {0.0, 1.0}
        # The declared threshold sits near the population median.
        expected = (us.income > INCOME_THRESHOLD["us"]).mean()
        assert task.y.mean() == pytest.approx(expected)

    def test_dimensionality_subsets(self, us):
        for dims in (5, 8, 11, 14):
            task = us.regression_task("linear", dims=dims)
            assert task.dim == dims - 1
            assert len(task.feature_names) == dims - 1

    def test_five_dim_columns_correct(self, us):
        task = us.regression_task("linear", dims=5)
        assert task.feature_names == ("Age", "Gender", "Education", "Family Size")
        # First column must be scaled Age: monotone in the raw Age column.
        age = us.column("Age")
        order = np.argsort(age[:100])
        scaled = task.X[:100, 0]
        assert np.all(np.diff(scaled[order]) >= -1e-12)

    def test_unknown_task_rejected(self, us):
        with pytest.raises(DataError):
            us.regression_task("poisson", dims=14)

    def test_unknown_dims_rejected(self, us):
        with pytest.raises(ValueError):
            us.regression_task("linear", dims=6)

    def test_task_metadata(self, us):
        task = us.regression_task("linear", dims=8)
        assert task.country == "us"
        assert task.task == "linear"
        assert task.n == us.n
