"""Contract tests for the exception hierarchy.

The hierarchy is public API: downstream code catches ``ReproError`` (or a
subsystem subtree) and relies on the carried context attributes.
"""

import pytest

from repro.exceptions import (
    ApproximationError,
    BudgetExhaustedError,
    ConvergenceError,
    DataError,
    DegreeError,
    DimensionMismatchError,
    DomainError,
    ExperimentError,
    InvalidBudgetError,
    NotFittedError,
    ObjectiveError,
    PolynomialError,
    PrivacyError,
    ReproError,
    SensitivityError,
    SolverError,
    UnboundedObjectiveError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (
            PrivacyError, BudgetExhaustedError, InvalidBudgetError,
            SensitivityError, PolynomialError, DegreeError,
            DimensionMismatchError, ObjectiveError, UnboundedObjectiveError,
            ApproximationError, DataError, DomainError, NotFittedError,
            SolverError, ConvergenceError, ExperimentError,
        ):
            assert issubclass(cls, ReproError), cls.__name__

    def test_privacy_subtree(self):
        for cls in (BudgetExhaustedError, InvalidBudgetError, SensitivityError):
            assert issubclass(cls, PrivacyError)

    def test_polynomial_subtree(self):
        for cls in (DegreeError, DimensionMismatchError):
            assert issubclass(cls, PolynomialError)

    def test_objective_subtree(self):
        for cls in (UnboundedObjectiveError, ApproximationError):
            assert issubclass(cls, ObjectiveError)

    def test_domain_error_is_data_error(self):
        assert issubclass(DomainError, DataError)


class TestCarriedContext:
    def test_budget_exhausted_carries_amounts(self):
        err = BudgetExhaustedError(requested=0.5, remaining=0.2)
        assert err.requested == 0.5
        assert err.remaining == 0.2
        assert "0.5" in str(err) and "0.2" in str(err)

    def test_dimension_mismatch_carries_sizes(self):
        err = DimensionMismatchError(expected=3, got=5, what="point dim")
        assert err.expected == 3 and err.got == 5
        assert "point dim" in str(err)

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("Newton", iterations=42, residual=1e-3)
        assert err.solver == "Newton"
        assert err.iterations == 42
        assert err.residual == pytest.approx(1e-3)
        assert "Newton" in str(err) and "42" in str(err)

    def test_not_fitted_names_the_model(self):
        assert "FMLinearRegression" in str(NotFittedError("FMLinearRegression"))
