"""Legacy kwarg entry points == Session entry points, bitwise.

The compatibility contract of the session API: every deprecated free
function builds a one-shot Session from its kwargs and must therefore
produce **bitwise-identical** scores to calling the Session directly —
at both stream versions, under every executor kind, with and without
tiling.  Wall-clock fields (``mean_fit_seconds``) are measurements, not
results, and are excluded from comparison.
"""

import warnings

import pytest

from repro.experiments.config import ScalePreset
from repro.experiments.figures import (
    accuracy_sweep,
    figure4_dimensionality,
    figure5_cardinality,
    figure6_privacy_budget,
    figure7_time_dimensionality,
    figure8_time_cardinality,
    figure9_time_budget,
)
from repro.experiments.harness import (
    evaluate_algorithm,
    evaluate_algorithms,
    evaluate_fm_budget_sweep,
)
from repro.session import ExecutionPolicy, Session


def _scores(result):
    """The deterministic fields of an EvaluationResult (timings excluded)."""
    return (
        result.algorithm,
        result.task,
        result.mean_score,
        result.std_score,
        result.cells,
        result.n_train,
    )


def _sweep_scores(sweep):
    """The deterministic content of a SweepResult."""
    return (
        sweep.figure,
        sweep.panel,
        sweep.task,
        sweep.parameter,
        sweep.values,
        {
            name: tuple(_scores(point) for point in points)
            for name, points in sweep.series.items()
        },
    )


def _silently(fn, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


@pytest.mark.parametrize("stream_version", [1, 2])
class TestBitwiseEquivalence:
    def test_evaluate_algorithm(self, tiny_dataset, tiny_preset, stream_version):
        legacy = _silently(
            evaluate_algorithm,
            "FM", tiny_dataset, "linear", 5, 1.0,
            preset=tiny_preset, seed=11, stream_version=stream_version,
        )
        session = Session(ExecutionPolicy(stream_version=stream_version, seed=11))
        assert _scores(
            session.evaluate("FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset)
        ) == _scores(legacy)

    def test_evaluate_algorithms(self, tiny_dataset, tiny_preset, stream_version):
        names = ["FM", "DPME", "NoPrivacy"]
        legacy = _silently(
            evaluate_algorithms,
            names, tiny_dataset, "linear", 5, 0.8,
            preset=tiny_preset, seed=3, stream_version=stream_version,
        )
        panel = Session(
            ExecutionPolicy(stream_version=stream_version)
        ).evaluate_panel(names, tiny_dataset, "linear", 5, 0.8,
                         preset=tiny_preset, seed=3)
        assert {k: _scores(v) for k, v in panel.items()} == {
            k: _scores(v) for k, v in legacy.items()
        }

    @pytest.mark.parametrize("runtime", ["auto", "engine"])
    def test_evaluate_fm_budget_sweep(
        self, tiny_dataset, tiny_preset, stream_version, runtime
    ):
        legacy = _silently(
            evaluate_fm_budget_sweep,
            tiny_dataset, "linear", 5, [0.5, 2.0],
            preset=tiny_preset, seed=5, runtime=runtime,
            stream_version=stream_version,
        )
        sweep = Session(
            ExecutionPolicy(runtime=runtime, stream_version=stream_version)
        ).budget_sweep(tiny_dataset, "linear", 5, [0.5, 2.0],
                       preset=tiny_preset, seed=5)
        assert {e: _scores(r) for e, r in sweep.items()} == {
            e: _scores(r) for e, r in legacy.items()
        }

    def test_accuracy_sweep(self, tiny_dataset, tiny_preset, stream_version):
        legacy = _silently(
            accuracy_sweep,
            tiny_dataset, "linear", "dimensionality", (5, 8), "figure4",
            preset=tiny_preset, seed=2, stream_version=stream_version,
        )
        sweep = Session(ExecutionPolicy(stream_version=stream_version)).sweep(
            tiny_dataset, "linear", "dimensionality", (5, 8), "figure4",
            preset=tiny_preset, seed=2,
        )
        assert _sweep_scores(sweep) == _sweep_scores(legacy)


class TestExecutorAndTilingEquivalence:
    """Session-held pooled executors match the legacy one-shot executors."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_executor_matches_legacy(
        self, tiny_dataset, tiny_preset, executor
    ):
        legacy = _silently(
            evaluate_algorithm,
            "FM", tiny_dataset, "linear", 5, 1.0,
            preset=tiny_preset, seed=4, executor=executor, tile_size=1,
        )
        policy = ExecutionPolicy(executor=executor, tile_size=1, max_workers=2)
        with Session(policy) as session:
            pooled = session.evaluate(
                "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset, seed=4
            )
        assert _scores(pooled) == _scores(legacy)

    def test_percell_generic_through_pool(self, tiny_dataset, tiny_preset):
        legacy = _silently(
            evaluate_algorithm,
            "DPME", tiny_dataset, "linear", 5, 1.0,
            preset=tiny_preset, seed=8, runtime="percell",
        )
        policy = ExecutionPolicy(runtime="percell", executor="process", max_workers=2)
        with Session(policy) as session:
            pooled = session.evaluate(
                "DPME", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset, seed=8
            )
        assert _scores(pooled) == _scores(legacy)


class TestFigureShims:
    """Each driver shim: warns, and matches Session.figure bitwise."""

    def test_figure_drivers_match_session(self, tiny_dataset):
        preset = ScalePreset(name="micro", max_records=200, folds=2, repetitions=1)
        session = Session(ExecutionPolicy())
        cases = [
            ("figure4", figure4_dimensionality, dict(task="linear"), {}),
            (
                "figure5",
                figure5_cardinality,
                dict(task="linear", rates=(0.5, 1.0)),
                dict(values=(0.5, 1.0)),
            ),
            ("figure6", figure6_privacy_budget, dict(task="linear"), {}),
            ("figure7", figure7_time_dimensionality, {}, {}),
            (
                "figure8",
                figure8_time_cardinality,
                dict(rates=(1.0,)),
                dict(values=(1.0,)),
            ),
            ("figure9", figure9_time_budget, {}, {}),
        ]
        for name, legacy_fn, legacy_kwargs, session_kwargs in cases:
            with pytest.deprecated_call(match=legacy_fn.__name__):
                legacy = legacy_fn(
                    tiny_dataset, preset=preset, seed=1, **legacy_kwargs
                )
            task = legacy_kwargs.get("task")
            new = session.figure(
                name, tiny_dataset, task, preset=preset, seed=1, **session_kwargs
            )
            assert _sweep_scores(new) == _sweep_scores(legacy), name


class TestDeprecationWarnings:
    """Every shimmed entry point announces its session equivalent."""

    def test_harness_shims_warn(self, tiny_dataset, tiny_preset):
        with pytest.deprecated_call(match="evaluate_algorithm"):
            evaluate_algorithm(
                "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset
            )
        with pytest.deprecated_call(match="evaluate_algorithms"):
            evaluate_algorithms(
                ["FM"], tiny_dataset, "linear", 5, 1.0, preset=tiny_preset
            )
        with pytest.deprecated_call(match="evaluate_fm_budget_sweep"):
            evaluate_fm_budget_sweep(
                tiny_dataset, "linear", 5, [1.0], preset=tiny_preset
            )

    def test_sweep_shim_warns(self, tiny_dataset, tiny_preset):
        with pytest.deprecated_call(match="accuracy_sweep"):
            accuracy_sweep(
                tiny_dataset, "linear", "dimensionality", (5,), "figure4",
                preset=tiny_preset,
            )

    def test_warning_names_policy_equivalent(self, tiny_dataset, tiny_preset):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            evaluate_algorithm(
                "FM", tiny_dataset, "linear", 5, 1.0,
                preset=tiny_preset, executor="thread", tile_size=1,
            )
