"""ExecutionPolicy: validation, layering, serialization, immutability."""

import dataclasses
import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import DEFAULT, FULL, SMOKE
from repro.session import (
    DEFAULT_STREAM_VERSION,
    POLICY_ENV_VARS,
    POLICY_FILE_ENV,
    ExecutionPolicy,
)


class TestDefaultsAndValidation:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.runtime == "batched"
        assert policy.executor == "serial"
        assert policy.max_workers is None
        assert policy.tile_size is None
        assert policy.stream_version == DEFAULT_STREAM_VERSION
        assert policy.scale == "default"
        assert policy.sampling_rate == 1.0
        assert policy.seed == 0
        assert policy.shards == 1

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("runtime", "vectorized"),
            ("executor", "gpu"),
            ("max_workers", 0),
            ("max_workers", -2),
            ("tile_size", 0),
            ("tile_size", 1.5),
            ("stream_version", 3),
            ("scale", "galactic"),
            ("sampling_rate", 0.0),
            ("sampling_rate", 1.5),
            ("seed", "zero"),
            ("shards", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, bad):
        with pytest.raises(ExperimentError, match=field):
            ExecutionPolicy(**{field: bad})

    def test_frozen(self):
        policy = ExecutionPolicy()
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.runtime = "percell"

    def test_derive_replaces_and_validates(self):
        base = ExecutionPolicy()
        derived = base.derive(tile_size=4, executor="thread")
        assert derived.tile_size == 4 and derived.executor == "thread"
        assert base.tile_size is None  # base untouched
        with pytest.raises(ExperimentError, match="tile_size"):
            base.derive(tile_size=-1)
        with pytest.raises(ExperimentError, match="unknown policy field"):
            base.derive(warp_factor=9)

    def test_preset_property(self):
        assert ExecutionPolicy(scale="smoke").preset is SMOKE
        assert ExecutionPolicy(scale="default").preset is DEFAULT
        assert ExecutionPolicy(scale="full").preset is FULL


class TestSerialization:
    def test_json_round_trip(self):
        policy = ExecutionPolicy(
            runtime="percell",
            executor="process",
            max_workers=3,
            tile_size=2,
            stream_version=2,
            scale="smoke",
            sampling_rate=0.5,
            seed=42,
            shards=4,
        )
        assert ExecutionPolicy.from_json(policy.to_json()) == policy
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy

    def test_json_is_plain_object(self):
        data = json.loads(ExecutionPolicy().to_json())
        assert data["tile_size"] is None
        assert set(data) == set(POLICY_ENV_VARS)

    def test_from_dict_rejects_unknown_and_invalid(self):
        with pytest.raises(ExperimentError, match="unknown policy field"):
            ExecutionPolicy.from_dict({"runtime": "batched", "cores": 4})
        with pytest.raises(ExperimentError, match="runtime"):
            ExecutionPolicy.from_json('{"runtime": "quantum"}')
        with pytest.raises(ExperimentError, match="malformed"):
            ExecutionPolicy.from_json("{not json")

    def test_describe_lists_non_defaults_only(self):
        text = ExecutionPolicy(executor="thread", tile_size=1).describe()
        assert "executor='thread'" in text and "tile_size=1" in text
        assert "runtime" not in text


class TestLayeredResolution:
    def test_class_defaults_when_nothing_set(self):
        assert ExecutionPolicy.resolve(env={}) == ExecutionPolicy()

    def test_env_layer(self):
        env = {
            "REPRO_EXECUTOR": "thread",
            "REPRO_TILE_SIZE": "1",
            "REPRO_MAX_WORKERS": "none",
            "REPRO_SAMPLING_RATE": "0.25",
            "REPRO_SEED": "9",
        }
        policy = ExecutionPolicy.resolve(env=env)
        assert policy.executor == "thread"
        assert policy.tile_size == 1
        assert policy.max_workers is None
        assert policy.sampling_rate == 0.25
        assert policy.seed == 9

    def test_explicit_beats_env(self):
        policy = ExecutionPolicy.resolve(
            explicit={"executor": "process", "seed": 1},
            env={"REPRO_EXECUTOR": "thread", "REPRO_SEED": "9"},
        )
        assert policy.executor == "process" and policy.seed == 1

    def test_explicit_none_falls_through(self):
        policy = ExecutionPolicy.resolve(
            explicit={"executor": None}, env={"REPRO_EXECUTOR": "thread"}
        )
        assert policy.executor == "thread"

    def test_env_beats_file(self, tmp_path):
        policy_file = tmp_path / "policy.json"
        policy_file.write_text('{"executor": "process", "tile_size": 7}')
        policy = ExecutionPolicy.resolve(
            env={"REPRO_EXECUTOR": "thread"}, policy_file=policy_file
        )
        assert policy.executor == "thread"  # env wins
        assert policy.tile_size == 7  # file fills the rest

    def test_file_from_env_variable(self, tmp_path):
        policy_file = tmp_path / "policy.json"
        policy_file.write_text('{"stream_version": 2}')
        policy = ExecutionPolicy.resolve(env={POLICY_FILE_ENV: str(policy_file)})
        assert policy.stream_version == 2

    def test_base_is_lowest_layer(self):
        base = ExecutionPolicy(scale="smoke")
        assert ExecutionPolicy.resolve(env={}, base=base).scale == "smoke"
        assert (
            ExecutionPolicy.resolve(env={"REPRO_SCALE": "full"}, base=base).scale
            == "full"
        )

    def test_full_precedence_chain(self, tmp_path):
        policy_file = tmp_path / "policy.json"
        policy_file.write_text('{"seed": 3, "tile_size": 3, "executor": "process"}')
        policy = ExecutionPolicy.resolve(
            explicit={"seed": 1},
            env={"REPRO_SEED": "2", "REPRO_TILE_SIZE": "2"},
            policy_file=policy_file,
            base=ExecutionPolicy(scale="smoke"),
        )
        assert policy.seed == 1  # explicit
        assert policy.tile_size == 2  # env
        assert policy.executor == "process"  # file
        assert policy.scale == "smoke"  # base
        assert policy.runtime == "batched"  # class default

    def test_bad_env_values_raise(self):
        with pytest.raises(ExperimentError, match="REPRO_TILE_SIZE"):
            ExecutionPolicy.resolve(env={"REPRO_TILE_SIZE": "many"})
        with pytest.raises(ExperimentError, match="REPRO_SEED"):
            ExecutionPolicy.resolve(env={"REPRO_SEED": "3.5"})
        with pytest.raises(ExperimentError, match="executor"):
            ExecutionPolicy.resolve(env={"REPRO_EXECUTOR": "gpu"})

    def test_bad_policy_file_raises(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ExperimentError, match="cannot read policy file"):
            ExecutionPolicy.resolve(env={}, policy_file=missing)
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ExperimentError, match="JSON object"):
            ExecutionPolicy.resolve(env={}, policy_file=bad)
        unknown = tmp_path / "unknown.json"
        unknown.write_text('{"warp": 9}')
        with pytest.raises(ExperimentError, match="unknown field"):
            ExecutionPolicy.resolve(env={}, policy_file=unknown)

    def test_unknown_explicit_field_raises(self):
        with pytest.raises(ExperimentError, match="unknown policy field"):
            ExecutionPolicy.resolve(explicit={"warp": 9}, env={})

    def test_os_environ_is_read_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        monkeypatch.setenv("REPRO_STREAM_VERSION", "2")
        policy = ExecutionPolicy.resolve()
        assert policy.executor == "thread" and policy.stream_version == 2
