"""Session teardown: close() and adopted resources must always release.

Regression suite for the serving layer's lifetime contract: a session
that owns a broken executor pool, or adopted journal-holding resources,
still tears everything down on ``close()`` — exactly once, LIFO, and
without ever raising (a teardown error must not mask the exception that
triggered a context-manager exit).
"""

import os

import pytest

from repro.exceptions import ExecutorBrokenError
from repro.faults import RetryPolicy, make_injector, use_injector
from repro.obs import make_recorder
from repro.runtime import PooledProcessExecutor, PooledThreadExecutor
from repro.session import ExecutionPolicy, Session


def _square(value):
    return value * value


def _crash(value):
    os._exit(13)


class _Closeable:
    def __init__(self, name, log, fail=False):
        self.name = name
        self.log = log
        self.fail = fail
        self.closed = 0

    def close(self):
        self.closed += 1
        self.log.append(self.name)
        if self.fail:
            raise RuntimeError(f"{self.name} refuses to die")


class TestAdoptedResources:
    def test_close_releases_adopted_lifo(self):
        session = Session(ExecutionPolicy(executor="serial"))
        log = []
        first = session.adopt(_Closeable("first", log))
        second = session.adopt(_Closeable("second", log))
        session.close()
        assert log == ["second", "first"]
        assert first.closed == second.closed == 1

    def test_close_is_idempotent_for_adopted(self):
        session = Session(ExecutionPolicy(executor="serial"))
        log = []
        resource = session.adopt(_Closeable("r", log))
        session.close()
        session.close()
        assert resource.closed == 1

    def test_one_failing_resource_does_not_block_the_rest(self):
        session = Session(
            ExecutionPolicy(executor="serial", telemetry="summary")
        )
        log = []
        survivor = session.adopt(_Closeable("survivor", log))
        session.adopt(_Closeable("bomb", log, fail=True))
        session.close()  # must not raise
        assert survivor.closed == 1
        assert log == ["bomb", "survivor"]
        counters = session.recorder.summary()["counters"]
        assert counters["session.close_errors"] == 1

    def test_context_exit_with_exception_still_tears_down(self):
        log = []
        with pytest.raises(ValueError, match="user error"):
            with Session(ExecutionPolicy(executor="serial")) as session:
                session.adopt(_Closeable("r", log))
                raise ValueError("user error")
        assert log == ["r"]

    def test_adopt_returns_the_resource(self):
        session = Session(ExecutionPolicy(executor="serial"))
        marker = object()
        class _R:
            close = staticmethod(lambda: None)
            payload = marker
        assert session.adopt(_R).payload is marker
        session.close()


class TestBrokenExecutorTeardown:
    def test_close_after_executor_broken_error(self):
        """The serving layer's crash story: a pool whose workers died
        past the self-healing retries is still released by close()."""
        policy = ExecutionPolicy(
            executor="process", max_workers=2, max_retries=0,
            failure_mode="raise",
        )
        session = Session(policy)
        log = []
        session.adopt(_Closeable("journal", log))
        executor = session.executor()
        with pytest.raises(ExecutorBrokenError):
            executor.map(_crash, [0, 1, 2])
        session.close()  # must not raise, must not hang
        assert log == ["journal"]
        # the session stays usable: the next call rebuilds a fresh pool
        assert session.executor().map(_square, [2, 3]) == [4, 9]
        session.close()

    def test_close_counts_executor_close_failure(self):
        session = Session(
            ExecutionPolicy(executor="thread", telemetry="summary")
        )
        executor = session.executor()
        executor.map(_square, [1, 2])

        original_close = executor.close
        def exploding_close():
            original_close()
            raise RuntimeError("shutdown path bug")
        executor.close = exploding_close

        session.close()  # swallowed and counted
        counters = session.recorder.summary()["counters"]
        assert counters["session.close_errors"] == 1

    def test_pooled_thread_close_survives_broken_pool_shutdown(self):
        executor = PooledThreadExecutor(max_workers=2)
        executor.map(_square, [1, 2])
        pool = executor.pool
        original = pool.shutdown
        calls = []
        def flaky_shutdown(*args, **kwargs):
            calls.append(kwargs)
            if len(calls) == 1:
                raise RuntimeError("interpreter teardown race")
            return original(*args, **kwargs)
        pool.shutdown = flaky_shutdown
        executor.close()  # falls back to the non-waiting shutdown
        assert executor.pool is None
        assert len(calls) == 2

    def test_pooled_process_close_with_injected_crash_pending(self):
        """Close a process pool while a crash plan is still armed: the
        teardown path must not deadlock on dead workers."""
        executor = PooledProcessExecutor(max_workers=2, retry=RetryPolicy(max_retries=2))
        with use_injector(make_injector("seed=3;worker.crash=1.0x1")):
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        executor.close()
        assert executor.pool is None
