"""Session facade: owned state (pool, caches, datasets) and dispatch rules."""

import os

import pytest

from repro.exceptions import ExperimentError
from repro.runtime import (
    PooledProcessExecutor,
    PooledThreadExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.session import ExecutionPolicy, Session, figure_spec


def _worker_pid(_item) -> int:
    return os.getpid()


def _crash_worker(_item) -> None:
    os._exit(13)


def _scores(result):
    """Deterministic fields only (fit timings measure the host)."""
    return (
        result.algorithm,
        result.task,
        result.mean_score,
        result.std_score,
        result.cells,
        result.n_train,
    )


class TestExecutorOwnership:
    def test_serial_by_default(self):
        assert isinstance(Session(ExecutionPolicy()).executor(), SerialExecutor)

    def test_pooled_kinds(self):
        assert isinstance(
            Session(ExecutionPolicy(executor="thread")).executor(),
            PooledThreadExecutor,
        )
        assert isinstance(
            Session(ExecutionPolicy(executor="process")).executor(),
            PooledProcessExecutor,
        )

    def test_one_shot_sessions_use_legacy_lifecycle(self):
        assert isinstance(
            Session(ExecutionPolicy(executor="thread"), reuse_pool=False).executor(),
            ThreadExecutor,
        )
        assert isinstance(
            Session(ExecutionPolicy(executor="process"), reuse_pool=False).executor(),
            ProcessExecutor,
        )

    def test_max_workers_threads_through(self):
        session = Session(ExecutionPolicy(executor="process", max_workers=3))
        assert session.executor().max_workers == 3

    def test_executor_instance_reused_across_calls(self):
        session = Session(ExecutionPolicy(executor="thread"))
        assert session.executor() is session.executor()

    def test_close_releases_and_rebuilds(self):
        with Session(ExecutionPolicy(executor="thread", max_workers=2)) as session:
            first = session.executor()
            first.map(_worker_pid, [0, 1, 2])
            assert first.pool is not None
            session.close()
            assert first.pool is None  # pool shut down
            assert session.executor() is not first  # lazily rebuilt

    def test_pooled_process_reuses_worker_pids(self):
        """The same OS processes serve successive map calls."""
        with PooledProcessExecutor(max_workers=2) as executor:
            first = set(executor.map(_worker_pid, list(range(4))))
            pool = executor.pool
            workers = set(pool._processes)
            second = set(executor.map(_worker_pid, list(range(4))))
            assert executor.pool is pool  # same pool object...
            assert set(pool._processes) == workers  # ...same worker processes
            # every observed PID belongs to the one persistent worker set
            # (scheduling may hand all chunks of a call to a subset)
            assert first and second and (first | second) <= workers

    def test_broken_pool_is_dropped_and_rebuilt(self):
        """A persistently dying worker fails the call (after the bounded
        self-healing retries) but not the session: the poisoned pool is
        dropped so the next map forks a fresh one."""
        from repro.exceptions import ExecutorBrokenError

        with PooledProcessExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorBrokenError):
                executor.map(_crash_worker, [0, 1, 2])
            assert executor.pool is None
            assert len(executor.map(_worker_pid, [0, 1, 2])) == 3

    def test_session_process_pool_survives_two_evaluates(
        self, tiny_dataset, tiny_preset
    ):
        """Acceptance: one pool serves >= 2 evaluate calls (identity + PIDs)."""
        policy = ExecutionPolicy(executor="process", tile_size=1, max_workers=2)
        with Session(policy) as session:
            executor = session.executor()
            a = session.evaluate(
                "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset, seed=1
            )
            pool = executor.pool
            assert pool is not None  # tiles actually dispatched to the pool
            pids = set(pool._processes)
            b = session.evaluate(
                "FM", tiny_dataset, "linear", 5, 0.5, preset=tiny_preset, seed=2
            )
            assert session.executor() is executor
            assert executor.pool is pool
            assert set(pool._processes) == pids
        assert a.cells == b.cells == tiny_preset.folds * tiny_preset.repetitions


class TestOwnedCaches:
    def test_dataset_registry_caches_by_country_and_cap(self):
        session = Session(ExecutionPolicy(scale="smoke"))
        us = session.dataset("us")
        assert us is session.dataset("us")  # cached
        assert us.n == 4000  # smoke preset cap
        assert session.dataset("us", 500).n == 500
        with pytest.raises(ExperimentError, match="unknown country"):
            session.dataset("atlantis")

    def test_prepared_cache_persists_across_calls(self, tiny_dataset, tiny_preset):
        session = Session(ExecutionPolicy())
        cache = session.prepared_cache
        session.evaluate("FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset)
        assert session.prepared_cache is cache
        session.clear_caches()
        assert session.prepared_cache is not cache

    def test_prepared_cache_releases_dead_datasets(self):
        """A session-lifetime cache must not pin transient datasets'
        prepared arrays forever: dead entries are pruned."""
        import gc

        from repro.data.census import load_us
        from repro.runtime import PreparedDataCache

        cache = PreparedDataCache()
        dataset = load_us(300)
        cache.task_arrays(dataset, "linear", 5)
        assert len(cache._tasks) == 1
        del dataset
        gc.collect()
        cache._prune()
        assert len(cache._tasks) == 0

    def test_policy_defaults_fill_protocol_args(self, tiny_dataset, tiny_preset):
        """seed/sampling_rate omitted per call come from the policy."""
        policy = ExecutionPolicy(seed=7, sampling_rate=0.5)
        from_policy = Session(policy).evaluate(
            "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset
        )
        explicit = Session(ExecutionPolicy()).evaluate(
            "FM", tiny_dataset, "linear", 5, 1.0,
            preset=tiny_preset, seed=7, sampling_rate=0.5,
        )
        assert _scores(from_policy) == _scores(explicit)


class TestDispatchRules:
    def test_engine_runtime_rejected_for_point_evaluation(self, tiny_dataset):
        session = Session(ExecutionPolicy(runtime="engine"))
        with pytest.raises(ExperimentError, match="budget sweeps"):
            session.evaluate("FM", tiny_dataset, "linear", 5, 1.0)

    def test_auto_runtime_means_batched_for_points(self, tiny_dataset, tiny_preset):
        auto = Session(ExecutionPolicy(runtime="auto")).evaluate(
            "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset
        )
        batched = Session(ExecutionPolicy()).evaluate(
            "FM", tiny_dataset, "linear", 5, 1.0, preset=tiny_preset
        )
        assert _scores(auto) == _scores(batched)

    def test_shards_require_engine_capable_runtime(self, tiny_dataset, tiny_preset):
        session = Session(ExecutionPolicy(runtime="batched", shards=2))
        with pytest.raises(ExperimentError, match="shards"):
            session.budget_sweep(
                tiny_dataset, "linear", 5, [1.0], preset=tiny_preset
            )

    def test_unknown_figure(self, tiny_dataset):
        with pytest.raises(ExperimentError, match="unknown figure"):
            Session(ExecutionPolicy()).figure("figure12", tiny_dataset, "linear")

    def test_accuracy_figure_needs_task(self, tiny_dataset):
        with pytest.raises(ExperimentError, match="needs a task"):
            Session(ExecutionPolicy()).figure("figure4", tiny_dataset)

    def test_budget_figure_rejects_custom_values(self, tiny_dataset):
        with pytest.raises(ExperimentError, match="budget grid"):
            Session(ExecutionPolicy()).figure(
                "figure6", tiny_dataset, "linear", values=(1.0,)
            )

    def test_non_budget_figure_rejects_engine_flag(self, tiny_dataset):
        with pytest.raises(ExperimentError, match="engine"):
            Session(ExecutionPolicy()).figure(
                "figure4", tiny_dataset, "linear", engine=True
            )

    def test_timing_specs_pin_logistic(self):
        for name in ("figure7", "figure8", "figure9"):
            assert figure_spec(name).fixed_task == "logistic"

    def test_session_kwarg_overrides(self):
        session = Session(ExecutionPolicy(), executor="thread", tile_size=2)
        assert session.policy.executor == "thread"
        assert session.policy.tile_size == 2

    def test_inapplicable_sampling_rate_warns_on_figures(self, tiny_dataset):
        session = Session(ExecutionPolicy(sampling_rate=0.5))
        with pytest.warns(UserWarning, match="sampling_rate"):
            # The warning fires before dispatch; the missing task then
            # aborts the run so the test stays fast.
            with pytest.raises(ExperimentError, match="needs a task"):
                session.figure("figure4", tiny_dataset, None)

    def test_inapplicable_shards_warn_on_non_budget_figures(
        self, tiny_dataset, tiny_preset
    ):
        session = Session(ExecutionPolicy(shards=3))
        with pytest.warns(UserWarning, match="shards"):
            session.sweep(
                tiny_dataset, "linear", "dimensionality", (), "figure4",
                preset=tiny_preset,
            )

    def test_sharded_budget_figure_matches_unsharded(
        self, tiny_dataset, tiny_preset
    ):
        """policy.shards reaches the budget figures' FM series (engine
        ingestion sharding is bit-invariant, so scores must not move)."""
        base = Session(ExecutionPolicy()).figure(
            "figure6", tiny_dataset, "linear", preset=tiny_preset, seed=2
        )
        sharded = Session(ExecutionPolicy(shards=2)).figure(
            "figure6", tiny_dataset, "linear", preset=tiny_preset, seed=2
        )
        for name in base.series:
            assert [_scores(p) for p in sharded.series[name]] == [
                _scores(p) for p in base.series[name]
            ]
