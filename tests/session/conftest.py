"""Shared fixtures for the session-API suite: one tiny golden workload."""

import pytest

from repro.data.census import load_us
from repro.experiments.config import ScalePreset


@pytest.fixture(scope="module")
def tiny_dataset():
    """A small census table (big enough to exercise subsampling)."""
    return load_us(700)


@pytest.fixture(scope="module")
def tiny_preset():
    """Two repetitions so tiling/pool dispatch has >1 unit of work."""
    return ScalePreset(name="tiny", max_records=450, folds=3, repetitions=2)
