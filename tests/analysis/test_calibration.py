"""Tests for the noise-calibration analysis."""

import numpy as np
import pytest

from repro.analysis.calibration import (
    CalibrationReport,
    calibration_report,
    cardinality_for_snr,
    coefficient_snr,
    epsilon_for_snr,
)
from repro.core.objectives import LinearRegressionObjective
from repro.exceptions import DataError


class TestCoefficientSNR:
    def test_linear_in_n(self):
        assert coefficient_snr(20_000, 5, 1.0) == pytest.approx(
            2.0 * coefficient_snr(10_000, 5, 1.0)
        )

    def test_linear_in_epsilon(self):
        assert coefficient_snr(10_000, 5, 2.0) == pytest.approx(
            2.0 * coefficient_snr(10_000, 5, 1.0)
        )

    def test_decreases_with_dimension(self):
        assert coefficient_snr(10_000, 13, 1.0) < coefficient_snr(10_000, 5, 1.0)

    def test_tight_bound_raises_snr(self):
        assert coefficient_snr(10_000, 9, 1.0, tight=True) > coefficient_snr(
            10_000, 9, 1.0
        )

    def test_matches_manual_computation(self):
        n, d, eps = 50_000, 4, 0.5
        delta = LinearRegressionObjective(d).sensitivity()
        expected = (n / (3.0 * d)) / (delta / eps)
        assert coefficient_snr(n, d, eps) == pytest.approx(expected)

    def test_logistic_discounts_by_one_eighth(self):
        lin = coefficient_snr(10_000, 4, 1.0, task="linear")
        log = coefficient_snr(10_000, 4, 1.0, task="logistic")
        # Same n/d/eps: logistic M carries a 1/8 factor but a smaller Delta.
        d = 4
        ratio = (0.125 / 1.0) * (2.0 * (d + 1) ** 2) / (d * d / 4.0 + 3 * d)
        assert log / lin == pytest.approx(ratio)

    def test_custom_feature_moment(self):
        base = coefficient_snr(1000, 3, 1.0, mean_square_feature=0.01)
        doubled = coefficient_snr(1000, 3, 1.0, mean_square_feature=0.02)
        assert doubled == pytest.approx(2.0 * base)

    def test_rejects_bad_inputs(self):
        with pytest.raises(DataError):
            coefficient_snr(0, 3, 1.0)
        with pytest.raises(DataError):
            coefficient_snr(10, 3, 0.0)
        with pytest.raises(DataError):
            coefficient_snr(10, 3, 1.0, mean_square_feature=0.0)
        with pytest.raises(DataError):
            coefficient_snr(10, 3, 1.0, task="poisson")


class TestInversions:
    def test_epsilon_inversion_roundtrip(self):
        eps = epsilon_for_snr(3.0, 50_000, 8)
        assert coefficient_snr(50_000, 8, eps) == pytest.approx(3.0)

    def test_cardinality_inversion_achieves_target(self):
        n = cardinality_for_snr(3.0, 0.8, 13)
        assert coefficient_snr(n, 13, 0.8) >= 3.0
        assert coefficient_snr(n - 1, 13, 0.8) < 3.0 or n == 1

    def test_rejects_bad_target(self):
        with pytest.raises(DataError):
            epsilon_for_snr(0.0, 100, 3)
        with pytest.raises(DataError):
            cardinality_for_snr(-1.0, 1.0, 3)


class TestReport:
    def test_fields_consistent(self):
        report = calibration_report(100_000, 13, 0.8)
        delta = LinearRegressionObjective(13).sensitivity()
        assert report.sensitivity == delta
        assert report.noise_scale == pytest.approx(delta / 0.8)
        assert report.regularizer == pytest.approx(4 * np.sqrt(2) * delta / 0.8)

    def test_regimes(self):
        assert calibration_report(500_000, 13, 3.2).regime == "signal-dominated"
        assert calibration_report(2_000, 13, 0.1).regime == "noise-dominated"

    def test_regime_matches_observed_crossover(self):
        # EXPERIMENTS.md documents FM losing the floor near eps <= 0.2 at
        # n ~ 160k, d = 13; the calibration must place that point at or
        # below "marginal".
        report = calibration_report(160_000, 13, 0.2)
        assert report.regime in ("marginal", "noise-dominated")
        generous = calibration_report(160_000, 13, 3.2)
        assert generous.regime == "signal-dominated"

    def test_consistent_with_convergence_study_relative_noise(self):
        # convergence.py computes noise/signal = 1/snr for uniform features.
        from repro.analysis.convergence import convergence_study

        points = convergence_study([2000], dim=3, epsilon=1.0, repetitions=1, seed=0)
        snr = coefficient_snr(2000, 3, 1.0, task="linear")
        assert points[0].relative_noise == pytest.approx(1.0 / snr)
