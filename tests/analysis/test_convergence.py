"""Tests for the Theorem-2 convergence study."""

import numpy as np
import pytest

from repro.analysis.convergence import convergence_study, sample_population


class TestSamplePopulation:
    def test_linear_shapes_and_domains(self):
        X, y, w = sample_population(500, 4, "linear", rng=0)
        assert X.shape == (500, 4)
        assert np.linalg.norm(X, axis=1).max() <= 1.0 + 1e-9
        assert np.abs(y).max() <= 1.0

    def test_logistic_labels(self):
        _, y, _ = sample_population(500, 3, "logistic", rng=0)
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_ground_truth_fixed_across_seeds(self):
        _, _, w1 = sample_population(10, 4, "linear", rng=0)
        _, _, w2 = sample_population(10, 4, "linear", rng=99)
        np.testing.assert_array_equal(w1, w2)


class TestConvergenceStudy:
    def test_distance_decreases_with_n(self):
        points = convergence_study(
            [400, 3200, 25_600], dim=3, task="linear",
            epsilon=1.0, repetitions=4, seed=0,
        )
        distances = [p.parameter_distance for p in points]
        # Theorem 2: the FM estimate approaches the population optimum.
        assert distances[-1] < distances[0]
        assert distances[-1] < 0.5 * distances[0]

    def test_relative_noise_vanishes(self):
        points = convergence_study(
            [400, 3200], dim=3, task="linear", epsilon=1.0, repetitions=2, seed=0
        )
        assert points[1].relative_noise < points[0].relative_noise
        # Noise scale is constant while coefficients grow ~n: ratio ~ 1/n.
        assert points[1].relative_noise == pytest.approx(
            points[0].relative_noise / 8.0, rel=0.01
        )

    def test_cardinalities_recorded(self):
        points = convergence_study([100, 200], dim=2, repetitions=1, seed=0)
        assert [p.n for p in points] == [100, 200]
