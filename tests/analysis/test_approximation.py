"""Tests for the Lemma-3/4 truncation-error measurement."""

import numpy as np
import pytest

from repro.analysis.approximation import measure_truncation_error
from repro.analysis.convergence import sample_population
from repro.core.taylor import logistic_truncation_error_bound


@pytest.fixture(scope="module")
def logistic_sample():
    X, y, _ = sample_population(4000, 4, "logistic", rng=3)
    return X, y


class TestTruncationError:
    def test_gap_nonnegative(self, logistic_sample):
        X, y = logistic_sample
        report = measure_truncation_error(X, y)
        assert report.measured_gap >= -1e-10

    def test_within_strict_bound_in_working_regime(self, logistic_sample):
        X, y = logistic_sample
        report = measure_truncation_error(X, y)
        if report.max_score <= 1.0:
            assert report.within_strict_bound

    def test_small_constant_in_practice(self, logistic_sample):
        # The paper's empirical claim: the truncation costs very little.
        X, y = logistic_sample
        report = measure_truncation_error(X, y)
        assert report.measured_gap < 0.05

    def test_paper_bound_recorded(self, logistic_sample):
        X, y = logistic_sample
        report = measure_truncation_error(X, y)
        assert report.paper_bound == pytest.approx(logistic_truncation_error_bound())
        assert report.strict_bound == pytest.approx(2 * report.paper_bound)

    def test_chebyshev_variant_runs(self, logistic_sample):
        X, y = logistic_sample
        report = measure_truncation_error(X, y, approximation="chebyshev")
        assert report.measured_gap >= -1e-10

    def test_figure3_example(self, figure3_example):
        X, y = figure3_example
        report = measure_truncation_error(X, y)
        assert report.measured_gap >= 0.0
        # Figure 3 shows the curves nearly coincide on this database.
        assert report.measured_gap < 0.05

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            measure_truncation_error(np.zeros((0, 2)), np.zeros(0))
