"""Engine throughput: accumulation rows/sec and shard speedup.

Two questions the engine's design makes measurable:

* does chunked (streaming) accumulation keep up with monolithic one-shot
  accumulation (the canonical-block re-buffering must not dominate), and
* how much does N-way sharded ingestion buy over one shard.

Emits the standard pytest-benchmark JSON (``--benchmark-json``) like the
figure benches, attaches ``rows_per_sec`` via ``extra_info``, and persists a
text table under ``benchmarks/results/``.  Correctness is not re-asserted
here beyond a bit-identity check — the engine test suite owns that — but
every variant must produce the same statistics it would produce serially.
"""

import time

import numpy as np
import pytest
from conftest import save_and_print

from repro.engine import MomentAccumulator, ShardedAccumulator

N_ROWS = 400_000
DIM = 14
CHUNK = 8_192


def _synthetic(n: int = N_ROWS, d: int = DIM, seed: int = 0):
    """Normalized rows assembled from deterministic per-shard substreams."""
    sharded = ShardedAccumulator(d, shards=4)
    parts_X, parts_y = [], []
    for gen in sharded.shard_substreams(seed):
        X = gen.uniform(-1.0 / np.sqrt(d), 1.0 / np.sqrt(d), size=(n // 4, d))
        parts_X.append(X)
        parts_y.append(np.clip(X @ gen.uniform(-1, 1, d), -1.0, 1.0))
    return np.concatenate(parts_X), np.concatenate(parts_y)


@pytest.fixture(scope="module")
def data():
    return _synthetic()


@pytest.mark.parametrize("mode", ["monolithic", "chunked"])
def test_accumulation_throughput(benchmark, results_dir, data, mode):
    X, y = data

    def run():
        acc = MomentAccumulator(DIM, validate=False)
        if mode == "monolithic":
            acc.update(X, y)
        else:
            for start in range(0, X.shape[0], CHUNK):
                acc.update(X[start : start + CHUNK], y[start : start + CHUNK])
        return acc

    acc = benchmark.pedantic(run, rounds=3, iterations=1)
    assert acc.n_rows == X.shape[0]
    seconds = benchmark.stats.stats.median
    rows_per_sec = X.shape[0] / seconds
    benchmark.extra_info["rows_per_sec"] = rows_per_sec
    save_and_print(
        results_dir,
        f"engine_throughput_{mode}",
        f"{mode} accumulation: {rows_per_sec:,.0f} rows/sec "
        f"({X.shape[0]:,} rows, d={DIM}, median of 3)",
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shard_speedup(benchmark, results_dir, data, shards):
    X, y = data
    reference = MomentAccumulator(DIM, validate=False).update(X, y).snapshot()

    def run():
        return ShardedAccumulator(DIM, shards=shards, validate=False).accumulate(X, y)

    acc = benchmark.pedantic(run, rounds=3, iterations=1)
    # Parallelism degree must never change the statistics (bit-identity).
    snap = acc.snapshot()
    assert np.array_equal(snap.S2, reference.S2)
    assert np.array_equal(snap.Sxy, reference.Sxy)
    seconds = benchmark.stats.stats.median
    benchmark.extra_info["rows_per_sec"] = X.shape[0] / seconds
    benchmark.extra_info["shards"] = shards
    save_and_print(
        results_dir,
        f"engine_shards_{shards}",
        f"shards={shards}: {X.shape[0] / seconds:,.0f} rows/sec "
        f"({seconds * 1e3:.1f} ms for {X.shape[0]:,} rows)",
    )


def test_sweep_amortization(results_dir, data):
    """One pass + n_eps solves vs n_eps full passes (wall-clock evidence)."""
    from repro.core.objectives import LinearRegressionObjective
    from repro.engine import EpsilonSweepEngine

    X, y = data
    epsilons = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2)
    objective = LinearRegressionObjective(DIM)

    started = time.perf_counter()
    accumulator = MomentAccumulator(DIM, validate=False).update(X, y)
    engine = EpsilonSweepEngine(objective, accumulator)
    sweep = engine.sweep(epsilons, rng=0)
    engine_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in epsilons:
        objective.aggregate_quadratic(X, y)  # the per-epsilon loop's data pass
    loop_pass_seconds = time.perf_counter() - started

    solve_seconds = sum(p.solve_seconds for p in sweep.points)
    save_and_print(
        results_dir,
        "engine_sweep_amortization",
        f"{len(epsilons)}-epsilon sweep: engine total {engine_seconds:.3f}s "
        f"(solves {solve_seconds:.4f}s) vs {len(epsilons)} loop data passes "
        f"{loop_pass_seconds:.3f}s",
    )
    assert engine_seconds < loop_pass_seconds
