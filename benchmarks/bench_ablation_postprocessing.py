"""Ablation: the Section-6 repair strategies.

Questions answered (DESIGN.md ablation index):

* How often is the raw noisy objective unbounded at small budgets — i.e.,
  how necessary is Section 6 at all?
* Regularization vs spectral trimming vs the Lemma-5 rerun (which pays 2x
  the privacy budget): who wins on accuracy at equal nominal epsilon?
* How sensitive is the result to the paper's ``lambda = 4 x noise std``
  heuristic (multiplier sweep)?
"""

import numpy as np
from conftest import save_and_print

from repro.core.mechanism import FunctionalMechanism
from repro.core.models import FMLinearRegression
from repro.core.objectives import LinearRegressionObjective
from repro.core.postprocess import SpectralTrimming
from repro.exceptions import UnboundedObjectiveError

EPSILON = 0.2  # small budget: repairs matter here
SEEDS = range(12)


def _task(us_census):
    prepared = us_census.take(np.arange(60_000)).regression_task("linear", dims=14)
    return prepared.X, prepared.y


def test_unbounded_frequency(benchmark, results_dir, us_census):
    """Fraction of raw noisy objectives with no finite minimizer."""
    X, y = _task(us_census)
    objective = LinearRegressionObjective(X.shape[1])
    form = objective.aggregate_quadratic(X, y)
    delta = objective.sensitivity()

    def measure():
        rows = []
        for epsilon in (3.2, 0.8, 0.2, 0.05):
            unbounded = 0
            for seed in range(40):
                mech = FunctionalMechanism(epsilon, rng=seed)
                noisy, _ = mech.perturb_quadratic(form, delta)
                if not noisy.is_positive_definite():
                    unbounded += 1
            rows.append((epsilon, unbounded / 40))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "ablation: fraction of unbounded noisy objectives (d=13, n=60k)\n" + "\n".join(
        f"  eps={eps:<6g} unbounded={frac:.2f}" for eps, frac in rows
    )
    save_and_print(results_dir, "ablation_unbounded_frequency", text)
    frac_by_eps = dict(rows)
    # Unboundedness grows as the budget shrinks.
    assert frac_by_eps[0.05] >= frac_by_eps[3.2]


def test_strategy_comparison(benchmark, results_dir, us_census):
    X, y = _task(us_census)

    def run():
        scores: dict[str, list[float]] = {}
        for strategy in ("none", "regularize", "spectral", "rerun"):
            scores[strategy] = []
            for seed in SEEDS:
                model = FMLinearRegression(
                    epsilon=EPSILON, rng=seed, post_processing=strategy
                )
                try:
                    model.fit(X, y)
                except UnboundedObjectiveError:
                    scores[strategy].append(float("nan"))
                    continue
                scores[strategy].append(model.score_mse(X, y))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"ablation: post-processing strategies at eps={EPSILON} (train MSE)"]
    failures = {}
    for name, vals in scores.items():
        arr = np.asarray(vals)
        failures[name] = int(np.isnan(arr).sum())
        mean = float(np.nanmean(arr)) if failures[name] < len(vals) else float("nan")
        lines.append(f"  {name:<12} mean={mean:.4f}  failures={failures[name]}/{len(vals)}")
    save_and_print(results_dir, "ablation_postprocessing", "\n".join(lines))

    # The free repairs always produce an answer.  The Lemma-5 rerun can
    # exhaust its redraw budget in this noise-dominated regime (every draw
    # is indefinite) — exactly why the paper prefers the Section-6 repairs.
    assert failures["spectral"] == 0
    assert failures["regularize"] == 0
    assert failures["none"] >= failures["spectral"]


def test_lambda_multiplier_sweep(benchmark, results_dir, us_census):
    """The 4x heuristic under the paper's literal trimming vs our hardening.

    In the paper's setting (trim only non-positive eigenvalues) the large
    ridge is load-bearing: it both repairs the spectrum and keeps barely
    positive noise eigenvalues from exploding the solve, so 4x is a good
    choice.  With the near-noise eigenvalues trimmed (this library's
    default), the explosion-control job disappears and lighter ridges give
    less bias — a finding the original heuristic folds together.
    """
    X, y = _task(us_census)
    multipliers = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

    def run():
        table: dict[str, dict[float, float]] = {}
        for label, tol in (("literal-6.2", 0.0), ("hardened", 0.5)):
            table[label] = {}
            for multiplier in multipliers:
                vals = []
                for seed in SEEDS:
                    model = FMLinearRegression(
                        epsilon=EPSILON,
                        rng=seed,
                        post_processing=SpectralTrimming(
                            multiplier=multiplier, noise_relative_tol=tol
                        ),
                    )
                    model.fit(X, y)
                    vals.append(model.score_mse(X, y))
                table[label][multiplier] = float(np.mean(vals))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["ablation: lambda multiplier around the paper's 4x-noise-std heuristic"]
    for label, values in table.items():
        lines.append(f"  [{label}]")
        lines.extend(
            f"    multiplier={m:<5g} mean MSE={values[m]:.4f}" for m in multipliers
        )
    save_and_print(results_dir, "ablation_lambda_multiplier", "\n".join(lines))

    literal = table["literal-6.2"]
    hardened = table["hardened"]
    # In the paper's context the 4x heuristic is competitive: within 2x of
    # that variant's best (small multipliers there risk exploding solves).
    assert literal[4.0] <= 2.0 * min(literal.values())
    # Under hardened trimming, a lighter ridge is never worse than a much
    # heavier one — the explosion-control role has moved to the trimming.
    assert hardened[1.0] <= hardened[16.0]


def test_tight_sensitivity_variant(benchmark, results_dir, us_census):
    """Extension: the (1+sqrt(d))^2 bound injects less noise than (1+d)^2."""
    X, y = _task(us_census)

    def run():
        out = {}
        for tight in (False, True):
            vals = [
                FMLinearRegression(epsilon=EPSILON, rng=seed, tight_sensitivity=tight)
                .fit(X, y)
                .score_mse(X, y)
                for seed in SEEDS
            ]
            out[tight] = float(np.mean(vals))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "ablation: Lemma-1 bound variant (d=13)\n"
        f"  paper bound 2(1+d)^2      mean MSE={out[False]:.4f}\n"
        f"  tight bound 2(1+sqrt d)^2 mean MSE={out[True]:.4f}"
    )
    save_and_print(results_dir, "ablation_tight_sensitivity", text)
    assert out[True] <= out[False] + 1e-9
