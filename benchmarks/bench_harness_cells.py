"""Cell-solver throughput: per-cell vs batched runtime execution.

The Section-7 protocol is a grid of (repetition, fold, epsilon) cells; this
bench measures how fast the two execution paths clear a figure-6-sized FM
workload — Table-2 defaults (d = 14, 200k records, 5 folds), two
repetitions, all six privacy budgets: 60 cells whose training splits each
cover 160k rows.

* ``percell`` fits every cell independently (the reference oracle): one
  aggregation pass, one noise draw, one eigendecomposition, one solve per
  cell.
* ``batched`` aggregates once per fold, reuses the coefficients across the
  six budgets, and executes all 60 repairs/solves as one stacked LAPACK
  call.

Both paths produce bitwise-identical scores (asserted here and owned by
``tests/runtime/test_equivalence.py``), so the ratio is pure scheduling win.
The acceptance bar — batched >= 5x cells/sec over per-cell on this workload
— is asserted by ``test_batched_speedup_floor``, which times directly so it
also runs under ``--benchmark-disable`` smoke mode; the committed
``BENCH_harness.json`` at the repo root records the measured baseline.

A report-only masked-Newton comparison (NoPrivacy logistic) rides along:
its cells are iterative, so batching buys orchestration rather than
amortization, and the bar is parity, not a multiple.
"""

import os
import time

import pytest
from conftest import save_and_print

from repro.experiments.config import PRIVACY_BUDGETS, ScalePreset
from repro.runtime import plan_cells, run_plan

#: Figure-6 shape at bench scale: Table-2 defaults, all six budgets.
PRESET = ScalePreset(name="figure6-cells", max_records=200_000, folds=5, repetitions=2)
NEWTON_PRESET = ScalePreset(name="newton-cells", max_records=50_000, folds=5, repetitions=2)

#: The acceptance floor for the batched path on the FM workload (the
#: committed BENCH_harness.json baseline records ~6.4x).  CI smoke lowers
#: it via HARNESS_CELLS_FLOOR: the ratio's structural ceiling is ~6.5x (six
#: aggregation passes collapsed to one), so a shared runner's timing noise
#: or a differently-threaded BLAS can dip a healthy build below 5x, while
#: any real regression (losing the epsilon-axis amortization) lands near
#: 1x and still fails a relaxed floor.
SPEEDUP_FLOOR = float(os.environ.get("HARNESS_CELLS_FLOOR", "5.0"))


@pytest.fixture(scope="module")
def fm_plan(us_census):
    return plan_cells(
        "FM", us_census, "linear", dims=14, epsilons=PRIVACY_BUDGETS,
        preset=PRESET, seed=6,
    )


@pytest.fixture(scope="module")
def newton_plan(us_census):
    return plan_cells(
        "NoPrivacy", us_census, "logistic", dims=14, epsilons=[0.8],
        preset=NEWTON_PRESET, seed=6,
    )


@pytest.mark.parametrize("mode", ["percell", "batched"])
def test_fm_cell_throughput(benchmark, results_dir, fm_plan, mode):
    """Cells/sec and rows/sec of one full figure-6 FM workload."""
    outcome = benchmark.pedantic(lambda: run_plan(fm_plan, mode=mode), rounds=3, iterations=1)
    assert outcome.plan.n_cells == len(fm_plan.folds) * len(PRIVACY_BUDGETS)
    if not benchmark.enabled:
        return  # --benchmark-disable smoke mode: correctness ran, no stats
    seconds = benchmark.stats.stats.median
    cells_per_sec = fm_plan.n_cells / seconds
    rows_per_sec = fm_plan.n_cells * fm_plan.n_train / seconds
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["cells"] = fm_plan.n_cells
    benchmark.extra_info["n_train"] = fm_plan.n_train
    benchmark.extra_info["cells_per_sec"] = cells_per_sec
    benchmark.extra_info["rows_per_sec"] = rows_per_sec
    save_and_print(
        results_dir,
        f"harness_cells_{mode}",
        f"{mode}: {cells_per_sec:,.1f} cells/sec, {rows_per_sec:,.0f} rows/sec "
        f"({fm_plan.n_cells} cells x {fm_plan.n_train:,} train rows, median of 3)",
    )


def _best_of(runs: int, fn) -> tuple[float, object]:
    """Minimum wall time over ``runs`` calls (robust to scheduler noise)."""
    best_seconds, result = float("inf"), None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def test_batched_speedup_floor(results_dir, fm_plan):
    """The acceptance bar: batched >= 5x per-cell, scores bit-identical.

    Timed directly (not through the benchmark fixture) so the assertion
    also guards quick/smoke CI runs under ``--benchmark-disable``.  Both
    paths are warmed and take their best of three runs, so a noisy shared
    CI runner neither fails a healthy build nor masks a real regression
    behind warmup asymmetry.
    """
    run_plan(fm_plan, mode="batched")  # warm caches and the allocator
    run_plan(fm_plan, mode="percell")
    batched_seconds, batched = _best_of(3, lambda: run_plan(fm_plan, mode="batched"))
    percell_seconds, percell = _best_of(3, lambda: run_plan(fm_plan, mode="percell"))
    for epsilon in fm_plan.epsilons:
        assert batched.scores[epsilon] == percell.scores[epsilon]
    speedup = percell_seconds / batched_seconds
    save_and_print(
        results_dir,
        "harness_cells_speedup",
        f"batched vs percell: {speedup:.2f}x cells/sec "
        f"(percell best-of-3 {percell_seconds:.3f}s, batched best-of-3 "
        f"{batched_seconds:.3f}s, {fm_plan.n_cells} cells)",
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched runtime regressed: {speedup:.2f}x < {SPEEDUP_FLOOR}x on the "
        f"figure-6 workload"
    )


def test_newton_cell_parity(results_dir, newton_plan):
    """Report-only: the masked batched Newton must hold parity, not 5x."""
    run_plan(newton_plan, mode="batched")
    started = time.perf_counter()
    batched = run_plan(newton_plan, mode="batched")
    batched_seconds = time.perf_counter() - started
    started = time.perf_counter()
    percell = run_plan(newton_plan, mode="percell")
    percell_seconds = time.perf_counter() - started
    assert batched.scores[0.8] == percell.scores[0.8]
    ratio = percell_seconds / batched_seconds
    save_and_print(
        results_dir,
        "harness_cells_newton",
        f"masked Newton vs percell: {ratio:.2f}x "
        f"(percell {percell_seconds:.3f}s, batched {batched_seconds:.3f}s, "
        f"{newton_plan.n_cells} logistic cells)",
    )
    # Generous floor: batching must never cost more than ~2x on one core;
    # its upside is multi-core stacks and shared orchestration.
    assert ratio >= 0.5
