"""Figure 3: the logistic objective vs its degree-2 polynomial approximation.

Regenerates the Section-5.2 example — three 1-d tuples — and reports the
exact objective ``f~_D``, the truncated ``f^_D``, their minimizers, and the
realized average approximation error against the paper's constant
``(e^2 - e)/(6 (1 + e)^3) ~= 0.015``.
"""

import numpy as np
from conftest import save_and_print

from repro.analysis.approximation import measure_truncation_error
from repro.core.taylor import logistic_truncation_error_bound
from repro.experiments.figures import FIGURE3_DATABASE, figure3_approximation_example
from repro.experiments.reporting import format_objective_curve


def test_figure3_approximation_curves(benchmark, results_dir):
    curve = benchmark.pedantic(figure3_approximation_example, rounds=1, iterations=1)
    text = format_objective_curve(curve, ("f~_D(w)", "f^_D(w)"))
    save_and_print(results_dir, "figure3_approximation", text)
    # The two curves nearly coincide over the plotted range (paper's visual).
    assert np.max(np.abs(curve.exact - curve.perturbed)) < 0.15
    assert abs(curve.minimizers[0] - curve.minimizers[1]) < 0.2


def test_figure3_error_vs_lemma_bound(benchmark, results_dir):
    X, y = FIGURE3_DATABASE

    def run():
        return measure_truncation_error(X, y)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "figure3: truncation error on the example database\n"
        f"measured per-tuple gap: {report.measured_gap:.6f}\n"
        f"paper constant:         {logistic_truncation_error_bound():.6f}\n"
        f"strict (two-sided):     {report.strict_bound:.6f}\n"
        f"max |x^T w| reached:    {report.max_score:.3f}"
    )
    save_and_print(results_dir, "figure3_error_bound", text)
    assert report.measured_gap >= 0.0
    assert report.measured_gap < 0.05
