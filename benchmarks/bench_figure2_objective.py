"""Figure 2: a linear-regression objective and its FM-noisy version.

Regenerates the paper's worked example — ``f_D(w) = 2.06 w^2 - 2.34 w +
1.25`` on the three-tuple database — perturbs it with ``Lap(8/epsilon)``
coefficient noise, and reports both parabolas and their minimizers.  The
figure's claim: the noisy optimum stays close to ``w* = 117/206`` when the
coefficients are approximately preserved.
"""

import numpy as np
from conftest import save_and_print

from repro.experiments.figures import figure2_objective_example
from repro.experiments.reporting import format_objective_curve


def test_figure2_objective_perturbation(benchmark, results_dir):
    # Seed 24 gives a representative draw (coefficients approximately
    # preserved, like the paper's plotted instance); the distribution over
    # draws is measured by the second bench below.
    curve = benchmark.pedantic(
        figure2_objective_example,
        kwargs={"epsilon": 1.0, "rng": 24},
        rounds=1,
        iterations=1,
    )
    text = format_objective_curve(curve, ("f_D(w)", "noisy f_D(w)"))
    save_and_print(results_dir, "figure2_objective", text)

    a, b, c = curve.exact_coefficients
    assert (round(a, 2), round(b, 2), round(c, 2)) == (2.06, -2.34, 1.25)
    assert abs(curve.minimizers[0] - 117.0 / 206.0) < 0.01
    # The noisy parabola still has a minimum on the plotted range and it is
    # in the neighborhood of the true optimum (the figure's visual claim).
    assert 0.0 <= curve.minimizers[1] <= 1.0


def test_figure2_minimizer_distribution(benchmark, results_dir):
    """Average noisy-minimizer displacement over repeated draws."""

    def repeated():
        gaps = []
        for seed in range(200):
            curve = figure2_objective_example(epsilon=1.0, rng=seed)
            gaps.append(abs(curve.minimizers[1] - curve.minimizers[0]))
        return float(np.mean(gaps)), float(np.median(gaps))

    mean_gap, median_gap = benchmark.pedantic(repeated, rounds=1, iterations=1)
    text = (
        "figure2: |noisy argmin - exact argmin| over 200 draws (eps=1)\n"
        f"mean gap:   {mean_gap:.4f}\n"
        f"median gap: {median_gap:.4f}"
    )
    save_and_print(results_dir, "figure2_minimizer_gap", text)
    assert median_gap < 0.45  # typically recoverable despite Delta = 8 noise
