"""Federation overhead: party ingest throughput and merge+fit latency.

The federated path adds three stages a single box never pays — per-party
envelope encoding (inner ``.acc`` codec + ``.npz`` + checksums), wire
decoding with full validation, and the coordinator's tree merge.  This
bench measures what they cost against the centralized baseline on the
same rows, and asserts the protocol's core promise while timing it: in
central noise mode every party count and both merge trees release the
**bitwise identical** digest the single box releases.

Reported per party count:

* ``ingest_rows_per_second`` — rows through ``run_party`` (local
  accumulation + noise handling + envelope encoding), all parties
  summed, serial in-process so the number is per-core;
* ``coordinator_seconds`` — submit (decode + validate) + balanced tree
  merge + sweep fit, i.e. the full coordinator critical path;
* ``wire_bytes`` — total envelope bytes crossing the "network".

Results merge into ``BENCH_harness.json`` under ``federated_merge``.
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import save_and_print

from repro.federated import (
    FederatedCoordinator,
    FederationSpec,
    centralized_fit,
    run_parties,
)

ROWS = int(os.environ.get("FED_BENCH_ROWS", "60000"))
DIMS = int(os.environ.get("FED_BENCH_DIMS", "10"))
PARTY_COUNTS = (2, 4, 8)
EPSILONS = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2)
SEED = 29


def _rows(n=ROWS, d=DIMS, seed=17):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X /= np.maximum(1.0, np.linalg.norm(X, axis=1, keepdims=True) * 1.01)
    y = np.clip(X @ rng.normal(size=d), -1.0, 1.0)
    return X, y


def _spec(parties):
    return FederationSpec(
        task="linear",
        dim=DIMS,
        epsilons=EPSILONS,
        seed=SEED,
        parties=parties,
    )


@pytest.fixture(scope="module")
def measurements(results_dir):
    X, y = _rows()

    started = time.perf_counter()
    baseline = centralized_fit(_spec(1), X, y)
    centralized_seconds = time.perf_counter() - started

    rows = {}
    for parties in PARTY_COUNTS:
        spec = _spec(parties)
        started = time.perf_counter()
        blobs = run_parties(spec, X, y)
        party_seconds = time.perf_counter() - started
        coordinator = FederatedCoordinator(spec)
        started = time.perf_counter()
        for blob in blobs:
            coordinator.submit(blob)
        result = coordinator.fit(tree="balanced")
        coordinator_seconds = time.perf_counter() - started
        assert result.digest == baseline.digest, (parties, result.digest)
        assert coordinator.fit(tree="sequential").digest == baseline.digest
        rows[parties] = {
            "party_seconds": party_seconds,
            "ingest_rows_per_second": ROWS / party_seconds,
            "coordinator_seconds": coordinator_seconds,
            "wire_bytes": sum(len(b) for b in blobs),
            "end_to_end_seconds": party_seconds + coordinator_seconds,
            "overhead_vs_centralized": (
                (party_seconds + coordinator_seconds) / centralized_seconds
            ),
        }

    lines = [
        f"federated merge+fit vs centralized ({ROWS:,} rows, d={DIMS}, "
        f"{len(EPSILONS)} budgets, central noise mode; digest-identical "
        f"to single box at every K and both trees)",
        f"  centralized: {centralized_seconds:.3f}s",
    ]
    for parties, row in rows.items():
        lines.append(
            f"  K={parties}: parties {row['party_seconds']:.3f}s "
            f"({row['ingest_rows_per_second']:,.0f} rows/sec), coordinator "
            f"{row['coordinator_seconds']:.3f}s, wire {row['wire_bytes']:,}B, "
            f"{row['overhead_vs_centralized']:.2f}x centralized"
        )
    save_and_print(results_dir, "federated_merge", "\n".join(lines))
    payload = {
        "rows": ROWS,
        "dims": DIMS,
        "epsilons": len(EPSILONS),
        "centralized_seconds": centralized_seconds,
        "party_counts": rows,
    }
    (results_dir / "federated_merge.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return {"centralized_seconds": centralized_seconds, "rows": rows}


def test_digest_identity_held_under_timing(measurements):
    """The fixture asserted digest identity at every K; re-assert shape."""
    assert set(measurements["rows"]) == set(PARTY_COUNTS)


def test_federation_overhead_is_bounded(measurements):
    """Envelope codecs + validation must stay a small constant factor,
    not change the complexity class of a fit."""
    for parties, row in measurements["rows"].items():
        assert row["overhead_vs_centralized"] < 25.0, (parties, row)


def test_ingest_throughput_floor(measurements):
    """Guards against accidental per-row (rather than per-block) work in
    the party path."""
    for parties, row in measurements["rows"].items():
        assert row["ingest_rows_per_second"] > 5_000.0, (parties, row)
