"""Shared fixtures for the benchmark suite.

Every figure bench follows the same pattern: run the figure's sweep driver
once (``benchmark.pedantic(..., rounds=1)``) at the ``DEFAULT`` scale preset,
print the paper-style table, persist it under ``benchmarks/results/`` so the
series survive output capturing, and assert the reproduction's ordering
flags.

Datasets are generated once per session and cached; the bench preset keeps
cardinality above the ~90k crossover where FM's advantage over the histogram
baselines opens up (see ``repro.experiments.config``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data import load_brazil, load_us
from repro.experiments.config import DEFAULT, ScalePreset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Sweeps with many x-values (Figures 5 and 8 have ten sampling rates) use
#: this preset; two repetitions keep occasional unlucky noise draws (the
#: paper smooths them with 50) from dominating a sweep point while the
#: suite stays in the tens of minutes.
WIDE_SWEEP_PRESET = ScalePreset(
    name="default-wide", max_records=DEFAULT.max_records, folds=DEFAULT.folds,
    repetitions=2,
)


@pytest.fixture(scope="session")
def us_census():
    """US dataset at bench scale (200k of the paper's 370k records)."""
    return load_us(DEFAULT.max_records)


@pytest.fixture(scope="session")
def brazil_census():
    """Brazil dataset at bench scale (190k records, the paper's full size)."""
    return load_brazil()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it (visible with ``pytest -s``)."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
