"""Figure 6: regression accuracy vs privacy budget epsilon.

Sweeps Table 2's epsilon values {0.1 ... 3.2} at the default dimensionality
and sampling rate.  Reproduction criteria (Section 7.3):

* NoPrivacy and Truncated are flat (they ignore epsilon);
* the private algorithms' error increases as epsilon decreases;
* FM outperforms FP and DPME throughout and is comparatively robust to
  shrinking budgets.
"""

import numpy as np
import pytest
from conftest import save_and_print

from repro.experiments.config import DEFAULT
from repro.experiments.figures import figure6_privacy_budget
from repro.experiments.reporting import format_sweep_table, summarize_ordering


@pytest.mark.parametrize("country", ["us", "brazil"])
@pytest.mark.parametrize("task", ["linear", "logistic"])
def test_figure6(benchmark, results_dir, country, task, us_census, brazil_census):
    dataset = us_census if country == "us" else brazil_census
    result = benchmark.pedantic(
        figure6_privacy_budget,
        args=(dataset, task),
        kwargs={"preset": DEFAULT},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure6_{country}_{task}", format_sweep_table(result))
    flags = summarize_ordering(result)
    assert flags["noprivacy_best"]

    values = list(result.values)  # (3.2, 1.6, 0.8, 0.4, 0.2, 0.1)
    fm = result.metric_series("FM")
    # FM degrades as the budget shrinks: the generous-budget half of the
    # sweep beats the starved half.
    assert np.mean(fm[:3]) <= np.mean(fm[-3:]) + 1e-9
    # NoPrivacy flat within fold-shuffling noise.
    noprivacy = result.metric_series("NoPrivacy")
    assert max(noprivacy) - min(noprivacy) < 0.05
    if task == "linear":
        # FM beats the synthetic-data baselines at the Table-2 default and
        # above.  (At eps <= 0.2 our histogram baselines degrade more
        # gently than the originals did, producing a small-budget crossover
        # the paper does not show — recorded in EXPERIMENTS.md.)
        generous = [i for i, v in enumerate(values) if v >= 0.4]
        fm_g = np.mean([fm[i] for i in generous])
        dpme_g = np.mean([result.metric_series("DPME")[i] for i in generous])
        fp_g = np.mean([result.metric_series("FP")[i] for i in generous])
        assert fm_g <= dpme_g * 1.02
        assert fm_g <= fp_g * 1.02
