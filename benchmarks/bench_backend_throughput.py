"""Throughput of the stacked kernels per array backend.

The pluggable backend shim (``repro.runtime.backend``) routes the batched
solve/eigh/logdet calls through either numpy (the bit-identity reference)
or torch (optional, CUDA when present).  This bench records what that
routing costs — and what, if anything, torch-cpu buys — as cells/sec on a
FULL-shaped FM workload:

* ``numpy-serial``   — the shim's default path, serial executor;
* ``numpy-process``  — the same bits through a forked process pool, which
  inherits the ambient backend by COW (no per-task plumbing);
* ``torch-serial``   — torch on CPU, recorded only where torch is
  installed (not this repo's 1-CPU build box; the CI ``backend-smoke``
  job supplies the torch-cpu numbers).

Following ``bench_harness_scaling``, each configuration runs in a fresh
subprocess so BLAS/torch thread pools and page caches cannot contaminate
one another.  Children print wall time, a score digest and the raw score
series.

Assertions:

* the two numpy modes are **bitwise identical** (one digest) — backend
  dispatch and executor choice are scheduling knobs, not numerics;
* when torch is present, its scores conform to the numeric tier's
  certified tolerance (``repro.verify.numeric.DEFAULT_TOLERANCE``)
  against the numpy reference; when absent the row records
  ``available: false`` and the assertion is skipped.

Results merge into ``BENCH_harness.json`` under ``backend_throughput``.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest
from conftest import save_and_print

from repro.runtime import backend_available

RECORDS = int(os.environ.get("BACKEND_BENCH_RECORDS", "100000"))
REPS = int(os.environ.get("BACKEND_BENCH_REPS", "8"))

#: ``<backend>-<executor>`` pairs; torch-serial is skipped (recorded as
#: unavailable) when torch is not importable.
CONFIGS = ("numpy-serial", "numpy-process", "torch-serial")

#: Runs one configuration; prints {seconds, cells, digest, scores}.  The
#: executor is constructed *inside* ``use_backend`` so a forked pool's
#: children inherit the ambient backend at fork time.
_CHILD = r"""
import hashlib, json, struct, sys, time
records, reps, config = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
backend, executor_kind = config.split("-")
from repro.data.census import load_us
from repro.experiments.config import PRIVACY_BUDGETS, ScalePreset
from repro.runtime import plan_cells_tiled, run_plan, use_backend
from repro.runtime.executor import ProcessExecutor

dataset = load_us(records)
preset = ScalePreset(name="backend", max_records=None, folds=5, repetitions=reps)
plan = plan_cells_tiled(
    "FM", dataset, "linear", dims=14, epsilons=PRIVACY_BUDGETS,
    preset=preset, seed=11, tile_size=1,
)
with use_backend(backend):
    executor = "serial" if executor_kind == "serial" else ProcessExecutor(max_workers=1)
    started = time.perf_counter()
    outcome = run_plan(plan, mode="batched", executor=executor)
    seconds = time.perf_counter() - started
digest = hashlib.sha256()
scores = []
for epsilon in PRIVACY_BUDGETS:
    digest.update(struct.pack(f"<{len(outcome.scores[epsilon])}d", *outcome.scores[epsilon]))
    scores.extend(outcome.scores[epsilon])
print(json.dumps({
    "config": config,
    "backend": backend,
    "executor": executor_kind,
    "available": True,
    "seconds": seconds,
    "cells": plan.n_cells,
    "cells_per_sec": plan.n_cells / seconds,
    "score_digest": digest.hexdigest(),
    "scores": scores,
}))
"""


def _run_config(config: str) -> dict:
    backend = config.split("-")[0]
    if not backend_available(backend):
        return {"config": config, "backend": backend, "available": False}
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(RECORDS), str(REPS), config],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"{config} child failed:\n{result.stderr}"
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def measurements(results_dir) -> dict[str, dict]:
    rows = {config: _run_config(config) for config in CONFIGS}
    reference = rows["numpy-serial"]
    lines = [
        f"array-backend throughput ({REPS} reps x 5 folds x 6 budgets = "
        f"{reference['cells']} cells, {RECORDS:,} records, "
        f"{os.cpu_count() or 1} cores visible)"
    ]
    for config, row in rows.items():
        if not row["available"]:
            lines.append(f"  {config:>14}: unavailable (torch not installed)")
            continue
        speedup = reference["seconds"] / row["seconds"]
        lines.append(
            f"  {config:>14}: {row['seconds']:.2f}s "
            f"({row['cells_per_sec']:,.1f} cells/sec, {speedup:.2f}x vs numpy-serial)"
        )
    save_and_print(results_dir, "backend_throughput", "\n".join(lines))
    payload = {
        "records": RECORDS,
        "repetitions": REPS,
        "cores_visible": os.cpu_count() or 1,
        "configs": {
            config: {k: v for k, v in row.items() if k != "scores"}
            for config, row in rows.items()
        },
    }
    (results_dir / "backend_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return rows


def test_numpy_modes_bitwise_identical(measurements):
    """Backend shim + executor choice must not move a bit: one digest."""
    serial = measurements["numpy-serial"]
    pooled = measurements["numpy-process"]
    assert serial["score_digest"] == pooled["score_digest"], (
        serial["score_digest"], pooled["score_digest"],
    )


def test_torch_conforms_to_certified_tolerance(measurements):
    """torch-cpu may drift at reassociation scale, never beyond the
    numeric tier's certified bound."""
    row = measurements["torch-serial"]
    if not row["available"]:
        pytest.skip(
            "torch not installed on this box; the CI backend-smoke job "
            "records the torch-cpu measurement"
        )
    from repro.verify.numeric import DEFAULT_TOLERANCE

    reference = np.asarray(measurements["numpy-serial"]["scores"])
    candidate = np.asarray(row["scores"])
    assert DEFAULT_TOLERANCE.conforms(reference, candidate)
