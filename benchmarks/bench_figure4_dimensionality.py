"""Figure 4: regression accuracy vs dataset dimensionality (four panels).

Sweeps dimensionality over Table 2's {5, 8, 11, 14} at the default sampling
rate and budget, for both datasets and both tasks.  Reproduction criteria
(Section 7.1):

* FM consistently outperforms FP and DPME on linear regression, with
  accuracy close to NoPrivacy;
* DPME/FP error grows markedly with dimensionality;
* on logistic regression Truncated tracks NoPrivacy (the truncation is
  cheap) and FM stays between Truncated and the synthetic-data baselines.
"""

import pytest
from conftest import save_and_print

from repro.experiments.config import DEFAULT
from repro.experiments.figures import figure4_dimensionality
from repro.experiments.reporting import format_sweep_table, summarize_ordering


@pytest.mark.parametrize("country", ["us", "brazil"])
def test_figure4_linear(benchmark, results_dir, country, us_census, brazil_census):
    dataset = us_census if country == "us" else brazil_census
    result = benchmark.pedantic(
        figure4_dimensionality,
        args=(dataset, "linear"),
        kwargs={"preset": DEFAULT},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure4_{country}_linear", format_sweep_table(result))
    flags = summarize_ordering(result)
    assert flags["noprivacy_best"]
    assert flags["fm_beats_dpme"], "FM must beat DPME on linear regression"
    assert flags["fm_beats_fp"], "FM must beat FP on linear regression"
    # DPME's dimensionality curse: its *excess over the NoPrivacy floor*
    # grows with dimensionality (the floor itself moves across attribute
    # subsets, so raw errors are not comparable between dims values).
    dpme = result.metric_series("DPME")
    noprivacy = result.metric_series("NoPrivacy")
    assert (dpme[-1] - noprivacy[-1]) > (dpme[0] - noprivacy[0])


@pytest.mark.parametrize("country", ["us", "brazil"])
def test_figure4_logistic(benchmark, results_dir, country, us_census, brazil_census):
    dataset = us_census if country == "us" else brazil_census
    result = benchmark.pedantic(
        figure4_dimensionality,
        args=(dataset, "logistic"),
        kwargs={"preset": DEFAULT},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure4_{country}_logistic", format_sweep_table(result))
    flags = summarize_ordering(result)
    assert flags["noprivacy_best"]
    # Truncated ~ NoPrivacy (Figure 4c-d's key observation).
    truncated = result.metric_series("Truncated")
    noprivacy = result.metric_series("NoPrivacy")
    for t, n in zip(truncated, noprivacy):
        assert t <= n + 0.03
    # All private algorithms stay on the meaningful side of chance.
    for name in ("FM", "DPME", "FP"):
        assert max(result.metric_series(name)) <= 0.5
