"""Figure 9: computation time vs privacy budget (logistic task).

Epsilon affects only the noise magnitude, not the problem size, so the
paper observes a negligible effect on running time; the FM-vs-NoPrivacy
speedup persists at every budget.
"""

import numpy as np
import pytest
from conftest import save_and_print

from repro.experiments.config import DEFAULT
from repro.experiments.figures import figure9_time_budget
from repro.experiments.reporting import format_time_table


@pytest.mark.parametrize("country", ["us", "brazil"])
def test_figure9_time(benchmark, results_dir, country, us_census, brazil_census):
    dataset = us_census if country == "us" else brazil_census
    result = benchmark.pedantic(
        figure9_time_budget,
        args=(dataset,),
        kwargs={"preset": DEFAULT},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure9_{country}_time", format_time_table(result))

    fm = result.time_series("FM")
    noprivacy = result.time_series("NoPrivacy")
    for fm_t, np_t in zip(fm, noprivacy):
        assert fm_t * 5.0 < np_t
    # Budget has no systematic effect on FM's time: max/min within ~5x
    # (wall-clock jitter dominates at these durations).
    assert max(fm) <= 5.0 * min(fm) + 0.05
