"""Table 2: experimental parameters and values.

The paper's Table 2 is configuration, not measurement; this bench renders it
(as the other benches render their figures) and times the trivial grid
construction so the table appears in the benchmark inventory.
"""

from conftest import save_and_print

from repro.experiments.config import (
    DEFAULT_DIMENSIONALITY,
    DEFAULT_EPSILON,
    DEFAULT_SAMPLING_RATE,
    DIMENSIONALITIES,
    PRIVACY_BUDGETS,
    SAMPLING_RATES,
)


def _render_table2() -> str:
    def mark_default(values, default):
        return ", ".join(
            f"[{v:g}]" if v == default else f"{v:g}" for v in values
        )

    lines = [
        "Table 2: experimental parameters (defaults in brackets)",
        "=" * 68,
        f"{'Data Subset Sampling Rate':<32} "
        + mark_default(SAMPLING_RATES, DEFAULT_SAMPLING_RATE),
        f"{'Dataset Dimensionality':<32} "
        + mark_default(DIMENSIONALITIES, DEFAULT_DIMENSIONALITY),
        f"{'Privacy Budget epsilon':<32} "
        + mark_default(PRIVACY_BUDGETS, DEFAULT_EPSILON),
        "=" * 68,
    ]
    return "\n".join(lines)


def test_table2_parameter_grid(benchmark, results_dir):
    table = benchmark.pedantic(_render_table2, rounds=1, iterations=1)
    save_and_print(results_dir, "table2_config", table)
    assert SAMPLING_RATES[-1] == 1.0
    assert DIMENSIONALITIES == (5, 8, 11, 14)
    assert set(PRIVACY_BUDGETS) == {3.2, 1.6, 0.8, 0.4, 0.2, 0.1}
