"""Peak-RSS and throughput of the tiled runtime at a FULL-shaped workload.

The ROADMAP flagged PR 2's eager ``plan_cells`` as the FULL-protocol memory
hazard: 50 repetitions' prepared arrays resident at once.  This bench
measures what the tiled planner buys, at a FULL-*shaped* workload — the
paper's 50 repetitions x 5 folds and all six Table-2 budgets, with the
record count scaled so the bench stays in minutes (override with
``HARNESS_MEMORY_RECORDS`` / ``HARNESS_MEMORY_REPS``).

Each configuration runs in a **fresh subprocess**: ``ru_maxrss`` is a
monotonic high-water mark per process, so eager and tiled runs can only be
compared across process boundaries.  Configurations:

* ``eager``      — PR 2's ``plan_cells`` + ``run_plan`` (every repetition
  resident for the plan's lifetime);
* ``tile_size=1``  — the historical one-repetition-at-a-time profile;
* ``tile_size=4``  — a middling tile;
* ``tile_size=all`` — one tile spanning every repetition (lazy
  construction, eager-sized working set: the upper bound of the knob).

The acceptance bar (also enforced by the CI memory-smoke job): peak RSS at
``tile_size=1`` must stay below ``HARNESS_MEMORY_MAX_FRACTION`` (default
25%) of the eager plan's peak on the same workload, and every tiling's
scores must equal the eager scores bit for bit.  Throughput (cells/sec) is
recorded for each configuration; the committed ``BENCH_harness.json``
carries the measured baselines next to the PR 2 cell-throughput numbers.
"""

import json
import os
import subprocess
import sys

import pytest
from conftest import save_and_print

#: FULL-shaped protocol: the paper's repetitions/folds/budget grid, scaled
#: record count.  50 reps x ~11 MB of prepared arrays each puts the eager
#: plan near 600 MB while one tile stays near a tenth of that.
RECORDS = int(os.environ.get("HARNESS_MEMORY_RECORDS", "100000"))
REPS = int(os.environ.get("HARNESS_MEMORY_REPS", "50"))
MAX_FRACTION = float(os.environ.get("HARNESS_MEMORY_MAX_FRACTION", "0.25"))

CONFIGS = ("eager", "1", "4", "all")

#: Runs one configuration and reports {peak_rss_mb, seconds, cells, digest}.
#: The digest (sum of all scores) pins cross-configuration bit-identity
#: without shipping the score vectors through the pipe.
_CHILD = r"""
import hashlib, json, resource, struct, sys, time
records, reps, config = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
from repro.data.census import load_us
from repro.experiments.config import PRIVACY_BUDGETS, ScalePreset
from repro.runtime import plan_cells, plan_cells_tiled, run_plan

dataset = load_us(records)
preset = ScalePreset(name="full-shaped", max_records=None, folds=5, repetitions=reps)
started = time.perf_counter()
if config == "eager":
    plan = plan_cells(
        "FM", dataset, "linear", dims=14, epsilons=PRIVACY_BUDGETS,
        preset=preset, seed=6,
    )
else:
    tile_size = None if config == "all" else int(config)
    plan = plan_cells_tiled(
        "FM", dataset, "linear", dims=14, epsilons=PRIVACY_BUDGETS,
        preset=preset, seed=6, tile_size=tile_size,
    )
outcome = run_plan(plan, mode="batched")
seconds = time.perf_counter() - started
digest = hashlib.sha256()
for epsilon in PRIVACY_BUDGETS:
    digest.update(struct.pack(f"<{len(outcome.scores[epsilon])}d", *outcome.scores[epsilon]))
print(json.dumps({
    "config": config,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    "seconds": seconds,
    "cells": plan.n_cells,
    "cells_per_sec": plan.n_cells / seconds,
    "score_digest": digest.hexdigest(),
}))
"""


def _run_config(config: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(RECORDS), str(REPS), config],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"{config} child failed:\n{result.stderr}"
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def measurements(results_dir) -> dict[str, dict]:
    """One subprocess measurement per configuration (shared by the tests)."""
    rows = {config: _run_config(config) for config in CONFIGS}
    lines = [
        f"FULL-shaped memory profile ({REPS} reps x 5 folds x "
        f"{rows['eager']['cells'] // (REPS * 5)} budgets, {RECORDS:,} records)"
    ]
    for config, row in rows.items():
        label = "eager plan" if config == "eager" else f"tile_size={config}"
        lines.append(
            f"  {label:>14}: peak RSS {row['peak_rss_mb']:,.0f} MB, "
            f"{row['cells_per_sec']:,.1f} cells/sec ({row['seconds']:.2f}s)"
        )
    ratio = rows["eager"]["peak_rss_mb"] / rows["1"]["peak_rss_mb"]
    lines.append(f"  eager / tile_size=1 peak-RSS ratio: {ratio:.2f}x")
    save_and_print(results_dir, "harness_memory", "\n".join(lines))
    (results_dir / "harness_memory.json").write_text(json.dumps(rows, indent=2) + "\n")
    return rows


def test_scores_identical_across_configs(measurements):
    """Tiling is a memory knob only: every configuration's scores agree."""
    digests = {row["score_digest"] for row in measurements.values()}
    assert len(digests) == 1, measurements


def test_tile1_peak_rss_bounded(measurements):
    """The acceptance bar: tile_size=1 peak RSS < 25% of the eager plan's."""
    eager = measurements["eager"]["peak_rss_mb"]
    tiled = measurements["1"]["peak_rss_mb"]
    assert tiled < MAX_FRACTION * eager, (
        f"tile_size=1 peak RSS {tiled:.0f} MB is not under "
        f"{MAX_FRACTION:.0%} of the eager plan's {eager:.0f} MB"
    )


def test_tiling_throughput_overhead_is_bounded(measurements):
    """Per-tile dispatch must not give back the batched runtime's win.

    tile_size=1 re-derives each repetition's subsample/permutation and
    solves 30-cell stacks instead of one 1500-cell stack; that overhead
    must stay small next to the aggregation work that dominates a cell.
    """
    eager = measurements["eager"]["cells_per_sec"]
    tiled = measurements["1"]["cells_per_sec"]
    assert tiled >= 0.5 * eager, (
        f"tile_size=1 throughput {tiled:.1f} cells/sec fell below half the "
        f"eager plan's {eager:.1f}"
    )
