"""Ablation: approximation basis and order for the logistic objective.

The paper's future-work section (8) asks whether alternative analytical
tools beat the Taylor expansion.  Compared here:

* Taylor at 0 (the paper) vs the degree-2 Chebyshev projection on [-1, 1] —
  first without noise (pure approximation quality), then end-to-end in FM;
* Taylor order 2 vs order 4 under FM: the quartic basis has more
  coefficients and a much larger sensitivity, so more noise — the paper's
  degree-2 choice is vindicated at realistic budgets.
"""

import numpy as np
from conftest import save_and_print

from repro.baselines.truncated import Truncated
from repro.core.models import FMLogisticRegression
from repro.regression.logistic import LogisticRegressionModel

SEEDS = range(8)


def _task(us_census):
    prepared = us_census.take(np.arange(60_000)).regression_task("logistic", dims=8)
    return prepared.X, prepared.y


def test_basis_without_noise(benchmark, results_dir, us_census):
    """Pure approximation quality: Truncated-Taylor vs Truncated-Chebyshev."""
    X, y = _task(us_census)

    def run():
        exact = LogisticRegressionModel().fit(X, y).score_misclassification(X, y)
        taylor = Truncated(task="logistic", approximation="taylor").fit(X, y).score(X, y)
        chebyshev = (
            Truncated(task="logistic", approximation="chebyshev").fit(X, y).score(X, y)
        )
        return exact, taylor, chebyshev

    exact, taylor, chebyshev = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "ablation: noise-free approximation quality (misclassification)\n"
        f"  exact MLE:           {exact:.4f}\n"
        f"  Taylor degree 2:     {taylor:.4f}\n"
        f"  Chebyshev degree 2:  {chebyshev:.4f}"
    )
    save_and_print(results_dir, "ablation_basis_noise_free", text)
    assert taylor <= exact + 0.02
    assert chebyshev <= exact + 0.02


def test_basis_under_fm(benchmark, results_dir, us_census):
    X, y = _task(us_census)

    def run():
        out = {}
        for basis in ("taylor", "chebyshev"):
            vals = [
                FMLogisticRegression(epsilon=0.8, rng=seed, approximation=basis)
                .fit(X, y)
                .score_misclassification(X, y)
                for seed in SEEDS
            ]
            out[basis] = float(np.mean(vals))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "ablation: approximation basis under FM (eps=0.8, misclassification)\n"
        f"  Taylor:    {out['taylor']:.4f}\n"
        f"  Chebyshev: {out['chebyshev']:.4f}"
    )
    save_and_print(results_dir, "ablation_basis_under_fm", text)
    # Both bases must produce useful private models; they are near-identical
    # because the coefficients differ only slightly.
    assert abs(out["taylor"] - out["chebyshev"]) < 0.1


def test_taylor_order(benchmark, results_dir, us_census):
    X, y = _task(us_census)

    def run():
        out = {}
        for order in (2, 4):
            vals = [
                FMLogisticRegression(epsilon=0.8, rng=seed, order=order)
                .fit(X, y)
                .score_misclassification(X, y)
                for seed in SEEDS
            ]
            out[order] = float(np.mean(vals))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "ablation: Taylor truncation order under FM (eps=0.8)\n"
        f"  order 2: {out[2]:.4f}\n"
        f"  order 4: {out[4]:.4f}\n"
        "  (order 4 carries a much larger sensitivity and basis -> more noise)"
    )
    save_and_print(results_dir, "ablation_taylor_order", text)
    # The paper's degree-2 choice wins at realistic budgets.
    assert out[2] <= out[4] + 0.02
