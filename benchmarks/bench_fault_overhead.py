"""Fault-tolerance overhead: self-healing must be ~free when nothing fails.

The hardened process executors (PR "repro.faults") keep extra accounting
on the fault-free path: a completed-prefix cursor for rebuild-and-resume,
the retry-policy bound checks, and the shared-work token lifecycle.  The
cost contract:

* the hardened default (``max_retries=2``, no timeout) must stay within
  **2%** of the legacy fail-fast configuration (``max_retries=0``, which
  restores the pre-hardening control flow exactly) on a figure-6 shaped
  process-executor workload;
* the per-item submit path (any ``tile_timeout``) additionally pays a
  checksummed pickle envelope per tile — measured and recorded as-is,
  not gated: timeouts are a chaos/diagnostics knob, not the default.

Following ``bench_obs_overhead``, every measurement runs in a fresh
subprocess and reports a score digest, so the run doubles as a
digest-neutrality check: all configurations must produce bitwise
identical scores.  Configurations are measured interleaved round-robin
for ``FAULT_OVERHEAD_REPEATS`` rounds, each keeping its best time, so
slow-drift noise hits all of them equally.

Results merge into ``BENCH_harness.json`` under
``fault_tolerance_overhead``.
"""

import json
import os
import subprocess
import sys

import pytest
from conftest import save_and_print

RECORDS = int(os.environ.get("FAULT_OVERHEAD_RECORDS", "3000"))
REPEATS = int(os.environ.get("FAULT_OVERHEAD_REPEATS", "5"))
#: Gate: hardened-default seconds must stay within this multiple of the
#: legacy fail-fast configuration.  2% per the robustness contract;
#: override for noisy shared boxes.
GUARD = float(os.environ.get("FAULT_OVERHEAD_GUARD", "1.02"))

#: mode -> policy overrides applied on top of the common process policy.
MODES = {
    "legacy": {"max_retries": 0},  # pre-hardening control flow
    "hardened": {},  # the shipped default (max_retries=2)
    "submit": {"tile_timeout": 120.0},  # per-item futures + sealed envelopes
}

#: Runs the figure-6 sweep once through a process-executor session (after
#: one untimed warm-up pass) with the mode's policy overrides; prints
#: {seconds, score_digest}.
_CHILD = r"""
import hashlib, json, struct, sys, time
records, overrides = int(sys.argv[1]), json.loads(sys.argv[2])
from repro.data.census import load_us
from repro.experiments.config import ScalePreset
from repro.session import ExecutionPolicy, Session

dataset = load_us(records)
preset = ScalePreset(name="fault-overhead", max_records=None, folds=3, repetitions=2)
base = dict(executor="process", tile_size=1, seed=17)
with Session(ExecutionPolicy(**base)) as warmup:
    warmup.figure("figure6", dataset, "linear", preset=preset)
with Session(ExecutionPolicy(**base, **overrides)) as session:
    started = time.perf_counter()
    result = session.figure("figure6", dataset, "linear", preset=preset)
    seconds = time.perf_counter() - started
digest = hashlib.sha256()
for name, points in result.series.items():
    digest.update(name.encode())
    for point in points:
        digest.update(struct.pack("<dd", point.mean_score, point.std_score))
print(json.dumps({"seconds": seconds, "score_digest": digest.hexdigest()}))
"""


def _run_mode_once(mode: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(RECORDS), json.dumps(MODES[mode])],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"{mode} child failed:\n{result.stderr}"
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def measurements(results_dir) -> dict[str, dict]:
    rows: dict[str, dict] = {}
    for _ in range(REPEATS):
        for mode in MODES:  # interleaved: noise drift hits all modes alike
            row = _run_mode_once(mode)
            kept = rows.get(mode)
            if kept is not None:
                assert row["score_digest"] == kept["score_digest"]
                row["seconds"] = min(row["seconds"], kept["seconds"])
            rows[mode] = row
    legacy = rows["legacy"]["seconds"]
    lines = [
        f"fault-tolerance overhead (figure-6 sweep, process executor, "
        f"{RECORDS:,} records, 3 folds x 2 reps, best of {REPEATS} "
        f"interleaved rounds)"
    ]
    for mode, row in rows.items():
        overhead = row["seconds"] / legacy - 1.0
        lines.append(
            f"  {mode:>9}: {row['seconds']:.3f}s ({overhead:+.1%} vs legacy)"
        )
    save_and_print(results_dir, "fault_overhead", "\n".join(lines))
    payload = {"records": RECORDS, "repeats": REPEATS, "modes": rows}
    (results_dir / "fault_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return rows


def test_scores_identical_across_configurations(measurements):
    """Self-healing is recovery machinery: one digest across all modes."""
    digests = {row["score_digest"] for row in measurements.values()}
    assert len(digests) == 1, measurements


def test_hardened_default_within_two_percent_of_legacy(measurements):
    """The committed contract: hardening costs nothing when nothing fails."""
    legacy = measurements["legacy"]["seconds"]
    hardened = measurements["hardened"]["seconds"]
    assert hardened <= GUARD * legacy, (
        f"hardened default {hardened:.3f}s exceeded {GUARD:.0%} of "
        f"legacy fail-fast {legacy:.3f}s"
    )
