"""Multi-core scaling of the process-parallel batched-tile path.

ROADMAP open item: ``--tile-size N --executor process`` is asserted
bit-identical to the serial path, but PR 3's build box had one CPU, so its
speedup was unmeasured.  This bench measures it: a FULL-shaped FM workload
(all six Table-2 budgets per cell) is tiled into single-repetition tiles
and dispatched to a forked process pool at increasing worker counts.

Following the ``bench_harness_memory`` pattern, every configuration runs
in a **fresh subprocess** — process pools, BLAS thread state and page
caches from one configuration must not contaminate the next — and reports
wall time plus a score digest, so cross-configuration bit-identity rides
along with the timing.

Assertions:

* digests agree across every configuration (always);
* with ``>= 4`` physical cores, the widest process configuration must beat
  serial by ``HARNESS_SCALING_FLOOR`` (default 1.5x — conservative because
  the child solves inherit BLAS threads and fork/reduce overhead; a real
  regression in the parallel path lands at ~1x).  On boxes with fewer
  cores the speedup assertion is skipped and the numbers are recorded
  as-is (that is this repo's 1-CPU build box; the CI job supplies the
  multi-core measurement).

Results merge into ``BENCH_harness.json`` under ``scaling_benchmarks``.

Pool reuse (the session API's executor lifecycle): a second measurement
compares N consecutive ``evaluate`` calls under the legacy lifecycle — a
fresh fork pool spun up inside every call (``Session(...,
reuse_pool=False)``, exactly what the deprecated kwarg entry points do) —
against one :class:`repro.session.Session` holding a single persistent
pool across all N calls.  Both modes must produce identical score
digests; the timings record what per-call pool spin-up costs.  Results
merge into ``BENCH_harness.json`` under ``session_pool_reuse`` with the
exact :class:`~repro.session.ExecutionPolicy` embedded.
"""

import json
import os
import subprocess
import sys

import pytest
from conftest import save_and_print

RECORDS = int(os.environ.get("HARNESS_SCALING_RECORDS", "200000"))
REPS = int(os.environ.get("HARNESS_SCALING_REPS", "16"))
FLOOR = float(os.environ.get("HARNESS_SCALING_FLOOR", "1.5"))

_CPUS = os.cpu_count() or 1
#: serial reference, then process pools at 1, 2 and all-core widths
#: (deduplicated when the box is narrow).
WORKER_CONFIGS = ("serial",) + tuple(
    str(w) for w in sorted({1, 2, _CPUS}) if w <= _CPUS
)

#: Runs one configuration; prints {seconds, cells, digest}.  tile_size=1
#: yields one tile per repetition — the unit the process executor ships.
_CHILD = r"""
import hashlib, json, struct, sys, time
records, reps, config = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
from repro.data.census import load_us
from repro.experiments.config import PRIVACY_BUDGETS, ScalePreset
from repro.runtime import plan_cells_tiled, run_plan
from repro.runtime.executor import ProcessExecutor

dataset = load_us(records)
preset = ScalePreset(name="scaling", max_records=None, folds=5, repetitions=reps)
executor = "serial" if config == "serial" else ProcessExecutor(max_workers=int(config))
plan = plan_cells_tiled(
    "FM", dataset, "linear", dims=14, epsilons=PRIVACY_BUDGETS,
    preset=preset, seed=11, tile_size=1,
)
started = time.perf_counter()
outcome = run_plan(plan, mode="batched", executor=executor)
seconds = time.perf_counter() - started
digest = hashlib.sha256()
for epsilon in PRIVACY_BUDGETS:
    digest.update(struct.pack(f"<{len(outcome.scores[epsilon])}d", *outcome.scores[epsilon]))
print(json.dumps({
    "config": config,
    "seconds": seconds,
    "cells": plan.n_cells,
    "cells_per_sec": plan.n_cells / seconds,
    "score_digest": digest.hexdigest(),
}))
"""


def _run_config(config: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(RECORDS), str(REPS), config],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"{config} child failed:\n{result.stderr}"
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def measurements(results_dir) -> dict[str, dict]:
    rows = {config: _run_config(config) for config in WORKER_CONFIGS}
    lines = [
        f"process-executor scaling ({REPS} reps x 5 folds x 6 budgets = "
        f"{rows['serial']['cells']} cells, {RECORDS:,} records, "
        f"{_CPUS} cores visible)"
    ]
    serial_seconds = rows["serial"]["seconds"]
    for config, row in rows.items():
        label = "serial" if config == "serial" else f"process x{config}"
        speedup = serial_seconds / row["seconds"]
        lines.append(
            f"  {label:>12}: {row['seconds']:.2f}s "
            f"({row['cells_per_sec']:,.1f} cells/sec, {speedup:.2f}x vs serial)"
        )
    save_and_print(results_dir, "harness_scaling", "\n".join(lines))
    payload = {
        "records": RECORDS,
        "repetitions": REPS,
        "cores_visible": _CPUS,
        "configs": rows,
    }
    (results_dir / "harness_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return rows


def test_scores_identical_across_worker_counts(measurements):
    """Parallel tile dispatch is a scheduling knob only: one digest."""
    digests = {row["score_digest"] for row in measurements.values()}
    assert len(digests) == 1, measurements


def test_single_worker_overhead_is_bounded(measurements):
    """A one-worker pool adds fork + reduction overhead but no parallelism;
    it must stay within 2x of serial or the dispatch path has regressed."""
    serial = measurements["serial"]["seconds"]
    one = measurements["1"]["seconds"]
    assert one <= 2.0 * serial, (serial, one)


def test_multicore_speedup(measurements):
    """The ROADMAP's missing number: wall-clock speedup at full width."""
    if _CPUS < 4:
        pytest.skip(
            f"only {_CPUS} core(s) visible — speedup is not measurable here; "
            f"the CI scaling job runs this on a multi-core runner"
        )
    serial = measurements["serial"]["seconds"]
    widest = measurements[str(_CPUS)]["seconds"]
    speedup = serial / widest
    assert speedup >= FLOOR, (
        f"process x{_CPUS} speedup {speedup:.2f}x fell below the "
        f"{FLOOR:.1f}x floor"
    )


# ----------------------------------------------------------------------
# Session pool reuse: per-call spin-up vs one persistent pool
# ----------------------------------------------------------------------
POOL_CALLS = int(os.environ.get("HARNESS_POOL_CALLS", "8"))
POOL_RECORDS = int(os.environ.get("HARNESS_POOL_RECORDS", "20000"))
#: Regression guard: the persistent pool ships work by pickle instead of
#: fork-time COW, so it trades serialization for spin-up; it must never
#: cost more than this multiple of the per-call lifecycle.
POOL_REUSE_GUARD = float(os.environ.get("HARNESS_POOL_REUSE_GUARD", "2.0"))

#: Runs POOL_CALLS consecutive FM evaluations in one of two executor
#: lifecycles; prints {seconds, policy, score_digest}.
_POOL_CHILD = r"""
import hashlib, json, struct, sys, time
records, calls, mode = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
from repro.data.census import load_us
from repro.experiments.config import ScalePreset
from repro.session import ExecutionPolicy, Session

dataset = load_us(records)
preset = ScalePreset(name="pool", max_records=None, folds=5, repetitions=4)
policy = ExecutionPolicy(executor="process", tile_size=1, max_workers=2)
digest = hashlib.sha256()
with Session(policy, reuse_pool=(mode == "session")) as session:
    started = time.perf_counter()
    for call in range(calls):
        result = session.evaluate(
            "FM", dataset, "linear", dims=14, epsilon=0.8,
            preset=preset, seed=100 + call,
        )
        digest.update(struct.pack("<dd", result.mean_score, result.std_score))
    seconds = time.perf_counter() - started
print(json.dumps({
    "mode": mode,
    "seconds": seconds,
    "calls": calls,
    "seconds_per_call": seconds / calls,
    "policy": policy.to_dict(),
    "score_digest": digest.hexdigest(),
}))
"""


def _run_pool_mode(mode: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _POOL_CHILD, str(POOL_RECORDS), str(POOL_CALLS), mode],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"{mode} child failed:\n{result.stderr}"
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def pool_measurements(results_dir) -> dict[str, dict]:
    rows = {mode: _run_pool_mode(mode) for mode in ("per-call", "session")}
    per_call = rows["per-call"]["seconds"]
    held = rows["session"]["seconds"]
    lines = [
        f"executor-pool lifecycle ({POOL_CALLS} evaluate calls x 4 reps x "
        f"5 folds, {POOL_RECORDS:,} records, process x2, tile_size=1)",
        f"      per-call pools: {per_call:.2f}s ({per_call / POOL_CALLS:.3f}s/call)",
        f"  session-held pool: {held:.2f}s ({held / POOL_CALLS:.3f}s/call, "
        f"{per_call / held:.2f}x vs per-call)",
    ]
    save_and_print(results_dir, "harness_pool_reuse", "\n".join(lines))
    (results_dir / "harness_pool_reuse.json").write_text(
        json.dumps({"records": POOL_RECORDS, "calls": POOL_CALLS, "modes": rows},
                   indent=2) + "\n"
    )
    return rows


def test_pool_reuse_scores_identical(pool_measurements):
    """Pool lifecycle is a scheduling knob only: one digest across modes."""
    digests = {row["score_digest"] for row in pool_measurements.values()}
    assert len(digests) == 1, pool_measurements


def test_pool_reuse_not_a_regression(pool_measurements):
    """The persistent pool's pickle dispatch must stay within the guard of
    the per-call fork lifecycle (it should win outright once per-call
    solve time stops dwarfing spin-up, but the guard only catches
    pathology, not missed wins)."""
    per_call = pool_measurements["per-call"]["seconds"]
    held = pool_measurements["session"]["seconds"]
    assert held <= POOL_REUSE_GUARD * per_call, (per_call, held)
