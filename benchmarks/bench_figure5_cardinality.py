"""Figure 5: regression accuracy vs dataset cardinality (sampling rate).

Sweeps the Table-2 sampling rates 0.1-1.0 at the default dimensionality and
budget.  Reproduction criteria (Section 7.2):

* FM outperforms FP and DPME across the sweep;
* FM's accuracy improves (noise is constant, signal grows) as cardinality
  rises, closing on NoPrivacy;
* NoPrivacy is roughly flat in cardinality.
"""

import numpy as np
import pytest
from conftest import WIDE_SWEEP_PRESET, save_and_print

from repro.experiments.config import SAMPLING_RATES
from repro.experiments.figures import figure5_cardinality
from repro.experiments.reporting import format_sweep_table, summarize_ordering


@pytest.mark.parametrize("task", ["linear", "logistic"])
def test_figure5_us(benchmark, results_dir, task, us_census):
    result = benchmark.pedantic(
        figure5_cardinality,
        args=(us_census, task),
        kwargs={"preset": WIDE_SWEEP_PRESET, "rates": SAMPLING_RATES},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure5_us_{task}", format_sweep_table(result))
    flags = summarize_ordering(result)
    assert flags["noprivacy_best"]
    fm = result.metric_series("FM")
    noprivacy = result.metric_series("NoPrivacy")
    # FM's gap to NoPrivacy shrinks with cardinality (compare the small-n
    # third of the sweep against the large-n third).
    early_gap = np.mean(fm[:3]) - np.mean(noprivacy[:3])
    late_gap = np.mean(fm[-3:]) - np.mean(noprivacy[-3:])
    assert late_gap < early_gap
    # NoPrivacy roughly flat: spread well below FM's sweep spread.
    assert (max(noprivacy) - min(noprivacy)) <= max(
        0.02, (max(fm) - min(fm))
    )


@pytest.mark.parametrize("task", ["linear", "logistic"])
def test_figure5_brazil(benchmark, results_dir, task, brazil_census):
    result = benchmark.pedantic(
        figure5_cardinality,
        args=(brazil_census, task),
        kwargs={"preset": WIDE_SWEEP_PRESET, "rates": SAMPLING_RATES},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure5_brazil_{task}", format_sweep_table(result))
    assert summarize_ordering(result)["noprivacy_best"]
