"""Serving-layer throughput: sustained fits/sec + ingest rows/sec.

Boots the real HTTP server in-process (ephemeral port, the CLI's default
serial-executor policy) and drives it with the deterministic concurrent
load generator — one client thread per tenant, the single-writer
discipline the server's locking backstops.  The run measures steady-state
throughput *with every durability feature on*: every fit's epsilon spend
goes through the tenant's fsync'd write-ahead journal, and a periodic
snapshot thread is writing checksummed ``.acc`` containers underneath the
load the whole time.

The throughput numbers only count if the answers are right, so the same
run is digest-checked: ``repro.serve.check`` replays the ledgers and
recomputes every released fit serially offline (no service, no executor)
and both must match — the ledger exactly (strict mode), the digests
bitwise.

Floors are env-overridable for shared boxes (``SERVE_QPS_FLOOR``,
``SERVE_INGEST_FLOOR``); the committed local baseline in
``BENCH_harness.json`` (``serve_qps``) is an order of magnitude above
them.
"""

import json
import os

import pytest
from conftest import save_and_print

from repro.serve.app import ServeApp
from repro.serve.check import verify_report
from repro.serve.http import ServeHTTP
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.session import ExecutionPolicy, Session

TENANTS = int(os.environ.get("SERVE_QPS_TENANTS", "4"))
BATCHES = int(os.environ.get("SERVE_QPS_BATCHES", "4"))
ROWS_PER_BATCH = int(os.environ.get("SERVE_QPS_ROWS", "250"))
FITS = int(os.environ.get("SERVE_QPS_FITS", "8"))

#: Gates, deliberately far below the committed baseline: a regression that
#: matters (an accidental global lock, a journal fsync per row, a fresh
#: pool per request on the serial path) lands well under these.
QPS_FLOOR = float(os.environ.get("SERVE_QPS_FLOOR", "10"))
INGEST_FLOOR = float(os.environ.get("SERVE_INGEST_FLOOR", "1000"))


@pytest.fixture(scope="module")
def serve_run(results_dir, tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("serve-qps") / "data"
    policy = ExecutionPolicy(
        scale="smoke", telemetry="summary", failure_mode="fallback"
    )
    app = ServeApp(data_dir, Session(policy))
    http = ServeHTTP(app, port=0, snapshot_interval=0.5)
    thread = http.start_background()
    try:
        report = run_loadgen(
            LoadgenConfig(
                port=http.bound_port,
                tenants=TENANTS,
                batches=BATCHES,
                rows_per_batch=ROWS_PER_BATCH,
                dims=3,
                fits=FITS,
                epsilons=(0.5, 1.0),
                seed=321,
                total_epsilon=1000.0,
            )
        )
    finally:
        http.request_stop()
        thread.join(30.0)
    assert not thread.is_alive()
    verification = verify_report(report, data_dir, strict=True)

    totals = report["totals"]
    lines = [
        f"serve qps ({TENANTS} concurrent tenants, {BATCHES}x"
        f"{ROWS_PER_BATCH} rows, {FITS} fits x 2 epsilons each, serial "
        f"executor, WAL + periodic snapshots on)",
        f"  fits/sec:        {totals['fits_per_second']:9.1f}"
        f"  (floor {QPS_FLOOR:g})",
        f"  ingest rows/sec: {totals['ingest_rows_per_second']:9.1f}"
        f"  (floor {INGEST_FLOOR:g})",
        f"  models released: {totals['models_released']}"
        f"  accepted epsilon: {totals['accepted_epsilon']:g}",
        f"  offline verify:  strict ok={verification['ok']}, "
        f"{verification['digests_checked']} digests recomputed",
    ]
    save_and_print(results_dir, "serve_qps", "\n".join(lines))
    payload = {
        "tenants": TENANTS,
        "batches": BATCHES,
        "rows_per_batch": ROWS_PER_BATCH,
        "fits": FITS,
        "totals": totals,
        "verification": {
            k: verification[k] for k in ("ok", "strict", "digests_checked")
        },
    }
    (results_dir / "serve_qps.json").write_text(json.dumps(payload, indent=2) + "\n")
    return report, verification


def test_no_failures_under_sustained_load(serve_run):
    report, _ = serve_run
    assert report["totals"]["failures"] == 0, report["tenants"]
    assert report["totals"]["fits_ok"] == TENANTS * FITS


def test_digests_match_serial_offline_run(serve_run):
    """Throughput counts only if every served fit is bitwise reproducible."""
    report, verification = serve_run
    assert verification["ok"], verification["violations"]
    assert verification["digests_checked"] == report["totals"]["fits_ok"]


def test_fit_throughput_floor(serve_run):
    report, _ = serve_run
    qps = report["totals"]["fits_per_second"]
    assert qps >= QPS_FLOOR, f"fits/sec {qps:.1f} under floor {QPS_FLOOR}"


def test_ingest_throughput_floor(serve_run):
    report, _ = serve_run
    rps = report["totals"]["ingest_rows_per_second"]
    assert rps >= INGEST_FLOOR, f"rows/sec {rps:.1f} under floor {INGEST_FLOOR}"
