"""Ablation: where should the noise go?

The paper's thesis is that perturbing *objective coefficients* (FM) beats
perturbing the *output* (output perturbation) and is more broadly applicable
than Chaudhuri-style *objective perturbation*.  This bench puts the three
noise placements side by side on the census tasks at equal epsilon.
"""

import numpy as np
from conftest import save_and_print

from repro.baselines import make_algorithm

PLACEMENTS = ("FM", "OutputPerturbation", "ObjectivePerturbation", "NoPrivacy")
SEEDS = range(8)


def _run_panel(dataset, task, epsilon):
    prepared = dataset.take(np.arange(60_000)).regression_task(task, dims=8)
    out = {}
    for name in PLACEMENTS:
        vals = [
            make_algorithm(name, task, epsilon=epsilon, rng=seed)
            .fit(prepared.X, prepared.y)
            .score(prepared.X, prepared.y)
            for seed in SEEDS
        ]
        out[name] = float(np.mean(vals))
    return out


def test_noise_placement_linear(benchmark, results_dir, us_census):
    out = benchmark.pedantic(
        _run_panel, args=(us_census, "linear", 0.8), rounds=1, iterations=1
    )
    text = "ablation: noise placement, linear task (MSE, eps=0.8)\n" + "\n".join(
        f"  {name:<24} {value:.4f}" for name, value in out.items()
    )
    save_and_print(results_dir, "ablation_noise_placement_linear", text)
    assert out["NoPrivacy"] <= min(v for k, v in out.items() if k != "NoPrivacy") + 1e-9
    assert np.isfinite(out["FM"])


def test_noise_placement_logistic(benchmark, results_dir, us_census):
    out = benchmark.pedantic(
        _run_panel, args=(us_census, "logistic", 0.8), rounds=1, iterations=1
    )
    text = (
        "ablation: noise placement, logistic task (misclassification, eps=0.8)\n"
        + "\n".join(f"  {name:<24} {value:.4f}" for name, value in out.items())
    )
    save_and_print(results_dir, "ablation_noise_placement_logistic", text)
    for name in PLACEMENTS:
        assert out[name] <= 0.55
