"""Figure 7: computation time vs dataset dimensionality (logistic task).

The paper's headline efficiency result: "the running time of FM is at least
one order of magnitude lower than that of NoPrivacy" because FM solves a
d-dimensional quadratic program while NoPrivacy runs iterative Newton over
every tuple; FP and DPME additionally pay for synthetic-data generation.
Absolute times differ from the 2012 Matlab testbed; the *ordering* is the
reproduction target.
"""

import pytest
from conftest import save_and_print

from repro.experiments.config import DEFAULT
from repro.experiments.figures import figure7_time_dimensionality
from repro.experiments.reporting import format_time_table


@pytest.mark.parametrize("country", ["us", "brazil"])
def test_figure7_time(benchmark, results_dir, country, us_census, brazil_census):
    dataset = us_census if country == "us" else brazil_census
    result = benchmark.pedantic(
        figure7_time_dimensionality,
        args=(dataset,),
        kwargs={"preset": DEFAULT},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure7_{country}_time", format_time_table(result))

    fm = result.time_series("FM")
    noprivacy = result.time_series("NoPrivacy")
    # FM at least an order of magnitude under NoPrivacy at every dims value.
    for fm_t, np_t in zip(fm, noprivacy):
        assert fm_t * 5.0 < np_t, (
            f"FM ({fm_t:.4f}s) not clearly faster than NoPrivacy ({np_t:.4f}s)"
        )
    # Time grows with dimensionality for the synthetic-data baselines.
    dpme = result.time_series("DPME")
    assert dpme[-1] > 0
