"""Figure 8: computation time vs dataset cardinality (logistic task).

All algorithms' time grows with the number of tuples; FM stays well under
NoPrivacy across the sweep (its only O(n) work is one pass building the
quadratic coefficients).
"""

import numpy as np
import pytest
from conftest import WIDE_SWEEP_PRESET, save_and_print

from repro.experiments.figures import figure8_time_cardinality
from repro.experiments.reporting import format_time_table

RATES = (0.1, 0.4, 0.7, 1.0)  # paper sweeps 10 rates; 4 suffice for shape


@pytest.mark.parametrize("country", ["us", "brazil"])
def test_figure8_time(benchmark, results_dir, country, us_census, brazil_census):
    dataset = us_census if country == "us" else brazil_census
    result = benchmark.pedantic(
        figure8_time_cardinality,
        args=(dataset,),
        kwargs={"preset": WIDE_SWEEP_PRESET, "rates": RATES},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, f"figure8_{country}_time", format_time_table(result))

    noprivacy = result.time_series("NoPrivacy")
    fm = result.time_series("FM")
    # Time grows with cardinality for the tuple-iterating algorithms.
    assert noprivacy[-1] > noprivacy[0]
    # FM clearly faster at the full rate.
    assert fm[-1] * 5.0 < noprivacy[-1]
