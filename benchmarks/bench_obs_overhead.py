"""Telemetry overhead: the observability layer must be ~free.

The :mod:`repro.obs` recorder is wired through every layer of the stack
(session entry points, plan dispatch, kernels, caches, executors).  Its
cost contract:

* ``telemetry="off"`` (the default) pays one null-check per instrumented
  site plus the two ``perf_counter`` calls the pre-telemetry code already
  paid for its timing fields — indistinguishable from the baseline;
* ``telemetry="summary"`` (O(1) memory aggregates) must stay within
  **3%** of off on a figure-6 shaped workload;
* ``telemetry="trace"`` (every span retained) is recorded as-is — its
  budget is "cheap enough to leave on while debugging", not a gate.

Following the ``bench_harness_scaling`` pattern, every measurement runs
in a **fresh subprocess** and reports a score digest, so the run doubles
as a telemetry-neutrality check: all three modes must produce bitwise-
identical scores.  Because the recorder's true cost (~1-3%) is smaller
than subprocess-to-subprocess noise on a busy box, the modes are measured
**interleaved round-robin** (off, summary, trace, off, ...) for
``OBS_OVERHEAD_REPEATS`` rounds and each mode keeps its best time —
slow-drift noise then hits all modes equally instead of biasing one.

Results merge into ``BENCH_harness.json`` under ``telemetry_overhead``.
"""

import json
import os
import subprocess
import sys

import pytest
from conftest import save_and_print

RECORDS = int(os.environ.get("OBS_OVERHEAD_RECORDS", "4000"))
REPEATS = int(os.environ.get("OBS_OVERHEAD_REPEATS", "5"))
#: Gate for summary mode: measured seconds must stay within this multiple
#: of off mode.  3% per the observability contract; override for noisy
#: shared boxes.
SUMMARY_GUARD = float(os.environ.get("OBS_OVERHEAD_GUARD", "1.03"))

MODES = ("off", "summary", "trace")

#: Runs the figure-6 sweep once (after one untimed warm-up pass at
#: telemetry off) at one telemetry level; prints {seconds, score_digest,
#: spans recorded}.
_CHILD = r"""
import hashlib, json, struct, sys, time
records, telemetry = int(sys.argv[1]), sys.argv[2]
from repro.data.census import load_us
from repro.experiments.config import ScalePreset
from repro.session import ExecutionPolicy, Session

dataset = load_us(records)
preset = ScalePreset(name="obs-overhead", max_records=None, folds=3, repetitions=2)
with Session(ExecutionPolicy(seed=17)) as warmup:
    warmup.figure("figure6", dataset, "linear", preset=preset)
with Session(ExecutionPolicy(telemetry=telemetry, seed=17)) as session:
    started = time.perf_counter()
    result = session.figure("figure6", dataset, "linear", preset=preset)
    seconds = time.perf_counter() - started
digest = hashlib.sha256()
for name, points in result.series.items():
    digest.update(name.encode())
    for point in points:
        digest.update(struct.pack("<dd", point.mean_score, point.std_score))
summary = session.telemetry_summary()
span_count = sum(int(s["count"]) for s in summary.get("spans", {}).values())
print(json.dumps({
    "telemetry": telemetry,
    "seconds": seconds,
    "score_digest": digest.hexdigest(),
    "spans_recorded": span_count,
}))
"""


def _run_mode_once(mode: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(RECORDS), mode],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"{mode} child failed:\n{result.stderr}"
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def measurements(results_dir) -> dict[str, dict]:
    rows: dict[str, dict] = {}
    for _ in range(REPEATS):
        for mode in MODES:  # interleaved: noise drift hits all modes alike
            row = _run_mode_once(mode)
            kept = rows.get(mode)
            if kept is not None:
                assert row["score_digest"] == kept["score_digest"]
                row["seconds"] = min(row["seconds"], kept["seconds"])
            rows[mode] = row
    off = rows["off"]["seconds"]
    lines = [
        f"telemetry overhead (figure-6 sweep, {RECORDS:,} records, "
        f"3 folds x 2 reps, best of {REPEATS} interleaved rounds)"
    ]
    for mode, row in rows.items():
        overhead = row["seconds"] / off - 1.0
        spans = f", {row['spans_recorded']} spans" if row["spans_recorded"] else ""
        lines.append(
            f"  {mode:>8}: {row['seconds']:.3f}s ({overhead:+.1%} vs off{spans})"
        )
    save_and_print(results_dir, "obs_overhead", "\n".join(lines))
    payload = {
        "records": RECORDS,
        "repeats": REPEATS,
        "modes": rows,
    }
    (results_dir / "obs_overhead.json").write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def test_scores_identical_across_telemetry_modes(measurements):
    """Telemetry is observation only: one digest across off/summary/trace."""
    digests = {row["score_digest"] for row in measurements.values()}
    assert len(digests) == 1, measurements


def test_summary_overhead_within_three_percent(measurements):
    """The committed contract: summary-mode aggregation is ~free."""
    off = measurements["off"]["seconds"]
    summary = measurements["summary"]["seconds"]
    assert summary <= SUMMARY_GUARD * off, (
        f"summary mode {summary:.3f}s exceeded {SUMMARY_GUARD:.0%} of "
        f"off mode {off:.3f}s"
    )


def test_trace_mode_actually_recorded(measurements):
    assert measurements["trace"]["spans_recorded"] > 0
    assert measurements["off"]["spans_recorded"] == 0
