"""Packaging metadata for the src/-layout ``repro`` package.

``pip install -e .`` makes ``import repro`` work without a manual
``PYTHONPATH=src`` (the tier-1 test command keeps setting it anyway so the
suite also runs from a bare checkout).
"""

from setuptools import find_packages, setup

setup(
    name="repro-functional-mechanism",
    version="1.0.0",
    description=(
        "Reproduction of 'Functional Mechanism: Regression Analysis under "
        "Differential Privacy' (Zhang et al., VLDB 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The committed golden-oracle digest store ships with the package so
    # `python -m repro verify --tier 3` works from an installed wheel.
    package_data={"repro.verify": ["golden_digests.json"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    # Optional array backends for the stacked kernels (repro.runtime.backend).
    # CPU wheels suffice: `pip install repro-functional-mechanism[torch]`
    # (CI uses the pytorch.org cpu index); CUDA builds are picked up
    # automatically when present.
    extras_require={"torch": ["torch>=2.0"]},
)
