"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can guard an entire pipeline with a single ``except ReproError``.
Subclasses are grouped by the subsystem that raises them; the messages aim
to carry enough context (parameter names, offending values) to debug a
failed experiment without a stack-trace dive.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PrivacyError",
    "BudgetExhaustedError",
    "InvalidBudgetError",
    "SensitivityError",
    "PolynomialError",
    "DegreeError",
    "DimensionMismatchError",
    "ObjectiveError",
    "UnboundedObjectiveError",
    "ApproximationError",
    "DataError",
    "DomainError",
    "NotFittedError",
    "SolverError",
    "ConvergenceError",
    "ExperimentError",
    "FaultError",
    "InjectedFaultError",
    "TransientIOError",
    "CacheIntegrityError",
    "ExecutorBrokenError",
    "FederatedError",
    "WireFormatError",
    "VersionMismatchError",
    "SchemaMismatchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PrivacyError(ReproError):
    """Base class for differential-privacy accounting and mechanism errors."""


class BudgetExhaustedError(PrivacyError):
    """A mechanism asked for more privacy budget than the accountant holds."""

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"requested epsilon={requested:g} exceeds remaining budget "
            f"epsilon={remaining:g}"
        )


class InvalidBudgetError(PrivacyError):
    """A privacy parameter (epsilon, delta) is outside its valid range."""


class SensitivityError(PrivacyError):
    """A sensitivity bound is missing, non-positive, or not finite."""


class PolynomialError(ReproError):
    """Base class for polynomial-representation errors."""


class DegreeError(PolynomialError):
    """An operation required a polynomial degree the object does not have."""


class DimensionMismatchError(PolynomialError):
    """Operands act on parameter vectors of different dimension."""

    def __init__(self, expected: int, got: int, what: str = "dimension") -> None:
        self.expected = int(expected)
        self.got = int(got)
        super().__init__(f"{what} mismatch: expected {expected}, got {got}")


class ObjectiveError(ReproError):
    """Base class for objective-function construction and evaluation errors."""


class UnboundedObjectiveError(ObjectiveError):
    """A (noisy) objective has no finite minimizer.

    Raised when post-processing is disabled or fails to repair the perturbed
    quadratic form (Section 6 of the paper discusses why this can happen).
    """


class ApproximationError(ObjectiveError):
    """Polynomial approximation of an objective failed or is ill-defined."""


class DataError(ReproError):
    """Base class for dataset construction and validation errors."""


class DomainError(DataError):
    """Data fell outside the declared attribute domain."""


class NotFittedError(ReproError):
    """A model method that requires ``fit`` was called before fitting."""

    def __init__(self, model: str) -> None:
        super().__init__(f"{model} is not fitted; call fit() first")


class SolverError(ReproError):
    """Base class for optimization-solver failures."""


class ConvergenceError(SolverError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, solver: str, iterations: int, residual: float) -> None:
        self.solver = solver
        self.iterations = int(iterations)
        self.residual = float(residual)
        super().__init__(
            f"{solver} did not converge in {iterations} iterations "
            f"(last residual {residual:.3e})"
        )


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""


class FaultError(ReproError):
    """Base class for fault-injection and fault-recovery errors."""


class InjectedFaultError(FaultError):
    """A deterministic injected fault fired (see :mod:`repro.faults`).

    Raised for injected faults that simulate an abrupt failure *within*
    the current process (e.g. a crash between a budget journal's intent
    and commit records); process-worker crash faults use ``os._exit``
    instead, so nothing can catch them.
    """

    def __init__(self, site: str, index: int, attempt: int) -> None:
        self.site = site
        self.index = int(index)
        self.attempt = int(attempt)
        super().__init__(
            f"injected fault at site {site!r} (index={index}, attempt={attempt})"
        )


class TransientIOError(FaultError, OSError):
    """A retryable I/O failure (injected or classified as transient).

    Inherits :class:`OSError` so generic filesystem error handling treats
    it like the real thing; inherits :class:`FaultError` so retry layers
    can recognize it as safe to re-attempt.
    """


class CacheIntegrityError(FaultError):
    """A durable cache entry failed its checksum or structural validation."""


class ExecutorBrokenError(FaultError):
    """An executor exhausted its retry budget without completing a map.

    Carries enough state for a caller to *resume* rather than restart:
    ``completed`` maps input positions to their finished results and
    ``pending`` lists the positions still unexecuted.  Re-running pending
    items elsewhere is bitwise-safe — every cell's RNG substream is keyed
    by ``(seed, tag)``, never by execution order — which is what lets the
    runner degrade process → thread → serial without changing any score.
    """

    def __init__(
        self,
        reason: str,
        completed: dict | None = None,
        pending: tuple | None = None,
        failure_mode: str = "raise",
    ) -> None:
        self.reason = reason
        self.completed = dict(completed or {})
        self.pending = tuple(pending or ())
        self.failure_mode = failure_mode
        super().__init__(
            f"executor gave up after exhausting retries: {reason} "
            f"({len(self.completed)} items completed, {len(self.pending)} pending)"
        )


class FederatedError(ReproError):
    """Base class for federated-aggregation protocol errors.

    Every subclass is **non-retryable** (``retryable = False``): a bad
    envelope stays bad no matter how many times the coordinator re-reads
    it, so retry layers must surface these instead of looping.  The
    coordinator rejects the envelope *before* touching its merge state,
    so a raised ``FederatedError`` guarantees the merged view is exactly
    what it was before the offending envelope arrived.
    """

    retryable = False


class WireFormatError(FederatedError):
    """A federated envelope failed structural or checksum validation.

    Covers a missing/garbled header, a payload length mismatch, a failed
    SHA-256 digest, and an inner ``.acc`` codec integrity failure — i.e.
    every corruption mode short of a well-formed envelope that merely
    disagrees about versions or schema (those get the subclasses below).
    """


class VersionMismatchError(WireFormatError):
    """A well-formed envelope speaks a wire-format version we do not."""

    def __init__(self, got: object, supported: tuple[int, ...]) -> None:
        self.got = got
        self.supported = tuple(supported)
        super().__init__(
            f"unsupported federated wire version {got!r}; "
            f"this coordinator speaks {list(supported)}"
        )


class SchemaMismatchError(WireFormatError):
    """An envelope's schema fingerprint disagrees with the coordinator's.

    The fingerprint covers task, dimensionality, block size, stream
    version, backend, noise mode, and party count — a mismatch means the
    party and coordinator would compute *different* releases, so the
    merge must refuse rather than blend incompatible statistics.
    """

    def __init__(self, expected: str, got: str, context: str = "") -> None:
        self.expected = expected
        self.got = got
        suffix = f" ({context})" if context else ""
        super().__init__(
            f"schema fingerprint mismatch: coordinator expects "
            f"{expected[:16]}..., envelope carries {got[:16]}...{suffix}"
        )
