"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can guard an entire pipeline with a single ``except ReproError``.
Subclasses are grouped by the subsystem that raises them; the messages aim
to carry enough context (parameter names, offending values) to debug a
failed experiment without a stack-trace dive.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PrivacyError",
    "BudgetExhaustedError",
    "InvalidBudgetError",
    "SensitivityError",
    "PolynomialError",
    "DegreeError",
    "DimensionMismatchError",
    "ObjectiveError",
    "UnboundedObjectiveError",
    "ApproximationError",
    "DataError",
    "DomainError",
    "NotFittedError",
    "SolverError",
    "ConvergenceError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PrivacyError(ReproError):
    """Base class for differential-privacy accounting and mechanism errors."""


class BudgetExhaustedError(PrivacyError):
    """A mechanism asked for more privacy budget than the accountant holds."""

    def __init__(self, requested: float, remaining: float) -> None:
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"requested epsilon={requested:g} exceeds remaining budget "
            f"epsilon={remaining:g}"
        )


class InvalidBudgetError(PrivacyError):
    """A privacy parameter (epsilon, delta) is outside its valid range."""


class SensitivityError(PrivacyError):
    """A sensitivity bound is missing, non-positive, or not finite."""


class PolynomialError(ReproError):
    """Base class for polynomial-representation errors."""


class DegreeError(PolynomialError):
    """An operation required a polynomial degree the object does not have."""


class DimensionMismatchError(PolynomialError):
    """Operands act on parameter vectors of different dimension."""

    def __init__(self, expected: int, got: int, what: str = "dimension") -> None:
        self.expected = int(expected)
        self.got = int(got)
        super().__init__(f"{what} mismatch: expected {expected}, got {got}")


class ObjectiveError(ReproError):
    """Base class for objective-function construction and evaluation errors."""


class UnboundedObjectiveError(ObjectiveError):
    """A (noisy) objective has no finite minimizer.

    Raised when post-processing is disabled or fails to repair the perturbed
    quadratic form (Section 6 of the paper discusses why this can happen).
    """


class ApproximationError(ObjectiveError):
    """Polynomial approximation of an objective failed or is ill-defined."""


class DataError(ReproError):
    """Base class for dataset construction and validation errors."""


class DomainError(DataError):
    """Data fell outside the declared attribute domain."""


class NotFittedError(ReproError):
    """A model method that requires ``fit`` was called before fitting."""

    def __init__(self, model: str) -> None:
        super().__init__(f"{model} is not fitted; call fit() first")


class SolverError(ReproError):
    """Base class for optimization-solver failures."""


class ConvergenceError(SolverError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, solver: str, iterations: int, residual: float) -> None:
        self.solver = solver
        self.iterations = int(iterations)
        self.residual = float(residual)
        super().__init__(
            f"{solver} did not converge in {iterations} iterations "
            f"(last residual {residual:.3e})"
        )


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""
