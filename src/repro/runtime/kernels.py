"""Batched tensor kernels behind the cell runtime.

Every kernel here replaces a loop of scalar d x d linear-algebra calls with
one stacked ``(B, d, d)`` LAPACK invocation, under a strict contract:
**bitwise identity with the per-cell reference path** (on the default numpy
backend).  NumPy's linalg gufuncs (``solve``, ``eigh``, ``eigvalsh``) and
``matmul`` apply the same LAPACK/BLAS routine to each stacked matrix that
the scalar call would apply to the matrix alone, so stacking changes
scheduling — one Python-level call, contiguous batched input — without
changing a single floating-point operation.  Operations that do NOT honour
that contract (``einsum`` re-associates reductions; a multi-column GEMM is
not a loop of GEMVs) are deliberately avoided; scoring matvecs use
broadcastified ``matmul`` for the same reason.

Backend dispatch (:mod:`repro.runtime.backend`): the stacked ``solve`` /
``eigh`` / ``eigvalsh`` / ``pinv`` invocations go through the ambient
:func:`~repro.runtime.backend.active_backend`.  The default numpy backend
*is* those ``np.linalg`` calls, preserving bit-identity; the torch backend
runs the same stacks on torch (CUDA when available) and is certified
numerically conforming — never bit-identical — by ``repro.verify``'s
``numeric`` tier.  Elementwise arithmetic, masking, and the rare per-cell
fallback loops stay in numpy: noise is always drawn by the keyed numpy
substreams and transferred in, so RNG order and privacy calibration are
backend-invariant by construction.

Input canonicalization: every public kernel gates its array arguments
through :func:`~repro.runtime.backend.canonical_array` — C-contiguous
float64, lower-precision floats upcast, integer/bool/object/complex
rejected — so both backends see identical canonical inputs and callers can
no longer smuggle float32 through and silently get float32 answers back.

The three kernels:

:func:`fm_noise_stack`
    Map one fold's standardized Laplace draws to noisy coefficient stacks
    across the epsilon axis, following the exact draw layout of
    :meth:`~repro.core.mechanism.FunctionalMechanism.perturb_quadratic`.
:func:`spectral_solve_stack`
    Section-6.2 spectral trimming for a whole stack of noisy quadratics in
    one batched eigendecomposition (the rare trimmed cells fall back to the
    per-cell formula, which is itself exact).
:func:`newton_logistic_stack`
    Damped Newton over every logistic cell simultaneously, with per-cell
    convergence masking, replicating
    :class:`~repro.regression.solvers.NewtonSolver` decision-for-decision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..regression.logistic import sigmoid
from ..regression.solvers import NewtonSolver, SolverResult
from .backend import active_backend, canonical_array

__all__ = [
    "fm_noise_stack",
    "spectral_trim_stack",
    "spectral_solve_stack",
    "posdef_split_stack",
    "posdef_or_pinv_solve_stack",
    "normal_equations_solve_stack",
    "newton_logistic_stack",
    "SpectralBatchResult",
    "SpectralTrimState",
    "NewtonBatchResult",
]

#: Mirrors repro.core.postprocess._EIGEN_TOL.
_EIGEN_TOL = 1e-12


# ----------------------------------------------------------------------
# FM noise mapping
# ----------------------------------------------------------------------
def fm_noise_stack(
    M: np.ndarray,
    alpha: np.ndarray,
    raw: np.ndarray,
    scales: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Noisy ``(M*, alpha*)`` stacks for one fold across all epsilons.

    Parameters
    ----------
    M, alpha:
        The fold's exact database-level coefficients.
    raw:
        Standardized i.i.d. Laplace draws of shape ``(E, 1 + d + d^2)`` —
        row ``e`` is consumed exactly the way ``perturb_quadratic`` consumes
        its stream: one constant draw, ``d`` linear draws, then a ``d x d``
        matrix whose strict upper triangle splits ``w/2`` onto the
        symmetric pair.
    scales:
        Laplace scale ``Delta / epsilon_e`` per row.

    Returns the noisy stacks ``(E, d, d)`` and ``(E, d)``.  The constant
    coefficient's draw (``raw[:, 0]``) does not influence the minimizer and
    is skipped (the stream position is still consumed by the caller's draw).

    The noise mapping itself is pure elementwise numpy arithmetic and runs
    identically under every array backend — ``raw`` is drawn by the keyed
    numpy substreams and only its *consumption* (the spectral repair and
    solve downstream) dispatches through the backend shim.
    """
    M = canonical_array(M, "M")
    alpha = canonical_array(alpha, "alpha")
    raw = canonical_array(raw, "raw")
    scales = canonical_array(scales, "scales")
    d = alpha.shape[0]
    E = raw.shape[0]
    draws = scales[:, None, None] * raw[:, 1 + d :].reshape(E, d, d)
    eye = np.eye(d, dtype=bool)
    upper_mask = np.triu(np.ones((d, d), dtype=bool), k=1)
    diag = np.where(eye, draws, 0.0)
    upper = np.where(upper_mask, draws, 0.0) / 2.0
    noisy_M = M + diag + upper + upper.transpose(0, 2, 1)
    noisy_alpha = alpha + scales[:, None] * raw[:, 1 : 1 + d]
    return noisy_M, noisy_alpha


# ----------------------------------------------------------------------
# Stacked quadratic solves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpectralBatchResult:
    """Outcome of one stacked spectral-trimming solve.

    ``omega`` has shape ``(B, d)``; ``lam``, ``trimmed`` and ``repaired``
    mirror the per-cell :class:`~repro.core.postprocess.PostProcessResult`
    fields cell by cell.  ``repaired`` is ``None`` when the caller skipped
    its diagnostic eigenvalue pass (``compute_repaired=False``).
    """

    omega: np.ndarray
    lam: np.ndarray
    trimmed: np.ndarray
    repaired: np.ndarray | None


@dataclass(frozen=True)
class SpectralTrimState:
    """Spectral repair with the full-rank closed-form solves still pending.

    ``omega`` already holds the subspace-preimage solutions of the trimmed
    cells; cells flagged by ``full`` await the stacked
    ``solve(2 * regularized, -alpha)``.  Splitting the repair from the final
    solve lets the group runner merge that solve across several plans'
    stacks (one LAPACK call for the whole algorithm panel) — merging is
    bit-safe because the ``solve`` gufunc factors each stacked matrix
    independently.
    """

    omega: np.ndarray
    full: np.ndarray
    regularized: np.ndarray
    lam: np.ndarray
    trimmed: np.ndarray
    repaired: np.ndarray | None


def spectral_trim_stack(
    M: np.ndarray,
    alpha: np.ndarray,
    noise_std: np.ndarray,
    multiplier: float = 4.0,
    eigen_tol: float = _EIGEN_TOL,
    noise_relative_tol: float = 0.5,
    compute_repaired: bool = True,
) -> SpectralTrimState:
    """The repair half of :func:`spectral_solve_stack` (no full-rank solve).

    Performs the ridge, the batched ``eigh``, the trim decision, and the
    minimum-norm subspace preimage for trimmed cells, leaving the untrimmed
    cells' closed-form solves to the caller (directly, or merged with other
    stacks).
    """
    M = canonical_array(M, "M")
    alpha = canonical_array(alpha, "alpha")
    noise_std = canonical_array(noise_std, "noise_std")
    backend = active_backend()
    B, d = alpha.shape
    lam = multiplier * noise_std
    regularized = M + lam[:, None, None] * np.eye(d)
    eigenvalues, eigenvectors = backend.eigh(regularized)
    tol = np.maximum(eigen_tol, noise_relative_tol * noise_std)
    keep = eigenvalues > tol[:, None]
    trimmed = np.count_nonzero(~keep, axis=1)
    omega = np.empty((B, d), dtype=float)
    full = trimmed == 0
    for i in np.flatnonzero(~full):
        kept = keep[i]
        if not kept.any():
            omega[i] = np.zeros(d)
            continue
        Q_kept = eigenvectors[i][:, kept].T
        retained = eigenvalues[i][kept]
        V = -0.5 * (Q_kept @ alpha[i]) / retained
        omega[i] = Q_kept.T @ V
    repaired = None
    if compute_repaired:
        # `repaired` mirrors the per-cell flag: trimming happened, or the
        # ridge was needed to make the raw noisy matrix positive definite.
        raw_eigenvalues = backend.eigvalsh(M)
        raw_posdef = raw_eigenvalues.min(axis=1) > eigen_tol
        repaired = ~(full & raw_posdef)
    return SpectralTrimState(
        omega=omega,
        full=full,
        regularized=regularized,
        lam=lam,
        trimmed=trimmed,
        repaired=repaired,
    )


def spectral_solve_stack(
    M: np.ndarray,
    alpha: np.ndarray,
    noise_std: np.ndarray,
    multiplier: float = 4.0,
    eigen_tol: float = _EIGEN_TOL,
    noise_relative_tol: float = 0.5,
    compute_repaired: bool = True,
) -> SpectralBatchResult:
    """Section-6.2 repair + minimize for a stack of noisy quadratics.

    Replicates :class:`~repro.core.postprocess.SpectralTrimming` per cell:
    ridge by ``multiplier * noise_std``, one batched ``eigh``, trim
    eigenvalues at ``max(eigen_tol, noise_relative_tol * noise_std)``, then
    a stacked closed-form solve for the untrimmed cells and the
    minimum-norm subspace preimage for the trimmed ones.

    ``compute_repaired=False`` skips the diagnostic eigenvalue pass over
    the raw (pre-ridge) stack that only feeds the ``repaired`` flag —
    callers that consume just ``omega`` (the score-only harness path)
    should skip it; it costs a second full batched ``eigvalsh``.
    """
    alpha = canonical_array(alpha, "alpha")
    state = spectral_trim_stack(
        M,
        alpha,
        noise_std,
        multiplier=multiplier,
        eigen_tol=eigen_tol,
        noise_relative_tol=noise_relative_tol,
        compute_repaired=compute_repaired,
    )
    if state.full.any():
        state.omega[state.full] = active_backend().solve(
            2.0 * state.regularized[state.full], -alpha[state.full, :, None]
        )[..., 0]
    return SpectralBatchResult(
        omega=state.omega, lam=state.lam, trimmed=state.trimmed, repaired=state.repaired
    )


def posdef_split_stack(M: np.ndarray, alpha: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The split half of :func:`posdef_or_pinv_solve_stack`.

    Returns ``(omega, posdef)`` where singular cells are already resolved
    through the pseudo-inverse and positive-definite cells (flagged by the
    mask) await the stacked ``solve(2M, -alpha)`` — directly or merged with
    other plans' solve stacks.
    """
    M = canonical_array(M, "M")
    alpha = canonical_array(alpha, "alpha")
    backend = active_backend()
    B, d = alpha.shape
    eigenvalues = backend.eigvalsh(M)
    posdef = eigenvalues.min(axis=1) > 0.0
    omega = np.empty((B, d), dtype=float)
    for i in np.flatnonzero(~posdef):
        omega[i] = backend.pinv(2.0 * M[i]) @ (-alpha[i])
    return omega, posdef


def posdef_or_pinv_solve_stack(M: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Minimize ``w^T M w + alpha^T w`` per cell, pinv on singular cells.

    Replicates the Truncated baseline's fit: the closed-form solve
    ``w = solve(2M, -alpha)`` when ``M`` is positive definite (checked by
    eigenvalue, like :meth:`QuadraticForm.minimize`), else the minimum-norm
    stationary point through the pseudo-inverse.
    """
    M = canonical_array(M, "M")
    alpha = canonical_array(alpha, "alpha")
    omega, posdef = posdef_split_stack(M, alpha)
    if posdef.any():
        omega[posdef] = active_backend().solve(
            2.0 * M[posdef], -alpha[posdef, :, None]
        )[..., 0]
    return omega


def normal_equations_solve_stack(
    gram: np.ndarray,
    moment: np.ndarray,
    fallback,
) -> np.ndarray:
    """Stacked OLS normal-equations solve with per-cell lstsq fallback.

    ``fallback(i)`` is invoked for cell ``i`` when its Gram matrix is
    singular or the solution is non-finite, and must return the cell's
    least-squares solution from the design matrix (the reference path's
    behaviour in :class:`~repro.regression.linear.LinearRegression`).
    NumPy's stacked ``solve`` raises when *any* cell is singular without
    identifying which, so on failure the solve is retried cell by cell —
    bitwise identical for the non-singular cells either way.
    """
    gram = canonical_array(gram, "gram")
    moment = canonical_array(moment, "moment")
    backend = active_backend()
    B = moment.shape[0]
    try:
        weights = backend.solve(gram, moment[..., None])[..., 0]
        failed = ~np.all(np.isfinite(weights), axis=1)
    except np.linalg.LinAlgError:
        weights = np.empty_like(moment)
        failed = np.zeros(B, dtype=bool)
        for i in range(B):
            try:
                weights[i] = backend.solve(gram[i], moment[i])
                failed[i] = not np.all(np.isfinite(weights[i]))
            except np.linalg.LinAlgError:
                failed[i] = True
    for i in np.flatnonzero(failed):
        weights[i] = fallback(i)
    return weights


# ----------------------------------------------------------------------
# Masked batched Newton for the logistic cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NewtonBatchResult:
    """Per-cell outcomes of one masked batched Newton run.

    Field semantics match :class:`~repro.regression.solvers.SolverResult`
    cell by cell.
    """

    x: np.ndarray
    fun: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    gradient_norm: np.ndarray

    def cell(self, i: int) -> SolverResult:
        """The ``SolverResult`` view of one cell."""
        return SolverResult(
            x=self.x[i],
            fun=float(self.fun[i]),
            iterations=int(self.iterations[i]),
            converged=bool(self.converged[i]),
            gradient_norm=float(self.gradient_norm[i]),
        )


def _stacked_matvec(A: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-cell ``A[i] @ v[i]`` through the matmul gufunc (bit-exact)."""
    return np.matmul(A, v[..., None])[..., 0]


def _stacked_loss(z: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-cell Definition-2 loss from precomputed scores ``z = X w``."""
    return np.sum(np.logaddexp(0.0, z) - y * z, axis=1)


def _stacked_newton_direction(
    hess: np.ndarray, grad: np.ndarray, base_damping: float
) -> np.ndarray:
    """The damped Newton system for every cell, mirroring ``_newton_direction``.

    The first attempt solves the whole stack at the base damping; if any
    cell's matrix is singular, the per-cell escalation loop (damping x100,
    floor 1e-8, at most 8 attempts, steepest-descent fallback) is replayed
    for each cell individually — the non-singular cells' solutions are
    bitwise identical either way.
    """
    backend = active_backend()
    d = grad.shape[1]
    identity = np.eye(d)
    try:
        return backend.solve(hess + base_damping * identity, -grad[..., None])[..., 0]
    except np.linalg.LinAlgError:
        direction = np.empty_like(grad)
        for i in range(grad.shape[0]):
            damping = base_damping
            for _ in range(8):
                try:
                    direction[i] = backend.solve(
                        hess[i] + damping * identity, -grad[i]
                    )
                    break
                except np.linalg.LinAlgError:
                    damping = max(damping * 100.0, 1e-8)
            else:
                direction[i] = -grad[i]
        return direction


def newton_logistic_stack(
    X: np.ndarray,
    y: np.ndarray,
    max_iterations: int | None = None,
    tolerance: float = 1e-8,
    damping: float | None = None,
) -> NewtonBatchResult:
    """Fit every logistic cell simultaneously by masked damped Newton.

    Parameters
    ----------
    X, y:
        Stacked training data of shape ``(B, n, d)`` / ``(B, n)`` — every
        cell must share ``n`` (the runner groups folds by training size).
    max_iterations, tolerance, damping:
        Solver knobs, defaulting to :class:`NewtonSolver`'s values as used
        by :class:`~repro.regression.logistic.LogisticRegressionModel`.

    The iteration replicates :meth:`NewtonSolver.minimize` on
    ``logistic_loss`` decision-for-decision per cell: same Newton system,
    same descent-direction check, same Armijo backtracking (step reset to
    1.0 each iteration, shrink 0.5, slope 1e-4, 60 backtracks), same
    convergence and failure accounting — only with all still-active cells
    advanced per Python-level step.  Every per-cell floating-point value is
    produced by the same operation sequence as the scalar solver (matmul
    gufunc batching, explicit per-cell dot products), so the returned
    iterates are bitwise identical to a per-cell loop.
    """
    X = canonical_array(X, "X")
    y = canonical_array(y, "y")
    defaults = NewtonSolver()
    if max_iterations is None:
        max_iterations = defaults.max_iterations
    if damping is None:
        damping = defaults.damping
    B, n, d = X.shape
    out_x = np.zeros((B, d))
    out_fun = np.empty(B)
    out_iterations = np.zeros(B, dtype=int)
    out_converged = np.zeros(B, dtype=bool)
    out_grad_norm = np.full(B, np.inf)
    # Working-set state.  ``orig`` maps each live lane to its output row;
    # retired lanes are masked immediately and physically dropped once most
    # of the batch has retired (compaction copies the shrunken stack once —
    # per-iteration fancy-slicing of the O(B n d) tensors would cost more
    # than the arithmetic wasted on a few already-converged lanes).
    XT = X.transpose(0, 2, 1)
    W = np.zeros((B, d))
    fx = _stacked_loss(np.zeros((B, n)), y)
    orig = np.arange(B)
    active = np.ones(B, dtype=bool)

    def retire(mask: np.ndarray, converged, iterations: int) -> None:
        rows = orig[mask]
        out_x[rows] = W[mask]
        out_fun[rows] = fx[mask]
        out_converged[rows] = converged
        out_iterations[rows] = iterations

    for iteration in range(1, max_iterations + 1):
        if not active.any():
            break
        live = np.flatnonzero(active)
        if live.size <= 0.6 * active.size:
            X, y = X[live], y[live]
            XT = X.transpose(0, 2, 1)
            W, fx, orig = W[live], fx[live], orig[live]
            active = np.ones(live.size, dtype=bool)
        p = sigmoid(_stacked_matvec(X, W))
        grad = _stacked_matvec(XT, p - y)
        grad_norm = np.abs(grad).max(axis=1)
        out_grad_norm[orig[active]] = grad_norm[active]
        done = active & (grad_norm <= tolerance)
        if done.any():
            retire(done, True, iteration - 1)
            active &= ~done
            if not active.any():
                continue
        widx = np.flatnonzero(active)
        # The weighted-design product is one dense BLAS call per cell; the
        # stacked gufunc equivalent walks a transposed batch view that
        # bypasses the fast GEMM path, so the loop is both the faster and
        # the trivially bit-identical formulation (and it skips the
        # already-converged cells entirely).
        hess = np.empty((widx.size, d, d))
        for j, i in enumerate(widx):
            weights = p[i] * (1.0 - p[i])
            hess[j] = (X[i] * weights[:, None]).T @ X[i]
        direction = np.zeros((W.shape[0], d))
        direction[widx] = _stacked_newton_direction(hess, grad[widx], damping)
        # np.dot on a d-vector and an elementwise-product reduction do not
        # share an accumulation order; the per-cell dot matches the scalar
        # solver exactly.
        dd = np.zeros(W.shape[0])
        for i in widx:
            value = float(grad[i] @ direction[i])
            if value >= 0.0:  # not a descent direction; steepest descent
                direction[i] = -grad[i]
                value = float(grad[i] @ direction[i])
            dd[i] = value
        # Armijo backtracking, all unaccepted active cells stepping together.
        step = np.ones(W.shape[0])
        accepted = ~active  # inactive lanes never participate
        new_W = W.copy()
        new_fx = fx.copy()
        for _ in range(60):
            trying = ~accepted
            if not trying.any():
                break
            # Inactive lanes carry direction 0, so the full-stack candidate
            # equals W there and only the trying lanes' values are read.
            candidate = W + step[:, None] * direction
            f_candidate = _stacked_loss(_stacked_matvec(X, candidate), y)
            ok = trying & np.isfinite(f_candidate) & (
                f_candidate <= fx + 1e-4 * step * dd
            )
            new_W[ok] = candidate[ok]
            new_fx[ok] = f_candidate[ok]
            accepted |= ok
            shrink = trying & ~ok
            step[shrink] *= 0.5
        failed = active & ~accepted
        if failed.any():
            # No acceptable step: converged if the gradient is small-ish,
            # else give up — exactly the scalar solver's failure branch.
            retire(failed, grad_norm[failed] <= 1e3 * tolerance, iteration)
            active &= ~failed
        moved = active & accepted
        W[moved] = new_W[moved]
        fx[moved] = new_fx[moved]
        out_iterations[orig[moved]] = iteration
    if active.any():
        # Iteration budget exhausted; every survivor moved in the final
        # iteration, so out_iterations already reads max_iterations.
        retire(active, False, max_iterations)
    return NewtonBatchResult(
        x=out_x,
        fun=out_fun,
        iterations=out_iterations,
        converged=out_converged,
        gradient_norm=out_grad_norm,
    )
