"""Execute a :class:`~repro.runtime.plan.CellPlan` — batched or per cell.

Two execution modes over the same plan:

``"percell"``
    The reference oracle.  Every cell constructs its algorithm through the
    registry, fits on its fold and scores the held-out split — a faithful
    transliteration of the historical harness loop, kept as the ground
    truth the batched path is asserted against.
``"batched"``
    Cells are grouped by kernel class and executed as stacked tensor
    solves: one fold-level statistics pass feeds all epsilon cells, all
    d x d solves of the plan go through one LAPACK invocation, and logistic
    cells iterate through the masked batched Newton.  Scores are **bitwise
    identical** to the per-cell mode (see :mod:`repro.runtime.kernels` for
    why); only the timing attribution differs — batched cells report an
    equal share of their kernel's fit time (aggregation + noise + solves,
    held-out scoring excluded, matching the per-cell fit-only clock)
    instead of an individual fit time.

Plans whose kernel class is ``generic`` (DPME, FP, ...) run per cell in
either mode, optionally spread over a :mod:`~repro.runtime.executor`
(serial / thread / process).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..baselines.base import make_algorithm
from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
    RegressionObjective,
)
from ..exceptions import ExperimentError
from ..regression.linear import _validate_xy as _validate_linear_xy
from ..regression.logistic import _validate_xy as _validate_logistic_xy
from ..regression.logistic import sigmoid
from ..regression.metrics import mean_squared_error, misclassification_rate
from .executor import CellExecutor, get_executor
from .kernels import (
    fm_noise_stack,
    newton_logistic_stack,
    normal_equations_solve_stack,
    posdef_or_pinv_solve_stack,
    spectral_solve_stack,
)
from .plan import KERNEL_GENERIC, KERNEL_NEWTON, KERNEL_QUADRATIC, CellPlan

__all__ = ["PlanResult", "run_plan"]

#: Upper bound on the bytes a single stacked Newton chunk may hold; chunking
#: only bounds memory — it cannot change any cell's arithmetic.
_NEWTON_CHUNK_BYTES = 1 << 28


@dataclass(frozen=True)
class PlanResult:
    """Per-cell scores and fit times of one plan execution.

    ``scores[epsilon]`` and ``fit_seconds[epsilon]`` list the plan's folds
    in order; aggregation into the harness's ``EvaluationResult`` happens in
    :mod:`repro.experiments.harness` (which owns that type).
    """

    plan: CellPlan
    mode: str
    scores: dict[float, list[float]]
    fit_seconds: dict[float, list[float]]

    @property
    def n_train(self) -> int:
        """Training size of the last fold (the harness's reported value)."""
        return self.plan.n_train


def _validate_plan_inputs(plan: CellPlan, validate) -> None:
    """Apply a per-cell input gate once per repetition instead of per cell.

    Folds of a repetition share its prepared arrays (by identity), and
    k-fold splitting puts every row into some training split, so validating
    the repetition's full ``(X, y)`` accepts/rejects exactly the datasets
    the per-cell gate would — at one O(n d) pass per repetition instead of
    one per cell.
    """
    seen: set[int] = set()
    for fold in plan.folds:
        if id(fold.X) in seen:
            continue
        seen.add(id(fold.X))
        validate(fold.X, fold.y)


def _objective_for_plan(plan: CellPlan) -> RegressionObjective:
    """The degree-2 objective an FM/Truncated cell of this plan builds."""
    kwargs = plan.algorithm_kwargs
    if plan.task == "linear":
        return LinearRegressionObjective(plan.dim)
    return LogisticRegressionObjective(
        plan.dim,
        approximation=kwargs.get("approximation", "taylor"),
        order=int(kwargs.get("order", 2)),
        radius=float(kwargs.get("radius", 1.0)),
    )


def _score_linear(y_test: np.ndarray, z: np.ndarray) -> float:
    """The linear metric from raw scores, as the per-cell models compute it."""
    return mean_squared_error(y_test, z)


def _score_logistic(y_test: np.ndarray, z: np.ndarray) -> float:
    """The logistic metric via the 0.5 sigmoid threshold (not ``z > 0``).

    The per-cell models predict ``sigmoid(z) > 0.5``; for subnormal
    positive ``z`` this differs from ``z > 0`` at the last bit, and the
    batched path mirrors the models exactly.
    """
    return misclassification_rate(y_test, (sigmoid(z) > 0.5).astype(float))


def _scores_for_fold(
    plan: CellPlan, X_test: np.ndarray, y_test: np.ndarray, omegas: np.ndarray
) -> list[float]:
    """Score one fold's E released parameters against its held-out split.

    The broadcastified matmul runs one GEMV per parameter on the shared
    test matrix — bitwise equal to the per-cell ``X_test @ omega``.
    """
    z = np.matmul(X_test[None, :, :], omegas[:, :, None])[:, :, 0]
    score = _score_linear if plan.task == "linear" else _score_logistic
    return [score(y_test, z[e]) for e in range(omegas.shape[0])]


# ----------------------------------------------------------------------
# Reference oracle
# ----------------------------------------------------------------------
def _run_percell(plan: CellPlan, executor: CellExecutor) -> PlanResult:
    """Fit and score every cell independently (the reference path).

    Each fold derives one generator, consumed sequentially across the
    epsilon axis — for a single-budget plan this is exactly the historical
    harness cell; for a multi-budget plan it matches the documented
    loop-equivalence of :meth:`repro.engine.EpsilonSweepEngine.sweep`.
    """

    def work(fold):
        gen = plan.substream(fold)
        X_train, y_train = fold.train_arrays()
        X_test, y_test = fold.test_arrays()
        cell_scores, cell_times = [], []
        for epsilon in plan.epsilons:
            model = make_algorithm(
                plan.algorithm,
                plan.task,
                epsilon=epsilon,
                rng=gen,
                **plan.algorithm_kwargs,
            )
            started = time.perf_counter()
            model.fit(X_train, y_train)
            cell_times.append(time.perf_counter() - started)
            cell_scores.append(model.score(X_test, y_test))
        return cell_scores, cell_times

    outcomes = executor.map(work, plan.folds)
    scores = {e: [] for e in plan.epsilons}
    fit_seconds = {e: [] for e in plan.epsilons}
    for cell_scores, cell_times in outcomes:
        for e, s, t in zip(plan.epsilons, cell_scores, cell_times):
            scores[e].append(s)
            fit_seconds[e].append(t)
    return PlanResult(plan=plan, mode="percell", scores=scores, fit_seconds=fit_seconds)


# ----------------------------------------------------------------------
# Batched kernels
# ----------------------------------------------------------------------
def _run_fm_batched(plan: CellPlan) -> tuple[dict[float, list[float]], float]:
    """All FM cells of the plan as one stacked perturb-repair-solve.

    Returns the per-epsilon scores and the fit wall-time (aggregation +
    noise mapping + stacked repair/solve, *excluding* held-out scoring, to
    keep the timing metric comparable with the per-cell path's
    fit-only clock).
    """
    started = time.perf_counter()
    objective = _objective_for_plan(plan)
    sensitivity = objective.sensitivity(
        tight=bool(plan.algorithm_kwargs.get("tight_sensitivity", False))
    )
    ridge_lambda = float(plan.algorithm_kwargs.get("ridge_lambda", 0.0))
    d = plan.dim
    E = len(plan.epsilons)
    F = len(plan.folds)
    epsilons = np.asarray(plan.epsilons, dtype=float)
    scales = sensitivity / epsilons
    M_stack = np.empty((F * E, d, d))
    alpha_stack = np.empty((F * E, d))
    noise_std = np.empty(F * E)
    # The same domain gate the per-cell estimator applies: releasing FM
    # output on data violating the footnote-1 normalization would void the
    # sensitivity bound (checks only — no arithmetic, so bit-identity with
    # the per-cell path is unaffected).
    _validate_plan_inputs(plan, objective.validate)
    for f, fold in enumerate(plan.folds):
        X_train, y_train = fold.train_arrays()
        form = objective.aggregate_quadratic(X_train, y_train)
        raw = plan.substream(fold).laplace(0.0, 1.0, size=(E, 1 + d + d * d))
        noisy_M, noisy_alpha = fm_noise_stack(form.M, form.alpha, raw, scales)
        if ridge_lambda:
            noisy_M = noisy_M + ridge_lambda * np.eye(d)
        M_stack[f * E : (f + 1) * E] = noisy_M
        alpha_stack[f * E : (f + 1) * E] = noisy_alpha
        noise_std[f * E : (f + 1) * E] = math.sqrt(2.0) * scales
    solved = spectral_solve_stack(
        M_stack, alpha_stack, noise_std, compute_repaired=False
    )
    fit_seconds = time.perf_counter() - started
    scores = {e: [] for e in plan.epsilons}
    for f, fold in enumerate(plan.folds):
        X_test, y_test = fold.test_arrays()
        fold_scores = _scores_for_fold(
            plan, X_test, y_test, solved.omega[f * E : (f + 1) * E]
        )
        for e, s in zip(plan.epsilons, fold_scores):
            scores[e].append(s)
    return scores, fit_seconds


def _run_ols_batched(plan: CellPlan) -> tuple[dict[float, list[float]], float]:
    """All NoPrivacy-linear cells as one stacked normal-equations solve."""
    started = time.perf_counter()
    d = plan.dim
    F = len(plan.folds)
    gram = np.empty((F, d, d))
    moment = np.empty((F, d))
    _validate_plan_inputs(plan, _validate_linear_xy)  # the per-cell input gate
    for f, fold in enumerate(plan.folds):
        design, target = fold.train_arrays()
        gram[f] = design.T @ design
        moment[f] = design.T @ target

    def lstsq_fallback(f: int) -> np.ndarray:
        design, target = plan.folds[f].train_arrays()
        weights, *_ = np.linalg.lstsq(design, target, rcond=None)
        return weights

    coefs = normal_equations_solve_stack(gram, moment, lstsq_fallback)
    fit_seconds = time.perf_counter() - started
    return _replicated_scores(plan, coefs), fit_seconds


def _run_truncated_batched(plan: CellPlan) -> tuple[dict[float, list[float]], float]:
    """All Truncated cells as one stacked closed-form solve."""
    started = time.perf_counter()
    objective = _objective_for_plan(plan)
    d = plan.dim
    F = len(plan.folds)
    M_stack = np.empty((F, d, d))
    alpha_stack = np.empty((F, d))
    _validate_plan_inputs(plan, objective.validate)  # Truncated.fit's gate
    for f, fold in enumerate(plan.folds):
        X_train, y_train = fold.train_arrays()
        form = objective.aggregate_quadratic(X_train, y_train)
        M_stack[f] = form.M
        alpha_stack[f] = form.alpha
    coefs = posdef_or_pinv_solve_stack(M_stack, alpha_stack)
    fit_seconds = time.perf_counter() - started
    return _replicated_scores(plan, coefs), fit_seconds


def _run_newton_batched(plan: CellPlan) -> tuple[dict[float, list[float]], float]:
    """All NoPrivacy-logistic cells through the masked batched Newton.

    Folds are grouped by training size (stacking needs a shared ``n``) and
    chunked to bound the stacked copy's memory; neither regrouping nor
    chunking changes any cell's arithmetic.
    """
    started = time.perf_counter()
    _validate_plan_inputs(plan, _validate_logistic_xy)  # label/shape gate
    coefs = np.empty((len(plan.folds), plan.dim))
    by_size: dict[int, list[int]] = {}
    for f, fold in enumerate(plan.folds):
        by_size.setdefault(fold.n_train, []).append(f)
    for n, fold_ids in by_size.items():
        chunk = max(1, _NEWTON_CHUNK_BYTES // max(1, n * plan.dim * 8))
        for start in range(0, len(fold_ids), chunk):
            batch = fold_ids[start : start + chunk]
            # Gather straight into the stack: np.take(..., out=) writes the
            # same rows a fancy-index copy would, without the intermediate.
            X_stack = np.empty((len(batch), n, plan.dim))
            y_stack = np.empty((len(batch), n))
            for j, f in enumerate(batch):
                fold = plan.folds[f]
                np.take(fold.X, fold.train_idx, axis=0, out=X_stack[j])
                np.take(fold.y, fold.train_idx, axis=0, out=y_stack[j])
            # LogisticRegressionModel's solver settings (not NewtonSolver's
            # bare defaults): 100 iterations at tolerance 1e-8.
            result = newton_logistic_stack(
                X_stack, y_stack, max_iterations=100, tolerance=1e-8
            )
            for j, f in enumerate(batch):
                coefs[f] = result.x[j]
    fit_seconds = time.perf_counter() - started
    return _replicated_scores(plan, coefs), fit_seconds


def _replicated_scores(plan: CellPlan, coefs: np.ndarray) -> dict[float, list[float]]:
    """Score epsilon-independent fits, replicating across the budget axis.

    Non-private cells draw no noise, so every epsilon cell of a fold scores
    identically; the per-cell path recomputes the identical arithmetic and
    the batched path reuses the float.
    """
    scores = {e: [] for e in plan.epsilons}
    for f, fold in enumerate(plan.folds):
        X_test, y_test = fold.test_arrays()
        fold_scores = _scores_for_fold(plan, X_test, y_test, coefs[f : f + 1])
        for e in plan.epsilons:
            scores[e].append(fold_scores[0])
    return scores


_BATCHED_KERNELS = {
    ("fm", KERNEL_QUADRATIC): _run_fm_batched,
    ("noprivacy", KERNEL_QUADRATIC): _run_ols_batched,
    ("truncated", KERNEL_QUADRATIC): _run_truncated_batched,
    ("noprivacy", KERNEL_NEWTON): _run_newton_batched,
}


def run_plan(
    plan: CellPlan,
    mode: str = "batched",
    executor: str | CellExecutor = "serial",
) -> PlanResult:
    """Execute every cell of a plan.

    Parameters
    ----------
    plan:
        The enumerated cells.
    mode:
        ``"batched"`` routes supported kernels through the stacked tensor
        path (generic plans still run per cell on the executor);
        ``"percell"`` forces the reference oracle for every cell.
    executor:
        Where per-cell work runs — ``"serial"``, ``"thread"``, ``"process"``
        or a constructed :class:`~repro.runtime.executor.CellExecutor`.
        Ignored by the batched kernels themselves (their parallelism lives
        inside BLAS/LAPACK).
    """
    resolved = get_executor(executor)
    if mode == "percell":
        return _run_percell(plan, resolved)
    if mode != "batched":
        raise ExperimentError(f"unknown runtime mode {mode!r}; use 'batched' or 'percell'")
    kernel = _BATCHED_KERNELS.get((plan.algorithm.lower(), plan.kernel))
    if kernel is None or plan.kernel == KERNEL_GENERIC:
        return _run_percell(plan, resolved)
    scores, kernel_fit_seconds = kernel(plan)
    # Attribute an equal share of the kernel's fit time (scoring excluded,
    # matching the per-cell path's fit-only clock) to every cell.
    share = kernel_fit_seconds / max(1, plan.n_cells)
    fit_seconds = {e: [share] * len(plan.folds) for e in plan.epsilons}
    return PlanResult(plan=plan, mode="batched", scores=scores, fit_seconds=fit_seconds)
