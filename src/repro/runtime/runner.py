"""Execute cell plans — batched, tiled, grouped, or per cell.

Two execution modes over the same cells:

``"percell"``
    The reference oracle.  Every cell constructs its algorithm through the
    registry, fits on its fold and scores the held-out split — a faithful
    transliteration of the historical harness loop, kept as the ground
    truth the batched path is asserted against.
``"batched"``
    Cells are grouped by kernel class and executed as stacked tensor
    solves: one fold-level statistics pass feeds all epsilon cells, all
    d x d solves of the plan go through one LAPACK invocation, and logistic
    cells iterate through the masked batched Newton.  Scores are **bitwise
    identical** to the per-cell mode (see :mod:`repro.runtime.kernels` for
    why); only the timing attribution differs — batched cells report an
    equal share of their kernel's fit time (aggregation + noise + solves,
    held-out scoring excluded, matching the per-cell fit-only clock)
    instead of an individual fit time.

Three plan shapes feed those modes:

* a :class:`~repro.runtime.plan.CellPlan` runs through :func:`run_plan`
  exactly as in the eager runtime;
* a :class:`~repro.runtime.plan.TiledPlan` materializes bounded repetition
  tiles on demand — each tile executes as its own stacked batch, and with a
  thread/process executor whole tiles are dispatched in parallel (the
  forked workers materialize their tiles from the copy-on-write-shared raw
  dataset, so the parent never holds more than its own tile).  Tile results
  reduce in tile order, which makes any tiling and any executor bitwise
  identical to the untiled serial run;
* :func:`run_plan_group` executes several algorithms' plans as one group:
  plans share a :class:`~repro.runtime.plan.PreparedDataCache`, and the
  quadratic-kernel plans' final closed-form solves are **merged into one
  stacked LAPACK call across algorithms** — bit-safe because the ``solve``
  gufunc factors each stacked matrix independently, so a cell's solution
  does not depend on which other cells share its batch.

Plans whose kernel class is ``generic`` (DPME, FP, ...) run per cell in
either mode, optionally spread over a :mod:`~repro.runtime.executor`
(serial / thread / process).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..baselines.base import make_algorithm
from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
    RegressionObjective,
)
from ..exceptions import ExecutorBrokenError, ExperimentError
from ..obs import active_recorder
from ..regression.linear import _validate_xy as _validate_linear_xy
from ..regression.logistic import _validate_xy as _validate_logistic_xy
from ..regression.logistic import sigmoid
from ..regression.metrics import mean_squared_error, misclassification_rate
from .backend import active_backend
from .executor import CellExecutor, SerialExecutor, ThreadExecutor, get_executor
from .kernels import (
    fm_noise_stack,
    newton_logistic_stack,
    posdef_split_stack,
    spectral_trim_stack,
)
from .plan import (
    KERNEL_GENERIC,
    KERNEL_NEWTON,
    KERNEL_QUADRATIC,
    CellPlan,
    TiledPlan,
)

__all__ = ["PlanResult", "run_plan", "run_plan_group"]

#: Upper bound on the bytes a single stacked Newton chunk may hold; chunking
#: only bounds memory — it cannot change any cell's arithmetic.
_NEWTON_CHUNK_BYTES = 1 << 28


@dataclass(frozen=True)
class PlanResult:
    """Per-cell scores and fit times of one plan execution.

    ``scores[epsilon]`` and ``fit_seconds[epsilon]`` list the plan's folds
    in order (for a tiled plan: protocol repetition order — tile reduction
    preserves it); aggregation into the harness's ``EvaluationResult``
    happens in :mod:`repro.experiments.harness` (which owns that type).
    """

    plan: "CellPlan | TiledPlan"
    mode: str
    scores: dict[float, list[float]]
    fit_seconds: dict[float, list[float]]
    last_n_train: int = field(default=-1)

    @property
    def n_train(self) -> int:
        """Training size of the last fold (the harness's reported value)."""
        return self.last_n_train if self.last_n_train >= 0 else self.plan.n_train


def _validate_plan_inputs(plan: CellPlan, validate) -> None:
    """Apply a per-cell input gate once per repetition instead of per cell.

    Folds of a repetition share its prepared arrays (by identity), and
    k-fold splitting puts every row into some training split, so validating
    the repetition's full ``(X, y)`` accepts/rejects exactly the datasets
    the per-cell gate would — at one O(n d) pass per repetition instead of
    one per cell.  (With a shared prepared-data cache, repetitions sharing
    one array validate once total — still the same accept/reject.)
    """
    seen: set[int] = set()
    for fold in plan.folds:
        if id(fold.X) in seen:
            continue
        seen.add(id(fold.X))
        validate(fold.X, fold.y)


def _objective_for_plan(plan: CellPlan) -> RegressionObjective:
    """The degree-2 objective an FM/Truncated cell of this plan builds."""
    kwargs = plan.algorithm_kwargs
    if plan.task == "linear":
        return LinearRegressionObjective(plan.dim)
    return LogisticRegressionObjective(
        plan.dim,
        approximation=kwargs.get("approximation", "taylor"),
        order=int(kwargs.get("order", 2)),
        radius=float(kwargs.get("radius", 1.0)),
    )


def _moment_signature(plan: CellPlan, kind: str) -> str:
    """Cache key naming one plan's fold-level aggregation."""
    if kind == "ols":
        return f"ols:{plan.dim}"
    if plan.task == "linear":
        return f"quad:linear:{plan.dim}"
    kwargs = plan.algorithm_kwargs
    return (
        f"quad:logistic:{kwargs.get('approximation', 'taylor')}:"
        f"{int(kwargs.get('order', 2))}:{float(kwargs.get('radius', 1.0))}:{plan.dim}"
    )


def _fold_quadratic_form(plan: CellPlan, objective: RegressionObjective, fold):
    """One fold's degree-2 aggregation, shared through the plan's cache."""

    def build():
        X_train, y_train = fold.train_arrays()
        return objective.aggregate_quadratic(X_train, y_train)

    if plan.cache is None:
        return build()
    return plan.cache.moment_blocks(
        fold.X, fold.y, fold.train_idx, _moment_signature(plan, "quad"), build
    )


def _fold_gram_moment(plan: CellPlan, fold) -> tuple[np.ndarray, np.ndarray]:
    """One fold's OLS normal-equations blocks, shared through the cache."""

    def build():
        design, target = fold.train_arrays()
        return design.T @ design, design.T @ target

    if plan.cache is None:
        return build()
    return plan.cache.moment_blocks(
        fold.X, fold.y, fold.train_idx, _moment_signature(plan, "ols"), build
    )


def _score_linear(y_test: np.ndarray, z: np.ndarray) -> float:
    """The linear metric from raw scores, as the per-cell models compute it."""
    return mean_squared_error(y_test, z)


def _score_logistic(y_test: np.ndarray, z: np.ndarray) -> float:
    """The logistic metric via the 0.5 sigmoid threshold (not ``z > 0``).

    The per-cell models predict ``sigmoid(z) > 0.5``; for subnormal
    positive ``z`` this differs from ``z > 0`` at the last bit, and the
    batched path mirrors the models exactly.
    """
    return misclassification_rate(y_test, (sigmoid(z) > 0.5).astype(float))


def _scores_for_fold(
    plan: CellPlan, X_test: np.ndarray, y_test: np.ndarray, omegas: np.ndarray
) -> list[float]:
    """Score one fold's E released parameters against its held-out split.

    The broadcastified matmul runs one GEMV per parameter on the shared
    test matrix — bitwise equal to the per-cell ``X_test @ omega``.
    """
    z = np.matmul(X_test[None, :, :], omegas[:, :, None])[:, :, 0]
    score = _score_linear if plan.task == "linear" else _score_logistic
    return [score(y_test, z[e]) for e in range(omegas.shape[0])]


def _mapped(executor: CellExecutor, work, items) -> list:
    """``executor.map`` with graceful process → thread → serial degradation.

    When a self-healing process executor exhausts its retries under
    ``failure_mode="fallback"``, the raised
    :class:`~repro.exceptions.ExecutorBrokenError` carries the completed
    prefix; only the pending items re-run, first on a thread pool, then
    — should that fail too — serially.  Every landing spot produces
    bitwise-identical results (cell substreams are keyed by
    ``(seed, tag)``, never by executor), so degradation changes where
    work runs, not what it computes.  ``failure_mode="raise"`` (the
    default) propagates instead.
    """
    items = list(items)
    try:
        return executor.map(work, items)
    except ExecutorBrokenError as err:
        if err.failure_mode != "fallback":
            raise
        recorder = active_recorder()
        results: list = [None] * len(items)
        for i, result in err.completed.items():
            results[i] = result
        pending = list(err.pending)
        for stage in (ThreadExecutor(), SerialExecutor()):
            recorder.counter("executor.fallbacks")
            with recorder.span(
                "executor.fallback", to=stage.name, pending=len(pending)
            ):
                try:
                    recovered = stage.map(work, [items[i] for i in pending])
                except Exception:
                    if stage.name == "serial":
                        raise  # serial is the floor: a failure here is real
                    continue
            for i, result in zip(pending, recovered):
                results[i] = result
            return results
        raise  # pragma: no cover - unreachable (serial returns or raises)


# ----------------------------------------------------------------------
# Reference oracle
# ----------------------------------------------------------------------
@dataclass
class _PercellFoldWork:
    """Fit/score one fold of the plan per call — the per-cell work unit.

    A module-level callable (not a closure) so persistent process pools
    can ship it by pickle; items are fold *indices*, which keeps the heavy
    plan pickled once per chunk rather than once per item.  The one-shot
    COW executors never pickle it at all.
    """

    plan: CellPlan

    def __call__(self, index: int) -> tuple[list[float], list[float]]:
        plan, fold = self.plan, self.plan.folds[index]
        recorder = active_recorder()  # looked up per call: never pickled
        gen = plan.substream(fold)
        X_train, y_train = fold.train_arrays()
        X_test, y_test = fold.test_arrays()
        cell_scores, cell_times = [], []
        for epsilon in plan.epsilons:
            model = make_algorithm(
                plan.algorithm,
                plan.task,
                epsilon=epsilon,
                rng=gen,
                **plan.algorithm_kwargs,
            )
            with recorder.span(
                "cell.fit", algorithm=plan.algorithm, epsilon=epsilon
            ) as span:
                model.fit(X_train, y_train)
            cell_times.append(span.seconds)
            cell_scores.append(model.score(X_test, y_test))
        return cell_scores, cell_times


def _run_percell(plan: CellPlan, executor: CellExecutor) -> PlanResult:
    """Fit and score every cell independently (the reference path).

    Each fold derives one generator, consumed sequentially across the
    epsilon axis — for a single-budget plan this is exactly the historical
    harness cell; for a multi-budget plan it matches the documented
    loop-equivalence of :meth:`repro.engine.EpsilonSweepEngine.sweep`.
    """
    outcomes = _mapped(executor, _PercellFoldWork(plan), range(len(plan.folds)))
    scores = {e: [] for e in plan.epsilons}
    fit_seconds = {e: [] for e in plan.epsilons}
    for cell_scores, cell_times in outcomes:
        for e, s, t in zip(plan.epsilons, cell_scores, cell_times):
            scores[e].append(s)
            fit_seconds[e].append(t)
    return PlanResult(plan=plan, mode="percell", scores=scores, fit_seconds=fit_seconds)


# ----------------------------------------------------------------------
# Quadratic kernels as mergeable solve requests
# ----------------------------------------------------------------------
#: (algorithm, kernel) -> quadratic request kind.
_QUAD_KINDS = {
    ("fm", KERNEL_QUADRATIC): "fm",
    ("noprivacy", KERNEL_QUADRATIC): "ols",
    ("truncated", KERNEL_QUADRATIC): "truncated",
}


@dataclass
class _QuadRequest:
    """One plan's quadratic cells, reduced to pending ``solve(A, b)`` rows.

    ``omega`` is the plan's full output buffer; cells resolved outside the
    closed-form solve (spectral-trimmed subspace preimages, pseudo-inverse
    fallbacks) are already written.  Rows listed in ``pending`` await
    ``np.linalg.solve(A, b)`` — either per plan or merged with other
    requests of the same dimension into one stacked LAPACK call, which is
    bitwise equivalent because the gufunc factors each matrix on its own.
    """

    plan: CellPlan
    kind: str
    omega: np.ndarray
    pending: np.ndarray
    A: np.ndarray
    b: np.ndarray
    prep_seconds: float = 0.0
    solve_seconds: float = 0.0


def _prepare_fm(plan: CellPlan) -> _QuadRequest:
    """All FM cells of one plan as a stacked perturb-repair request."""
    objective = _objective_for_plan(plan)
    sensitivity = objective.sensitivity(
        tight=bool(plan.algorithm_kwargs.get("tight_sensitivity", False))
    )
    ridge_lambda = float(plan.algorithm_kwargs.get("ridge_lambda", 0.0))
    d = plan.dim
    E = len(plan.epsilons)
    F = len(plan.folds)
    epsilons = np.asarray(plan.epsilons, dtype=float)
    scales = sensitivity / epsilons
    M_stack = np.empty((F * E, d, d))
    alpha_stack = np.empty((F * E, d))
    noise_std = np.empty(F * E)
    # The same domain gate the per-cell estimator applies: releasing FM
    # output on data violating the footnote-1 normalization would void the
    # sensitivity bound (checks only — no arithmetic, so bit-identity with
    # the per-cell path is unaffected).
    _validate_plan_inputs(plan, objective.validate)
    recorder = active_recorder()
    for f, fold in enumerate(plan.folds):
        form = _fold_quadratic_form(plan, objective, fold)
        raw = plan.substream(fold).laplace(0.0, 1.0, size=(E, 1 + d + d * d))
        recorder.counter("runner.laplace_draws", E * (1 + d + d * d))
        noisy_M, noisy_alpha = fm_noise_stack(form.M, form.alpha, raw, scales)
        if ridge_lambda:
            noisy_M = noisy_M + ridge_lambda * np.eye(d)
        M_stack[f * E : (f + 1) * E] = noisy_M
        alpha_stack[f * E : (f + 1) * E] = noisy_alpha
        noise_std[f * E : (f + 1) * E] = math.sqrt(2.0) * scales
    state = spectral_trim_stack(M_stack, alpha_stack, noise_std, compute_repaired=False)
    if recorder.recording:
        n_full = int(np.count_nonzero(state.full))
        recorder.counter("fm.cells_full", n_full)
        recorder.counter("fm.cells_trimmed", state.full.size - n_full)
    return _QuadRequest(
        plan=plan,
        kind="fm",
        omega=state.omega,
        pending=np.flatnonzero(state.full),
        A=2.0 * state.regularized[state.full],
        b=-alpha_stack[state.full],
    )


def _prepare_ols(plan: CellPlan) -> _QuadRequest:
    """All NoPrivacy-linear cells as a stacked normal-equations request."""
    d = plan.dim
    F = len(plan.folds)
    gram = np.empty((F, d, d))
    moment = np.empty((F, d))
    _validate_plan_inputs(plan, _validate_linear_xy)  # the per-cell input gate
    for f, fold in enumerate(plan.folds):
        gram[f], moment[f] = _fold_gram_moment(plan, fold)
    return _QuadRequest(
        plan=plan,
        kind="ols",
        omega=np.empty((F, d)),
        pending=np.arange(F),
        A=gram,
        b=moment,
    )


def _prepare_truncated(plan: CellPlan) -> _QuadRequest:
    """All Truncated cells as a stacked closed-form request."""
    objective = _objective_for_plan(plan)
    d = plan.dim
    F = len(plan.folds)
    M_stack = np.empty((F, d, d))
    alpha_stack = np.empty((F, d))
    _validate_plan_inputs(plan, objective.validate)  # Truncated.fit's gate
    for f, fold in enumerate(plan.folds):
        form = _fold_quadratic_form(plan, objective, fold)
        M_stack[f] = form.M
        alpha_stack[f] = form.alpha
    omega, posdef = posdef_split_stack(M_stack, alpha_stack)
    recorder = active_recorder()
    if recorder.recording:
        n_posdef = int(np.count_nonzero(posdef))
        recorder.counter("truncated.cells_posdef", n_posdef)
        recorder.counter("truncated.cells_pinv", posdef.size - n_posdef)
    return _QuadRequest(
        plan=plan,
        kind="truncated",
        omega=omega,
        pending=np.flatnonzero(posdef),
        A=2.0 * M_stack[posdef],
        b=-alpha_stack[posdef],
    )


_QUAD_PREPARERS = {"fm": _prepare_fm, "ols": _prepare_ols, "truncated": _prepare_truncated}


def _ols_lstsq(plan: CellPlan, f: int) -> np.ndarray:
    """The reference path's singular-Gram fallback for one OLS fold."""
    design, target = plan.folds[f].train_arrays()
    weights, *_ = np.linalg.lstsq(design, target, rcond=None)
    return weights


def _apply_ols_fallback(request: _QuadRequest) -> None:
    """Replace non-finite OLS solutions by the per-fold lstsq fallback."""
    failed = ~np.all(np.isfinite(request.omega), axis=1)
    for f in np.flatnonzero(failed):
        request.omega[f] = _ols_lstsq(request.plan, f)


def _solve_request_alone(request: _QuadRequest) -> None:
    """One request's pending solve with its kind's own failure semantics."""
    if request.pending.size == 0:
        return
    backend = active_backend()
    if request.kind == "ols":
        # Replicates the reference OLS behaviour: try the whole stack, and
        # on a singular cell retry cell by cell (bitwise identical for the
        # non-singular cells either way), lstsq fallback afterwards.
        F = request.pending.size
        try:
            request.omega[:] = backend.solve(request.A, request.b[..., None])[..., 0]
        except np.linalg.LinAlgError:
            for i in range(F):
                try:
                    request.omega[i] = backend.solve(request.A[i], request.b[i])
                except np.linalg.LinAlgError:
                    request.omega[i] = np.nan
        _apply_ols_fallback(request)
        return
    # fm / truncated pending cells are positive definite by construction
    # (eigenvalue-checked), so a LinAlgError here propagates exactly as the
    # per-plan stacked kernels would propagate it (every backend translates
    # its singular-system error to np.linalg.LinAlgError).
    request.omega[request.pending] = backend.solve(
        request.A, request.b[..., None]
    )[..., 0]


def _solve_requests(requests: Sequence[_QuadRequest]) -> None:
    """Solve all requests' pending systems, merged per dimension.

    Requests sharing a feature dimension concatenate their ``(A, b)``
    stacks into **one** ``np.linalg.solve`` call — one LAPACK invocation
    for the whole algorithm panel.  If any cell in a merged stack is
    singular the gufunc raises without saying which, so the group falls
    back to per-request solves, each with its own reference semantics
    (non-singular requests are bitwise unaffected by the retry).
    """
    recorder = active_recorder()
    by_dim: dict[int, list[_QuadRequest]] = {}
    for request in requests:
        if request.pending.size:
            by_dim.setdefault(request.omega.shape[1], []).append(request)
    for group in by_dim.values():
        if len(group) == 1:
            with recorder.span(
                "kernel.solve", cells=int(group[0].pending.size)
            ) as span:
                _solve_request_alone(group[0])
            group[0].solve_seconds = span.seconds
            continue
        total = sum(r.pending.size for r in group)
        with recorder.span("kernel.solve", cells=int(total), merged=len(group)) as span:
            A = np.concatenate([r.A for r in group])
            b = np.concatenate([r.b for r in group])
            try:
                solved = active_backend().solve(A, b[..., None])[..., 0]
            except np.linalg.LinAlgError:
                solved = None
        if solved is None:
            for request in group:
                with recorder.span(
                    "kernel.solve", cells=int(request.pending.size)
                ) as solo:
                    _solve_request_alone(request)
                request.solve_seconds = solo.seconds
            continue
        offset = 0
        merged_seconds = span.seconds
        for request in group:
            request.omega[request.pending] = solved[
                offset : offset + request.pending.size
            ]
            offset += request.pending.size
            if request.kind == "ols":
                _apply_ols_fallback(request)
            # Attribute the merged call proportionally to contributed rows.
            request.solve_seconds = merged_seconds * request.pending.size / total


def _finalize_quadratic(request: _QuadRequest) -> dict[float, list[float]]:
    """Held-out scoring of one solved request (excluded from fit timing)."""
    plan = request.plan
    if request.kind != "fm":
        return _replicated_scores(plan, request.omega)
    E = len(plan.epsilons)
    scores = {e: [] for e in plan.epsilons}
    for f, fold in enumerate(plan.folds):
        X_test, y_test = fold.test_arrays()
        fold_scores = _scores_for_fold(
            plan, X_test, y_test, request.omega[f * E : (f + 1) * E]
        )
        for e, s in zip(plan.epsilons, fold_scores):
            scores[e].append(s)
    return scores


def _run_quadratic_plans(plans: Sequence[CellPlan]) -> list[PlanResult]:
    """Execute several quadratic-kernel plans with one merged solve pass."""
    recorder = active_recorder()
    requests: list[_QuadRequest] = []
    for plan in plans:
        kind = _QUAD_KINDS[(plan.algorithm.lower(), plan.kernel)]
        with recorder.span(
            "kernel.prepare", algorithm=plan.algorithm, kind=kind
        ) as span:
            request = _QUAD_PREPARERS[kind](plan)
        request.prep_seconds = span.seconds
        requests.append(request)
    _solve_requests(requests)
    results = []
    for request in requests:
        plan = request.plan
        scores = _finalize_quadratic(request)
        # Attribute an equal share of the plan's kernel time (aggregation +
        # noise + its share of the merged solve; scoring excluded, matching
        # the per-cell path's fit-only clock) to every cell.
        share = (request.prep_seconds + request.solve_seconds) / max(1, plan.n_cells)
        fit_seconds = {e: [share] * len(plan.folds) for e in plan.epsilons}
        results.append(
            PlanResult(plan=plan, mode="batched", scores=scores, fit_seconds=fit_seconds)
        )
    return results


# ----------------------------------------------------------------------
# Masked batched Newton
# ----------------------------------------------------------------------
def _run_newton_batched(plan: CellPlan) -> tuple[dict[float, list[float]], float]:
    """All NoPrivacy-logistic cells through the masked batched Newton.

    Folds are grouped by training size (stacking needs a shared ``n``) and
    chunked to bound the stacked copy's memory; neither regrouping nor
    chunking changes any cell's arithmetic.
    """
    recorder = active_recorder()
    with recorder.span("kernel.newton", folds=len(plan.folds)) as span:
        _validate_plan_inputs(plan, _validate_logistic_xy)  # label/shape gate
        coefs = np.empty((len(plan.folds), plan.dim))
        by_size: dict[int, list[int]] = {}
        for f, fold in enumerate(plan.folds):
            by_size.setdefault(fold.n_train, []).append(f)
        for n, fold_ids in by_size.items():
            chunk = max(1, _NEWTON_CHUNK_BYTES // max(1, n * plan.dim * 8))
            for start in range(0, len(fold_ids), chunk):
                batch = fold_ids[start : start + chunk]
                # Gather straight into the stack: np.take(..., out=) writes the
                # same rows a fancy-index copy would, without the intermediate.
                X_stack = np.empty((len(batch), n, plan.dim))
                y_stack = np.empty((len(batch), n))
                for j, f in enumerate(batch):
                    fold = plan.folds[f]
                    np.take(fold.X, fold.train_idx, axis=0, out=X_stack[j])
                    np.take(fold.y, fold.train_idx, axis=0, out=y_stack[j])
                # LogisticRegressionModel's solver settings (not NewtonSolver's
                # bare defaults): 100 iterations at tolerance 1e-8.
                result = newton_logistic_stack(
                    X_stack, y_stack, max_iterations=100, tolerance=1e-8
                )
                if recorder.recording:
                    recorder.counter("newton.cells", len(batch))
                    recorder.counter("newton.iterations", int(np.sum(result.iterations)))
                    recorder.counter("newton.converged", int(np.sum(result.converged)))
                    recorder.counter("newton.compaction_chunks")
                for j, f in enumerate(batch):
                    coefs[f] = result.x[j]
    return _replicated_scores(plan, coefs), span.seconds


def _replicated_scores(plan: CellPlan, coefs: np.ndarray) -> dict[float, list[float]]:
    """Score epsilon-independent fits, replicating across the budget axis.

    Non-private cells draw no noise, so every epsilon cell of a fold scores
    identically; the per-cell path recomputes the identical arithmetic and
    the batched path reuses the float.
    """
    scores = {e: [] for e in plan.epsilons}
    for f, fold in enumerate(plan.folds):
        X_test, y_test = fold.test_arrays()
        fold_scores = _scores_for_fold(plan, X_test, y_test, coefs[f : f + 1])
        for e in plan.epsilons:
            scores[e].append(fold_scores[0])
    return scores


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _run_batched_single(plan: CellPlan, executor: CellExecutor) -> PlanResult:
    """Batched-mode dispatch for one eager plan."""
    key = (plan.algorithm.lower(), plan.kernel)
    if key in _QUAD_KINDS:
        return _run_quadratic_plans([plan])[0]
    if plan.kernel == KERNEL_NEWTON and key == ("noprivacy", KERNEL_NEWTON):
        scores, kernel_fit_seconds = _run_newton_batched(plan)
        share = kernel_fit_seconds / max(1, plan.n_cells)
        fit_seconds = {e: [share] * len(plan.folds) for e in plan.epsilons}
        return PlanResult(
            plan=plan, mode="batched", scores=scores, fit_seconds=fit_seconds
        )
    return _run_percell(plan, executor)


def run_plan(
    plan: CellPlan | TiledPlan,
    mode: str = "batched",
    executor: str | CellExecutor = "serial",
) -> PlanResult:
    """Execute every cell of a plan.

    Parameters
    ----------
    plan:
        The enumerated cells — an eager :class:`CellPlan` or a lazily
        materializing :class:`TiledPlan` (whose tiles are executed in
        index order, or dispatched whole across a thread/process executor;
        results are bitwise identical either way).
    mode:
        ``"batched"`` routes supported kernels through the stacked tensor
        path (generic plans still run per cell on the executor);
        ``"percell"`` forces the reference oracle for every cell.
    executor:
        Where parallel work runs — ``"serial"``, ``"thread"``, ``"process"``
        or a constructed :class:`~repro.runtime.executor.CellExecutor`.
        For an eager plan this spreads per-cell work (non-batchable
        baselines, or everything under ``"percell"``); for a tiled plan
        with more than one tile it dispatches whole tiles.
    """
    if isinstance(plan, TiledPlan):
        return run_plan_group([plan], mode=mode, executor=executor)[0]
    resolved = get_executor(executor)
    if mode not in ("batched", "percell"):
        raise ExperimentError(f"unknown runtime mode {mode!r}; use 'batched' or 'percell'")
    with active_recorder().span(
        "plan.run", mode=mode, algorithm=plan.algorithm, cells=plan.n_cells
    ):
        if mode == "percell":
            return _run_percell(plan, resolved)
        return _run_batched_single(plan, resolved)


def run_plan_group(
    plans: Sequence[CellPlan | TiledPlan],
    mode: str = "batched",
    executor: str | CellExecutor = "serial",
) -> list[PlanResult]:
    """Execute several algorithms' plans as one group, results in order.

    Grouping buys two things over looping :func:`run_plan`:

    * plans constructed over one shared
      :class:`~repro.runtime.plan.PreparedDataCache` reuse prepared arrays
      and fold-level moment blocks wherever their splits coincide, and
    * all quadratic-kernel plans' pending closed-form solves merge into one
      stacked LAPACK call per feature dimension (see
      :func:`_solve_requests`) — bitwise identical to solving each plan
      alone.

    Tiled plans must share their tiling (same repetitions and
    ``tile_size``); tile ``t`` of every plan executes together, and with a
    thread/process executor whole tiles run in parallel while results
    reduce in tile order, keeping output independent of scheduling.
    """
    plans = list(plans)
    if not plans:
        return []
    if mode not in ("batched", "percell"):
        raise ExperimentError(f"unknown runtime mode {mode!r}; use 'batched' or 'percell'")
    resolved = get_executor(executor)
    with active_recorder().span("plan.group", mode=mode, plans=len(plans)):
        if all(isinstance(p, CellPlan) for p in plans):
            return _run_group_eager(plans, mode, resolved)
        if all(isinstance(p, TiledPlan) for p in plans):
            return _run_group_tiled(plans, mode, resolved)
        raise ExperimentError("cannot mix eager CellPlans and TiledPlans in one group")


def _run_group_eager(
    plans: list[CellPlan], mode: str, executor: CellExecutor
) -> list[PlanResult]:
    """Group execution over fully materialized plans."""
    if mode == "percell":
        return [_run_percell(plan, executor) for plan in plans]
    if mode != "batched":
        raise ExperimentError(f"unknown runtime mode {mode!r}; use 'batched' or 'percell'")
    results: list[PlanResult | None] = [None] * len(plans)
    quad_indices = [
        i
        for i, plan in enumerate(plans)
        if (plan.algorithm.lower(), plan.kernel) in _QUAD_KINDS
    ]
    if quad_indices:
        merged = _run_quadratic_plans([plans[i] for i in quad_indices])
        for i, outcome in zip(quad_indices, merged):
            results[i] = outcome
    for i, plan in enumerate(plans):
        if results[i] is None:
            results[i] = _run_batched_single(plan, executor)
    return results  # type: ignore[return-value]


@dataclass
class _TileGroupWork:
    """Materialize and execute one tile of every plan in the group.

    Module-level and picklable (plans pickle their datasets; a carried
    ``PreparedDataCache`` pickles as a fresh one) so a persistent process
    pool can ship whole tiles; the one-shot fork executor keeps reaching
    it through copy-on-write without any pickling.  Only the lightweight
    score/time lists travel back either way.
    """

    plans: tuple[TiledPlan, ...]
    mode: str
    inner: CellExecutor

    def __call__(self, index: int) -> list[tuple[dict, dict, int]]:
        with active_recorder().span("plan.tile", tile=index):
            tile_plans = [plan.tile(index) for plan in self.plans]
            tile_results = _run_group_eager(tile_plans, self.mode, self.inner)
            return [
                (outcome.scores, outcome.fit_seconds, tile_plan.n_train)
                for outcome, tile_plan in zip(tile_results, tile_plans)
            ]


def _run_group_tiled(
    tiled: list[TiledPlan], mode: str, executor: CellExecutor
) -> list[PlanResult]:
    """Tile-by-tile group execution with deterministic tile-ordered reduction.

    Each tile materializes every plan's repetitions for that tile, executes
    them as an eager group (merged solves included) and returns only the
    lightweight score/time lists — the prepared arrays never leave the
    tile's scope (or, under the process executor, the forked worker).  With
    more than one tile, whole tiles dispatch across the executor: workers
    materialize their tiles from the copy-on-write-shared raw dataset, so
    peak resident memory is ``min(n_tiles, workers)`` tiles rather than the
    whole protocol.  With a single tile, the executor instead spreads
    per-cell work inside the tile, preserving the eager path's cell-level
    parallelism.
    """
    boundaries = {(plan.n_reps, plan.tile_size) for plan in tiled}
    if len(boundaries) > 1:
        raise ExperimentError(
            f"grouped tiled plans must share their tiling, got {sorted(boundaries)}"
        )
    n_tiles = tiled[0].n_tiles
    inner = executor if n_tiles == 1 else SerialExecutor()
    tile_outcomes = _mapped(
        executor, _TileGroupWork(tuple(tiled), mode, inner), list(range(n_tiles))
    )
    scores: list[dict[float, list[float]]] = [
        {e: [] for e in plan.epsilons} for plan in tiled
    ]
    fit_seconds: list[dict[float, list[float]]] = [
        {e: [] for e in plan.epsilons} for plan in tiled
    ]
    last_n_train = [0] * len(tiled)
    for tile_outcome in tile_outcomes:  # executor.map preserves tile order
        for j, (tile_scores, tile_times, n_train) in enumerate(tile_outcome):
            for e in tiled[j].epsilons:
                scores[j][e].extend(tile_scores[e])
                fit_seconds[j][e].extend(tile_times[e])
            last_n_train[j] = n_train
    return [
        PlanResult(
            plan=plan,
            mode=mode,
            scores=scores[j],
            fit_seconds=fit_seconds[j],
            last_n_train=last_n_train[j],
        )
        for j, plan in enumerate(tiled)
    ]
