"""Cell enumeration for the Section-7 repeated-CV protocol.

A *cell* is one (repetition, fold, epsilon) unit of the paper's evaluation:
train the algorithm on a fold's training split at one privacy budget and
score the held-out fold.  The per-cell harness loop materializes each cell
on demand; :func:`plan_cells` instead enumerates every cell **up front** into
a :class:`CellPlan`, recording for each fold

* the repetition-level prepared arrays (subsampled, normalized),
* the train/test index vectors, and
* the deterministic :func:`~repro.privacy.rng.derive_substream` tag that
  seeds the cell's noise stream.

Because the plan derives its repetition RNGs, subsampling draws and fold
permutations with exactly the calls (and call order) of the per-cell loop,
a plan executed cell-by-cell reproduces the historical harness bit for bit —
and the batched runtime (:mod:`repro.runtime.runner`) executes the *same*
plan through stacked LAPACK kernels, which is what makes the two paths
comparable at the bitwise level rather than just statistically.

Kernel classification
---------------------
Each plan is tagged with the kernel class that can execute its cells:

``KERNEL_QUADRATIC``
    One closed-form d x d solve per cell — FM (order-2, spectral repair),
    NoPrivacy linear (OLS normal equations), and Truncated.  Batchable as a
    stacked ``(B, d, d)`` Cholesky/eigendecomposition in one LAPACK call.
``KERNEL_NEWTON``
    Iterative logistic MLE (NoPrivacy logistic) — batchable via the masked
    Newton kernel that iterates every cell simultaneously.
``KERNEL_GENERIC``
    Everything else (DPME, FP, histogram variants, FM with rerun repair or
    higher-order approximations).  These run per cell on a pluggable
    executor (serial / thread / process) with shared read-only fold views.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..baselines.base import Task
from ..exceptions import ExperimentError
from ..privacy.rng import derive_substream
from ..regression.preprocessing import KFold

if TYPE_CHECKING:  # pragma: no cover - the config import is lazy at runtime
    # Importing repro.experiments here would close an import cycle
    # (experiments.harness itself imports this package), so the preset type
    # is only named for checkers and resolved lazily in plan_cells.
    from ..experiments.config import ScalePreset

__all__ = [
    "KERNEL_QUADRATIC",
    "KERNEL_NEWTON",
    "KERNEL_GENERIC",
    "algorithm_stream_key",
    "classify_kernel",
    "PlannedFold",
    "CellPlan",
    "plan_cells",
]

KERNEL_QUADRATIC = "quadratic"
KERNEL_NEWTON = "newton"
KERNEL_GENERIC = "generic"


def algorithm_stream_key(name: str) -> int:
    """Stable per-algorithm substream key.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), which would make
    "reproducible" results differ between runs; a truncated SHA-256 is
    deterministic everywhere.  The mapping is part of the reproducibility
    contract: renaming an algorithm reshuffles every noise stream keyed by
    it, so the values are pinned by tests.
    """
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")


#: FM constructor arguments the batched quadratic kernel understands, per
#: task (``approximation``/``order``/``radius`` exist only on the logistic
#: estimator).  Any other keyword (``fit_intercept``, ``order`` > 2, a
#: constructed strategy instance, ``budget`` ...) routes the plan to the
#: generic executor — where an argument the estimator rejects raises the
#: same ``TypeError`` the per-cell reference path would raise.
_FM_BATCHABLE_KWARGS = {
    "linear": {"tight_sensitivity", "post_processing", "ridge_lambda"},
    "logistic": {
        "tight_sensitivity",
        "post_processing",
        "ridge_lambda",
        "approximation",
        "order",
        "radius",
    },
}

_TRUNCATED_BATCHABLE_KWARGS = {"approximation", "radius"}


def classify_kernel(algorithm: str, task: Task, kwargs: Mapping) -> str:
    """Which runtime kernel can execute this algorithm's cells."""
    name = algorithm.lower()
    if name == "fm":
        if not set(kwargs) <= _FM_BATCHABLE_KWARGS.get(task, set()):
            return KERNEL_GENERIC
        if kwargs.get("post_processing", "spectral") != "spectral":
            return KERNEL_GENERIC
        if int(kwargs.get("order", 2)) != 2:
            return KERNEL_GENERIC
        return KERNEL_QUADRATIC
    if name == "noprivacy":
        if kwargs:
            return KERNEL_GENERIC
        return KERNEL_QUADRATIC if task == "linear" else KERNEL_NEWTON
    if name == "truncated":
        if not set(kwargs) <= _TRUNCATED_BATCHABLE_KWARGS:
            return KERNEL_GENERIC
        return KERNEL_QUADRATIC
    return KERNEL_GENERIC


@dataclass(frozen=True)
class PlannedFold:
    """One (repetition, fold) training/evaluation split of a plan.

    ``X`` and ``y`` are the repetition-level prepared arrays, shared (not
    copied) by all folds of the repetition; ``train_idx`` / ``test_idx``
    index into them.  ``stream_tag`` is the :func:`derive_substream` tag of
    the cell's noise stream — the generator itself is derived lazily so a
    plan can be executed (and re-executed) without mutating shared state.
    """

    rep: int
    fold: int
    X: np.ndarray
    y: np.ndarray
    train_idx: np.ndarray
    test_idx: np.ndarray
    stream_tag: tuple[int, ...]

    @property
    def n_train(self) -> int:
        """Training rows of this fold."""
        return int(self.train_idx.shape[0])

    def train_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(X_train, y_train)`` — a fresh fancy-index copy."""
        return self.X[self.train_idx], self.y[self.train_idx]

    def test_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(X_test, y_test)``."""
        return self.X[self.test_idx], self.y[self.test_idx]


@dataclass(frozen=True)
class CellPlan:
    """Every (rep, fold, epsilon) cell of one algorithm's protocol run.

    Cells are ordered fold-major: all epsilons of fold 0, then fold 1, ...
    matching the sequential substream consumption of the per-cell reference
    path (each fold derives one generator; its epsilon cells consume that
    stream in epsilon order, exactly like
    :meth:`repro.engine.EpsilonSweepEngine.sweep`).
    """

    algorithm: str
    task: Task
    dims: int
    dim: int
    epsilons: tuple[float, ...]
    preset: "ScalePreset"
    sampling_rate: float
    seed: int
    algorithm_kwargs: Mapping
    folds: tuple[PlannedFold, ...]
    kernel: str = field(default=KERNEL_GENERIC)

    @property
    def n_cells(self) -> int:
        """Total (rep, fold, epsilon) cells."""
        return len(self.folds) * len(self.epsilons)

    @property
    def n_train(self) -> int:
        """Training size of the last fold (the harness's reported value)."""
        return self.folds[-1].n_train if self.folds else 0

    def substream(self, fold: PlannedFold) -> np.random.Generator:
        """Derive the fold's noise generator (fresh on every call)."""
        return derive_substream(self.seed, list(fold.stream_tag))

    def iter_cells(self) -> Iterator[tuple[PlannedFold, float]]:
        """Iterate cells fold-major (the canonical execution order)."""
        for fold in self.folds:
            for epsilon in self.epsilons:
                yield fold, epsilon


def plan_cells(
    algorithm: str,
    dataset,
    task: Task,
    dims: int,
    epsilons: Sequence[float],
    preset: "ScalePreset | None" = None,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
) -> CellPlan:
    """Enumerate all protocol cells for one algorithm.

    Replicates the per-cell harness loop's randomness plumbing exactly —
    repetition subsample draw, optional Table-2 sampling draw, then the
    fold permutation, all from the repetition substream in that order — so
    executing the plan reproduces the loop bit for bit.

    Parameters mirror :func:`repro.experiments.harness.evaluate_algorithm`,
    except ``epsilons`` is a vector: a multi-budget plan shares each
    repetition's subsample and folds across budgets (the one-pass layout of
    :func:`~repro.experiments.harness.evaluate_fm_budget_sweep`), while a
    single-budget plan is exactly one harness sweep point.

    Memory: the plan materializes every repetition's prepared arrays up
    front and keeps them alive for its lifetime — at the shipped presets
    (<= 2 repetitions) tens of MB; at the paper's FULL protocol (50
    repetitions of 200k x 14) on the order of a GB.  A lazily
    materializing plan for FULL-scale runs is a known follow-up
    (ROADMAP).
    """
    if preset is None:
        from ..experiments.config import DEFAULT as preset_default

        preset = preset_default
    if not 0.0 < sampling_rate <= 1.0:
        raise ExperimentError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
    epsilon_values = tuple(float(e) for e in epsilons)
    if not epsilon_values:
        raise ExperimentError("epsilons must be non-empty")
    kwargs = dict(algorithm_kwargs or {})
    key = algorithm_stream_key(algorithm)
    base_n = preset.cardinality(dataset.n)
    folds: list[PlannedFold] = []
    dim = 0
    for rep in range(preset.repetitions):
        rep_rng = derive_substream(seed, [key, rep])
        working = dataset
        if base_n < dataset.n:
            working = working.take(rep_rng.choice(dataset.n, size=base_n, replace=False))
        if sampling_rate < 1.0:
            working = working.sample(sampling_rate, rng=rep_rng)
        prepared = working.regression_task(task, dims=dims)
        dim = prepared.dim
        splitter = KFold(n_splits=preset.folds, rng=rep_rng)
        for fold_id, (train_idx, test_idx) in enumerate(splitter.split(prepared.n)):
            folds.append(
                PlannedFold(
                    rep=rep,
                    fold=fold_id,
                    X=prepared.X,
                    y=prepared.y,
                    train_idx=train_idx,
                    test_idx=test_idx,
                    stream_tag=(key, rep, fold_id),
                )
            )
    return CellPlan(
        algorithm=algorithm,
        task=task,
        dims=int(dims),
        dim=dim,
        epsilons=epsilon_values,
        preset=preset,
        sampling_rate=float(sampling_rate),
        seed=int(seed),
        algorithm_kwargs=kwargs,
        folds=tuple(folds),
        kernel=classify_kernel(algorithm, task, kwargs),
    )
