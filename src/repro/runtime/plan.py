"""Cell enumeration for the Section-7 repeated-CV protocol.

A *cell* is one (repetition, fold, epsilon) unit of the paper's evaluation:
train the algorithm on a fold's training split at one privacy budget and
score the held-out fold.  The per-cell harness loop materializes each cell
on demand; this module offers two plan shapes over the same cells:

:class:`CellPlan` (via :func:`plan_cells`)
    Every cell enumerated **up front**, with all repetitions' prepared
    arrays resident.  Fastest to execute, but at the paper's FULL 50-rep
    protocol the resident arrays approach a gigabyte.
:class:`TiledPlan` (via :func:`plan_cells_tiled`)
    The same cells, materialized **lazily** in bounded *tiles* of at most
    ``tile_size`` repetitions: each tile is a :class:`CellPlan` covering a
    contiguous repetition range, built only when the runner asks for it.
    At ``tile_size=1`` this restores the historical one-repetition-at-a-time
    memory profile.  Because every repetition derives its RNG substream
    independently from ``(seed, [key, rep])`` — no repetition's draws depend
    on another's — a tile reproduces exactly the calls (and call order) the
    eager plan makes for those repetitions, so any tiling is bitwise
    identical to the untiled plan and to the per-cell reference loop.

Both planners record for each fold

* the repetition-level prepared arrays (subsampled, normalized),
* the train/test index vectors, and
* the deterministic :func:`~repro.privacy.rng.derive_substream` tag that
  seeds the cell's noise stream.

Because a plan derives its repetition RNGs, subsampling draws and fold
permutations with exactly the calls (and call order) of the per-cell loop,
a plan executed cell-by-cell reproduces the historical harness bit for bit —
and the batched runtime (:mod:`repro.runtime.runner`) executes the *same*
plan through stacked LAPACK kernels, which is what makes the two paths
comparable at the bitwise level rather than just statistically.

Prepared-data reuse
-------------------
A :class:`PreparedDataCache` can be shared by several plans (the harness's
``evaluate_algorithms`` shares one across every algorithm of a panel, and a
:class:`TiledPlan` shares one across its tiles).  It provides two reuses,
both bit-exact because they only share *identical* values:

* **prepared repetition arrays** — whenever a repetition's working dataset
  is the raw dataset itself (no preset subsample, sampling rate 1.0 — which
  is exactly the paper's FULL protocol), ``regression_task`` is a pure
  function of ``(dataset, task, dims)``, so one normalized array pair
  serves every repetition of every algorithm;
* **moment blocks** — the quadratic sufficient statistics
  (Gram/moment/objective coefficients) of a training split, keyed by the
  split's identity, shared across all epsilons and across any plans that
  aggregate the same split with the same objective.

Kernel classification
---------------------
Each plan is tagged with the kernel class that can execute its cells:

``KERNEL_QUADRATIC``
    One closed-form d x d solve per cell — FM (order-2, spectral repair),
    NoPrivacy linear (OLS normal equations), and Truncated.  Batchable as a
    stacked ``(B, d, d)`` Cholesky/eigendecomposition in one LAPACK call.
``KERNEL_NEWTON``
    Iterative logistic MLE (NoPrivacy logistic) — batchable via the masked
    Newton kernel that iterates every cell simultaneously.
``KERNEL_GENERIC``
    Everything else (DPME, FP, histogram variants, FM with rerun repair or
    higher-order approximations).  These run per cell on a pluggable
    executor (serial / thread / process) with shared read-only fold views.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..baselines.base import Task
from ..exceptions import ExperimentError
from ..obs import active_recorder
from ..privacy.rng import derive_substream
from ..regression.preprocessing import KFold
from .backend import canonical_array

if TYPE_CHECKING:  # pragma: no cover - the config import is lazy at runtime
    # Importing repro.experiments here would close an import cycle
    # (experiments.harness itself imports this package), so the preset type
    # is only named for checkers and resolved lazily in plan_cells.
    from ..experiments.config import ScalePreset

__all__ = [
    "KERNEL_QUADRATIC",
    "KERNEL_NEWTON",
    "KERNEL_GENERIC",
    "algorithm_stream_key",
    "classify_kernel",
    "PreparedDataCache",
    "PlannedFold",
    "CellPlan",
    "TiledPlan",
    "plan_cells",
    "plan_cells_tiled",
]

KERNEL_QUADRATIC = "quadratic"
KERNEL_NEWTON = "newton"
KERNEL_GENERIC = "generic"


def algorithm_stream_key(name: str) -> int:
    """Stable per-algorithm substream key.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), which would make
    "reproducible" results differ between runs; a truncated SHA-256 is
    deterministic everywhere.  The mapping is part of the reproducibility
    contract: renaming an algorithm reshuffles every noise stream keyed by
    it, so the values are pinned by tests.
    """
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")


#: FM constructor arguments the batched quadratic kernel understands, per
#: task (``approximation``/``order``/``radius`` exist only on the logistic
#: estimator).  Any other keyword (``fit_intercept``, ``order`` > 2, a
#: constructed strategy instance, ``budget`` ...) routes the plan to the
#: generic executor — where an argument the estimator rejects raises the
#: same ``TypeError`` the per-cell reference path would raise.
_FM_BATCHABLE_KWARGS = {
    "linear": {"tight_sensitivity", "post_processing", "ridge_lambda"},
    "logistic": {
        "tight_sensitivity",
        "post_processing",
        "ridge_lambda",
        "approximation",
        "order",
        "radius",
    },
}

_TRUNCATED_BATCHABLE_KWARGS = {"approximation", "radius"}


def classify_kernel(algorithm: str, task: Task, kwargs: Mapping) -> str:
    """Which runtime kernel can execute this algorithm's cells."""
    name = algorithm.lower()
    if name == "fm":
        if not set(kwargs) <= _FM_BATCHABLE_KWARGS.get(task, set()):
            return KERNEL_GENERIC
        if kwargs.get("post_processing", "spectral") != "spectral":
            return KERNEL_GENERIC
        if int(kwargs.get("order", 2)) != 2:
            return KERNEL_GENERIC
        return KERNEL_QUADRATIC
    if name == "noprivacy":
        if kwargs:
            return KERNEL_GENERIC
        return KERNEL_QUADRATIC if task == "linear" else KERNEL_NEWTON
    if name == "truncated":
        if not set(kwargs) <= _TRUNCATED_BATCHABLE_KWARGS:
            return KERNEL_GENERIC
        return KERNEL_QUADRATIC
    return KERNEL_GENERIC


# ----------------------------------------------------------------------
# Prepared-data reuse
# ----------------------------------------------------------------------
class PreparedDataCache:
    """Shares prepared arrays and moment blocks across plans, bit-exactly.

    Two independent caches live here:

    * ``task_arrays`` — the normalized ``regression_task`` output, keyed by
      ``(dataset identity, task, dims)``.  Only consulted when a
      repetition's working dataset *is* the raw dataset (no preset
      subsample, sampling rate 1.0), where preparation is a pure function
      of the key; every repetition of every algorithm then shares one
      array pair instead of each materializing its own copy.
    * ``moment_blocks`` — per-training-split sufficient statistics (the
      quadratic kernels' Gram/moment/objective blocks), keyed by the split
      arrays' identity, a digest of the index vector, and an
      objective/aggregation signature.  Values are cached through weak
      references to the split arrays, so the cache never extends a tile's
      lifetime — once a tile's arrays are dropped, its moment entries
      become reclaimable too.

    Sharing is safe for bit-identity because a hit returns the *identical*
    values the miss path would compute: the cache changes how often the
    arithmetic runs, never what it computes.
    """

    def __init__(self) -> None:
        # id-keyed entries carry a weakref to their source object; the
        # stored ref is checked against the live object so a recycled id
        # can never serve stale data.
        self._tasks: dict[tuple, tuple[weakref.ref, object]] = {}
        self._moments: dict[tuple, tuple[weakref.ref, weakref.ref, object]] = {}

    def __reduce__(self):
        # A cache's entries are keyed by object identity and held through
        # weak references — both meaningless in another process.  Work
        # shipped to a persistent process pool (PooledProcessExecutor)
        # pickles plans that carry a cache, so pickle one as a fresh empty
        # cache: the receiver rebuilds what it needs, and every rebuild
        # produces the identical values (the cache is pure optimization).
        return (type(self), ())

    def task_arrays(self, dataset, task: Task, dims: int):
        """The shared ``regression_task`` result for the identity case."""
        key = (id(dataset), task, int(dims))
        hit = self._tasks.get(key)
        if hit is not None:
            dataset_ref, prepared = hit
            if dataset_ref() is dataset:
                active_recorder().counter("prepared_cache.task_hits")
                return prepared
        active_recorder().counter("prepared_cache.task_misses")
        prepared = dataset.regression_task(task, dims=dims)
        self._tasks[key] = (weakref.ref(dataset), prepared)
        if len(self._tasks) % 64 == 0:
            self._prune()
        return prepared

    @staticmethod
    def split_digest(train_idx: np.ndarray) -> bytes:
        """A compact content key for one training-index vector."""
        return hashlib.sha256(np.ascontiguousarray(train_idx).tobytes()).digest()

    def moment_blocks(
        self,
        X: np.ndarray,
        y: np.ndarray,
        train_idx: np.ndarray,
        signature: str,
        build: Callable[[], object],
    ):
        """Build-or-reuse one training split's sufficient statistics.

        ``signature`` names the aggregation (objective class + parameters);
        ``build`` computes the blocks on a miss.  The returned object is
        shared by reference — callers must treat it as read-only.
        """
        key = (id(X), id(y), self.split_digest(train_idx), signature)
        hit = self._moments.get(key)
        if hit is not None:
            x_ref, y_ref, value = hit
            if x_ref() is X and y_ref() is y:
                active_recorder().counter("prepared_cache.moment_hits")
                return value
        active_recorder().counter("prepared_cache.moment_misses")
        value = build()
        self._moments[key] = (weakref.ref(X), weakref.ref(y), value)
        if len(self._moments) % 256 == 0:
            self._prune()
        return value

    def _prune(self) -> None:
        """Drop entries whose source objects have been garbage collected.

        Sweeps both maps: moment entries whose split arrays died, and task
        entries whose dataset died — the latter matters for a session-
        lifetime cache, where the prepared arrays of a transient dataset
        would otherwise stay strongly referenced forever.  Iterates over a
        snapshot and deletes with ``pop``: concurrent tile threads may
        insert into the cache mid-prune, and iterating the live dict would
        raise ``RuntimeError: dictionary changed size``.
        """
        for key, (x_ref, y_ref, _) in list(self._moments.items()):
            if x_ref() is None or y_ref() is None:
                self._moments.pop(key, None)
        for key, (dataset_ref, _) in list(self._tasks.items()):
            if dataset_ref() is None:
                self._tasks.pop(key, None)


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlannedFold:
    """One (repetition, fold) training/evaluation split of a plan.

    ``X`` and ``y`` are the repetition-level prepared arrays, shared (not
    copied) by all folds of the repetition; ``train_idx`` / ``test_idx``
    index into them.  ``stream_tag`` is the :func:`derive_substream` tag of
    the cell's noise stream — the generator itself is derived lazily so a
    plan can be executed (and re-executed) without mutating shared state.
    """

    rep: int
    fold: int
    X: np.ndarray
    y: np.ndarray
    train_idx: np.ndarray
    test_idx: np.ndarray
    stream_tag: tuple[int, ...]

    @property
    def n_train(self) -> int:
        """Training rows of this fold."""
        return int(self.train_idx.shape[0])

    def train_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(X_train, y_train)`` — a fresh fancy-index copy."""
        return self.X[self.train_idx], self.y[self.train_idx]

    def test_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(X_test, y_test)``."""
        return self.X[self.test_idx], self.y[self.test_idx]


@dataclass(frozen=True)
class CellPlan:
    """Every (rep, fold, epsilon) cell of one algorithm's protocol run.

    Cells are ordered fold-major: all epsilons of fold 0, then fold 1, ...
    matching the sequential substream consumption of the per-cell reference
    path (each fold derives one generator; its epsilon cells consume that
    stream in epsilon order, exactly like
    :meth:`repro.engine.EpsilonSweepEngine.sweep`).
    """

    algorithm: str
    task: Task
    dims: int
    dim: int
    epsilons: tuple[float, ...]
    preset: "ScalePreset"
    sampling_rate: float
    seed: int
    algorithm_kwargs: Mapping
    folds: tuple[PlannedFold, ...]
    kernel: str = field(default=KERNEL_GENERIC)
    stream_version: int = field(default=1)
    cache: "PreparedDataCache | None" = field(default=None, repr=False, compare=False)

    @property
    def n_cells(self) -> int:
        """Total (rep, fold, epsilon) cells."""
        return len(self.folds) * len(self.epsilons)

    @property
    def n_train(self) -> int:
        """Training size of the last fold (the harness's reported value)."""
        return self.folds[-1].n_train if self.folds else 0

    def substream(self, fold: PlannedFold) -> np.random.Generator:
        """Derive the fold's noise generator (fresh on every call)."""
        return derive_substream(
            self.seed, list(fold.stream_tag), stream_version=self.stream_version
        )

    def iter_cells(self) -> Iterator[tuple[PlannedFold, float]]:
        """Iterate cells fold-major (the canonical execution order)."""
        for fold in self.folds:
            for epsilon in self.epsilons:
                yield fold, epsilon


def _plan_one_rep(
    algorithm_key: int,
    dataset,
    task: Task,
    dims: int,
    preset: "ScalePreset",
    sampling_rate: float,
    seed: int,
    rep: int,
    stream_version: int,
    cache: PreparedDataCache | None,
) -> tuple[list[PlannedFold], int]:
    """Materialize one repetition's folds, replicating the loop's RNG order.

    The repetition substream is consumed exactly as the per-cell harness
    loop consumes it: the preset subsample draw, then the optional Table-2
    sampling draw, then the fold permutation.  When neither draw fires the
    working dataset *is* the raw dataset and the prepared arrays come from
    the shared cache (identical values, one materialization).
    """
    rep_rng = derive_substream(
        seed, [algorithm_key, rep], stream_version=stream_version
    )
    base_n = preset.cardinality(dataset.n)
    working = dataset
    identity = True
    if base_n < dataset.n:
        working = working.take(rep_rng.choice(dataset.n, size=base_n, replace=False))
        identity = False
    if sampling_rate < 1.0:
        working = working.sample(sampling_rate, rng=rep_rng)
        identity = False
    if identity and cache is not None:
        prepared = cache.task_arrays(dataset, task, dims)
    else:
        prepared = working.regression_task(task, dims=dims)
    # The plan boundary's dtype gate: prepared arrays become C-contiguous
    # float64 here (an identity pass for conforming data, so cache sharing
    # is untouched), guaranteeing every backend sees the same canonical
    # inputs and float32/strided sources can't leak precision downstream.
    X = canonical_array(prepared.X, "prepared X")
    y = canonical_array(prepared.y, "prepared y")
    splitter = KFold(n_splits=preset.folds, rng=rep_rng)
    folds = [
        PlannedFold(
            rep=rep,
            fold=fold_id,
            X=X,
            y=y,
            train_idx=train_idx,
            test_idx=test_idx,
            stream_tag=(algorithm_key, rep, fold_id),
        )
        for fold_id, (train_idx, test_idx) in enumerate(splitter.split(prepared.n))
    ]
    return folds, prepared.dim


def _validated_protocol(
    epsilons: Sequence[float],
    sampling_rate: float,
    preset: "ScalePreset | None",
    algorithm_kwargs: Mapping | None,
) -> tuple[tuple[float, ...], "ScalePreset", dict]:
    """Shared input validation for both plan shapes."""
    if preset is None:
        from ..experiments.config import DEFAULT as preset_default

        preset = preset_default
    if not 0.0 < sampling_rate <= 1.0:
        raise ExperimentError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
    epsilon_values = tuple(float(e) for e in epsilons)
    if not epsilon_values:
        raise ExperimentError("epsilons must be non-empty")
    return epsilon_values, preset, dict(algorithm_kwargs or {})


def plan_cells(
    algorithm: str,
    dataset,
    task: Task,
    dims: int,
    epsilons: Sequence[float],
    preset: "ScalePreset | None" = None,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
    stream_version: int = 1,
    prepared_cache: PreparedDataCache | None = None,
) -> CellPlan:
    """Enumerate all protocol cells for one algorithm, eagerly.

    Replicates the per-cell harness loop's randomness plumbing exactly —
    repetition subsample draw, optional Table-2 sampling draw, then the
    fold permutation, all from the repetition substream in that order — so
    executing the plan reproduces the loop bit for bit.

    Parameters mirror :func:`repro.experiments.harness.evaluate_algorithm`,
    except ``epsilons`` is a vector: a multi-budget plan shares each
    repetition's subsample and folds across budgets (the one-pass layout of
    :func:`~repro.experiments.harness.evaluate_fm_budget_sweep`), while a
    single-budget plan is exactly one harness sweep point.
    ``stream_version`` selects the :func:`derive_substream` format (the
    default, 1, is the historical derivation); ``prepared_cache`` opts into
    cross-plan prepared-data reuse.

    Memory: the plan materializes every repetition's prepared arrays up
    front and keeps them alive for its lifetime — at the shipped presets
    (<= 2 repetitions) tens of MB; at the paper's FULL protocol (50
    repetitions of 200k x 14) on the order of a GB unless a shared cache
    collapses the identity case.  :func:`plan_cells_tiled` bounds the
    resident set instead.
    """
    epsilon_values, preset, kwargs = _validated_protocol(
        epsilons, sampling_rate, preset, algorithm_kwargs
    )
    key = algorithm_stream_key(algorithm)
    folds: list[PlannedFold] = []
    dim = 0
    for rep in range(preset.repetitions):
        rep_folds, dim = _plan_one_rep(
            key, dataset, task, dims, preset, sampling_rate, seed, rep,
            stream_version, prepared_cache,
        )
        folds.extend(rep_folds)
    return CellPlan(
        algorithm=algorithm,
        task=task,
        dims=int(dims),
        dim=dim,
        epsilons=epsilon_values,
        preset=preset,
        sampling_rate=float(sampling_rate),
        seed=int(seed),
        algorithm_kwargs=kwargs,
        folds=tuple(folds),
        kernel=classify_kernel(algorithm, task, kwargs),
        stream_version=int(stream_version),
        cache=prepared_cache,
    )


@dataclass
class TiledPlan:
    """A lazily materializing plan over bounded repetition tiles.

    Tile ``t`` covers repetitions ``[t * tile_size, (t + 1) * tile_size)``
    and materializes, on demand, a :class:`CellPlan` holding only those
    repetitions' prepared arrays.  Executing tiles in index order and
    concatenating their per-fold score lists reproduces the eager plan's
    output exactly: repetition substreams are mutually independent
    (``derive_substream`` is keyed, not sequential) and fold order within a
    tile equals the eager plan's order for the same repetitions.

    A shared :class:`PreparedDataCache` (created automatically when none is
    passed) spans the tiles, so the identity case — the FULL protocol —
    prepares its arrays once for all tiles and algorithms.

    Instances are mutable only in their bookkeeping: ``tile`` records the
    last materialized tile's ``dim`` and final-fold training size so the
    runner can report them without keeping any tile alive.
    """

    algorithm: str
    dataset: object
    task: Task
    dims: int
    epsilons: tuple[float, ...]
    preset: "ScalePreset"
    sampling_rate: float
    seed: int
    algorithm_kwargs: Mapping
    kernel: str
    tile_size: int
    stream_version: int = 1
    cache: PreparedDataCache | None = None
    _last_dim: int = field(default=0, repr=False)
    _last_n_train: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ExperimentError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.cache is None:
            self.cache = PreparedDataCache()

    # ------------------------------------------------------------------
    @property
    def n_reps(self) -> int:
        """Total repetitions of the protocol."""
        return self.preset.repetitions

    @property
    def n_tiles(self) -> int:
        """Number of tiles covering all repetitions."""
        return -(-self.n_reps // self.tile_size)

    @property
    def n_cells(self) -> int:
        """Total (rep, fold, epsilon) cells across all tiles."""
        return self.n_reps * self.preset.folds * len(self.epsilons)

    @property
    def n_train(self) -> int:
        """Training size of the last materialized tile's final fold."""
        return self._last_n_train

    @property
    def dim(self) -> int:
        """Feature dimension, known once any tile has materialized."""
        return self._last_dim

    def tile_reps(self, index: int) -> range:
        """The repetition range of tile ``index``."""
        if not 0 <= index < self.n_tiles:
            raise ExperimentError(
                f"tile index {index} out of range [0, {self.n_tiles})"
            )
        start = index * self.tile_size
        return range(start, min(start + self.tile_size, self.n_reps))

    def tile(self, index: int) -> CellPlan:
        """Materialize tile ``index`` as a :class:`CellPlan`.

        The returned plan's folds carry their *protocol* repetition
        indices, so stream tags (and therefore every noise draw) are
        independent of the tiling.
        """
        key = algorithm_stream_key(self.algorithm)
        folds: list[PlannedFold] = []
        dim = 0
        for rep in self.tile_reps(index):
            rep_folds, dim = _plan_one_rep(
                key, self.dataset, self.task, self.dims, self.preset,
                self.sampling_rate, self.seed, rep, self.stream_version,
                self.cache,
            )
            folds.extend(rep_folds)
        self._last_dim = dim
        self._last_n_train = folds[-1].n_train if folds else 0
        return CellPlan(
            algorithm=self.algorithm,
            task=self.task,
            dims=int(self.dims),
            dim=dim,
            epsilons=self.epsilons,
            preset=self.preset,
            sampling_rate=self.sampling_rate,
            seed=self.seed,
            algorithm_kwargs=self.algorithm_kwargs,
            folds=tuple(folds),
            kernel=self.kernel,
            stream_version=self.stream_version,
            cache=self.cache,
        )

    def tiles(self) -> Iterator[CellPlan]:
        """Materialize tiles one at a time, in index order."""
        for index in range(self.n_tiles):
            yield self.tile(index)


def plan_cells_tiled(
    algorithm: str,
    dataset,
    task: Task,
    dims: int,
    epsilons: Sequence[float],
    preset: "ScalePreset | None" = None,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
    tile_size: int | None = None,
    stream_version: int = 1,
    prepared_cache: PreparedDataCache | None = None,
) -> TiledPlan:
    """Plan all protocol cells as a lazily materializing :class:`TiledPlan`.

    ``tile_size`` bounds how many repetitions' prepared arrays are resident
    at once (``None`` means all repetitions in one tile — the eager plan's
    working set, with lazy construction).  Any tiling executes to bitwise
    identical scores; the knob only trades peak memory against per-tile
    dispatch overhead.
    """
    epsilon_values, preset, kwargs = _validated_protocol(
        epsilons, sampling_rate, preset, algorithm_kwargs
    )
    if tile_size is None:
        tile_size = preset.repetitions
    return TiledPlan(
        algorithm=algorithm,
        dataset=dataset,
        task=task,
        dims=int(dims),
        epsilons=epsilon_values,
        preset=preset,
        sampling_rate=float(sampling_rate),
        seed=int(seed),
        algorithm_kwargs=kwargs,
        kernel=classify_kernel(algorithm, task, kwargs),
        tile_size=int(tile_size),
        stream_version=int(stream_version),
        cache=prepared_cache,
    )
