"""Pluggable executors for per-cell work and whole batched tiles.

DPME, FP and the other synthetic-data baselines cannot be expressed as
stacked tensor solves — each fit is its own pipeline of histogram building,
noisy sampling and iterative optimization.  The runtime therefore runs them
per cell through an executor.  Since the tiled runtime
(:class:`~repro.runtime.plan.TiledPlan`), the same executors also dispatch
**whole batched tiles**: the work item is then a tile index, the work
function materializes that tile's prepared arrays and runs its stacked
kernels, and only the lightweight per-cell score/time lists travel back.

``SerialExecutor``
    The reference: items run in submission order on the calling thread.
``ThreadExecutor``
    A thread pool.  NumPy releases the GIL inside BLAS/LAPACK and the
    random generators are derived per cell (never shared), so cells are
    data-race free and results are position-assigned — output order is
    deterministic regardless of completion order.
``ProcessExecutor``
    A ``fork``-context process pool sharing the parent's arrays read-only
    through copy-on-write memory: workers inherit the parent's address
    space, so neither the plan's fold views (per-cell dispatch) nor the
    raw dataset a tile materializes from (tile dispatch) are ever pickled
    or copied.  For tile dispatch this is what bounds the parent's peak
    memory: each forked worker materializes *its own* tile from the
    COW-shared dataset and returns only scores, so at most
    ``min(n_tiles, max_workers)`` tiles are resident machine-wide and the
    parent holds none.  On platforms without ``fork`` the executor
    degrades to serial execution.

Pooled (session-held) variants
------------------------------
``ThreadExecutor`` and ``ProcessExecutor`` build a fresh pool inside every
``map`` call — the right lifecycle for one-shot runs, and (for processes)
the prerequisite of the COW trick above, which can only share state that
existed *before* the fork.  A long-lived :class:`repro.session.Session`
instead wants one pool reused across many calls, so this module also ships

``PooledThreadExecutor``
    A lazily created, persistent thread pool, reused by every ``map``
    until :meth:`~PooledThreadExecutor.close`.
``PooledProcessExecutor``
    A lazily created, persistent ``fork``-context process pool.  Because
    its workers outlive any single call, work **cannot** reach them by
    fork-time inheritance — each ``map`` pickles the work callable (and
    its payload) instead.  The runner's work objects are picklable by
    design (module-level callables over picklable plans); the trade is
    per-call serialization instead of per-call pool spin-up, which wins
    whenever calls are frequent relative to their payload size (the
    serving workload Sessions exist for) and is measured by
    ``benchmarks/bench_harness_scaling.py``.

Both pooled executors are context managers and idempotently ``close()``-
able; a closed executor transparently re-creates its pool on next use.

Determinism contract: executors only change *where* an item runs.  Each
cell's RNG substream is derived from its (seed, tag) key, results are
assigned by input position (``map`` output order == input order, which is
what makes the runner's tile-ordered reduction deterministic), and pickled
numpy arrays round-trip bit-exactly, so scores are bitwise identical
across executors, worker counts, and pool lifecycles.

Telemetry (:mod:`repro.obs`): thread and serial execution records into the
session's recorder directly — it is thread-safe and shared by address
space.  Process workers cannot (they mutate a forked or pickled copy), so
when a recording recorder is active the process executors wrap the work in
:class:`_TelemetryWork`: each worker-side call runs under a fresh recorder
and ships ``(result, payload)`` home, and the parent merges the payloads
**in input order** — deterministic regardless of completion order, and
double-count-free because the wrapper swaps the worker's active recorder.
Merging happens outside the timed kernels and never touches results, so
the bitwise contract above is unaffected.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
import pickle
from typing import Callable, Sequence

from ..exceptions import ExperimentError
from ..obs import active_recorder, make_recorder, use_recorder

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PooledThreadExecutor",
    "PooledProcessExecutor",
    "get_executor",
]


class CellExecutor:
    """Interface: run ``work(item)`` for every item, results in input order."""

    name: str = "abstract"

    def map(self, work: Callable, items: Sequence) -> list:
        """Execute ``work`` over ``items``; result ``i`` is ``work(items[i])``."""
        raise NotImplementedError


class _TelemetryWork:
    """Process-worker shim: run one item under a fresh recorder, ship it home.

    Picklable (plain attributes over a picklable work callable), so it
    crosses into pooled workers by pickle and into forked workers by
    inheritance.  Each call returns ``(result, payload)``; the parent
    unwraps via :func:`_merge_worker_results`.  Installing a fresh
    recorder per call is what keeps worker activity out of the (forked
    copy of the) parent recorder — nothing is counted twice.
    """

    __slots__ = ("work", "mode")

    def __init__(self, work: Callable, mode: str) -> None:
        self.work = work
        self.mode = mode

    def __call__(self, item):
        recorder = make_recorder(self.mode)
        with use_recorder(recorder):
            result = self.work(item)
        return result, recorder.export()


def _merge_worker_results(wrapped_results: list, recorder) -> list:
    """Merge worker payloads into ``recorder`` (input order); unwrap results."""
    results = []
    for result, payload in wrapped_results:
        recorder.merge(payload)
        results.append(result)
    return results


class SerialExecutor(CellExecutor):
    """Run every item on the calling thread (the reference executor).

    For tile dispatch this is also the minimal-memory schedule: tiles
    materialize strictly one at a time.
    """

    name = "serial"

    def map(self, work: Callable, items: Sequence) -> list:
        return [work(item) for item in items]


class ThreadExecutor(CellExecutor):
    """Run items on a thread pool (BLAS releases the GIL).

    Tile dispatch note: concurrent tiles may consult a shared
    :class:`~repro.runtime.plan.PreparedDataCache`; its entries are
    idempotent (a racing rebuild stores the identical value), so the race
    is benign and scores stay deterministic.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(self.max_workers) as pool:
            return list(pool.map(work, items))


#: Work registered for copy-on-write sharing with forked workers, keyed by
#: a monotonically increasing token (never recycled, unlike ``id`` — two
#: overlapping maps can therefore never alias each other's work).
#: Populated by ProcessExecutor *before* the fork so the children inherit
#: the callable and its captured arrays without pickling them.
_SHARED_WORK: dict[int, tuple[Callable, Sequence]] = {}
_SHARED_TOKENS = itertools.count()


def _forked_cell(token_and_index: tuple[int, int]):
    token, index = token_and_index
    work, items = _SHARED_WORK[token]
    return work(items[index])


class ProcessExecutor(CellExecutor):
    """Run items on a forked process pool with shared read-only views.

    Only the ``(token, index)`` pairs and each item's **result** cross the
    process boundary; the work callable and anything it closes over (fold
    views, a :class:`~repro.runtime.plan.TiledPlan` and its dataset) stay
    in the parent's address space and reach workers via copy-on-write.
    Results must therefore be kept lightweight — the tiled runner returns
    score/time lists, never prepared arrays.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return SerialExecutor().map(work, items)
        recorder = active_recorder()
        if recorder.recording:
            work = _TelemetryWork(work, recorder.mode)
        token = next(_SHARED_TOKENS)
        _SHARED_WORK[token] = (work, items)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            ) as pool:
                results = list(
                    pool.map(_forked_cell, [(token, i) for i in range(len(items))])
                )
        finally:
            del _SHARED_WORK[token]
        if recorder.recording:
            results = _merge_worker_results(results, recorder)
        return results


class PooledThreadExecutor(CellExecutor):
    """A persistent thread pool reused across ``map`` calls.

    Functionally identical to :class:`ThreadExecutor` (threads share the
    parent's memory, so nothing about the work changes); the only
    difference is pool lifecycle — created lazily on first use, reused
    until :meth:`close`, re-created transparently after.
    """

    name = "pooled-thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    @property
    def pool(self):
        """The live pool, or ``None`` before first use / after close."""
        return self._pool

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(self.max_workers)
        return self._pool

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        had_pool = self._pool is not None
        pool = self._ensure_pool()
        recorder = active_recorder()
        recorder.counter("pool.reused" if had_pool else "pool.created")
        return list(pool.map(work, items))

    def close(self) -> None:
        """Shut the pool down; the next ``map`` builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "PooledThreadExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PooledProcessExecutor(CellExecutor):
    """A persistent ``fork``-context process pool reused across ``map`` calls.

    Work reaches the long-lived workers **by pickle** — the COW trick of
    :class:`ProcessExecutor` only shares state that existed before the
    fork, and a reusable pool forks once.  Work callables must therefore
    be picklable (the runner's are); chunking pickles each callable about
    ``max_workers`` times per call rather than once per item.  Results are
    still position-assigned (``map`` output order == input order), and
    numpy arrays survive pickling bit-exactly, so scores are bitwise
    identical to every other executor.

    On platforms without ``fork`` the executor degrades to serial
    execution, like its one-shot sibling.
    """

    name = "pooled-process"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    @property
    def pool(self):
        """The live pool, or ``None`` before first use / after close."""
        return self._pool

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._pool

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        had_pool = self._pool is not None
        try:
            pool = self._ensure_pool()
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return SerialExecutor().map(work, items)
        recorder = active_recorder()
        if recorder.recording:
            recorder.counter("pool.reused" if had_pool else "pool.created")
            work = _TelemetryWork(work, recorder.mode)
            nbytes = len(pickle.dumps(work))
            recorder.counter("process.pickled_bytes", nbytes)
            recorder.gauge("process.pickled_bytes_per_call", nbytes)
        chunksize = -(-len(items) // self.max_workers)
        try:
            results = list(pool.map(work, items, chunksize=chunksize))
        except concurrent.futures.process.BrokenProcessPool:
            # A dead worker poisons the whole persistent pool.  The call
            # still fails (like the one-shot executor's would), but drop
            # the carcass so the session's next call forks a fresh pool
            # instead of failing forever.
            self.close()
            raise
        if recorder.recording:
            results = _merge_worker_results(results, recorder)
        return results

    def close(self) -> None:
        """Shut the pool down; the next ``map`` builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "PooledProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(executor: str | CellExecutor) -> CellExecutor:
    """Resolve an executor by name (``serial|thread|process``) or pass through."""
    if isinstance(executor, CellExecutor):
        return executor
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None
