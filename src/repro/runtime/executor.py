"""Pluggable executors for per-cell work and whole batched tiles.

DPME, FP and the other synthetic-data baselines cannot be expressed as
stacked tensor solves — each fit is its own pipeline of histogram building,
noisy sampling and iterative optimization.  The runtime therefore runs them
per cell through an executor.  Since the tiled runtime
(:class:`~repro.runtime.plan.TiledPlan`), the same executors also dispatch
**whole batched tiles**: the work item is then a tile index, the work
function materializes that tile's prepared arrays and runs its stacked
kernels, and only the lightweight per-cell score/time lists travel back.

``SerialExecutor``
    The reference: items run in submission order on the calling thread.
``ThreadExecutor``
    A thread pool.  NumPy releases the GIL inside BLAS/LAPACK and the
    random generators are derived per cell (never shared), so cells are
    data-race free and results are position-assigned — output order is
    deterministic regardless of completion order.
``ProcessExecutor``
    A ``fork``-context process pool sharing the parent's arrays read-only
    through copy-on-write memory: workers inherit the parent's address
    space, so neither the plan's fold views (per-cell dispatch) nor the
    raw dataset a tile materializes from (tile dispatch) are ever pickled
    or copied.  For tile dispatch this is what bounds the parent's peak
    memory: each forked worker materializes *its own* tile from the
    COW-shared dataset and returns only scores, so at most
    ``min(n_tiles, max_workers)`` tiles are resident machine-wide and the
    parent holds none.  On platforms without ``fork`` the executor
    degrades to serial execution.

Pooled (session-held) variants
------------------------------
``ThreadExecutor`` and ``ProcessExecutor`` build a fresh pool inside every
``map`` call — the right lifecycle for one-shot runs, and (for processes)
the prerequisite of the COW trick above, which can only share state that
existed *before* the fork.  A long-lived :class:`repro.session.Session`
instead wants one pool reused across many calls, so this module also ships

``PooledThreadExecutor``
    A lazily created, persistent thread pool, reused by every ``map``
    until :meth:`~PooledThreadExecutor.close`.
``PooledProcessExecutor``
    A lazily created, persistent ``fork``-context process pool.  Because
    its workers outlive any single call, work **cannot** reach them by
    fork-time inheritance — each ``map`` pickles the work callable (and
    its payload) instead.  The runner's work objects are picklable by
    design (module-level callables over picklable plans); the trade is
    per-call serialization instead of per-call pool spin-up, which wins
    whenever calls are frequent relative to their payload size (the
    serving workload Sessions exist for) and is measured by
    ``benchmarks/bench_harness_scaling.py``.

Both pooled executors are context managers and idempotently ``close()``-
able; a closed executor transparently re-creates its pool on next use.

Determinism contract: executors only change *where* an item runs.  Each
cell's RNG substream is derived from its (seed, tag) key, results are
assigned by input position (``map`` output order == input order, which is
what makes the runner's tile-ordered reduction deterministic), and pickled
numpy arrays round-trip bit-exactly, so scores are bitwise identical
across executors, worker counts, and pool lifecycles.

Telemetry (:mod:`repro.obs`): thread and serial execution records into the
session's recorder directly — it is thread-safe and shared by address
space.  Process workers cannot (they mutate a forked or pickled copy), so
when a recording recorder is active the process executors wrap the work in
:class:`_TelemetryWork`: each worker-side call runs under a fresh recorder
and ships ``(result, payload)`` home, and the parent merges the payloads
**in input order** — deterministic regardless of completion order, and
double-count-free because the wrapper swaps the worker's active recorder.
Merging happens outside the timed kernels and never touches results, so
the bitwise contract above is unaffected.

Self-healing (:mod:`repro.faults`): both process executors run under a
:class:`~repro.faults.RetryPolicy`.  On the default fault-free path the
only change from the historical executors is that a
``BrokenProcessPool`` no longer kills the whole map: the completed
prefix is kept, the pool is rebuilt (bounded exponential backoff,
``max_retries`` rounds), and only the unfinished items re-run — which is
bitwise-safe because every cell's substream is keyed by ``(seed, tag)``,
never by where or when it executes.  When a fault injector is active or
a ``tile_timeout`` is set, maps route through a per-item submit path
that can additionally detect hung workers (kill + rebuild + retry) and
checksum-verify pickled result envelopes (corrupt payloads retry like
crashes).  Exhausted retries raise
:class:`~repro.exceptions.ExecutorBrokenError` carrying the completed
prefix, which the runner can turn into a thread/serial fallback.  Every
crash, timeout, rebuild, retry and corruption is counted on the active
recorder under ``executor.*``.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import itertools
import multiprocessing
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from ..exceptions import ExecutorBrokenError, ExperimentError
from ..faults import FaultInjector, FaultPlan, RetryPolicy, active_injector
from ..obs import active_recorder, make_recorder, use_recorder

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PooledThreadExecutor",
    "PooledProcessExecutor",
    "get_executor",
]


class CellExecutor:
    """Interface: run ``work(item)`` for every item, results in input order."""

    name: str = "abstract"

    def map(self, work: Callable, items: Sequence) -> list:
        """Execute ``work`` over ``items``; result ``i`` is ``work(items[i])``."""
        raise NotImplementedError


class _TelemetryWork:
    """Process-worker shim: run one item under a fresh recorder, ship it home.

    Picklable (plain attributes over a picklable work callable), so it
    crosses into pooled workers by pickle and into forked workers by
    inheritance.  Each call returns ``(result, payload)``; the parent
    unwraps via :func:`_merge_worker_results`.  Installing a fresh
    recorder per call is what keeps worker activity out of the (forked
    copy of the) parent recorder — nothing is counted twice.
    """

    __slots__ = ("work", "mode")

    def __init__(self, work: Callable, mode: str) -> None:
        self.work = work
        self.mode = mode

    def __call__(self, item):
        recorder = make_recorder(self.mode)
        with use_recorder(recorder):
            result = self.work(item)
        return result, recorder.export()


def _merge_worker_results(wrapped_results: list, recorder) -> list:
    """Merge worker payloads into ``recorder`` (input order); unwrap results."""
    results = []
    for result, payload in wrapped_results:
        recorder.merge(payload)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Fault-injection plumbing (worker side)
# ----------------------------------------------------------------------
#: Exit status of an injected worker crash — ``os._exit``, so no Python
#: cleanup runs: from the parent's view the child died mid-item, which is
#: exactly the failure a production pool worker exhibits under OOM kills.
_CRASH_EXIT = 43

#: Marker heading a checksummed result envelope (submit path under an
#: active injector); collision with real results is not a concern — no
#: work item returns a 3-tuple led by this string.
_SEALED = "__repro_sealed__"


class _CorruptPayloadError(Exception):
    """Parent-side: a result envelope failed its checksum (retryable)."""


def _seal(result, injector: FaultInjector, index: int, attempt: int):
    """Wrap a worker result in a checksummed envelope (maybe corrupting it)."""
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    if injector.decide("payload.corrupt", index, attempt):
        blob = injector.corrupt_bytes(blob, "payload.corrupt", index)
    return (_SEALED, digest, blob)


def _maybe_unseal(result):
    """Verify + unwrap an envelope; raw (non-enveloped) results pass through."""
    if isinstance(result, tuple) and len(result) == 3 and result[0] == _SEALED:
        _, digest, blob = result
        if hashlib.sha256(blob).hexdigest() != digest:
            raise _CorruptPayloadError
        return pickle.loads(blob)
    return result


def _apply_faults(work: Callable, item, injector: FaultInjector, index: int, attempt: int):
    """Run one item under the executor fault sites (worker side)."""
    if injector.decide("worker.crash", index, attempt):
        os._exit(_CRASH_EXIT)
    if injector.decide("tile.hang", index, attempt):
        time.sleep(injector.plan.hang_seconds)
    return _seal(work(item), injector, index, attempt)


#: Injectors rebuilt from plan text inside pooled workers, cached by text
#: (decisions are stateless, so sharing one per plan is safe).
_INJECTOR_CACHE: dict[str, FaultInjector] = {}


def _injector_for(plan_text: str) -> FaultInjector:
    injector = _INJECTOR_CACHE.get(plan_text)
    if injector is None:
        injector = _INJECTOR_CACHE[plan_text] = FaultInjector(FaultPlan.parse(plan_text))
    return injector


def _pooled_cell_faulted(work: Callable, plan_text: str, item, index: int, attempt: int):
    """Submit-path work unit for pickled-work pools: faults around one item."""
    injector = _injector_for(plan_text)
    if not injector.executor_faults_active:
        return work(item)
    return _apply_faults(work, item, injector, index, attempt)


def _terminate_workers(pool) -> None:
    """Kill a pool's worker processes (a hung worker cannot be joined).

    ``_processes`` is private to ``ProcessPoolExecutor`` but has been its
    worker registry since 3.2; guarded access keeps this a no-op if the
    attribute ever moves (the subsequent unwaited shutdown still abandons
    the pool).
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        if process.is_alive():
            process.terminate()


def _resilient_collect(
    n_items: int,
    ensure_pool: Callable,
    discard_pool: Callable,
    submit: Callable,
    retry: RetryPolicy,
    recorder,
) -> list:
    """The per-item submit loop both process executors recover through.

    Each round submits every unfinished item (with its attempt count) and
    collects results in input order.  Crashes (``BrokenProcessPool``),
    hangs (``tile_timeout`` exceeded) and corrupt result envelopes mark
    their items failed and — for the first two — condemn the pool, which
    ``discard_pool`` tears down (killing workers when one is hung) so the
    next round starts on a fresh fork.  Genuine exceptions raised *by the
    work* propagate immediately: a deterministic bug would fail every
    retry identically, and masking it as an executor failure would turn
    a wrong answer into a slow wrong answer.

    ``retry.max_retries`` bounds consecutive rounds that complete zero
    items; a round with any progress keeps the loop alive, so a pool
    that crashes repeatedly while still advancing is drained rather than
    abandoned.  Exhaustion raises
    :class:`~repro.exceptions.ExecutorBrokenError` with the completed
    prefix and pending positions, letting callers resume elsewhere.
    """
    results: list = [None] * n_items
    done = [False] * n_items
    attempts = [0] * n_items
    wasted_rounds = 0
    while not all(done):
        pending = [i for i in range(n_items) if not done[i]]
        pool = ensure_pool()
        futures: dict = {}
        broke = False
        try:
            for i in pending:
                futures[i] = submit(pool, i, attempts[i])
        except BrokenProcessPool:
            # A fast crash can poison the pool while this round is still
            # being submitted, making submit() itself raise.  Items that
            # never got a future fail the round; the submitted ones are
            # harvested below like any other broken-pool round.
            recorder.counter("executor.worker_crashes")
            broke = True
        completed_this_round = 0
        failed: list[int] = [i for i in pending if i not in futures]
        hung = False
        for i in pending:
            future = futures.get(i)
            if future is None:
                continue
            if broke:
                # The pool is condemned; harvest items that finished
                # before the break without blocking on the rest.
                if not future.done():
                    failed.append(i)
                    continue
            try:
                timeout = None if broke else retry.tile_timeout
                results[i] = _maybe_unseal(future.result(timeout=timeout))
                done[i] = True
                completed_this_round += 1
            except concurrent.futures.TimeoutError:
                recorder.counter("executor.timeouts")
                failed.append(i)
                hung = True
            except _CorruptPayloadError:
                recorder.counter("executor.payload_corruptions")
                failed.append(i)
            except BrokenProcessPool:
                recorder.counter("executor.worker_crashes")
                failed.append(i)
                broke = True
        if broke or hung:
            discard_pool(kill=hung)
            recorder.counter("executor.pool_rebuilds")
        if not failed:
            continue
        for i in failed:
            attempts[i] += 1
        if completed_this_round == 0:
            wasted_rounds += 1
            if wasted_rounds > retry.max_retries:
                raise ExecutorBrokenError(
                    "hung worker" if hung else "worker crash or corrupt result",
                    completed={i: results[i] for i in range(n_items) if done[i]},
                    pending=tuple(i for i in range(n_items) if not done[i]),
                    failure_mode=retry.failure_mode,
                )
        recorder.counter("executor.retries", len(failed))
        with recorder.span("executor.retry", pending=len(failed)):
            time.sleep(retry.delay(max(0, wasted_rounds - 1)))
    return results


class SerialExecutor(CellExecutor):
    """Run every item on the calling thread (the reference executor).

    For tile dispatch this is also the minimal-memory schedule: tiles
    materialize strictly one at a time.
    """

    name = "serial"

    def map(self, work: Callable, items: Sequence) -> list:
        return [work(item) for item in items]


class ThreadExecutor(CellExecutor):
    """Run items on a thread pool (BLAS releases the GIL).

    Tile dispatch note: concurrent tiles may consult a shared
    :class:`~repro.runtime.plan.PreparedDataCache`; its entries are
    idempotent (a racing rebuild stores the identical value), so the race
    is benign and scores stay deterministic.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(self.max_workers) as pool:
            return list(pool.map(work, items))


#: Work registered for copy-on-write sharing with forked workers, keyed by
#: a monotonically increasing token (never recycled, unlike ``id`` — two
#: overlapping maps can therefore never alias each other's work).
#: Populated by ProcessExecutor *before* the fork so the children inherit
#: the callable and its captured arrays without pickling them.
_SHARED_WORK: dict[int, tuple[Callable, Sequence]] = {}
_SHARED_TOKENS = itertools.count()


def _forked_cell(token_and_index: tuple[int, int]):
    token, index = token_and_index
    work, items = _SHARED_WORK[token]
    return work(items[index])


def _forked_cell_faulted(payload: tuple[int, int, int]):
    """Submit-path work unit for forked pools: faults around one item.

    The injector reaches the child by fork-time inheritance of the
    active-injector slot (pools are built inside the session's
    ``use_injector`` scope), so only ``(token, index, attempt)`` crosses
    the process boundary — the COW contract is unchanged.
    """
    token, index, attempt = payload
    work, items = _SHARED_WORK[token]
    injector = active_injector()
    if not injector.executor_faults_active:
        return work(items[index])
    return _apply_faults(work, items[index], injector, index, attempt)


class ProcessExecutor(CellExecutor):
    """Run items on a forked process pool with shared read-only views.

    Only the ``(token, index)`` pairs and each item's **result** cross the
    process boundary; the work callable and anything it closes over (fold
    views, a :class:`~repro.runtime.plan.TiledPlan` and its dataset) stay
    in the parent's address space and reach workers via copy-on-write.
    Results must therefore be kept lightweight — the tiled runner returns
    score/time lists, never prepared arrays.

    Self-healing: a ``BrokenProcessPool`` keeps the completed prefix,
    rebuilds the pool and re-runs only unfinished items, bounded by
    ``retry.max_retries`` (0 restores fail-fast).  With an active fault
    injector or a ``tile_timeout``, items run through the per-item
    submit path (hang detection + envelope checksums) instead of the
    chunk-free fast path.
    """

    name = "process"

    def __init__(
        self, max_workers: int | None = None, retry: RetryPolicy | None = None
    ) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.retry = retry if retry is not None else RetryPolicy()

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return SerialExecutor().map(work, items)
        recorder = active_recorder()
        if recorder.recording:
            work = _TelemetryWork(work, recorder.mode)
        injector = active_injector()
        token = next(_SHARED_TOKENS)
        # The token must stay registered until every retry round is done
        # (rebuilt pools fork afresh and re-inherit the registry), and must
        # be released no matter how the map ends — including a work item
        # raising — or the registry grows once per failed map.
        _SHARED_WORK[token] = (work, items)
        try:
            if injector.executor_faults_active or self.retry.tile_timeout is not None:
                results = self._map_submit(context, token, len(items), recorder)
            else:
                results = self._map_fast(context, token, len(items), recorder)
        finally:
            del _SHARED_WORK[token]
        if recorder.recording:
            results = _merge_worker_results(results, recorder)
        return results

    def _map_fast(self, context, token: int, n_items: int, recorder) -> list:
        """The fault-free path: plain ``pool.map`` plus rebuild-and-resume."""
        results: list = [None] * n_items
        start = 0
        rebuilds = 0
        while start < n_items:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
            yielded = 0
            clean = False
            try:
                payloads = [(token, i) for i in range(start, n_items)]
                for result in pool.map(_forked_cell, payloads):
                    results[start + yielded] = result
                    yielded += 1
                clean = True
                start = n_items
            except BrokenProcessPool:
                # Results stream in input order, so the yielded prefix is
                # complete; everything after re-runs on a fresh pool
                # (bitwise-safe: substreams are keyed, not positional).
                start += yielded
                recorder.counter("executor.worker_crashes")
                recorder.counter("executor.pool_rebuilds")
                if rebuilds >= self.retry.max_retries:
                    raise ExecutorBrokenError(
                        "process pool broke",
                        completed={i: results[i] for i in range(start)},
                        pending=tuple(range(start, n_items)),
                        failure_mode=self.retry.failure_mode,
                    ) from None
                recorder.counter("executor.retries")
                with recorder.span("executor.retry", pending=n_items - start):
                    time.sleep(self.retry.delay(rebuilds))
                rebuilds += 1
            finally:
                pool.shutdown(wait=clean, cancel_futures=not clean)
        return results

    def _map_submit(self, context, token: int, n_items: int, recorder) -> list:
        """The chaos path: per-item futures with timeout + envelope checks."""
        live: dict = {"pool": None}

        def ensure_pool():
            if live["pool"] is None:
                live["pool"] = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=context
                )
            return live["pool"]

        def discard_pool(kill: bool) -> None:
            pool, live["pool"] = live["pool"], None
            if pool is None:
                return
            if kill:
                _terminate_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)

        def submit(pool, index: int, attempt: int):
            return pool.submit(_forked_cell_faulted, (token, index, attempt))

        try:
            return _resilient_collect(
                n_items, ensure_pool, discard_pool, submit, self.retry, recorder
            )
        finally:
            discard_pool(kill=False)


class PooledThreadExecutor(CellExecutor):
    """A persistent thread pool reused across ``map`` calls.

    Functionally identical to :class:`ThreadExecutor` (threads share the
    parent's memory, so nothing about the work changes); the only
    difference is pool lifecycle — created lazily on first use, reused
    until :meth:`close`, re-created transparently after.
    """

    name = "pooled-thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    @property
    def pool(self):
        """The live pool, or ``None`` before first use / after close."""
        return self._pool

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(self.max_workers)
        return self._pool

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        had_pool = self._pool is not None
        pool = self._ensure_pool()
        recorder = active_recorder()
        recorder.counter("pool.reused" if had_pool else "pool.created")
        return list(pool.map(work, items))

    def close(self) -> None:
        """Shut the pool down; the next ``map`` builds a fresh one.

        The pool reference is dropped *before* shutdown, so a failure
        mid-teardown can never leave a half-dead pool attached to the
        executor — the worst case is unreaped threads, never a reused
        broken pool.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown()
        except Exception:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "PooledThreadExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PooledProcessExecutor(CellExecutor):
    """A persistent ``fork``-context process pool reused across ``map`` calls.

    Work reaches the long-lived workers **by pickle** — the COW trick of
    :class:`ProcessExecutor` only shares state that existed before the
    fork, and a reusable pool forks once.  Work callables must therefore
    be picklable (the runner's are); chunking pickles each callable about
    ``max_workers`` times per call rather than once per item.  Results are
    still position-assigned (``map`` output order == input order), and
    numpy arrays survive pickling bit-exactly, so scores are bitwise
    identical to every other executor.

    On platforms without ``fork`` the executor degrades to serial
    execution, like its one-shot sibling.

    Self-healing mirrors :class:`ProcessExecutor`: a dead worker no
    longer poisons the call — the carcass is dropped, a fresh pool forks,
    and only unfinished items re-run (bounded by ``retry.max_retries``;
    0 restores the historical drop-and-raise).  Chaos and timeout maps
    route through the per-item submit path, where work reaches workers
    as pickled ``(work, plan_text, item, index, attempt)`` submissions
    and results come home in checksummed envelopes.
    """

    name = "pooled-process"

    def __init__(
        self, max_workers: int | None = None, retry: RetryPolicy | None = None
    ) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.retry = retry if retry is not None else RetryPolicy()
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    @property
    def pool(self):
        """The live pool, or ``None`` before first use / after close."""
        return self._pool

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._pool

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        had_pool = self._pool is not None
        try:
            self._ensure_pool()
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return SerialExecutor().map(work, items)
        recorder = active_recorder()
        if recorder.recording:
            recorder.counter("pool.reused" if had_pool else "pool.created")
            work = _TelemetryWork(work, recorder.mode)
            nbytes = len(pickle.dumps(work))
            recorder.counter("process.pickled_bytes", nbytes)
            recorder.gauge("process.pickled_bytes_per_call", nbytes)
        injector = active_injector()
        if injector.executor_faults_active or self.retry.tile_timeout is not None:
            results = self._map_submit(work, items, injector, recorder)
        else:
            results = self._map_fast(work, items, recorder)
        if recorder.recording:
            results = _merge_worker_results(results, recorder)
        return results

    def _map_fast(self, work: Callable, items: Sequence, recorder) -> list:
        """The fault-free path: chunked ``pool.map`` plus rebuild-and-resume."""
        n_items = len(items)
        results: list = [None] * n_items
        start = 0
        rebuilds = 0
        while start < n_items:
            pool = self._ensure_pool()
            chunksize = -(-(n_items - start) // self.max_workers)
            yielded = 0
            try:
                for result in pool.map(work, items[start:], chunksize=chunksize):
                    results[start + yielded] = result
                    yielded += 1
                start = n_items
            except BrokenProcessPool:
                # A dead worker poisons the whole persistent pool.  Keep
                # the in-order completed prefix, drop the carcass, fork a
                # fresh pool and resume from the first unfinished item.
                start += yielded
                self.close()
                recorder.counter("executor.worker_crashes")
                recorder.counter("executor.pool_rebuilds")
                if rebuilds >= self.retry.max_retries:
                    raise ExecutorBrokenError(
                        "persistent process pool broke",
                        completed={i: results[i] for i in range(start)},
                        pending=tuple(range(start, n_items)),
                        failure_mode=self.retry.failure_mode,
                    ) from None
                recorder.counter("executor.retries")
                with recorder.span("executor.retry", pending=n_items - start):
                    time.sleep(self.retry.delay(rebuilds))
                rebuilds += 1
        return results

    def _map_submit(
        self, work: Callable, items: Sequence, injector: FaultInjector, recorder
    ) -> list:
        """The chaos path: per-item pickled submissions with fault hooks."""
        plan_text = injector.describe()

        def ensure_pool():
            return self._ensure_pool()

        def discard_pool(kill: bool) -> None:
            pool, self._pool = self._pool, None
            if pool is None:
                return
            if kill:
                _terminate_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)

        def submit(pool, index: int, attempt: int):
            return pool.submit(
                _pooled_cell_faulted, work, plan_text, items[index], index, attempt
            )

        return _resilient_collect(
            len(items), ensure_pool, discard_pool, submit, self.retry, recorder
        )

    def close(self) -> None:
        """Shut the pool down; the next ``map`` builds a fresh one.

        Defensive against a *broken* pool (the state a long-lived session
        closes from after :class:`~repro.exceptions.ExecutorBrokenError`):
        the reference is dropped before shutdown so failure mid-teardown
        cannot leave a half-dead pool attached, and if shutdown raises,
        surviving workers are terminated outright rather than leaked.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown()
        except Exception:
            _terminate_workers(pool)
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown must not raise
                pass

    def __enter__(self) -> "PooledProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(executor: str | CellExecutor) -> CellExecutor:
    """Resolve an executor by name (``serial|thread|process``) or pass through."""
    if isinstance(executor, CellExecutor):
        return executor
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None
