"""Pluggable executors for per-cell work and whole batched tiles.

DPME, FP and the other synthetic-data baselines cannot be expressed as
stacked tensor solves — each fit is its own pipeline of histogram building,
noisy sampling and iterative optimization.  The runtime therefore runs them
per cell through an executor.  Since the tiled runtime
(:class:`~repro.runtime.plan.TiledPlan`), the same executors also dispatch
**whole batched tiles**: the work item is then a tile index, the work
function materializes that tile's prepared arrays and runs its stacked
kernels, and only the lightweight per-cell score/time lists travel back.

``SerialExecutor``
    The reference: items run in submission order on the calling thread.
``ThreadExecutor``
    A thread pool.  NumPy releases the GIL inside BLAS/LAPACK and the
    random generators are derived per cell (never shared), so cells are
    data-race free and results are position-assigned — output order is
    deterministic regardless of completion order.
``ProcessExecutor``
    A ``fork``-context process pool sharing the parent's arrays read-only
    through copy-on-write memory: workers inherit the parent's address
    space, so neither the plan's fold views (per-cell dispatch) nor the
    raw dataset a tile materializes from (tile dispatch) are ever pickled
    or copied.  For tile dispatch this is what bounds the parent's peak
    memory: each forked worker materializes *its own* tile from the
    COW-shared dataset and returns only scores, so at most
    ``min(n_tiles, max_workers)`` tiles are resident machine-wide and the
    parent holds none.  On platforms without ``fork`` the executor
    degrades to serial execution.

Determinism contract: executors only change *where* an item runs.  Each
cell's RNG substream is derived from its (seed, tag) key, results are
assigned by input position (``map`` output order == input order, which is
what makes the runner's tile-ordered reduction deterministic), so scores
are bitwise identical across executors and worker counts.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
from typing import Callable, Sequence

from ..exceptions import ExperimentError

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]


class CellExecutor:
    """Interface: run ``work(item)`` for every item, results in input order."""

    name: str = "abstract"

    def map(self, work: Callable, items: Sequence) -> list:
        """Execute ``work`` over ``items``; result ``i`` is ``work(items[i])``."""
        raise NotImplementedError


class SerialExecutor(CellExecutor):
    """Run every item on the calling thread (the reference executor).

    For tile dispatch this is also the minimal-memory schedule: tiles
    materialize strictly one at a time.
    """

    name = "serial"

    def map(self, work: Callable, items: Sequence) -> list:
        return [work(item) for item in items]


class ThreadExecutor(CellExecutor):
    """Run items on a thread pool (BLAS releases the GIL).

    Tile dispatch note: concurrent tiles may consult a shared
    :class:`~repro.runtime.plan.PreparedDataCache`; its entries are
    idempotent (a racing rebuild stores the identical value), so the race
    is benign and scores stay deterministic.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(self.max_workers) as pool:
            return list(pool.map(work, items))


#: Work registered for copy-on-write sharing with forked workers, keyed by
#: a monotonically increasing token (never recycled, unlike ``id`` — two
#: overlapping maps can therefore never alias each other's work).
#: Populated by ProcessExecutor *before* the fork so the children inherit
#: the callable and its captured arrays without pickling them.
_SHARED_WORK: dict[int, tuple[Callable, Sequence]] = {}
_SHARED_TOKENS = itertools.count()


def _forked_cell(token_and_index: tuple[int, int]):
    token, index = token_and_index
    work, items = _SHARED_WORK[token]
    return work(items[index])


class ProcessExecutor(CellExecutor):
    """Run items on a forked process pool with shared read-only views.

    Only the ``(token, index)`` pairs and each item's **result** cross the
    process boundary; the work callable and anything it closes over (fold
    views, a :class:`~repro.runtime.plan.TiledPlan` and its dataset) stay
    in the parent's address space and reach workers via copy-on-write.
    Results must therefore be kept lightweight — the tiled runner returns
    score/time lists, never prepared arrays.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return SerialExecutor().map(work, items)
        token = next(_SHARED_TOKENS)
        _SHARED_WORK[token] = (work, items)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            ) as pool:
                return list(
                    pool.map(_forked_cell, [(token, i) for i in range(len(items))])
                )
        finally:
            del _SHARED_WORK[token]


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(executor: str | CellExecutor) -> CellExecutor:
    """Resolve an executor by name (``serial|thread|process``) or pass through."""
    if isinstance(executor, CellExecutor):
        return executor
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None
