"""Pluggable executors for the residual non-batchable cells.

DPME, FP and the other synthetic-data baselines cannot be expressed as
stacked tensor solves — each fit is its own pipeline of histogram building,
noisy sampling and iterative optimization.  The runtime therefore runs them
per cell through an executor:

``SerialExecutor``
    The reference: cells run in submission order on the calling thread.
``ThreadExecutor``
    A thread pool.  NumPy releases the GIL inside BLAS/LAPACK and the
    random generators are derived per cell (never shared), so cells are
    data-race free and results are position-assigned — output order is
    deterministic regardless of completion order.
``ProcessExecutor``
    A ``fork``-context process pool sharing the plan's fold views read-only
    through copy-on-write memory: workers inherit the parent's address
    space, so the repetition arrays are never pickled or copied.  On
    platforms without ``fork`` the executor degrades to serial execution.

Determinism contract: executors only change *where* a cell runs.  Each
cell's RNG substream is derived from its (seed, tag) key, so scores are
bitwise identical across executors and worker counts.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Callable, Sequence

from ..exceptions import ExperimentError

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]


class CellExecutor:
    """Interface: run ``work(item)`` for every item, results in input order."""

    name: str = "abstract"

    def map(self, work: Callable, items: Sequence) -> list:
        """Execute ``work`` over ``items``; result ``i`` is ``work(items[i])``."""
        raise NotImplementedError


class SerialExecutor(CellExecutor):
    """Run every cell on the calling thread (the reference executor)."""

    name = "serial"

    def map(self, work: Callable, items: Sequence) -> list:
        return [work(item) for item in items]


class ThreadExecutor(CellExecutor):
    """Run cells on a thread pool (BLAS releases the GIL)."""

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(self.max_workers) as pool:
            return list(pool.map(work, items))


#: Plans registered for copy-on-write sharing with forked workers, keyed by
#: an opaque token.  Populated by ProcessExecutor *before* the fork so the
#: children inherit the arrays without pickling them.
_SHARED_WORK: dict[int, tuple[Callable, Sequence]] = {}


def _forked_cell(token_and_index: tuple[int, int]):
    token, index = token_and_index
    work, items = _SHARED_WORK[token]
    return work(items[index])


class ProcessExecutor(CellExecutor):
    """Run cells on a forked process pool with shared read-only fold views."""

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def map(self, work: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [work(item) for item in items]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return SerialExecutor().map(work, items)
        token = id(items)
        _SHARED_WORK[token] = (work, items)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            ) as pool:
                return list(
                    pool.map(_forked_cell, [(token, i) for i in range(len(items))])
                )
        finally:
            del _SHARED_WORK[token]


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(executor: str | CellExecutor) -> CellExecutor:
    """Resolve an executor by name (``serial|thread|process``) or pass through."""
    if isinstance(executor, CellExecutor):
        return executor
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None
