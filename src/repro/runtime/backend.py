"""Pluggable array backends for the stacked ``(B, d, d)`` kernels.

The runtime funnels every hot path through a handful of stacked linear-
algebra calls (``solve``, ``eigh``, ``eigvalsh``, ``pinv`` over ``(B, d,
d)`` stacks — see :mod:`repro.runtime.kernels`).  This module makes the
engine behind those calls a policy knob: the default :class:`NumpyBackend`
delegates to the exact ``np.linalg`` gufuncs the kernels have always
called (bitwise identical by construction), while :class:`TorchBackend`
routes the same stacks through ``torch.linalg`` — on CUDA when available,
CPU otherwise — for workloads where the batch dimension (reps x folds x
epsilon) is large enough to pay for the transfer.

Selection is layered like every other execution knob:
``ExecutionPolicy(backend=...)`` > ``REPRO_BACKEND`` > the ``numpy``
default, surfaced on the CLI as ``--backend``.  A
:class:`~repro.session.Session` installs its policy's backend as ambient
state for the duration of each entry point (the same module-global slot
pattern as :func:`repro.obs.active_recorder` /
:func:`repro.faults.active_injector`), and forked process workers inherit
the slot through copy-on-write exactly like the injector does.

Determinism contract
--------------------
* **Noise never moves across backends.**  Every Laplace draw is made by
  the keyed numpy substreams (:func:`repro.privacy.rng.derive_substream`)
  and *transferred in*, so privacy calibration and RNG call order are
  backend-invariant by construction — a backend can only change the
  floating-point rounding of the deterministic linear algebra applied
  after the draws.
* **The numpy backend is the bit-identity reference.**  Its methods *are*
  the ``np.linalg`` calls the pre-shim kernels made; golden digests are
  pinned against it.
* **Non-numpy backends are numerically conforming, not bit-identical.**
  Different LAPACK builds reassociate; ``repro.verify``'s ``numeric``
  tier (:mod:`repro.verify.numeric`) certifies per-coordinate atol/ulp
  bounds on released coefficients plus identical protocol digests.
* **Failure semantics are translated.**  Singular systems raise
  ``np.linalg.LinAlgError`` from every backend, so the kernels' per-cell
  retry ladders behave identically regardless of engine.

Input canonicalization
----------------------
:func:`canonical_array` is the plan-boundary gate (also applied by every
public kernel): arrays are made C-contiguous ``float64`` so that both
backends see identical canonical inputs.  Real-float inputs of lower
precision are upcast; integer, boolean, object and complex dtypes are
rejected outright — silently reinterpreting a label array or an ID column
as measurements is exactly the bug class the gate exists to stop.
"""

from __future__ import annotations

import importlib.util
from contextlib import contextmanager

import numpy as np

from ..exceptions import ExperimentError

__all__ = [
    "BACKEND_NAMES",
    "ArrayBackend",
    "NumpyBackend",
    "TorchBackend",
    "active_backend",
    "available_backends",
    "backend_available",
    "canonical_array",
    "get_backend",
    "use_backend",
]

#: Names accepted by :func:`get_backend` and ``ExecutionPolicy(backend=...)``.
BACKEND_NAMES = ("numpy", "torch")


# ----------------------------------------------------------------------
# Input canonicalization (the plan-boundary dtype gate)
# ----------------------------------------------------------------------
def canonical_array(a, name: str = "array") -> np.ndarray:
    """``a`` as a C-contiguous float64 ndarray, or a loud refusal.

    * float64 passes through (already-contiguous arrays are returned
      as-is — the common case costs one flag check);
    * float16/float32 upcast losslessly to float64 — the documented fix
      for the silent-precision-propagation bug: the stacked kernels used
      to accept float32 and hand back float32 results, so two callers
      could get different-precision answers from the same data;
    * integer, boolean, object, complex and wider-than-64-bit float
      dtypes raise :class:`~repro.exceptions.ExperimentError` — the gate
      rejects rather than guesses, because such inputs are almost always
      a caller bug (labels, IDs, un-decoded columns).
    """
    arr = np.asarray(a)
    if arr.dtype == np.float64:
        return np.ascontiguousarray(arr)
    if arr.dtype.kind == "f" and arr.dtype.itemsize < 8:
        return np.ascontiguousarray(arr, dtype=np.float64)
    raise ExperimentError(
        f"{name} has dtype {arr.dtype}; the stacked kernels require real "
        f"floating-point input (float64, or float16/float32 which upcast "
        f"losslessly). Convert explicitly — integer/bool/object/complex "
        f"data is rejected rather than silently reinterpreted."
    )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ArrayBackend:
    """Interface: the batched linear-algebra engine behind the kernels.

    Methods take and return numpy ``float64`` arrays — device transfer is
    an implementation detail, so the kernels stay single-source.  Every
    method must raise ``np.linalg.LinAlgError`` on singular/non-converged
    input regardless of engine (the kernels' retry ladders depend on it).
    """

    name: str = "abstract"
    #: Where this backend executes ("cpu", "cuda", ...).
    device: str = "cpu"

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Stacked ``solve`` with ``np.linalg.solve`` broadcasting rules."""
        raise NotImplementedError

    def eigh(self, A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stacked symmetric eigendecomposition ``(eigenvalues, eigenvectors)``."""
        raise NotImplementedError

    def eigvalsh(self, A: np.ndarray) -> np.ndarray:
        """Stacked symmetric eigenvalues only."""
        raise NotImplementedError

    def pinv(self, A: np.ndarray) -> np.ndarray:
        """Moore–Penrose pseudo-inverse (per matrix)."""
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The reference backend: the exact ``np.linalg`` gufunc calls.

    Bit-identity with the pre-shim kernels holds by construction — each
    method *is* the call the kernel made before the shim existed, applied
    to the same canonical arrays in the same order.
    """

    name = "numpy"
    device = "cpu"

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(A, b)

    def eigh(self, A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        eigenvalues, eigenvectors = np.linalg.eigh(A)
        return eigenvalues, eigenvectors

    def eigvalsh(self, A: np.ndarray) -> np.ndarray:
        return np.linalg.eigvalsh(A)

    def pinv(self, A: np.ndarray) -> np.ndarray:
        return np.linalg.pinv(A)


class TorchBackend(ArrayBackend):
    """Batched linear algebra through ``torch.linalg`` (CUDA when available).

    torch is imported lazily at construction — the package is an optional
    extra (``pip install .[torch]``) and must never be a hard dependency.
    All math runs in ``float64``; results come home as numpy arrays, and
    torch's ``LinAlgError`` (a ``RuntimeError`` subclass, *not* numpy's)
    is translated to ``np.linalg.LinAlgError`` so the kernels' singular-
    cell retry paths work unchanged.
    """

    name = "torch"

    def __init__(self) -> None:
        try:
            import torch
        except ImportError:
            raise ExperimentError(
                "backend 'torch' requested but torch is not installed; "
                "install the optional extra (pip install torch) or use "
                "backend='numpy'"
            ) from None
        self._torch = torch
        self.device = "cuda" if torch.cuda.is_available() else "cpu"

    def _up(self, a: np.ndarray):
        """numpy -> float64 tensor on this backend's device."""
        torch = self._torch
        tensor = torch.from_numpy(np.ascontiguousarray(a, dtype=np.float64))
        return tensor.to(self.device) if self.device != "cpu" else tensor

    def _down(self, t) -> np.ndarray:
        """tensor -> owned numpy float64 array (copy: tensors may be reused)."""
        return np.array(t.detach().cpu().numpy(), dtype=np.float64)

    def _translate(self, error: Exception) -> Exception:
        return np.linalg.LinAlgError(str(error))

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        torch = self._torch
        try:
            return self._down(torch.linalg.solve(self._up(A), self._up(b)))
        except RuntimeError as error:  # torch.linalg.LinAlgError included
            raise self._translate(error) from None

    def eigh(self, A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        torch = self._torch
        try:
            eigenvalues, eigenvectors = torch.linalg.eigh(self._up(A))
        except RuntimeError as error:
            raise self._translate(error) from None
        return self._down(eigenvalues), self._down(eigenvectors)

    def eigvalsh(self, A: np.ndarray) -> np.ndarray:
        torch = self._torch
        try:
            return self._down(torch.linalg.eigvalsh(self._up(A)))
        except RuntimeError as error:
            raise self._translate(error) from None

    def pinv(self, A: np.ndarray) -> np.ndarray:
        torch = self._torch
        try:
            return self._down(torch.linalg.pinv(self._up(A)))
        except RuntimeError as error:
            raise self._translate(error) from None


_BACKEND_CLASSES = {"numpy": NumpyBackend, "torch": TorchBackend}
#: Constructed backends are cached — they are stateless engines, and the
#: torch one carries a (costly) imported module reference.
_BACKEND_INSTANCES: dict[str, ArrayBackend] = {}


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually be constructed on this machine."""
    if name not in _BACKEND_CLASSES:
        return False
    if name == "torch":
        return importlib.util.find_spec("torch") is not None
    return True


def available_backends() -> tuple[str, ...]:
    """The backend names usable right now (numpy always; torch if installed)."""
    return tuple(name for name in BACKEND_NAMES if backend_available(name))


def get_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Resolve a backend by name (``numpy|torch``) or pass one through."""
    if isinstance(backend, ArrayBackend):
        return backend
    try:
        cls = _BACKEND_CLASSES[backend]
    except KeyError:
        raise ExperimentError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKEND_CLASSES)}"
        ) from None
    instance = _BACKEND_INSTANCES.get(backend)
    if instance is None:
        instance = _BACKEND_INSTANCES[backend] = cls()
    return instance


# ----------------------------------------------------------------------
# Ambient backend slot (mirrors repro.obs.active_recorder)
# ----------------------------------------------------------------------
_ACTIVE: ArrayBackend = NumpyBackend()
_BACKEND_INSTANCES["numpy"] = _ACTIVE


def active_backend() -> ArrayBackend:
    """The backend the stacked kernels should dispatch through right now."""
    return _ACTIVE


@contextmanager
def use_backend(backend: str | ArrayBackend):
    """Install ``backend`` as the active backend for the duration.

    Re-entrant like :func:`repro.obs.use_recorder`: nesting the same
    backend is transparent, nesting a different one shadows the outer one
    until exit.  Session entry points wrap themselves in this, and forked
    process workers inherit the slot through copy-on-write.
    """
    global _ACTIVE
    resolved = get_backend(backend)
    previous = _ACTIVE
    _ACTIVE = resolved
    try:
        yield resolved
    finally:
        _ACTIVE = previous
