"""Batched cell-solver runtime for the repeated-CV evaluation protocol.

The paper's Section-7 protocol measures every algorithm over hundreds of
(repetition, fold, epsilon) cells.  This subsystem turns that per-cell loop
into a three-stage pipeline:

1. :mod:`~repro.runtime.plan` enumerates every cell with its deterministic
   RNG substream — eagerly (a :class:`CellPlan`) or lazily in bounded
   repetition tiles (a :class:`TiledPlan`), with a shared
   :class:`PreparedDataCache` reusing prepared arrays and moment blocks
   across algorithms, repetitions and budgets,
2. :mod:`~repro.runtime.kernels` executes all batchable cells as stacked
   ``(B, d, d)`` LAPACK solves and a masked batched Newton — bitwise
   identical to the scalar per-cell solves on the default numpy backend,
   with the stacked linear algebra dispatching through a pluggable
   :mod:`~repro.runtime.backend` shim (numpy default; torch optional,
   certified numerically conforming by ``repro.verify --tier numeric``),
3. :mod:`~repro.runtime.executor` spreads the residual non-batchable
   baselines — and, for tiled plans, whole batched tiles — over serial /
   thread / forked-process executors.

:func:`run_plan` ties the stages together (and provides the per-cell
reference oracle the equivalence tests assert against);
:func:`run_plan_group` executes several algorithms' plans with merged
cross-algorithm stacked solves.
"""

from .backend import (
    BACKEND_NAMES,
    ArrayBackend,
    NumpyBackend,
    TorchBackend,
    active_backend,
    available_backends,
    backend_available,
    canonical_array,
    get_backend,
    use_backend,
)
from .executor import (
    CellExecutor,
    PooledProcessExecutor,
    PooledThreadExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from .kernels import (
    NewtonBatchResult,
    SpectralBatchResult,
    SpectralTrimState,
    fm_noise_stack,
    newton_logistic_stack,
    normal_equations_solve_stack,
    posdef_or_pinv_solve_stack,
    posdef_split_stack,
    spectral_solve_stack,
    spectral_trim_stack,
)
from .plan import (
    KERNEL_GENERIC,
    KERNEL_NEWTON,
    KERNEL_QUADRATIC,
    CellPlan,
    PlannedFold,
    PreparedDataCache,
    TiledPlan,
    algorithm_stream_key,
    classify_kernel,
    plan_cells,
    plan_cells_tiled,
)
from .runner import PlanResult, run_plan, run_plan_group

__all__ = [
    "BACKEND_NAMES",
    "ArrayBackend",
    "NumpyBackend",
    "TorchBackend",
    "active_backend",
    "available_backends",
    "backend_available",
    "canonical_array",
    "get_backend",
    "use_backend",
    "CellExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PooledThreadExecutor",
    "PooledProcessExecutor",
    "get_executor",
    "NewtonBatchResult",
    "SpectralBatchResult",
    "SpectralTrimState",
    "fm_noise_stack",
    "newton_logistic_stack",
    "normal_equations_solve_stack",
    "posdef_or_pinv_solve_stack",
    "posdef_split_stack",
    "spectral_solve_stack",
    "spectral_trim_stack",
    "KERNEL_GENERIC",
    "KERNEL_NEWTON",
    "KERNEL_QUADRATIC",
    "CellPlan",
    "PlannedFold",
    "PreparedDataCache",
    "TiledPlan",
    "algorithm_stream_key",
    "classify_kernel",
    "plan_cells",
    "plan_cells_tiled",
    "PlanResult",
    "run_plan",
    "run_plan_group",
]
