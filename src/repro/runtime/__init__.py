"""Batched cell-solver runtime for the repeated-CV evaluation protocol.

The paper's Section-7 protocol measures every algorithm over hundreds of
(repetition, fold, epsilon) cells.  This subsystem turns that per-cell loop
into a three-stage pipeline:

1. :mod:`~repro.runtime.plan` enumerates every cell up front with its
   deterministic RNG substream (a :class:`CellPlan`),
2. :mod:`~repro.runtime.kernels` executes all batchable cells as stacked
   ``(B, d, d)`` LAPACK solves and a masked batched Newton — bitwise
   identical to the scalar per-cell solves,
3. :mod:`~repro.runtime.executor` spreads the residual non-batchable
   baselines over serial / thread / forked-process executors.

:func:`run_plan` ties the stages together and also provides the per-cell
reference oracle the equivalence tests assert against.
"""

from .executor import (
    CellExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from .kernels import (
    NewtonBatchResult,
    SpectralBatchResult,
    fm_noise_stack,
    newton_logistic_stack,
    normal_equations_solve_stack,
    posdef_or_pinv_solve_stack,
    spectral_solve_stack,
)
from .plan import (
    KERNEL_GENERIC,
    KERNEL_NEWTON,
    KERNEL_QUADRATIC,
    CellPlan,
    PlannedFold,
    algorithm_stream_key,
    classify_kernel,
    plan_cells,
)
from .runner import PlanResult, run_plan

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "NewtonBatchResult",
    "SpectralBatchResult",
    "fm_noise_stack",
    "newton_logistic_stack",
    "normal_equations_solve_stack",
    "posdef_or_pinv_solve_stack",
    "spectral_solve_stack",
    "KERNEL_GENERIC",
    "KERNEL_NEWTON",
    "KERNEL_QUADRATIC",
    "CellPlan",
    "PlannedFold",
    "algorithm_stream_key",
    "classify_kernel",
    "plan_cells",
    "PlanResult",
    "run_plan",
]
