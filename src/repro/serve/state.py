"""Durable per-tenant state for :mod:`repro.serve`.

One tenant owns three things, all rooted under
``<data_dir>/tenants/<name>/``:

``meta.json``
    The tenant's identity and total budget, written atomically at
    creation (temp file + fsync + ``os.replace``).
``budget.journal``
    The :class:`~repro.privacy.budget.PrivacyBudget` write-ahead journal.
    On startup a non-empty journal is resumed via
    :meth:`~repro.privacy.budget.PrivacyBudget.restore` — never
    re-created — so spends survive ``kill -9`` by construction.
``acc/<task>-d<dims>.acc``
    One checksummed ``.acc`` container (the PR-7 cache format, via
    :func:`repro.engine.cache.encode_entry`) per (task, dims)
    accumulator, re-written atomically by periodic snapshots.  A corrupt
    container found at startup is quarantined, exactly like a corrupt
    cache entry: rows ingested since the last good snapshot are lost
    (they are data, re-sendable by the tenant) but budget spends are
    not, because the ledger has its own journal.

Concurrency model — single writer per tenant
--------------------------------------------
All mutation of a tenant's accumulators happens under that tenant's
lock, acquired through :meth:`TenantState.locked`.  The service keeps
the discipline of one *logical* writer per tenant (a tenant's rows
arrive from one client stream); the lock is the backstop that turns an
accidental second writer into a counted, serialized wait instead of a
corrupted accumulator.  Every contended acquisition increments the
``serve.lock_contention`` counter, so a deployment can alert on
discipline violations instead of discovering them as wrong answers.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ..engine.accumulator import MomentAccumulator
from ..engine.cache import decode_entry, encode_entry
from ..exceptions import CacheIntegrityError, TransientIOError
from ..faults import active_injector
from ..obs import active_recorder
from ..privacy.budget import PrivacyBudget
from .protocol import (
    BadRequestError,
    TenantExistsError,
    UnknownTenantError,
)

__all__ = ["TenantRegistry", "TenantState", "partition_note_tag"]

#: ``meta.json`` format version.
_META_VERSION = 1

#: Bounded retries for transient IO on snapshot writes/reads (matches the
#: accumulator cache's policy).
_IO_ATTEMPTS = 3


#: Machine-readable tag appended to every partitioned fit's ledger note;
#: :func:`_partition_totals` re-derives the per-partition running totals
#: from these after a restore, so the parallel-composition accounting is
#: exactly as durable as the ledger itself.
_PARTITION_NOTE_RE = re.compile(
    r"\[partition=(?P<name>[A-Za-z0-9._-]+) requested=(?P<eps>[0-9.eE+-]+)\]"
)


def partition_note_tag(partition: str, requested: float) -> str:
    """The durable note tag recording one partitioned fit's full cost."""
    return f"[partition={partition} requested={float(requested):.17g}]"


def _partition_totals(ledger) -> dict[str, float]:
    """Per-partition cumulative requested epsilon, re-derived from notes.

    Every partitioned fit — whether it charged a positive delta or was
    annotated as parallel-covered — leaves one tagged ledger entry, so
    summing the tags reproduces the in-memory totals bitwise-equivalently
    (``fsum`` per partition, in ledger order).
    """
    per_partition: dict[str, list[float]] = {}
    for entry in ledger:
        match = _PARTITION_NOTE_RE.search(entry.note)
        if match is None:
            continue
        per_partition.setdefault(match.group("name"), []).append(
            float(match.group("eps"))
        )
    return {name: math.fsum(values) for name, values in per_partition.items()}


def _site_index(tenant: str, key: str = "") -> int:
    """Stable fault-site index for a tenant's durable files."""
    digest = hashlib.sha256(f"{tenant}:{key}".encode()).hexdigest()
    return int(digest[:8], 16)


def _atomic_write(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via temp file + fsync + atomic replace."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


def _with_io_retries(site: int, operation, what: str):
    """Run ``operation`` with bounded ``io.transient`` retries.

    The injected-fault check sits *inside* the loop, like the cache's,
    so a transient plan with ``xN`` repetitions exhausts its triggers
    against the retries rather than failing the request outright.
    """
    recorder = active_recorder()
    injector = active_injector()
    for attempt in range(_IO_ATTEMPTS):
        try:
            if injector.consume("io.transient", site):
                raise TransientIOError(f"injected transient IO failure: {what}")
            return operation()
        except TransientIOError:
            recorder.counter("serve.io_retries")
            if attempt == _IO_ATTEMPTS - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


class TenantState:
    """One tenant's accumulators, durable budget, and writer lock."""

    def __init__(self, name: str, root: Path, budget: PrivacyBudget) -> None:
        self.name = name
        self.root = root
        self.budget = budget
        self._lock = threading.Lock()
        # Parallel-composition accounting: per-partition cumulative
        # requested epsilon, guarded by its own small lock (partition
        # charges are quick and must not count as writer contention).
        # Rebuilt from the restored ledger's tagged notes, so a restart
        # resumes charging against the same running maxima.
        self._budget_lock = threading.Lock()
        self._partition_spent: dict[str, float] = _partition_totals(budget.ledger)
        self._accumulators: dict[str, MomentAccumulator] = {}
        # Keys whose accumulator changed since their last durable snapshot.
        self._dirty: set[str] = set()
        # Registry bookkeeping (both guarded by the *registry* lock):
        # requests currently leasing this tenant, and whether this object
        # was evicted (stale references must re-checkout, never mutate).
        self._inflight = 0
        self._evicted = False

    # ------------------------------------------------------------------
    # Locking discipline
    # ------------------------------------------------------------------
    @contextmanager
    def locked(self):
        """Acquire this tenant's writer lock, counting contention.

        The fast path is an uncontended non-blocking acquire; when that
        fails — a second writer is active — the ``serve.lock_contention``
        counter increments before the blocking wait, making violations
        of the single-writer discipline observable.
        """
        acquired = self._lock.acquire(blocking=False)
        if not acquired:
            active_recorder().counter("serve.lock_contention")
            self._lock.acquire()
        try:
            yield self
        finally:
            self._lock.release()

    # ------------------------------------------------------------------
    # Accumulator access (call under ``locked()``)
    # ------------------------------------------------------------------
    @staticmethod
    def acc_key(task: str, dims: int, partition: str | None = None) -> str:
        """Accumulator map/file key; partitioned keys get a ``+<name>``
        suffix (``+`` is outside the partition-name alphabet, so the
        mapping is unambiguous and round-trips through ``.acc`` stems)."""
        base = f"{task}-d{dims}"
        return base if partition is None else f"{base}+{partition}"

    def accumulator(
        self, task: str, dims: int, partition: str | None = None
    ) -> MomentAccumulator:
        """The (task, dims[, partition]) accumulator, created on first use."""
        key = self.acc_key(task, dims, partition)
        acc = self._accumulators.get(key)
        if acc is None:
            acc = MomentAccumulator(dim=dims)
            self._accumulators[key] = acc
        return acc

    def ingest(
        self,
        task: str,
        dims: int,
        X: np.ndarray,
        y: np.ndarray,
        partition: str | None = None,
    ) -> int:
        """Stream rows into the (task, dims[, partition]) accumulator;
        returns its total rows.

        Caller holds the lock.  Accumulator domain validation (row norms,
        target range) raises ``ValueError`` which the app maps to a 400.
        """
        acc = self.accumulator(task, dims, partition)
        acc.update(X, y)
        self._dirty.add(self.acc_key(task, dims, partition))
        return acc.n_rows

    # ------------------------------------------------------------------
    # Parallel-composition budget accounting
    # ------------------------------------------------------------------
    def partition_spent(self) -> dict[str, float]:
        """A copy of the per-partition cumulative requested epsilons."""
        with self._budget_lock:
            return dict(self._partition_spent)

    def charge_partitioned(self, partition: str, requested: float, note: str) -> float:
        """Charge a fit over one disjoint partition; returns the delta charged.

        Partitions hold disjoint users, so the tenant's true privacy
        loss across partitioned fits is the **maximum** of the
        per-partition totals, not their sum (parallel composition).  The
        ledger stays a plain sequential accountant: each partitioned fit
        charges only the amount by which its partition's new total
        exceeds the previous running maximum —

            delta = (spent[p] + requested) - max_q spent[q]

        — and a non-positive delta becomes a durable zero-cost
        :meth:`~repro.privacy.budget.PrivacyBudget.annotate` instead.
        Either way the entry carries :func:`partition_note_tag`, so a
        restore re-derives ``spent[·]`` from the ledger and resumes the
        same maxima.  Raises
        :class:`~repro.exceptions.BudgetExhaustedError` (ledger
        untouched, totals unchanged) when the delta does not fit.
        """
        requested = float(requested)
        with self._budget_lock:
            ceiling = max(self._partition_spent.values(), default=0.0)
            new_total = self._partition_spent.get(partition, 0.0) + requested
            delta = new_total - ceiling
            tag = partition_note_tag(partition, requested)
            if delta > 0.0:
                self.budget.spend(delta, note=f"{note} {tag}")
            else:
                self.budget.annotate(f"{note} {tag} parallel-covered")
            self._partition_spent[partition] = new_total
            return max(delta, 0.0)

    def status(self) -> dict:
        """A JSON-ready view of this tenant (call under ``locked()``)."""
        return {
            "tenant": self.name,
            "budget": {
                "total": self.budget.total,
                "spent": self.budget.spent,
                "remaining": self.budget.remaining,
                "entries": len(self.budget.ledger),
                "partitions": self.partition_spent(),
            },
            "accumulators": {
                key: {"n_rows": acc.n_rows, "dims": acc.dim}
                for key, acc in sorted(self._accumulators.items())
            },
        }

    # ------------------------------------------------------------------
    # Durable snapshots
    # ------------------------------------------------------------------
    @property
    def acc_dir(self) -> Path:
        return self.root / "acc"

    def snapshot(self, force: bool = False) -> int:
        """Write dirty accumulators to checksummed ``.acc`` files atomically.

        Returns the number of containers written.  Runs under the tenant
        lock so a snapshot can never observe a half-applied ingest.
        Transient IO failures retry boundedly; a persistent failure
        raises (snapshot callers treat it as a degraded-but-alive
        condition — the accumulators stay dirty and the next cycle
        retries).
        """
        # Plain blocking acquire: the snapshot thread contending with the
        # tenant's writer is expected, not a discipline violation, so it
        # must not inflate ``serve.lock_contention``.
        with self._lock:
            written = self._snapshot_locked(force=force)
        if written:
            active_recorder().counter("serve.snapshot_writes", written)
        return written

    def _snapshot_locked(self, force: bool = False) -> int:
        """:meth:`snapshot`'s body, for callers already holding the lock
        (the registry's evictor, which tested the lock non-blockingly)."""
        written = 0
        keys = sorted(self._accumulators) if force else sorted(self._dirty)
        for key in keys:
            acc = self._accumulators.get(key)
            if acc is None:
                self._dirty.discard(key)
                continue
            blob = encode_entry(acc)
            path = self.acc_dir / f"{key}.acc"
            site = _site_index(self.name, key)
            _with_io_retries(
                site, lambda: _atomic_write(path, blob), str(path)
            )
            self._dirty.discard(key)
            written += 1
        return written

    def load_snapshots(self) -> int:
        """Restore accumulators from ``acc/*.acc``; returns count loaded.

        A container that fails its checksum is moved to ``quarantine/``
        (bytes preserved for forensics) and skipped: the tenant restarts
        that accumulator empty, which loses re-sendable rows but never
        fabricates statistics.
        """
        recorder = active_recorder()
        loaded = 0
        if not self.acc_dir.is_dir():
            return 0
        for path in sorted(self.acc_dir.glob("*.acc")):
            key = path.stem
            site = _site_index(self.name, key)
            blob = _with_io_retries(site, path.read_bytes, str(path))
            try:
                acc = decode_entry(blob)
            except CacheIntegrityError:
                quarantine = self.root / "quarantine"
                quarantine.mkdir(parents=True, exist_ok=True)
                try:
                    path.replace(quarantine / path.name)
                except OSError:
                    path.unlink(missing_ok=True)
                recorder.counter("serve.snapshot_quarantined")
                continue
            self._accumulators[key] = acc
            loaded += 1
        return loaded

    def close(self) -> None:
        self.budget.close()


class TenantRegistry:
    """All tenants under one data directory, restored on startup.

    The registry lock only guards the tenant *map* (creation, lookup,
    lease counts, eviction); per-tenant mutation is each tenant's own
    lock — lock ordering is always registry before tenant.

    Residency is bounded: without eviction the map grows by one
    :class:`TenantState` (accumulators, ledger, journal handle) per
    tenant ever touched and never shrinks — a memory leak under
    many-tenant load.  ``max_resident`` (LRU) and ``idle_ttl`` (seconds
    since last touch) bound it; an evicted tenant is snapshotted to disk
    first and transparently reloaded on its next touch, so eviction is
    invisible to clients beyond the ``serve.tenant_evictions`` counter —
    the budget journal and forced accumulator snapshot make the reloaded
    fit bitwise identical to an unevicted one.  Tenants currently leased
    (or whose lock is held) are skipped, never torn down mid-request.
    """

    def __init__(
        self,
        data_dir: str | Path,
        max_resident: int | None = None,
        idle_ttl: float | None = None,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise BadRequestError(f"max_resident must be >= 1, got {max_resident}")
        if idle_ttl is not None and idle_ttl <= 0:
            raise BadRequestError(f"idle_ttl must be positive, got {idle_ttl}")
        self.root = Path(data_dir)
        self.tenants_dir = self.root / "tenants"
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self.max_resident = max_resident
        self.idle_ttl = idle_ttl
        self._tenants: dict[str, TenantState] = {}
        self._last_touch: dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _tenant_root(self, name: str) -> Path:
        return self.tenants_dir / name

    def _journal_path(self, name: str) -> Path:
        return self._tenant_root(name) / "budget.journal"

    def _load_tenant(self, name: str) -> TenantState:
        """Rebuild one tenant from its directory (meta + journal + snapshots)."""
        root = self._tenant_root(name)
        meta_path = root / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BadRequestError(
                f"tenant directory {root} has unreadable meta.json: {exc}"
            ) from None
        total = float(meta["total_epsilon"])
        journal = self._journal_path(name)
        if journal.exists() and journal.stat().st_size > 0:
            budget = PrivacyBudget.restore(journal)
        else:
            budget = PrivacyBudget(total, journal_path=journal)
        tenant = TenantState(name, root, budget)
        tenant.load_snapshots()
        return tenant

    def restore_all(self) -> int:
        """Load every tenant directory present on disk; returns the count."""
        count = 0
        with self._lock:
            for path in sorted(self.tenants_dir.iterdir()):
                if not path.is_dir() or not (path / "meta.json").exists():
                    continue
                name = path.name
                if name in self._tenants:
                    continue
                self._tenants[name] = self._load_tenant(name)
                self._last_touch[name] = time.monotonic()
                count += 1
            self._evict_locked()
        if count:
            active_recorder().counter("serve.tenants_restored", count)
        return count

    # ------------------------------------------------------------------
    def create(self, name: str, total_epsilon: float) -> TenantState:
        """Create a new tenant with a fresh durable budget.

        ``meta.json`` is published atomically *after* the journal's open
        record is durable, so a crash mid-create leaves at worst a
        directory without meta — invisible to :meth:`restore_all` and
        safely re-creatable.
        """
        with self._lock:
            if name in self._tenants:
                raise TenantExistsError(f"tenant {name!r} already exists", tenant=name)
            root = self._tenant_root(name)
            meta_path = root / "meta.json"
            if meta_path.exists():
                # On-disk but not loaded: a restart raced tenant creation.
                self._tenants[name] = self._load_tenant(name)
                raise TenantExistsError(f"tenant {name!r} already exists", tenant=name)
            root.mkdir(parents=True, exist_ok=True)
            budget = PrivacyBudget(total_epsilon, journal_path=self._journal_path(name))
            meta = {
                "v": _META_VERSION,
                "tenant": name,
                "total_epsilon": float(total_epsilon),
            }
            _atomic_write(meta_path, json.dumps(meta, sort_keys=True).encode())
            tenant = TenantState(name, root, budget)
            self._tenants[name] = tenant
            self._last_touch[name] = time.monotonic()
            self._evict_locked(protect=name)
        active_recorder().counter("serve.tenants_created")
        return tenant

    def get(self, name: str) -> TenantState:
        """Look up a resident tenant, reloading it from disk if evicted."""
        with self._lock:
            return self._checkout_locked(name, lease=False)

    def _checkout_locked(self, name: str, lease: bool) -> TenantState:
        tenant = self._tenants.get(name)
        if tenant is None:
            # Transparent reload: an evicted (or pre-restart) tenant whose
            # directory exists comes back as if it had never left memory.
            root = self._tenant_root(name)
            if not (root / "meta.json").exists():
                raise UnknownTenantError(f"no tenant named {name!r}", tenant=name)
            tenant = self._load_tenant(name)
            self._tenants[name] = tenant
            active_recorder().counter("serve.tenant_reloads")
        self._last_touch[name] = time.monotonic()
        if lease:
            tenant._inflight += 1
        # A reload can overflow the resident cap; rebalance immediately
        # (the tenant being handed out is explicitly protected).
        self._evict_locked(protect=name)
        return tenant

    @contextmanager
    def lease(self, name: str):
        """Check a tenant out for the duration of one request.

        A leased tenant is pinned resident: the evictor skips it, so the
        caller may safely use ``tenant.budget`` and ``tenant.locked()``
        for the lease's whole extent without racing an eviction's journal
        close.  This is the handler-facing accessor; :meth:`get` remains
        for point lookups that do not outlive the registry lock's scope.
        """
        with self._lock:
            tenant = self._checkout_locked(name, lease=True)
        try:
            yield tenant
        finally:
            with self._lock:
                tenant._inflight -= 1

    # ------------------------------------------------------------------
    # Eviction (call under the registry lock)
    # ------------------------------------------------------------------
    def _evict_one_locked(self, name: str) -> bool:
        """Snapshot, close and drop one tenant; False when busy or IO-stuck."""
        tenant = self._tenants[name]
        if tenant._inflight > 0:
            return False
        # Non-blocking probe: a held lock means an active writer (or the
        # snapshot thread); never tear a tenant down mid-mutation.
        if not tenant._lock.acquire(blocking=False):
            return False
        try:
            try:
                written = tenant._snapshot_locked(force=True)
            except (TransientIOError, OSError):
                # Keep it resident; dirtiness is preserved and the next
                # cycle retries — losing rows to save memory is never a
                # valid trade.
                active_recorder().counter("serve.snapshot_failures")
                return False
            tenant._evicted = True
        finally:
            tenant._lock.release()
        if written:
            active_recorder().counter("serve.snapshot_writes", written)
        tenant.budget.close()
        del self._tenants[name]
        self._last_touch.pop(name, None)
        return True

    def _evict_locked(self, protect: str | None = None) -> int:
        """Apply the idle-TTL then the LRU cap; returns tenants evicted.

        ``protect`` names a tenant mid-checkout that must stay resident
        regardless of pressure.
        """
        if self.idle_ttl is None and self.max_resident is None:
            return 0
        evicted = 0
        now = time.monotonic()
        if self.idle_ttl is not None:
            for name in list(self._tenants):
                if name == protect:
                    continue
                touched = self._last_touch.get(name, now)
                if now - touched >= self.idle_ttl:
                    evicted += self._evict_one_locked(name)
        if self.max_resident is not None:
            for name in sorted(
                self._tenants, key=lambda n: self._last_touch.get(n, 0.0)
            ):
                if len(self._tenants) <= self.max_resident:
                    break
                if name == protect:
                    continue
                evicted += self._evict_one_locked(name)
        if evicted:
            active_recorder().counter("serve.tenant_evictions", evicted)
        return evicted

    def evict_idle(self) -> int:
        """One eviction cycle (the periodic snapshot loop's other half)."""
        with self._lock:
            return self._evict_locked()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def snapshot_all(self, force: bool = False) -> int:
        """Snapshot every tenant; returns containers written.

        Per-tenant IO failures are contained: one tenant's persistent
        disk trouble must not stop the others' snapshots (its
        accumulators stay dirty and retry next cycle).
        """
        written = 0
        for name in self.names():
            try:
                tenant = self.get(name)
            except UnknownTenantError:  # pragma: no cover - removed mid-loop
                continue
            try:
                written += tenant.snapshot(force=force)
            except (TransientIOError, OSError):
                active_recorder().counter("serve.snapshot_failures")
        return written

    def close(self) -> None:
        """Release every tenant's journal handle (files stay)."""
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
            self._last_touch.clear()
        for tenant in tenants:
            try:
                tenant.close()
            except Exception:  # closing must never mask the caller's exit
                pass
