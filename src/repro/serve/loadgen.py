"""Deterministic concurrent load generator for the serve layer.

Drives a live service with N tenants, one thread per tenant — the
single-writer discipline the server's locking backstops — through a
phased workload: stream synthetic batches, then request budgeted fits.
Everything is derived from one seed:

* rows come from :func:`synthetic_batch` — a pure function of
  ``(seed, tenant_index, batch_index)`` via keyed substreams, so an
  offline verifier (:mod:`repro.serve.check`) can rebuild the exact
  accumulator the server holds (JSON float round-trips are exact);
* fit request seeds come from :func:`fit_seed`, so the expected fit
  digests are recomputable without the service.

The JSON report is the chaos-acceptance artifact: per tenant, the
epsilon of every *accepted* spend (HTTP 200 fits) and every returned fit
digest, plus counts of retryable rejections (shed/not-ready/deadline)
and hard failures.  ``repro.serve.check`` replays the server's durable
state against it.

Run standalone::

    python -m repro.serve.loadgen --port 8321 --tenants 3 --batches 4
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..privacy.rng import derive_substream
from .client import ServeClient, ServeResponseError

__all__ = ["LoadgenConfig", "fit_seed", "run_loadgen", "synthetic_batch"]

#: Domain tag for load-generator data substreams.
_LOADGEN_TAG = 0x10AD6E4


def synthetic_batch(
    seed: int, tenant_index: int, batch_index: int, rows: int, dims: int
) -> tuple[np.ndarray, np.ndarray]:
    """One tenant batch, a pure function of its coordinates.

    Rows satisfy the paper's domain (``||x||_2 < 1``, ``|y| <= 1``) by
    construction; the same coordinates always produce the same bytes, on
    the generator and on the offline verifier alike.
    """
    rng = derive_substream(
        seed, [_LOADGEN_TAG, tenant_index, batch_index], stream_version=2
    )
    X = rng.uniform(-1.0, 1.0, size=(rows, dims))
    X = X / (np.linalg.norm(X, axis=1)[:, None] + 1.0)
    w = rng.uniform(-1.0, 1.0, size=dims)
    y = np.clip(X @ w + 0.1 * rng.normal(size=rows), -1.0, 1.0)
    return X, y


def fit_seed(seed: int, tenant_index: int, fit_index: int) -> int:
    """The deterministic request seed for one (tenant, fit) pair."""
    return int(seed) * 1_000_003 + tenant_index * 1_009 + fit_index


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 0
    tenants: int = 2
    batches: int = 4
    rows_per_batch: int = 200
    dims: int = 3
    task: str = "linear"
    fits: int = 3
    epsilons: tuple[float, ...] = (0.5, 1.0)
    seed: int = 123
    total_epsilon: float = 1000.0
    deadline_ms: float | None = None
    durable_ingest: bool = False
    max_retries: int = 8
    timeout: float = 60.0

    def tenant_name(self, index: int) -> str:
        return f"tenant-{self.seed}-{index}"


@dataclass
class _TenantReport:
    tenant: str
    rows_ingested: int = 0
    accepted_spends: list[float] = field(default_factory=list)
    fits: list[dict] = field(default_factory=list)
    retryable_rejections: dict[str, int] = field(default_factory=dict)
    failures: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "rows_ingested": self.rows_ingested,
            "accepted_spends": self.accepted_spends,
            "accepted_epsilon": float(np.sum(self.accepted_spends)) if self.accepted_spends else 0.0,
            "fits": self.fits,
            "retryable_rejections": self.retryable_rejections,
            "failures": self.failures,
        }


def _call_with_retries(fn, report: _TenantReport, config: LoadgenConfig):
    """Retry retryable rejections (counting them); surface the rest."""
    attempt = 0
    while True:
        try:
            return fn()
        except ServeResponseError as err:
            if not err.retryable or attempt >= config.max_retries:
                raise
            report.retryable_rejections[err.code] = (
                report.retryable_rejections.get(err.code, 0) + 1
            )
            time.sleep(min(1.0, 0.05 * (2.0 ** attempt)))
            attempt += 1


def _drive_tenant(config: LoadgenConfig, tenant_index: int) -> _TenantReport:
    """One tenant's whole lifecycle on its own thread + connection."""
    name = config.tenant_name(tenant_index)
    report = _TenantReport(tenant=name)
    with ServeClient(config.host, config.port, timeout=config.timeout) as client:
        try:
            _call_with_retries(
                lambda: client.create_tenant(name, config.total_epsilon),
                report, config,
            )
        except ServeResponseError as err:
            if err.code != "tenant_exists":  # resuming against restored state
                raise
        for batch in range(config.batches):
            X, y = synthetic_batch(
                config.seed, tenant_index, batch, config.rows_per_batch, config.dims
            )
            _call_with_retries(
                lambda: client.ingest(
                    name, config.task, config.dims,
                    X.tolist(), y.tolist(), durable=config.durable_ingest,
                ),
                report, config,
            )
            report.rows_ingested += config.rows_per_batch
        for index in range(config.fits):
            seed = fit_seed(config.seed, tenant_index, index)
            try:
                result = _call_with_retries(
                    lambda: client.fit(
                        name, config.task, config.dims,
                        config.epsilons, seed, deadline_ms=config.deadline_ms,
                    ),
                    report, config,
                )
            except ServeResponseError as err:
                report.failures.append(
                    {"kind": "fit", "seed": seed, "code": err.code,
                     "status": err.status}
                )
                continue
            report.accepted_spends.append(float(result["spent_epsilon"]))
            report.fits.append(
                {
                    "seed": seed,
                    "epsilons": result["epsilons"],
                    "n_rows": result["n_rows"],
                    "digest": result["digest"],
                }
            )
    return report


def run_loadgen(config: LoadgenConfig) -> dict:
    """Run the full concurrent workload; returns the JSON-ready report."""
    reports: list[_TenantReport | None] = [None] * config.tenants
    errors: list[BaseException | None] = [None] * config.tenants

    def runner(index: int) -> None:
        try:
            reports[index] = _drive_tenant(config, index)
        except BaseException as exc:  # surfaced in the report, not lost
            errors[index] = exc
            reports[index] = _TenantReport(tenant=config.tenant_name(index))
            reports[index].failures.append(
                {"kind": "thread", "error": f"{type(exc).__name__}: {exc}"}
            )

    started = time.monotonic()
    threads = [
        threading.Thread(target=runner, args=(i,), name=f"loadgen-{i}")
        for i in range(config.tenants)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    tenant_reports = [r.to_dict() for r in reports if r is not None]
    total_rows = sum(r["rows_ingested"] for r in tenant_reports)
    total_fits = sum(len(r["fits"]) for r in tenant_reports)
    return {
        "config": {
            "tenants": config.tenants,
            "batches": config.batches,
            "rows_per_batch": config.rows_per_batch,
            "dims": config.dims,
            "task": config.task,
            "fits": config.fits,
            "epsilons": list(config.epsilons),
            "seed": config.seed,
            "total_epsilon": config.total_epsilon,
            "durable_ingest": config.durable_ingest,
        },
        "elapsed_seconds": elapsed,
        "totals": {
            "rows_ingested": total_rows,
            "fits_ok": total_fits,
            "models_released": sum(
                len(f["epsilons"]) for r in tenant_reports for f in r["fits"]
            ),
            "accepted_epsilon": float(
                np.sum([r["accepted_epsilon"] for r in tenant_reports])
            ),
            "retryable_rejections": sum(
                sum(r["retryable_rejections"].values()) for r in tenant_reports
            ),
            "failures": sum(len(r["failures"]) for r in tenant_reports),
            "ingest_rows_per_second": total_rows / elapsed if elapsed > 0 else 0.0,
            "fits_per_second": total_fits / elapsed if elapsed > 0 else 0.0,
        },
        "tenants": tenant_reports,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="serve-layer load generator")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--rows-per-batch", type=int, default=200)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--task", default="linear", choices=("linear", "logistic"))
    parser.add_argument("--fits", type=int, default=3)
    parser.add_argument("--epsilons", type=float, nargs="+", default=[0.5, 1.0])
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument("--total-epsilon", type=float, default=1000.0)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--durable-ingest", action="store_true")
    parser.add_argument("--report", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    config = LoadgenConfig(
        host=args.host, port=args.port, tenants=args.tenants,
        batches=args.batches, rows_per_batch=args.rows_per_batch,
        dims=args.dims, task=args.task, fits=args.fits,
        epsilons=tuple(args.epsilons), seed=args.seed,
        total_epsilon=args.total_epsilon, deadline_ms=args.deadline_ms,
        durable_ingest=args.durable_ingest,
    )
    report = run_loadgen(config)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    failures = report["totals"]["failures"]
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
