"""Asyncio HTTP/1.1 transport for :class:`repro.serve.app.ServeApp`.

A deliberately small, dependency-free server: the event loop parses
requests and enforces *admission control*; application handlers run on a
bounded thread pool so a slow fit never stalls the accept loop.

Endpoints
---------
==========================  ====================================================
``POST /v1/tenants``        create a tenant ``{tenant, total_epsilon}``
``POST /v1/ingest``         stream rows ``{tenant, task, dims, x, y[, durable]}``
``POST /v1/fit``            budgeted fit ``{tenant, task, dims, epsilons, seed}``
``GET  /v1/tenants/<name>`` tenant status (budget, accumulators)
``POST /v1/snapshot``       force a durable snapshot of every tenant
``POST /v1/shutdown``       graceful drain + shutdown (also SIGTERM/SIGINT)
``GET  /healthz``           liveness (never queued, never shed)
``GET  /readyz``            readiness + admission gauges (503 while draining)
==========================  ====================================================

Backpressure
------------
At most ``max_inflight`` requests execute concurrently; at most
``max_queue`` more may wait for a slot.  A request beyond that is shed
*immediately* with a retryable 503 (``overloaded``) and a ``Retry-After``
hint — the bounded-queue alternative to unbounded buffering, asserted by
tests.  Health probes bypass admission entirely (an overloaded service
must still report itself alive).  Queue wait counts against the request's
deadline (``X-Deadline-Ms`` header or ``deadline_ms`` body field), which
the app propagates into the executor's ``tile_timeout``.

Shutdown drains: stop accepting, wait briefly for in-flight requests,
snapshot every tenant, close the session (which closes every tenant's
journal handle).  A ``kill -9`` instead of a drain is survivable by
design — that path is exercised by the chaos tests, not special-cased
here.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .app import ServeApp
from .protocol import (
    BadRequestError,
    Deadline,
    InternalServeError,
    NotReadyError,
    OverloadedError,
    ServeError,
)

__all__ = ["ServeHTTP"]

#: Seconds granted to in-flight requests during a graceful drain.
_DRAIN_SECONDS = 10.0

#: ``Retry-After`` hint (seconds) attached to retryable rejections.
_RETRY_AFTER = 1

#: Largest accepted request body (a full ingest batch of wide rows).
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _NotFound(ServeError):
    status = 404
    code = "not_found"
    retryable = False


class ServeHTTP:
    """Bounded-admission HTTP server around a :class:`ServeApp`."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 8,
        max_queue: int = 32,
        snapshot_interval: float = 5.0,
        port_file: str | Path | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.app = app
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.snapshot_interval = float(snapshot_interval)
        self.port_file = Path(port_file) if port_file is not None else None
        self.bound_port: int | None = None
        self._inflight = 0
        self._waiting = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._handlers: ThreadPoolExecutor | None = None
        self._sem: asyncio.Semaphore | None = None

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        recorder = self.app.session.recorder
        if recorder.recording:
            recorder.gauge("serve.inflight", self._inflight)
            recorder.gauge("serve.queue_waiting", self._waiting)

    def _admission_extra(self) -> dict:
        return {
            "inflight": self._inflight,
            "queue_waiting": self._waiting,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
        }

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise BadRequestError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise BadRequestError("malformed Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise BadRequestError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool,
        retry_after: int | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout"}.get(
                      status, "Status")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)

    def _parse_body(self, raw: bytes) -> dict:
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise BadRequestError("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        return body

    def _deadline_for(
        self, headers: dict, body: dict, received_at: float
    ) -> Deadline | None:
        """Deadline anchored at *receipt*, so queue wait counts against it."""
        raw = headers.get("x-deadline-ms", body.get("deadline_ms"))
        if raw is None:
            return None
        try:
            ms = float(raw)
        except (TypeError, ValueError):
            raise BadRequestError("deadline_ms must be a number") from None
        if ms <= 0:
            raise BadRequestError("deadline_ms must be positive")
        return Deadline.after_ms(ms, now=received_at)

    def _handle_sync(
        self, method: str, path: str, headers: dict, raw: bytes, received_at: float
    ) -> tuple[int, dict]:
        """Route + execute one request on a handler thread."""
        try:
            body = self._parse_body(raw)
            if method == "POST" and path == "/v1/tenants":
                return 200, self.app.create_tenant(body)
            if method == "POST" and path == "/v1/ingest":
                return 200, self.app.ingest(body)
            if method == "POST" and path == "/v1/fit":
                deadline = self._deadline_for(headers, body, received_at)
                return 200, self.app.fit(body, deadline)
            if method == "GET" and path.startswith("/v1/tenants/"):
                return 200, self.app.status(path[len("/v1/tenants/"):])
            if method == "POST" and path == "/v1/snapshot":
                return 200, self.app.snapshot()
            raise _NotFound(f"no route for {method} {path}")
        except ServeError as err:
            return err.status, err.to_wire()
        except Exception as exc:
            self.app.session.recorder.counter("serve.internal_errors")
            err = InternalServeError(f"{type(exc).__name__}: {exc}")
            return err.status, err.to_wire()

    async def _dispatch(
        self, method: str, path: str, headers: dict, raw: bytes, received_at: float
    ) -> tuple[int, dict, int | None]:
        """Admission control + handler offload; returns (status, body, retry)."""
        # Probes and shutdown bypass admission: an overloaded service must
        # still answer its orchestrator.
        if method == "GET" and path == "/healthz":
            return 200, self.app.healthz(), None
        if method == "GET" and path == "/readyz":
            try:
                return 200, self.app.readyz(self._admission_extra()), None
            except NotReadyError as err:
                return err.status, err.to_wire(), _RETRY_AFTER
        if method == "POST" and path == "/v1/shutdown":
            self._stop_event.set()
            return 200, {"status": "draining"}, None
        if self._inflight >= self.max_inflight and self._waiting >= self.max_queue:
            recorder = self.app.session.recorder
            recorder.counter("serve.shed_requests")
            err = OverloadedError(
                "admission queue full; retry with backoff",
                **self._admission_extra(),
            )
            return err.status, err.to_wire(), _RETRY_AFTER
        self._waiting += 1
        self._publish_gauges()
        try:
            async with self._sem:
                self._waiting -= 1
                self._inflight += 1
                self._publish_gauges()
                try:
                    loop = asyncio.get_running_loop()
                    status, payload = await loop.run_in_executor(
                        self._handlers,
                        self._handle_sync,
                        method, path, headers, raw, received_at,
                    )
                finally:
                    self._inflight -= 1
                    self._publish_gauges()
        except Exception:
            # _waiting was decremented only after acquiring; on a cancelled
            # wait it is still owed.
            raise
        retry = _RETRY_AFTER if payload.get("error", {}).get("retryable") else None
        return status, payload, retry

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except BadRequestError as err:
                    self._respond(writer, err.status, err.to_wire(), keep_alive=False)
                    break
                if request is None:
                    break
                received_at = time.monotonic()
                method, path, headers, raw = request
                status, payload, retry = await self._dispatch(
                    method, path, headers, raw, received_at
                )
                keep_alive = headers.get("connection", "keep-alive") != "close"
                self._respond(
                    writer, status, payload,
                    keep_alive=keep_alive, retry_after=retry,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: server.close() during drain cancels this
                # task while it waits out the socket teardown — the task is
                # ending anyway, and re-raising from a finally would only
                # feed asyncio's noisy unhandled-exception callback.
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.app.periodic_snapshot)

    async def serve(self, on_started=None) -> None:
        """Run until a stop signal, then drain and tear down."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        self._sem = asyncio.Semaphore(self.max_inflight)
        self._handlers = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="serve-handler"
        )
        server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.write_text(str(self.bound_port))
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        snapshots = (
            asyncio.create_task(self._snapshot_loop())
            if self.snapshot_interval > 0
            else None
        )
        if on_started is not None:
            on_started(self)
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            if snapshots is not None:
                snapshots.cancel()
            drain_until = loop.time() + _DRAIN_SECONDS
            while self._inflight > 0 and loop.time() < drain_until:
                await asyncio.sleep(0.02)
            self._handlers.shutdown(wait=False, cancel_futures=True)
            self.app.close()

    def run(self) -> None:
        """Blocking entry point (the CLI's)."""
        asyncio.run(self.serve())

    def request_stop(self) -> None:
        """Thread-safe graceful-shutdown trigger."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    def start_background(self, timeout: float = 15.0) -> threading.Thread:
        """Run the server on a daemon thread; returns once the port is bound.

        Test affordance: ``bound_port`` is set when this returns, and
        :meth:`request_stop` + ``thread.join()`` is a full graceful stop.
        """
        started = threading.Event()
        def _runner() -> None:
            asyncio.run(self.serve(on_started=lambda _self: started.set()))
        thread = threading.Thread(target=_runner, name="serve-http", daemon=True)
        thread.start()
        if not started.wait(timeout):
            raise RuntimeError("serve HTTP server failed to start in time")
        return thread
