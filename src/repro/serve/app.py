"""The transport-independent core of the DP serving layer.

:class:`ServeApp` is everything the service does, minus sockets: tenant
lifecycle, row ingestion, budgeted fits, snapshots, health.  The HTTP
layer (:mod:`repro.serve.http`) is a thin adapter that parses requests
into these synchronous calls; tests drive the app directly, so every
robustness property is testable without a port.

Fit lifecycle and the spend barrier
-----------------------------------
A fit request has exactly one irreversible step: the durable budget
spend.  Everything before it — validation, the statistics snapshot,
deadline checks — can fail *retryably*; everything after it runs to
completion, whatever the executors do:

1. snapshot the tenant's ``MomentAccumulator`` under the tenant lock
   (immutable view; the lock is released before any heavy work);
2. if the request's deadline already expired, reject retryably — the
   ledger is untouched;
3. ``budget.spend(sum(epsilons))`` against the tenant's write-ahead
   journal — over-spend is refused with a non-retryable 409, a crash
   inside the spend replays conservatively as spent;
4. fit one model per epsilon through the session's configured executor
   family, with the remaining deadline propagated into ``tile_timeout``
   and ``failure_mode="fallback"`` degrading process → thread → serial,
   so a committed spend always yields a released model.

Determinism: each epsilon's noise stream is
``derive_substream(seed, [_SERVE_STREAM_TAG, index])`` — a pure function
of the request, independent of executor, concurrency, retries and
injected faults — so a fit's :func:`~repro.serve.protocol.fit_digest`
under chaos equals the clean offline recomputation from the same rows.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path

import numpy as np

from ..engine.sweep import EpsilonSweepEngine
from ..exceptions import BudgetExhaustedError, DataError
from ..experiments.harness import objective_for
from ..faults import RetryPolicy, use_injector
from ..obs import use_recorder
from ..privacy.rng import derive_substream
from ..runtime import ProcessExecutor, SerialExecutor, ThreadExecutor, use_backend
from ..runtime.runner import _mapped
from ..session import Session
from .protocol import (
    BadRequestError,
    BudgetRefusedError,
    Deadline,
    DeadlineExceededError,
    NotReadyError,
    fit_digest,
    parse_fit_request,
    parse_ingest_request,
    parse_tenant_request,
)
from .state import TenantRegistry, TenantState

__all__ = ["ServeApp"]

#: Domain tag for serve fit substreams (``b"SRVE"`` as an integer): keyed
#: per (request seed, epsilon index), never by execution order.
_SERVE_STREAM_TAG = 0x53525645

#: Floor for a propagated tile timeout: a deadline that expires mid-fit
#: still leaves the executor a beat to finish before degradation kicks in.
_MIN_TILE_TIMEOUT = 0.05


def _partition_site(partition: str | None) -> int | None:
    """A stable integer substream key for a partition name.

    Partitioned fits must not share noise draws with each other (or with
    the unpartitioned fit) under the same request seed: the partitions
    hold *disjoint* data, so bitwise-shared noise would cancel under
    subtraction of two releases.  Folding a hash of the name into the
    substream path keeps every partition's stream independent while
    leaving unpartitioned fits bitwise identical to before.
    """
    if partition is None:
        return None
    return int(hashlib.sha256(partition.encode()).hexdigest()[:8], 16)


class _FitWork:
    """One epsilon's Functional-Mechanism release; items are ``(index, eps)``.

    Module-level and built only from picklable state (task name, dims,
    the snapshot's :class:`~repro.core.polynomial.QuadraticForm`), so
    process pools can ship it.  Each item derives its own keyed noise
    substream — executor-independent by construction.
    """

    def __init__(
        self,
        task: str,
        dims: int,
        form,
        seed: int,
        stream_version: int,
        partition_site: int | None = None,
    ) -> None:
        self.task = task
        self.dims = dims
        self.form = form
        self.seed = seed
        self.stream_version = stream_version
        self.partition_site = partition_site

    def __call__(self, item: tuple[int, float]) -> np.ndarray:
        index, epsilon = item
        objective = objective_for(self.task, self.dims)
        engine = EpsilonSweepEngine(objective, self.form)
        path = [_SERVE_STREAM_TAG, index]
        if self.partition_site is not None:
            path = [_SERVE_STREAM_TAG, self.partition_site, index]
        rng = derive_substream(
            self.seed, path, stream_version=self.stream_version
        )
        return engine.sweep([epsilon], rng=rng).coefficients[0]


class ServeApp:
    """The serving layer's application core over one persistent session.

    Parameters
    ----------
    data_dir:
        Root of all durable tenant state (ledgers, snapshots, metadata).
        Restored on construction: existing budget journals replay via
        ``PrivacyBudget.restore`` and accumulator snapshots reload from
        their checksummed containers.
    session:
        The :class:`~repro.session.Session` supplying the execution
        policy, recorder and fault injector; the app adopts its tenant
        registry into the session so one ``close()`` tears everything
        down.  ``None`` builds a session from the environment.
    max_resident_tenants / tenant_idle_ttl:
        Tenant-cache bounds forwarded to :class:`TenantRegistry`: an LRU
        cap on in-memory tenants and a seconds-since-last-touch TTL.
        Evicted tenants are snapshotted first and transparently reloaded
        on the next touch.  ``None`` (the default) keeps the historical
        keep-everything behavior.
    """

    def __init__(
        self,
        data_dir: str | Path,
        session: Session | None = None,
        max_resident_tenants: int | None = None,
        tenant_idle_ttl: float | None = None,
    ) -> None:
        self.session = session if session is not None else Session()
        self.registry = TenantRegistry(
            data_dir,
            max_resident=max_resident_tenants,
            idle_ttl=tenant_idle_ttl,
        )
        self._started_at = time.monotonic()
        self._closed = False
        self._close_lock = threading.Lock()
        # The ambient recorder/injector slots are module globals shared by
        # every thread — by design, so forked pool workers inherit them.
        # Entering/exiting them per request on concurrent handler threads
        # would race the save/restore (and could leak the fault injector
        # past the app's life), so the service installs its session's
        # ambience exactly once, for its whole lifetime.
        self._ambience = ExitStack()
        self._ambience.enter_context(use_recorder(self.session.recorder))
        self._ambience.enter_context(use_injector(self.session.injector))
        self._ambience.enter_context(use_backend(self.session.backend))
        try:
            with self._scope("serve.restore"):
                self.restored_tenants = self.registry.restore_all()
        except BaseException:
            self._ambience.close()
            raise
        self.session.adopt(self.registry)
        self._ready = True

    # ------------------------------------------------------------------
    @contextmanager
    def _scope(self, span: str, **attrs):
        """Time one request span on the session's (thread-safe) recorder."""
        recorder = self.session.recorder
        with recorder.span(span, **attrs):
            yield recorder

    def _check_ready(self) -> None:
        if self._closed or not getattr(self, "_ready", False):
            raise NotReadyError("service is starting or draining")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def create_tenant(self, body: dict) -> dict:
        name, total = parse_tenant_request(body)
        self._check_ready()
        with self._scope("serve.create_tenant", tenant=name):
            tenant = self.registry.create(name, total)
            with tenant.locked():
                return tenant.status()

    def ingest(self, body: dict) -> dict:
        name, task, dims, partition, X, y, durable = parse_ingest_request(body)
        self._check_ready()
        # Leases pin the tenant resident for the request's whole extent so
        # the idle/LRU evictor can never close its journal mid-flight.
        with self.registry.lease(name) as tenant, self._scope(
            "serve.ingest", tenant=name, rows=len(X)
        ) as recorder:
            with tenant.locked():
                try:
                    n_rows = tenant.ingest(task, dims, X, y, partition=partition)
                except DataError as exc:
                    raise BadRequestError(str(exc)) from None
            if durable:
                tenant.snapshot()
            recorder.counter("serve.rows_ingested", len(X))
            response = {
                "tenant": name,
                "task": task,
                "dims": dims,
                "rows_accepted": int(len(X)),
                "n_rows": int(n_rows),
                "durable": durable,
            }
            if partition is not None:
                response["partition"] = partition
            return response

    def fit(self, body: dict, deadline: Deadline | None = None) -> dict:
        name, task, dims, partition, epsilons, seed = parse_fit_request(body)
        self._check_ready()
        with self.registry.lease(name) as tenant, self._scope(
            "serve.fit", tenant=name, points=len(epsilons)
        ) as recorder:
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    "deadline expired before fit started", tenant=name
                )
            with tenant.locked():
                key = TenantState.acc_key(task, dims, partition)
                acc = tenant._accumulators.get(key)
                if acc is None or acc.n_rows == 0:
                    where = f"{task} d={dims}" + (
                        f" partition={partition!r}" if partition else ""
                    )
                    raise BadRequestError(
                        f"tenant {name!r} has no rows for {where}; "
                        f"ingest before fitting"
                    )
                statistics = acc.snapshot()
                n_rows = acc.n_rows
            # Last retryable exit: past this point the spend is durable and
            # the fit runs to completion (the fallback chain floors at
            # serial execution in this very process).
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    "deadline expired before budget spend", tenant=name
                )
            requested = math.fsum(epsilons)
            note = f"serve fit {task}-d{dims} seed={seed} k={len(epsilons)}"
            try:
                if partition is None:
                    # Sequential composition: the full cost hits the ledger.
                    tenant.budget.spend(requested, note=note)
                    charged = requested
                else:
                    # Parallel composition over disjoint partitions: only
                    # the increase of the running maximum hits the ledger
                    # (possibly nothing — recorded durably either way).
                    charged = tenant.charge_partitioned(partition, requested, note)
            except BudgetExhaustedError as exc:
                recorder.counter("serve.budget_refusals")
                raise BudgetRefusedError(
                    str(exc),
                    tenant=name,
                    requested=exc.requested,
                    remaining=exc.remaining,
                ) from None
            omegas = self._execute_fit(
                task, dims, statistics, epsilons, seed, deadline,
                partition=partition,
            )
            digest = fit_digest(task, dims, epsilons, seed, n_rows, omegas)
            recorder.counter("serve.fits")
            recorder.counter("serve.fit_models", len(epsilons))
            response = {
                "tenant": name,
                "task": task,
                "dims": dims,
                "epsilons": list(epsilons),
                "seed": seed,
                "n_rows": int(n_rows),
                "spent_epsilon": charged,
                "remaining_epsilon": tenant.budget.remaining,
                "omegas": [list(map(float, row)) for row in omegas],
                "digest": digest,
            }
            if partition is not None:
                response["partition"] = partition
                response["partition_epsilon"] = requested
            return response

    def _fit_executor(self, deadline: Deadline | None):
        """A per-request executor honoring policy + the remaining deadline.

        Fresh per request on purpose: concurrent fits must not share one
        pool's rebuild state, and ``tile_timeout`` is a per-request value
        (the deadline's remainder), which a shared pool cannot carry.
        Timeout enforcement is a process-executor capability; serial and
        thread fits run to completion (and are the fallback floor anyway).
        """
        policy = self.session.policy
        if policy.executor == "thread":
            return ThreadExecutor(policy.max_workers)
        if policy.executor == "serial":
            return SerialExecutor()
        timeout = policy.tile_timeout
        if deadline is not None:
            remaining = max(deadline.remaining(), _MIN_TILE_TIMEOUT)
            timeout = remaining if timeout is None else min(timeout, remaining)
        retry = RetryPolicy(
            max_retries=policy.max_retries,
            tile_timeout=timeout,
            failure_mode=policy.failure_mode,
        )
        return ProcessExecutor(policy.max_workers, retry=retry)

    def _execute_fit(
        self,
        task: str,
        dims: int,
        statistics,
        epsilons: tuple[float, ...],
        seed: int,
        deadline: Deadline | None,
        partition: str | None = None,
    ) -> np.ndarray:
        """Release one model per epsilon; completion is unconditional.

        ``_mapped`` supplies the graceful-degradation chain: a process
        executor broken past its retries under ``failure_mode="fallback"``
        re-runs only the pending epsilons on a thread pool, then serially
        — bitwise-identically, since every epsilon's stream is keyed, not
        positional.
        """
        objective = objective_for(task, dims)
        form = statistics.quadratic_form(objective)
        work = _FitWork(
            task, dims, form, seed, self.session.policy.stream_version,
            partition_site=_partition_site(partition),
        )
        items = [(i, eps) for i, eps in enumerate(epsilons)]
        executor = self._fit_executor(deadline)
        try:
            rows = _mapped(executor, work, items)
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        return np.asarray(rows, dtype=float)

    def status(self, name: str) -> dict:
        with self.registry.lease(name) as tenant, self._scope(
            "serve.status", tenant=name
        ):
            with tenant.locked():
                return tenant.status()

    def snapshot(self) -> dict:
        """Force a durable snapshot of every tenant (admin endpoint)."""
        with self._scope("serve.snapshot"):
            written = self.registry.snapshot_all(force=True)
            return {"snapshots_written": int(written)}

    def periodic_snapshot(self) -> int:
        """One background snapshot + eviction cycle; never raises."""
        try:
            with self._scope("serve.snapshot", periodic=True):
                written = self.registry.snapshot_all()
                self.registry.evict_idle()
                return written
        except Exception:
            self.session.recorder.counter("serve.snapshot_failures")
            return 0

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness: the process is up and handling requests."""
        return {
            "status": "ok" if not self._closed else "closed",
            "uptime_seconds": time.monotonic() - self._started_at,
            "tenants": len(self.registry.names()),
        }

    def readyz(self, extra: dict | None = None) -> dict:
        """Readiness: serving traffic (transport merges admission gauges)."""
        ready = not self._closed and getattr(self, "_ready", False)
        body = {
            "ready": ready,
            "tenants": len(self.registry.names()),
            "restored_tenants": self.restored_tenants,
        }
        if extra:
            body.update(extra)
        if not ready:
            raise NotReadyError("service is starting or draining", **body)
        return body

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain: final forced snapshot, then release every resource.

        Idempotent.  The final snapshot is best-effort (a disk failure
        must not block shutdown); the session close beneath it never
        raises and tears down the registry's journal handles LIFO.
        """
        with self._close_lock:
            if self._closed:
                return
            self._ready = False
            self._closed = True
        try:
            with self._scope("serve.shutdown"):
                self.registry.snapshot_all(force=True)
        except Exception:
            self.session.recorder.counter("serve.snapshot_failures")
        finally:
            self._ambience.close()
        self.session.close()

    def __enter__(self) -> "ServeApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
