"""Offline verifier for a serve run: ledger replay + fit-digest equality.

Given a load-generator report (:mod:`repro.serve.loadgen`) and the
service's data directory, this module checks the two chaos-acceptance
invariants *from the durable state alone* — the service itself may have
been ``kill -9``-ed:

1. **No accepted spend is under-recorded.**  Each tenant's write-ahead
   journal is replayed via :meth:`PrivacyBudget.restore`; the restored
   ``spent`` must be at least the sum of spends the service *accepted*
   (HTTP 200 fits in the report).  Under injected ``budget.crash`` faults
   the ledger may legitimately exceed it (uncommitted intents replay
   conservatively as spent); with ``strict=True`` (clean runs) the two
   must agree to floating-point slack.

2. **No fit digest differs from a clean recomputation.**  The loadgen's
   rows are a pure function of ``(seed, tenant, batch)`` and each fit's
   noise streams are keyed by its request seed, so every released fit is
   recomputed here — same accumulator block structure, same substreams,
   no service, no executor — and its digest must match bitwise.

Run standalone::

    python -m repro.serve.check --data-dir /tmp/serve-data --report report.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

import numpy as np

from ..engine.accumulator import MomentAccumulator
from ..privacy.budget import PrivacyBudget
from .app import _FitWork
from .loadgen import synthetic_batch
from .protocol import fit_digest

__all__ = ["verify_report"]


def _tenant_index(name: str) -> int:
    return int(name.rsplit("-", 1)[1])


def _expected_digest(
    config: dict, tenant_index: int, fit: dict, stream_version: int
) -> str:
    """Recompute one fit exactly as the service did, without the service."""
    task = config["task"]
    dims = int(config["dims"])
    accumulator = MomentAccumulator(dim=dims)
    for batch in range(int(config["batches"])):
        X, y = synthetic_batch(
            int(config["seed"]), tenant_index, batch,
            int(config["rows_per_batch"]), dims,
        )
        accumulator.update(X, y)
    from ..experiments.harness import objective_for

    objective = objective_for(task, dims)
    form = accumulator.snapshot().quadratic_form(objective)
    epsilons = tuple(float(e) for e in fit["epsilons"])
    work = _FitWork(task, dims, form, int(fit["seed"]), stream_version)
    omegas = np.asarray(
        [work((i, eps)) for i, eps in enumerate(epsilons)], dtype=float
    )
    return fit_digest(
        task, dims, epsilons, int(fit["seed"]), accumulator.n_rows, omegas
    )


def verify_report(
    report: dict,
    data_dir: str | Path,
    *,
    strict: bool = False,
    stream_version: int = 2,
) -> dict:
    """Check both invariants; returns ``{"ok": bool, "violations": [...]}."""
    data_dir = Path(data_dir)
    config = report["config"]
    violations: list[dict] = []
    tenants_checked = 0
    digests_checked = 0
    for tenant_report in report["tenants"]:
        name = tenant_report["tenant"]
        index = _tenant_index(name)
        journal = data_dir / "tenants" / name / "budget.journal"
        accepted = float(tenant_report["accepted_epsilon"])
        if not journal.exists():
            if accepted > 0.0:
                violations.append(
                    {"tenant": name, "kind": "missing_journal",
                     "detail": f"{accepted:g} accepted epsilon but no journal"}
                )
            continue
        budget = PrivacyBudget.restore(journal)
        try:
            slack = max(1e-9, 64.0 * math.ulp(budget.total))
            if budget.spent < accepted - slack:
                violations.append(
                    {"tenant": name, "kind": "under_recorded",
                     "detail": f"ledger spent {budget.spent!r} < accepted "
                               f"{accepted!r}"}
                )
            if strict and abs(budget.spent - accepted) > slack:
                violations.append(
                    {"tenant": name, "kind": "ledger_mismatch",
                     "detail": f"strict mode: ledger spent {budget.spent!r} "
                               f"!= accepted {accepted!r}"}
                )
        finally:
            budget.close()
        tenants_checked += 1
        for fit in tenant_report["fits"]:
            expected = _expected_digest(config, index, fit, stream_version)
            if fit["digest"] != expected:
                violations.append(
                    {"tenant": name, "kind": "digest_mismatch",
                     "detail": f"seed {fit['seed']}: served {fit['digest']} "
                               f"!= offline {expected}"}
                )
            digests_checked += 1
    return {
        "ok": not violations,
        "strict": strict,
        "tenants_checked": tenants_checked,
        "digests_checked": digests_checked,
        "violations": violations,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="offline serve-run verifier")
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--report", required=True)
    parser.add_argument(
        "--strict", action="store_true",
        help="require ledger == accepted spends exactly (clean runs only)",
    )
    parser.add_argument("--stream-version", type=int, default=2)
    args = parser.parse_args(argv)
    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    result = verify_report(
        report, args.data_dir,
        strict=args.strict, stream_version=args.stream_version,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
