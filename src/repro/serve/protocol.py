"""Wire protocol of the ``repro.serve`` service.

Everything a request or response carries crosses the wire as one JSON
object; this module is the single place that validates, normalizes and
classifies those payloads, so the transport layer (:mod:`repro.serve.http`)
and the application core (:mod:`repro.serve.app`) never parse fields
themselves.

Error taxonomy
--------------
Every failure surfaces as a :class:`ServeError` with three client-facing
attributes: an HTTP ``status``, a stable machine-readable ``code``, and a
``retryable`` flag.  The flag is the load-shedding contract: a *retryable*
rejection (``overloaded``, ``not_ready``, ``deadline_exceeded``, an
injected fault) means "the request was refused *before* anything
irreversible happened — back off and resend"; a non-retryable one
(``budget_exhausted``, validation errors) means resending the identical
request can never succeed.  A client must never retry a non-retryable
error and may always retry a retryable one, because the service guarantees
retryable rejections happen before any privacy budget is spent.

Fit digests
-----------
:func:`fit_digest` fingerprints a released fit: the exact bytes of every
released coefficient vector plus the request identity (task, dims,
epsilons, seed, row count).  Because serve noise streams are keyed by
``(seed, epsilon index)`` through :func:`repro.privacy.rng.derive_substream`
— never by wall-clock, thread or retry count — the digest of a fit served
under injected crashes equals the digest of the same fit computed offline
from the same rows, which is what the chaos suite asserts.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BadRequestError",
    "BudgetRefusedError",
    "Deadline",
    "DeadlineExceededError",
    "InternalServeError",
    "NotReadyError",
    "OverloadedError",
    "ServeError",
    "TenantExistsError",
    "UnknownTenantError",
    "fit_digest",
    "parse_fit_request",
    "parse_ingest_request",
    "parse_tenant_request",
]

#: Wire format version embedded in every response envelope.
PROTOCOL_VERSION = 1

#: Tasks a tenant can stream rows for (the paper's two case studies).
SERVE_TASKS = ("linear", "logistic")

#: Hard cap on rows per ingest request (admission control for payloads:
#: a bigger batch should be split client-side, not buffered server-side).
MAX_INGEST_ROWS = 100_000

#: Hard cap on epsilons per fit request.
MAX_FIT_EPSILONS = 64


class ServeError(Exception):
    """A request-level failure with a wire classification.

    ``status`` is the HTTP status code, ``code`` the stable machine
    string, ``retryable`` whether resending the identical request can
    succeed (and is safe: retryable errors are raised before any budget
    spend becomes durable).
    """

    status = 500
    code = "internal"
    retryable = False

    def __init__(self, message: str, **details) -> None:
        super().__init__(message)
        self.message = message
        self.details = details

    def to_wire(self) -> dict:
        """The JSON error body a transport should send."""
        body = {
            "error": {
                "code": self.code,
                "message": self.message,
                "retryable": self.retryable,
            }
        }
        if self.details:
            body["error"]["details"] = self.details
        return body


class BadRequestError(ServeError):
    """Malformed or out-of-domain request payload."""

    status = 400
    code = "bad_request"
    retryable = False


class UnknownTenantError(ServeError):
    """The named tenant does not exist (and auto-creation is off)."""

    status = 404
    code = "unknown_tenant"
    retryable = False


class TenantExistsError(ServeError):
    """Explicit tenant creation collided with an existing tenant."""

    status = 409
    code = "tenant_exists"
    retryable = False


class BudgetRefusedError(ServeError):
    """The tenant's durable ledger refused the spend (over-budget).

    Deliberately non-retryable: the ledger is monotone, so the identical
    request can never succeed later.
    """

    status = 409
    code = "budget_exhausted"
    retryable = False


class OverloadedError(ServeError):
    """Load shed: the bounded admission queue is full.

    The explicit, *retryable* alternative to unbounded queueing — the
    request was rejected before any state was touched.
    """

    status = 503
    code = "overloaded"
    retryable = True


class NotReadyError(ServeError):
    """The service is starting up or draining; try another replica/later."""

    status = 503
    code = "not_ready"
    retryable = True


class DeadlineExceededError(ServeError):
    """The request's deadline expired before the irreversible step.

    Raised only *before* the budget spend becomes durable, so it is safe
    to retry; once a spend is committed the fit always runs to completion.
    """

    status = 504
    code = "deadline_exceeded"
    retryable = True


class InternalServeError(ServeError):
    """An unexpected server-side failure."""

    status = 500
    code = "internal"
    retryable = False


@dataclass(frozen=True)
class Deadline:
    """A request deadline on the monotonic clock.

    Constructed at *parse* time, so queue wait counts against it — a
    request that spends its whole deadline waiting for an admission slot
    is rejected retryably instead of executing late.
    """

    expires_at: float

    @classmethod
    def after_ms(cls, ms: float, now: float | None = None) -> "Deadline":
        start = time.monotonic() if now is None else now
        return cls(expires_at=start + float(ms) / 1000.0)

    def remaining(self, now: float | None = None) -> float:
        """Seconds left; negative once expired."""
        current = time.monotonic() if now is None else now
        return self.expires_at - current

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------
def _require(body: dict, field: str, kind, what: str):
    value = body.get(field)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise BadRequestError(f"field {field!r} must be {what}", field=field)
    return value


def _tenant_name(body: dict) -> str:
    name = _require(body, "tenant", str, "a string")
    if not name or len(name) > 128 or not all(
        c.isalnum() or c in "-_." for c in name
    ):
        raise BadRequestError(
            "tenant names are 1-128 chars of [alnum-_.]", field="tenant"
        )
    return name


def _task(body: dict) -> str:
    task = _require(body, "task", str, "a string")
    if task not in SERVE_TASKS:
        raise BadRequestError(
            f"task must be one of {SERVE_TASKS}, got {task!r}", field="task"
        )
    return task


def _dims(body: dict) -> int:
    dims = _require(body, "dims", int, "an integer")
    if not 1 <= dims <= 256:
        raise BadRequestError("dims must be in [1, 256]", field="dims")
    return dims


def _partition(body: dict) -> str | None:
    """Optional ``partition`` field: a named disjoint user subset.

    Partitions declare *disjointness*: rows ingested under different
    partitions of one tenant belong to different users, so fits against
    different partitions compose in **parallel** (the ledger charges the
    running maximum, not the sum).  The service cannot verify the
    disjointness claim — it is part of the tenant's trust contract, like
    the row-norm domain bounds.  ``None`` (field absent) keeps the
    sequential-composition behavior.
    """
    value = body.get("partition")
    if value is None:
        return None
    if not isinstance(value, str):
        raise BadRequestError("field 'partition' must be a string", field="partition")
    if not value or len(value) > 64 or not all(
        c.isalnum() or c in "-_." for c in value
    ):
        raise BadRequestError(
            "partition names are 1-64 chars of [alnum-_.]", field="partition"
        )
    return value


def parse_tenant_request(body: dict) -> tuple[str, float]:
    """Validate a tenant-creation body: ``{tenant, total_epsilon}``."""
    name = _tenant_name(body)
    total = body.get("total_epsilon")
    if not isinstance(total, (int, float)) or isinstance(total, bool):
        raise BadRequestError(
            "field 'total_epsilon' must be a number", field="total_epsilon"
        )
    total = float(total)
    if not math.isfinite(total) or total <= 0.0:
        raise BadRequestError(
            f"total_epsilon must be positive and finite, got {total!r}",
            field="total_epsilon",
        )
    return name, total


def parse_ingest_request(
    body: dict,
) -> tuple[str, str, int, str | None, np.ndarray, np.ndarray, bool]:
    """Validate an ingest body: ``{tenant, task, dims[, partition], x, y[, durable]}``.

    ``x`` is a list of ``dims``-length rows, ``y`` the matching targets.
    Domain checks beyond shape (``||x||_2 <= 1``, ``|y| <= 1``) are the
    accumulator's own validation — one implementation, one error message.
    ``partition`` (optional) routes the rows into a named disjoint
    partition of the tenant's data (see :func:`_partition`).
    """
    name = _tenant_name(body)
    task = _task(body)
    dims = _dims(body)
    partition = _partition(body)
    rows = _require(body, "x", list, "a list of rows")
    targets = _require(body, "y", list, "a list of numbers")
    if not rows:
        raise BadRequestError("ingest needs at least one row", field="x")
    if len(rows) > MAX_INGEST_ROWS:
        raise BadRequestError(
            f"at most {MAX_INGEST_ROWS} rows per ingest request; split the "
            f"batch client-side",
            field="x",
        )
    if len(targets) != len(rows):
        raise BadRequestError(
            f"x has {len(rows)} rows but y has {len(targets)} entries", field="y"
        )
    try:
        X = np.asarray(rows, dtype=float)
        y = np.asarray(targets, dtype=float)
    except (TypeError, ValueError):
        raise BadRequestError("x/y entries must be numbers") from None
    if X.ndim != 2 or X.shape[1] != dims:
        raise BadRequestError(
            f"each row must have exactly dims={dims} features", field="x"
        )
    durable = body.get("durable", False)
    if not isinstance(durable, bool):
        raise BadRequestError("field 'durable' must be a boolean", field="durable")
    return name, task, dims, partition, X, y, durable


def parse_fit_request(
    body: dict,
) -> tuple[str, str, int, str | None, tuple[float, ...], int]:
    """Validate a fit body: ``{tenant, task, dims[, partition], epsilons, seed}``.

    ``epsilons`` may be a single number or a list; ``seed`` keys the
    release's noise substreams and is required, so a fit is reproducible
    (and therefore digest-checkable) by construction.  A ``partition``
    fit releases over that partition's accumulator only and is charged
    under parallel composition (see :func:`_partition`).
    """
    name = _tenant_name(body)
    task = _task(body)
    dims = _dims(body)
    partition = _partition(body)
    raw = body.get("epsilons", body.get("epsilon"))
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise BadRequestError(
            "field 'epsilons' must be a positive number or non-empty list",
            field="epsilons",
        )
    if len(raw) > MAX_FIT_EPSILONS:
        raise BadRequestError(
            f"at most {MAX_FIT_EPSILONS} epsilons per fit", field="epsilons"
        )
    epsilons = []
    for value in raw:
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not math.isfinite(float(value))
            or float(value) <= 0.0
        ):
            raise BadRequestError(
                f"epsilons must be positive finite numbers, got {value!r}",
                field="epsilons",
            )
        epsilons.append(float(value))
    seed = _require(body, "seed", int, "an integer")
    return name, task, dims, partition, tuple(epsilons), seed


# ----------------------------------------------------------------------
# Fit digests
# ----------------------------------------------------------------------
def fit_digest(
    task: str,
    dims: int,
    epsilons: tuple[float, ...],
    seed: int,
    n_rows: int,
    omegas: np.ndarray,
) -> str:
    """SHA-256 fingerprint of one released fit (request identity + bytes).

    Bitwise-stable across executors, retries and injected faults — the
    chaos acceptance criterion compares exactly this value against a
    clean offline recomputation.
    """
    digest = hashlib.sha256()
    digest.update(
        f"fit:v{PROTOCOL_VERSION}:{task}:d{dims}:n{n_rows}:seed{seed}:".encode()
    )
    digest.update(np.asarray(epsilons, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(np.asarray(omegas, dtype=float)).tobytes())
    return digest.hexdigest()
