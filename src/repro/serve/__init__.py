"""``repro.serve`` — the crash-tolerant multi-tenant DP serving layer.

The ROADMAP's DP-as-a-service direction, built on PR 7's durability
primitives: tenants stream rows into per-(tenant, task, dims)
:class:`~repro.engine.accumulator.MomentAccumulator`s and request
Functional-Mechanism fits at any epsilon, with every spend drawn against
a durable per-tenant :class:`~repro.privacy.budget.PrivacyBudget`
write-ahead ledger that refuses over-spend and replays correctly after
``kill -9``.

Layering (each importable and testable without the one above):

:mod:`~repro.serve.protocol`
    Wire validation, the retryable-error taxonomy, deadlines, fit digests.
:mod:`~repro.serve.state`
    Durable tenant state: budget journals, atomic checksummed
    accumulator snapshots, the single-writer lock discipline.
:mod:`~repro.serve.app`
    The transport-independent service core around one persistent
    :class:`~repro.session.Session`.
:mod:`~repro.serve.http`
    Asyncio HTTP/1.1 transport with bounded admission and load shedding.
:mod:`~repro.serve.client` / :mod:`~repro.serve.loadgen` / :mod:`~repro.serve.check`
    Stdlib client, deterministic concurrent load generator, and the
    offline ledger/digest verifier used by the chaos acceptance tests.
"""

from .app import ServeApp
from .client import ServeClient, ServeResponseError
from .http import ServeHTTP
from .protocol import (
    BadRequestError,
    BudgetRefusedError,
    Deadline,
    DeadlineExceededError,
    NotReadyError,
    OverloadedError,
    ServeError,
    TenantExistsError,
    UnknownTenantError,
    fit_digest,
)
from .state import TenantRegistry, TenantState

__all__ = [
    "BadRequestError",
    "BudgetRefusedError",
    "Deadline",
    "DeadlineExceededError",
    "NotReadyError",
    "OverloadedError",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeHTTP",
    "ServeResponseError",
    "TenantExistsError",
    "TenantRegistry",
    "TenantState",
    "UnknownTenantError",
    "fit_digest",
]
