"""Stdlib client for the serve API (used by tests, the load generator
and the benchmark — anything that must speak to a live service without
new dependencies).

:class:`ServeClient` keeps one persistent HTTP/1.1 connection
(reconnecting transparently) and raises :class:`ServeResponseError` on
any non-200 response, carrying the wire error's ``code`` and
``retryable`` flag.  :meth:`ServeClient.with_retries` implements the
client half of the overload contract: retry *only* errors the server
marked retryable (shed, not-ready, deadline), with bounded exponential
backoff — a non-retryable refusal (budget exhausted, validation) is
final by definition.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

__all__ = ["ServeClient", "ServeResponseError"]


class ServeResponseError(Exception):
    """A non-200 response from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.status = status
        self.code = error.get("code", "unknown")
        self.retryable = bool(error.get("retryable", False))
        self.payload = payload
        super().__init__(f"HTTP {status} {self.code}: {error.get('message', payload)}")


class ServeClient:
    """A minimal synchronous client for one serve endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> dict:
        """One request/response cycle; reconnects once on a dead socket."""
        payload = json.dumps(body).encode() if body is not None else None
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, socket.timeout, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"error": {"code": "bad_payload", "message": raw[:200].decode("latin-1")}}
        if response.status != 200:
            raise ServeResponseError(response.status, data)
        return data

    def with_retries(
        self,
        fn,
        *,
        max_retries: int = 5,
        backoff_seconds: float = 0.05,
        backoff_cap: float = 1.0,
    ):
        """Call ``fn`` retrying only server-marked-retryable rejections."""
        attempt = 0
        while True:
            try:
                return fn()
            except ServeResponseError as err:
                if not err.retryable or attempt >= max_retries:
                    raise
                delay = min(backoff_cap, backoff_seconds * (2.0 ** attempt))
                time.sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def create_tenant(self, tenant: str, total_epsilon: float) -> dict:
        return self.request(
            "POST", "/v1/tenants",
            {"tenant": tenant, "total_epsilon": total_epsilon},
        )

    def ingest(
        self, tenant: str, task: str, dims: int, x, y, durable: bool = False
    ) -> dict:
        return self.request(
            "POST", "/v1/ingest",
            {"tenant": tenant, "task": task, "dims": dims,
             "x": x, "y": y, "durable": durable},
        )

    def fit(
        self,
        tenant: str,
        task: str,
        dims: int,
        epsilons,
        seed: int,
        deadline_ms: float | None = None,
    ) -> dict:
        body = {"tenant": tenant, "task": task, "dims": dims,
                "epsilons": list(epsilons), "seed": seed}
        headers = {}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        return self.request("POST", "/v1/fit", body, headers)

    def status(self, tenant: str) -> dict:
        return self.request("GET", f"/v1/tenants/{tenant}")

    def snapshot(self) -> dict:
        return self.request("POST", "/v1/snapshot")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def readyz(self) -> dict:
        return self.request("GET", "/readyz")

    def shutdown(self) -> dict:
        return self.request("POST", "/v1/shutdown")
