"""repro.engine — streaming, shardable sufficient-statistics engine.

The degree-2 objectives of the paper reduce Algorithm 1's expensive step —
aggregating the database-level polynomial coefficients — to additive moment
statistics.  This package exploits that structure end to end:

:mod:`repro.engine.accumulator`
    :class:`MomentAccumulator`: chunked/streaming accumulation with exactly
    associative-commutative ``merge`` and bit-deterministic results.
:mod:`repro.engine.sharding`
    :class:`ShardedAccumulator`: N-way thread-parallel ingestion with
    block-aligned partitions and a tree merge; shard count never changes
    the statistics.
:mod:`repro.engine.sweep`
    :class:`EpsilonSweepEngine`: fitted FM models for a whole epsilon vector
    from one data pass, with vectorized Laplace draws and repeated-draw
    variance estimation.
:mod:`repro.engine.cache`
    :class:`AccumulatorCache`: content-addressed on-disk reuse of finalized
    statistics between runs.
"""

from .accumulator import DEFAULT_BLOCK_SIZE, MomentAccumulator, MomentSnapshot
from .cache import AccumulatorCache, dataset_fingerprint, objective_tag
from .sharding import ShardedAccumulator, shard_slices, tree_merge
from .sweep import (
    EpsilonSweepEngine,
    EpsilonSweepResult,
    SweepPoint,
    SweepVariance,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "MomentAccumulator",
    "MomentSnapshot",
    "AccumulatorCache",
    "dataset_fingerprint",
    "objective_tag",
    "ShardedAccumulator",
    "shard_slices",
    "tree_merge",
    "EpsilonSweepEngine",
    "EpsilonSweepResult",
    "SweepPoint",
    "SweepVariance",
]
