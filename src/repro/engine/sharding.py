"""Sharded (parallel) accumulation of moment statistics.

:class:`ShardedAccumulator` partitions a dataset across N worker shards,
accumulates each shard with its own :class:`~repro.engine.accumulator.
MomentAccumulator`, and tree-merges the partials.  The workers run on a
thread pool: the per-block matmuls release the GIL inside NumPy's BLAS, so
threads give real parallelism without pickling the data.

Shard-count invariance
----------------------
Shard boundaries are aligned to multiples of the accumulator's canonical
``block_size`` (see :func:`shard_slices`).  Every shard therefore produces
exactly the blocks the monolithic accumulator would produce for the same
rows, and because the final reduction is the order-invariant
correctly-rounded sum, the merged statistics are **bit-identical** for any
shard count — parallelism degree can never change a result.

RNG story
---------
Accumulation itself is deterministic, but shard-parallel *randomized* work
(per-shard synthetic data generation, bootstrap resampling, future
distributed noise generation) needs reproducible per-shard streams that do
not depend on worker scheduling.  :meth:`ShardedAccumulator.shard_substreams`
derives one generator per shard through
:func:`repro.privacy.rng.derive_substream`, keyed by ``(namespace tag,
caller tag, shard index)`` — the same ``(seed, shard)`` pair always yields
the same stream regardless of how many draws other shards consumed.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, derive_substream
from .accumulator import DEFAULT_BLOCK_SIZE, MomentAccumulator

__all__ = ["SHARD_STREAM_TAG", "ShardedAccumulator", "shard_slices", "tree_merge"]

#: Namespace tag isolating shard substreams from other derive_substream uses.
SHARD_STREAM_TAG = 0x5AD


def shard_slices(n_rows: int, shards: int, block_size: int = DEFAULT_BLOCK_SIZE) -> list[slice]:
    """Contiguous, block-aligned row slices covering ``range(n_rows)``.

    Boundaries fall on multiples of ``block_size`` so each shard's canonical
    block decomposition coincides with the monolithic one (the key to
    bit-identical shard-count invariance).  Blocks are spread as evenly as
    possible; with more shards than blocks, trailing slices are empty.

    >>> shard_slices(10, 2, block_size=4)
    [slice(0, 4, None), slice(4, 10, None)]
    """
    n_rows = int(n_rows)
    shards = int(shards)
    if n_rows < 0:
        raise DataError(f"n_rows must be >= 0, got {n_rows}")
    if shards < 1:
        raise DataError(f"shards must be >= 1, got {shards}")
    n_blocks = math.ceil(n_rows / block_size) if n_rows else 0
    bounds = [i * n_blocks // shards for i in range(shards + 1)]
    return [
        slice(min(bounds[i] * block_size, n_rows), min(bounds[i + 1] * block_size, n_rows))
        for i in range(shards)
    ]


def tree_merge(accumulators: Iterable[MomentAccumulator]) -> MomentAccumulator:
    """Pairwise-merge accumulators until one remains.

    The reduction result is independent of the merge tree (merge is exactly
    associative and commutative); the tree shape only matters for the
    parallel-depth of a future distributed reducer.  Merging happens in
    place: the even-indexed operands absorb their neighbours — pass copies
    if the inputs must survive.
    """
    level = list(accumulators)
    if not level:
        raise DataError("tree_merge needs at least one accumulator")
    while len(level) > 1:
        merged = [
            level[i].merge(level[i + 1]) if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
        level = merged
    return level[0]


class ShardedAccumulator:
    """Partition a dataset across N shards and accumulate in parallel.

    Parameters
    ----------
    dim:
        Feature dimensionality ``d``.
    shards:
        Worker count N (1 = serial; still uses the same partition logic).
    block_size:
        Canonical block size forwarded to each shard's accumulator.
    validate:
        Forwarded to each shard's accumulator.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(0, 0.5, size=(100, 2)); y = rng.uniform(-1, 1, 100)
    >>> sharded = ShardedAccumulator(dim=2, shards=4, block_size=16)
    >>> acc = sharded.accumulate(X, y)
    >>> acc.n_rows
    100
    """

    def __init__(
        self,
        dim: int,
        shards: int = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        validate: bool = True,
    ) -> None:
        shards = int(shards)
        if shards < 1:
            raise DataError(f"shards must be >= 1, got {shards}")
        self.dim = int(dim)
        self.shards = shards
        self.block_size = int(block_size)
        self.validate = bool(validate)

    def _new_accumulator(self) -> MomentAccumulator:
        return MomentAccumulator(self.dim, block_size=self.block_size, validate=self.validate)

    def accumulate(self, X: np.ndarray, y: np.ndarray) -> MomentAccumulator:
        """One-shot sharded accumulation of a full dataset.

        Returns the tree-merged :class:`MomentAccumulator`, bit-identical to
        a monolithic ``MomentAccumulator(...).update(X, y)`` at the same
        ``block_size``.
        """
        X = np.ascontiguousarray(np.asarray(X, dtype=float))
        y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
        if X.ndim != 2:
            raise DataError(f"X must be 2-d, got ndim={X.ndim}")
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        slices = shard_slices(X.shape[0], self.shards, self.block_size)

        def work(sl: slice) -> MomentAccumulator:
            return self._new_accumulator().update(X[sl], y[sl])

        if self.shards == 1:
            partials = [work(slices[0])]
        else:
            with ThreadPoolExecutor(max_workers=self.shards) as pool:
                partials = list(pool.map(work, slices))
        return tree_merge(partials)

    def shard_substreams(
        self, rng: RngLike, tag: Sequence[int] = ()
    ) -> list[np.random.Generator]:
        """One deterministic, independent generator per shard.

        The stream of shard ``i`` depends only on ``(rng seed, tag, i)`` —
        never on worker scheduling or on how many draws other shards made.
        """
        return [
            derive_substream(rng, [SHARD_STREAM_TAG, *[int(t) for t in tag], i])
            for i in range(self.shards)
        ]
