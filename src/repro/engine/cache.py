"""Content-addressed on-disk cache for finalized accumulators.

A budget sweep's only expensive step is the data pass; its product — the
moment statistics — is a few KB.  :class:`AccumulatorCache` keys that product
by a content fingerprint (dataset bytes + objective identity + degree +
block size), so re-running ``figure6``/``figure9`` style sweeps, or the CLI
``engine`` subcommand, skips recomputation entirely when nothing changed.

Keys are SHA-256 hex digests: any change to the data, the objective's
configuration, or the canonical block size produces a different key, and a
hit is guaranteed to reproduce the exact statistics (``.npz`` round-trips
are bit-faithful).

Caching is a *pre-noise* operation: the statistics are sensitive
intermediate state, exactly like the raw data, and the cache directory must
be treated with the same confidentiality.  Nothing differentially private is
stored here — privacy is only established downstream when Algorithm 1 adds
noise.

Durability: entries are ``.acc`` containers — a one-line JSON header
(format version, payload byte count, SHA-256) followed by the raw
``.npz`` payload — written to a unique temporary file, fsynced, and
published by atomic ``os.replace``, so a crash mid-``put`` leaves either
the old entry or the new one, never a torn file.  ``get`` verifies the
checksum before trusting an entry; anything structurally wrong or
bit-flipped is moved into a ``quarantine/`` subdirectory (preserved for
forensics, out of the key namespace) and reported as a miss, so the
caller transparently rebuilds instead of consuming corrupted statistics.
Reads and writes retry transient IO failures
(:class:`~repro.exceptions.TransientIOError`, the injectable kind) a
bounded number of times.  Entries written by the historical pure-``.npz``
format are simply misses under the new suffix — content-addressed
statistics are always rebuildable.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
    RegressionObjective,
)
from ..exceptions import CacheIntegrityError, TransientIOError
from ..faults import active_injector
from ..obs import active_recorder
from .accumulator import DEFAULT_BLOCK_SIZE, MomentAccumulator

__all__ = [
    "AccumulatorCache",
    "dataset_fingerprint",
    "decode_entry",
    "encode_entry",
    "objective_tag",
]

#: Container format version of an ``.acc`` entry's JSON header.
_ENTRY_FORMAT = 1

#: Bounded retries for transient IO failures on one cache operation.
_IO_ATTEMPTS = 3


def _site_index(key: str) -> int:
    """A stable per-entry integer for fault-site decisions (keys are hex)."""
    return int(key[:8], 16)


def encode_entry(accumulator: MomentAccumulator) -> bytes:
    """Serialize an accumulator into the checksummed ``.acc`` container.

    Public because the container is the repo-wide durable format for
    accumulator state: :mod:`repro.serve` writes tenant snapshots with
    exactly these bytes (same header, same checksum discipline), so one
    decoder — and one corruption test surface — covers both.
    """
    buffer = io.BytesIO()
    accumulator.save(buffer)
    payload = buffer.getvalue()
    header = {
        "format": _ENTRY_FORMAT,
        "nbytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    return json.dumps(header, sort_keys=True).encode() + b"\n" + payload


def decode_entry(blob: bytes) -> MomentAccumulator:
    """Parse + verify an ``.acc`` container; any damage raises
    :class:`~repro.exceptions.CacheIntegrityError` (headers and payload
    alike — a bit-flip anywhere must be caught, never deserialized)."""
    newline = blob.find(b"\n")
    if newline < 0:
        raise CacheIntegrityError("cache entry has no header line")
    try:
        header = json.loads(blob[:newline])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CacheIntegrityError(f"cache entry header is unreadable: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != _ENTRY_FORMAT:
        raise CacheIntegrityError(
            f"unsupported cache entry format {header!r}"
        )
    payload = blob[newline + 1 :]
    if len(payload) != header.get("nbytes"):
        raise CacheIntegrityError(
            f"cache entry truncated: expected {header.get('nbytes')} payload "
            f"bytes, found {len(payload)}"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise CacheIntegrityError("cache entry failed its checksum")
    try:
        return MomentAccumulator.load(io.BytesIO(payload))
    except Exception as exc:  # a checksum pass should make this unreachable
        raise CacheIntegrityError(f"cache entry payload is undecodable: {exc}") from None


def dataset_fingerprint(X: np.ndarray, y: np.ndarray) -> str:
    """SHA-256 over the dataset's shape, dtype and raw bytes."""
    X = np.ascontiguousarray(np.asarray(X, dtype=float))
    y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
    digest = hashlib.sha256()
    digest.update(f"X:{X.shape}:{X.dtype}".encode())
    digest.update(X.tobytes())
    digest.update(f"y:{y.shape}:{y.dtype}".encode())
    digest.update(y.tobytes())
    return digest.hexdigest()


def objective_tag(objective: RegressionObjective) -> str:
    """A stable string identifying an objective's coefficient map.

    Two objectives with the same tag produce the same database-level
    coefficients from the same statistics.
    """
    if isinstance(objective, LinearRegressionObjective):
        return f"linear:dim={objective.dim}:degree={objective.degree}"
    if isinstance(objective, LogisticRegressionObjective):
        tag = (
            f"logistic:dim={objective.dim}:degree={objective.degree}"
            f":approx={objective.approximation}"
        )
        if objective.approximation == "chebyshev":
            tag += f":radius={objective.radius:g}"
        return tag
    return f"{type(objective).__name__}:dim={objective.dim}:degree={objective.degree}"


class AccumulatorCache:
    """Content-addressed accumulator store under one root directory.

    Examples
    --------
    >>> import tempfile
    >>> from repro.core.objectives import LinearRegressionObjective
    >>> X = np.array([[0.3, 0.4], [0.1, 0.2]]); y = np.array([0.5, -0.5])
    >>> cache = AccumulatorCache(tempfile.mkdtemp())
    >>> key = cache.make_key(X, y, LinearRegressionObjective(dim=2))
    >>> acc, hit = cache.get_or_build(key, lambda: MomentAccumulator(2).update(X, y))
    >>> hit
    False
    >>> _, hit = cache.get_or_build(key, lambda: MomentAccumulator(2).update(X, y))
    >>> hit
    True
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(
        X: np.ndarray,
        y: np.ndarray,
        objective: RegressionObjective,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> str:
        """Content key: dataset fingerprint + objective tag + block size."""
        digest = hashlib.sha256()
        digest.update(dataset_fingerprint(X, y).encode())
        digest.update(objective_tag(objective).encode())
        digest.update(f"block_size={int(block_size)}".encode())
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        """Where a key's accumulator lives (whether or not it exists)."""
        return self.root / f"{key}.acc"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupted entries are moved (created on first quarantine)."""
        return self.root / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry out of the key namespace, keeping the bytes."""
        recorder = active_recorder()
        recorder.counter("accumulator_cache.corrupt")
        recorder.counter("accumulator_cache.quarantined")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            path.replace(self.quarantine_dir / path.name)
        except OSError:  # cross-device or permission trouble: drop instead
            path.unlink(missing_ok=True)

    def get(self, key: str) -> MomentAccumulator | None:
        """Load a cached accumulator, or ``None`` on a miss.

        A corrupted entry (failed checksum, torn header, undecodable
        payload) is quarantined and reported as a miss — the caller
        rebuilds, and the subsequent :meth:`put` re-publishes a healthy
        entry under the same key.
        """
        path = self.path_for(key)
        recorder = active_recorder()
        injector = active_injector()
        if path.exists() and injector.consume("cache.corrupt", _site_index(key)):
            injector.corrupt_file(path, "cache.corrupt", _site_index(key))
        blob: bytes | None = None
        for attempt in range(_IO_ATTEMPTS):
            try:
                if injector.consume("io.transient", _site_index(key)):
                    raise TransientIOError(f"injected transient read failure: {path}")
                blob = path.read_bytes() if path.exists() else None
                break
            except TransientIOError:
                recorder.counter("accumulator_cache.io_retries")
                if attempt == _IO_ATTEMPTS - 1:
                    raise
        if blob is None:
            self.misses += 1
            recorder.counter("accumulator_cache.misses")
            return None
        try:
            accumulator = decode_entry(blob)
        except CacheIntegrityError:
            self._quarantine(path)
            self.misses += 1
            recorder.counter("accumulator_cache.misses")
            return None
        self.hits += 1
        recorder.counter("accumulator_cache.hits")
        return accumulator

    def put(self, key: str, accumulator: MomentAccumulator) -> Path:
        """Store an accumulator under a key; returns the file path.

        The checksummed container is written to a unique per-writer
        temporary file, flushed and fsynced, then published by atomic
        ``os.replace`` — a crash at any point leaves the previous entry
        (or no entry), never a torn one, and a concurrent reader can
        never observe a half-written file.
        """
        path = self.path_for(key)
        blob = encode_entry(accumulator)
        recorder = active_recorder()
        injector = active_injector()
        for attempt in range(_IO_ATTEMPTS):
            try:
                if injector.consume("io.transient", _site_index(key)):
                    raise TransientIOError(f"injected transient write failure: {path}")
                fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp.acc")
                tmp = Path(tmp_name)
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                        handle.flush()
                        os.fsync(handle.fileno())
                    tmp.replace(path)
                finally:
                    tmp.unlink(missing_ok=True)
                return path
            except TransientIOError:
                recorder.counter("accumulator_cache.io_retries")
                if attempt == _IO_ATTEMPTS - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def get_or_build(
        self, key: str, builder: Callable[[], MomentAccumulator]
    ) -> tuple[MomentAccumulator, bool]:
        """Return ``(accumulator, was_hit)``; on a miss, build and store."""
        cached = self.get(key)
        if cached is not None:
            return cached, True
        built = builder()
        self.put(key, built)
        return built, False
