"""Content-addressed on-disk cache for finalized accumulators.

A budget sweep's only expensive step is the data pass; its product — the
moment statistics — is a few KB.  :class:`AccumulatorCache` keys that product
by a content fingerprint (dataset bytes + objective identity + degree +
block size), so re-running ``figure6``/``figure9`` style sweeps, or the CLI
``engine`` subcommand, skips recomputation entirely when nothing changed.

Keys are SHA-256 hex digests: any change to the data, the objective's
configuration, or the canonical block size produces a different key, and a
hit is guaranteed to reproduce the exact statistics (``.npz`` round-trips
are bit-faithful).

Caching is a *pre-noise* operation: the statistics are sensitive
intermediate state, exactly like the raw data, and the cache directory must
be treated with the same confidentiality.  Nothing differentially private is
stored here — privacy is only established downstream when Algorithm 1 adds
noise.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
    RegressionObjective,
)
from ..obs import active_recorder
from .accumulator import DEFAULT_BLOCK_SIZE, MomentAccumulator

__all__ = ["AccumulatorCache", "dataset_fingerprint", "objective_tag"]


def dataset_fingerprint(X: np.ndarray, y: np.ndarray) -> str:
    """SHA-256 over the dataset's shape, dtype and raw bytes."""
    X = np.ascontiguousarray(np.asarray(X, dtype=float))
    y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
    digest = hashlib.sha256()
    digest.update(f"X:{X.shape}:{X.dtype}".encode())
    digest.update(X.tobytes())
    digest.update(f"y:{y.shape}:{y.dtype}".encode())
    digest.update(y.tobytes())
    return digest.hexdigest()


def objective_tag(objective: RegressionObjective) -> str:
    """A stable string identifying an objective's coefficient map.

    Two objectives with the same tag produce the same database-level
    coefficients from the same statistics.
    """
    if isinstance(objective, LinearRegressionObjective):
        return f"linear:dim={objective.dim}:degree={objective.degree}"
    if isinstance(objective, LogisticRegressionObjective):
        tag = (
            f"logistic:dim={objective.dim}:degree={objective.degree}"
            f":approx={objective.approximation}"
        )
        if objective.approximation == "chebyshev":
            tag += f":radius={objective.radius:g}"
        return tag
    return f"{type(objective).__name__}:dim={objective.dim}:degree={objective.degree}"


class AccumulatorCache:
    """Content-addressed accumulator store under one root directory.

    Examples
    --------
    >>> import tempfile
    >>> from repro.core.objectives import LinearRegressionObjective
    >>> X = np.array([[0.3, 0.4], [0.1, 0.2]]); y = np.array([0.5, -0.5])
    >>> cache = AccumulatorCache(tempfile.mkdtemp())
    >>> key = cache.make_key(X, y, LinearRegressionObjective(dim=2))
    >>> acc, hit = cache.get_or_build(key, lambda: MomentAccumulator(2).update(X, y))
    >>> hit
    False
    >>> _, hit = cache.get_or_build(key, lambda: MomentAccumulator(2).update(X, y))
    >>> hit
    True
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(
        X: np.ndarray,
        y: np.ndarray,
        objective: RegressionObjective,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> str:
        """Content key: dataset fingerprint + objective tag + block size."""
        digest = hashlib.sha256()
        digest.update(dataset_fingerprint(X, y).encode())
        digest.update(objective_tag(objective).encode())
        digest.update(f"block_size={int(block_size)}".encode())
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        """Where a key's accumulator lives (whether or not it exists)."""
        return self.root / f"{key}.npz"

    def get(self, key: str) -> MomentAccumulator | None:
        """Load a cached accumulator, or ``None`` on a miss."""
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            active_recorder().counter("accumulator_cache.misses")
            return None
        self.hits += 1
        active_recorder().counter("accumulator_cache.hits")
        return MomentAccumulator.load(path)

    def put(self, key: str, accumulator: MomentAccumulator) -> Path:
        """Store an accumulator under a key; returns the file path.

        The write goes through a temporary file + atomic rename so a
        concurrent reader never sees a half-written entry.
        """
        path = self.path_for(key)
        # Unique per-writer temporary: concurrent writers to the same key
        # must never share a tmp file, or the atomic rename publishes a
        # half-written entry.
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp.npz")
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            accumulator.save(tmp)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def get_or_build(
        self, key: str, builder: Callable[[], MomentAccumulator]
    ) -> tuple[MomentAccumulator, bool]:
        """Return ``(accumulator, was_hit)``; on a miss, build and store."""
        cached = self.get(key)
        if cached is not None:
            return cached, True
        built = builder()
        self.put(key, built)
        return built, False
