"""One data pass, many privacy budgets: vectorized epsilon sweeps.

A Table-2 budget sweep refits the Functional Mechanism at every epsilon in
``{3.2 ... 0.1}``.  The naive loop re-aggregates the database-level
coefficients once per epsilon — O(n_eps) passes over the data.  But the
coefficients do not depend on epsilon at all: only the Laplace scale
``Delta / epsilon`` does.  :class:`EpsilonSweepEngine` therefore takes one
finalized :class:`~repro.engine.accumulator.MomentAccumulator` (or snapshot)
and produces fitted models for a whole epsilon vector with **zero** further
data access — O(1 data pass + n_eps d^3 solves).

Noise layout and loop equivalence
---------------------------------
The engine draws a single standardized i.i.d. Laplace sample of shape
``(n_eps, 1 + d + d^2)`` and scales row ``i`` by ``Delta / epsilon_i``.
Each row is mapped to (constant, linear, quadratic) noise exactly the way
:meth:`~repro.core.mechanism.FunctionalMechanism.perturb_quadratic` consumes
its stream — one scalar, then ``d`` linear draws, then a ``d x d`` matrix
whose upper-triangle draw ``w`` splits as ``w/2`` on the symmetric pair.
Because NumPy generators consume their bit stream sequentially regardless of
call shapes, a sweep seeded with generator ``G`` is **bitwise identical** to
the per-epsilon loop ``FunctionalMechanism(eps_i, rng=G).perturb_quadratic``
sharing that same generator (for the non-rerun post-processing strategies;
the Lemma-5 rerun strategy consumes extra stream on demand).

Privacy
-------
Rows of one i.i.d. sample are mutually independent, so each sweep point is
exactly an Algorithm-1 release at its own ``epsilon_i``; releasing the whole
sweep composes sequentially to ``sum_i epsilon_i``, which is what the
optional budget accountant is charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.mechanism import FunctionalMechanism, PerturbationRecord
from ..core.objectives import RegressionObjective
from ..core.polynomial import QuadraticForm
from ..core.postprocess import (
    PostProcessResult,
    PostProcessingStrategy,
    SpectralTrimming,
    get_strategy,
)
from ..exceptions import InvalidBudgetError
from ..obs import active_recorder
from ..privacy.budget import PrivacyBudget
from ..privacy.rng import RngLike, ensure_rng
from ..runtime.kernels import fm_noise_stack, spectral_solve_stack

__all__ = [
    "EpsilonSweepEngine",
    "EpsilonSweepResult",
    "SweepPoint",
    "SweepVariance",
]


@dataclass(frozen=True)
class SweepPoint:
    """One fitted sweep point.

    Attributes
    ----------
    epsilon:
        Budget of this release.
    omega:
        Released model parameter.
    record:
        The Algorithm-1 bookkeeping (scale, basis size, ...).
    post:
        Section-6 repair outcome.
    solve_seconds:
        Wall time of this point's noise mapping + repair + solve (the
        marginal cost of one extra epsilon — no data pass included).
    """

    epsilon: float
    omega: np.ndarray
    record: PerturbationRecord
    post: PostProcessResult
    solve_seconds: float


@dataclass(frozen=True)
class EpsilonSweepResult:
    """All sweep points of one engine invocation, in input order."""

    epsilons: tuple[float, ...]
    points: tuple[SweepPoint, ...]

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted parameters stacked as an ``(n_eps, d)`` matrix."""
        return np.stack([p.omega for p in self.points])

    def point_at(self, epsilon: float) -> SweepPoint:
        """The sweep point for one epsilon value."""
        for p in self.points:
            if p.epsilon == float(epsilon):
                return p
        raise KeyError(f"epsilon {epsilon!r} not in sweep {self.epsilons}")


@dataclass(frozen=True)
class SweepVariance:
    """Repeated-draw spread of the released coefficients (for error bars).

    ``mean`` and ``std`` have shape ``(n_eps, d)``; ``std`` is the empirical
    per-coordinate standard deviation over ``repeats`` independent releases.
    """

    epsilons: tuple[float, ...]
    repeats: int
    mean: np.ndarray
    std: np.ndarray


class EpsilonSweepEngine:
    """Fit the Functional Mechanism at many budgets from one statistics pass.

    Parameters
    ----------
    objective:
        A degree-2 objective (the paper's linear or logistic case study);
        supplies the coefficient projection and the Lemma-1 sensitivity.
    statistics:
        A finalized :class:`~repro.engine.accumulator.MomentAccumulator` or
        :class:`~repro.engine.accumulator.MomentSnapshot` — anything with a
        ``quadratic_form(objective)`` method — **or** a ready
        :class:`~repro.core.polynomial.QuadraticForm` (the shared-moment
        fast path: a caller that already holds a fold's aggregated
        coefficients, e.g. from the runtime's
        :class:`~repro.runtime.plan.PreparedDataCache`, constructs sweeps
        with zero re-aggregation).  The engine touches the data only
        through it, hence exactly one data pass however many epsilons are
        swept.
    tight_sensitivity:
        Use the ``sqrt(d)`` L1 bound instead of the paper's ``d`` bound.
    post_processing:
        Section-6 repair strategy name or instance (default ``"spectral"``).
    ridge_lambda:
        Extra data-independent ridge added to each noisy objective.
    budget:
        Optional accountant; each ``sweep`` charges ``sum_i epsilon_i``
        (plus the Lemma-5 surcharge if the rerun strategy re-invokes).

    Examples
    --------
    >>> from repro.core.objectives import LinearRegressionObjective
    >>> from repro.engine.accumulator import MomentAccumulator
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(0, 0.5, size=(5000, 2)); y = np.clip(X @ [0.5, -0.2], -1, 1)
    >>> acc = MomentAccumulator(dim=2).update(X, y)
    >>> engine = EpsilonSweepEngine(LinearRegressionObjective(dim=2), acc)
    >>> sweep = engine.sweep([0.1, 0.8, 3.2], rng=0)
    >>> sweep.coefficients.shape
    (3, 2)
    """

    def __init__(
        self,
        objective: RegressionObjective,
        statistics,
        *,
        tight_sensitivity: bool = False,
        post_processing: str | PostProcessingStrategy = "spectral",
        ridge_lambda: float = 0.0,
        budget: Optional[PrivacyBudget] = None,
    ) -> None:
        self.objective = objective
        if isinstance(statistics, QuadraticForm):
            # Shared-moment fast path: the coefficients were aggregated
            # elsewhere (runtime moment cache, a sibling engine, a stored
            # snapshot) — copy so later sweeps can't be perturbed through
            # the caller's reference.
            self._form: QuadraticForm = statistics.copy()
        else:
            self._form = statistics.quadratic_form(objective)
        self._sensitivity = objective.sensitivity(tight=tight_sensitivity)
        self._strategy = get_strategy(post_processing)
        self._ridge_lambda = float(ridge_lambda)
        self._budget = budget

    # ------------------------------------------------------------------
    @property
    def form(self) -> QuadraticForm:
        """The exact (pre-noise) database-level objective."""
        return self._form.copy()

    @property
    def sensitivity(self) -> float:
        """The Lemma-1 sensitivity Delta used to scale every sweep point."""
        return self._sensitivity

    @staticmethod
    def _validate_epsilons(epsilons: Sequence[float]) -> list[float]:
        values = [float(e) for e in epsilons]
        if not values:
            raise InvalidBudgetError("epsilon sweep needs at least one value")
        for e in values:
            if not math.isfinite(e) or e <= 0.0:
                raise InvalidBudgetError(f"epsilon must be positive and finite, got {e!r}")
        return values

    def _fit_one(
        self, epsilon: float, raw_row: np.ndarray, gen: np.random.Generator
    ) -> SweepPoint:
        """Map one standardized-draw row to a released parameter."""
        with active_recorder().span("engine.fit_one", epsilon=epsilon) as span:
            d = self._form.dim
            scale = self._sensitivity / epsilon
            beta_noise = scale * float(raw_row[0])
            alpha_noise = scale * raw_row[1 : 1 + d]
            draws = scale * raw_row[1 + d :].reshape(d, d)
            upper = np.triu(draws, k=1) / 2.0
            noisy = QuadraticForm(
                M=self._form.M + np.diag(np.diag(draws)) + upper + upper.T,
                alpha=self._form.alpha + alpha_noise,
                beta=self._form.beta + beta_noise,
            )
            record = PerturbationRecord(
                epsilon=epsilon,
                sensitivity=self._sensitivity,
                noise_scale=scale,
                noise_std=math.sqrt(2.0) * scale,
                coefficients_perturbed=1 + d + d * (d + 1) // 2,
            )
            if self._ridge_lambda:
                noisy = noisy.with_ridge(self._ridge_lambda)

            def renoise() -> QuadraticForm:
                redrawn, _ = FunctionalMechanism(epsilon, rng=gen).perturb_quadratic(
                    self._form, self._sensitivity
                )
                return redrawn.with_ridge(self._ridge_lambda) if self._ridge_lambda else redrawn

            result = self._strategy.solve(noisy, record.noise_std, renoise=renoise)
            if result.privacy_cost_factor > 1.0 and self._budget is not None:
                self._budget.spend(
                    epsilon * (result.privacy_cost_factor - 1.0),
                    note="Lemma-5 rerun surcharge (sweep)",
                )
        return SweepPoint(
            epsilon=epsilon,
            omega=result.omega,
            record=record,
            post=result,
            solve_seconds=span.seconds,
        )

    def sweep(self, epsilons: Sequence[float], rng: RngLike = None) -> EpsilonSweepResult:
        """Release one fitted model per epsilon from a single noise sample.

        The Laplace draws are vectorized across the sweep axis — one
        ``(n_eps, 1 + d + d^2)`` standardized sample — while each row stays
        an independent Algorithm-1 invocation at its own scale.

        With the default spectral repair, the noise mapping and all repairs
        and solves additionally run through the stacked runtime kernels
        (:mod:`repro.runtime.kernels`): one batched eigendecomposition and
        one batched closed-form solve for the whole sweep, bitwise
        identical to the per-epsilon loop.  Strategies that may consume
        extra stream on demand (Lemma-5 rerun) or carry custom solve logic
        keep the per-point loop.
        """
        values = self._validate_epsilons(epsilons)
        gen = ensure_rng(rng)
        d = self._form.dim
        raw = gen.laplace(0.0, 1.0, size=(len(values), 1 + d + d * d))
        active_recorder().counter("engine.laplace_draws", len(values) * (1 + d + d * d))
        if self._budget is not None:
            for epsilon in values:
                self._budget.spend(epsilon, note=f"EpsilonSweepEngine eps={epsilon:g}")
        if type(self._strategy) is SpectralTrimming:
            return self._sweep_batched(values, raw)
        points = [self._fit_one(epsilon, raw[i], gen) for i, epsilon in enumerate(values)]
        return EpsilonSweepResult(epsilons=tuple(values), points=tuple(points))

    def sweep_from_draws(
        self, epsilons: Sequence[float], raw: np.ndarray, rng: RngLike = None
    ) -> EpsilonSweepResult:
        """Release a sweep from an externally supplied standardized sample.

        ``raw`` must be the ``(n_eps, 1 + d + d^2)`` standardized Laplace
        sample :meth:`sweep` would have drawn itself — the federated
        local-noise-share mode reconstructs exactly that sample bitwise
        from the parties' additive shares and injects it here, so the
        coordinator's fit matches the central-noise fit bit for bit
        without the coordinator ever drawing the noise.  The caller owns
        the privacy argument for how ``raw`` was produced; the engine
        still charges the attached budget per epsilon like :meth:`sweep`.
        ``rng`` is only consulted by strategies that draw extra stream on
        demand (the Lemma-5 rerun).
        """
        values = self._validate_epsilons(epsilons)
        d = self._form.dim
        raw = np.asarray(raw, dtype=float)
        expected = (len(values), 1 + d + d * d)
        if raw.shape != expected:
            raise InvalidBudgetError(
                f"injected noise sample has shape {raw.shape}, "
                f"expected {expected} for {len(values)} epsilons at dim {d}"
            )
        if self._budget is not None:
            for epsilon in values:
                self._budget.spend(epsilon, note=f"EpsilonSweepEngine eps={epsilon:g}")
        if type(self._strategy) is SpectralTrimming:
            return self._sweep_batched(values, raw)
        gen = ensure_rng(rng)
        points = [self._fit_one(epsilon, raw[i], gen) for i, epsilon in enumerate(values)]
        return EpsilonSweepResult(epsilons=tuple(values), points=tuple(points))

    def _sweep_batched(
        self, values: list[float], raw: np.ndarray
    ) -> EpsilonSweepResult:
        """All sweep points as one stacked perturb-repair-solve."""
        with active_recorder().span("engine.sweep_batched", points=len(values)) as span:
            d = self._form.dim
            epsilons = np.asarray(values, dtype=float)
            scales = self._sensitivity / epsilons
            noisy_M, noisy_alpha = fm_noise_stack(self._form.M, self._form.alpha, raw, scales)
            if self._ridge_lambda:
                noisy_M = noisy_M + self._ridge_lambda * np.eye(d)
            noise_std = math.sqrt(2.0) * scales
            solved = spectral_solve_stack(
                noisy_M,
                noisy_alpha,
                noise_std,
                multiplier=self._strategy.multiplier,
                eigen_tol=self._strategy.eigen_tol,
                noise_relative_tol=self._strategy.noise_relative_tol,
            )
        share = span.seconds / len(values)
        points = []
        for i, epsilon in enumerate(values):
            record = PerturbationRecord(
                epsilon=epsilon,
                sensitivity=self._sensitivity,
                noise_scale=float(scales[i]),
                noise_std=float(noise_std[i]),
                coefficients_perturbed=1 + d + d * (d + 1) // 2,
            )
            post = PostProcessResult(
                omega=solved.omega[i],
                strategy=self._strategy.name,
                lam=float(solved.lam[i]),
                trimmed=int(solved.trimmed[i]),
                repaired=bool(solved.repaired[i]),
            )
            points.append(
                SweepPoint(
                    epsilon=epsilon,
                    omega=solved.omega[i],
                    record=record,
                    post=post,
                    solve_seconds=share,
                )
            )
        return EpsilonSweepResult(epsilons=tuple(values), points=tuple(points))

    def variance_estimate(
        self, epsilons: Sequence[float], repeats: int = 20, rng: RngLike = None
    ) -> SweepVariance:
        """Repeated-draw coefficient spread at each epsilon (for error bars).

        Performs ``repeats`` independent sweeps from one vectorized
        ``(repeats, n_eps, 1 + d + d^2)`` sample — still zero data passes.
        Each repeat is a genuine release: with a budget accountant attached,
        all ``repeats * sum_i epsilon_i`` is charged.
        """
        repeats = int(repeats)
        if repeats < 2:
            raise InvalidBudgetError(f"variance estimation needs repeats >= 2, got {repeats}")
        values = self._validate_epsilons(epsilons)
        gen = ensure_rng(rng)
        d = self._form.dim
        raw = gen.laplace(0.0, 1.0, size=(repeats, len(values), 1 + d + d * d))
        active_recorder().counter(
            "engine.laplace_draws", repeats * len(values) * (1 + d + d * d)
        )
        samples = np.empty((repeats, len(values), d))
        for r in range(repeats):
            for i, epsilon in enumerate(values):
                if self._budget is not None:
                    self._budget.spend(
                        epsilon, note=f"EpsilonSweepEngine variance eps={epsilon:g}"
                    )
                samples[r, i] = self._fit_one(epsilon, raw[r, i], gen).omega
        return SweepVariance(
            epsilons=tuple(values),
            repeats=repeats,
            mean=samples.mean(axis=0),
            std=samples.std(axis=0),
        )
