"""Streaming sufficient statistics for the degree-2 Functional Mechanism.

For both of the paper's case studies the database-level coefficient vector
``lambda_phi = sum_i lambda_phi(t_i)`` that Algorithm 1 perturbs is a fixed,
data-independent linear map of five *moment statistics* of the data:

    S2 = X^T X,   S1 = sum_i x_i,   Sxy = X^T y,
    Sy = sum_i y_i,   Syy = y^T y,   and the row count n.

Linear regression (Definition 1)::

    M = S2,        alpha = -2 Sxy,         beta = Syy

Logistic regression (Definition 2, order-2 approximation with softplus
coefficients ``a0, a1, a2``)::

    M = a2 S2,     alpha = a1 S1 - Sxy,    beta = a0 n

Because these moments are additive over rows, the expensive data pass is
*streamable* (consume chunks as they arrive), *mergeable* (combine partial
accumulators from shards), and *reusable* (one finalized accumulator serves
every epsilon of a budget sweep).  :class:`MomentAccumulator` maintains them
incrementally; :meth:`MomentAccumulator.quadratic_form` projects them onto an
objective's coefficient blocks on demand.

Determinism contract
--------------------
The accumulator guarantees **bit-identical** statistics regardless of how the
rows were chunked, sharded, or merged, provided the same rows arrive in the
same global order.  Two ingredients make that possible:

1. *Canonical blocks.*  Rows are re-buffered into fixed-size blocks of
   ``block_size`` rows; each block's partial statistics are computed with one
   vectorized matmul over exactly those rows, so chunk boundaries chosen by
   the caller never change which rows share a matmul.
2. *Correctly-rounded reduction.*  Final statistics are reduced over the
   block partials with :func:`math.fsum`, whose result depends only on the
   *multiset* of addends — not on their order or grouping.  Hence ``merge``
   is exactly associative and commutative, and an N-way sharded accumulation
   (with block-aligned shard boundaries, see :mod:`repro.engine.sharding`)
   reproduces the monolithic result to the bit.

Sealing: ``merge``, ``save`` and ``snapshot`` treat a pending partial block
(fewer than ``block_size`` buffered rows) as a block of its own, because the
raw rows needed to keep filling it are not transferable.  ``merge`` therefore
seals both operands' tails; ``snapshot`` and ``save`` are non-mutating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple, Sequence

import numpy as np

from ..core.objectives import (
    NORM_TOLERANCE,
    LinearRegressionObjective,
    LogisticRegressionObjective,
    RegressionObjective,
)
from ..core.polynomial import QuadraticForm
from ..exceptions import (
    DataError,
    DegreeError,
    DimensionMismatchError,
    DomainError,
)

__all__ = ["DEFAULT_BLOCK_SIZE", "MomentAccumulator", "MomentSnapshot"]

#: Rows per canonical block.  Large enough that the per-block matmul
#: dominates Python overhead, small enough that the reduction stays exact
#: and shard boundaries (multiples of this) stay flexible.
DEFAULT_BLOCK_SIZE = 4096


class _Unit(NamedTuple):
    """Partial statistics of one canonical block (never mutated)."""

    S2: np.ndarray
    S1: np.ndarray
    Sxy: np.ndarray
    Sy: float
    Syy: float
    count: int


def _exact_sum(values: Sequence[float]) -> float:
    """Correctly-rounded sum — order- and grouping-invariant."""
    return math.fsum(values)


def _exact_sum_arrays(arrays: Sequence[np.ndarray], shape: tuple[int, ...]) -> np.ndarray:
    """Entry-wise :func:`math.fsum` over a list of equal-shape arrays."""
    if not arrays:
        return np.zeros(shape)
    flat = np.stack(arrays).reshape(len(arrays), -1)
    out = np.array([math.fsum(flat[:, j]) for j in range(flat.shape[1])])
    return out.reshape(shape)


@dataclass(frozen=True)
class MomentSnapshot:
    """Finalized moment statistics — the immutable view the sweep engine uses.

    Attributes
    ----------
    dim:
        Feature dimensionality ``d``.
    n:
        Number of rows accumulated.
    S2, S1, Sxy, Sy, Syy:
        The moments defined in the module docstring.
    """

    dim: int
    n: int
    S2: np.ndarray
    S1: np.ndarray
    Sxy: np.ndarray
    Sy: float
    Syy: float

    def quadratic_form(self, objective: RegressionObjective) -> QuadraticForm:
        """Project the moments onto an objective's coefficient blocks.

        Exactly reproduces (to floating-point accumulation order) the
        database-level coefficients of
        :meth:`~repro.core.objectives.RegressionObjective.aggregate_quadratic`
        without touching the data again.
        """
        if objective.dim != self.dim:
            raise DimensionMismatchError(self.dim, objective.dim, what="objective dim")
        if isinstance(objective, LinearRegressionObjective):
            return QuadraticForm(M=self.S2, alpha=-2.0 * self.Sxy, beta=self.Syy)
        if isinstance(objective, LogisticRegressionObjective):
            if objective.degree != 2:
                raise DegreeError(
                    f"moment statistics cover degree 2; objective has degree "
                    f"{objective.degree} — use aggregate_polynomial on the raw data"
                )
            a0, a1, a2 = objective.softplus_coefficients
            return QuadraticForm(
                M=a2 * self.S2,
                alpha=a1 * self.S1 - self.Sxy,
                beta=a0 * self.n,
            )
        raise DegreeError(
            f"unsupported objective type {type(objective).__name__}; "
            f"the engine covers the paper's two degree-2 case studies"
        )


class MomentAccumulator:
    """Chunk-by-chunk accumulation of degree-0/1/2 moment statistics.

    Parameters
    ----------
    dim:
        Feature dimensionality ``d``.
    block_size:
        Rows per canonical block (see the module docstring's determinism
        contract).  Accumulators can only merge when block sizes match.
    validate:
        Check every chunk against the paper's normalized domains
        (``||x||_2 <= 1``, ``|y| <= 1`` — satisfied by both the linear
        ``[-1, 1]`` target and the logistic ``{0, 1}`` target).  Disable
        only for data already validated upstream.

    Examples
    --------
    >>> acc = MomentAccumulator(dim=2)
    >>> X = np.array([[0.3, 0.4], [0.1, 0.2]]); y = np.array([0.5, -0.5])
    >>> _ = acc.update(X[:1], y[:1]).update(X[1:], y[1:])
    >>> acc.n_rows
    2
    >>> from repro.core.objectives import LinearRegressionObjective
    >>> form = acc.quadratic_form(LinearRegressionObjective(dim=2))
    >>> bool(np.allclose(form.M, X.T @ X))
    True
    """

    def __init__(self, dim: int, block_size: int = DEFAULT_BLOCK_SIZE, validate: bool = True) -> None:
        dim = int(dim)
        if dim < 1:
            raise DataError(f"dim must be >= 1, got {dim}")
        block_size = int(block_size)
        if block_size < 1:
            raise DataError(f"block_size must be >= 1, got {block_size}")
        self._dim = dim
        self._block_size = block_size
        self._validate = bool(validate)
        self._units: list[_Unit] = []
        self._tail_X: np.ndarray | None = None
        self._tail_y: np.ndarray | None = None
        self._n = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Feature dimensionality ``d``."""
        return self._dim

    @property
    def block_size(self) -> int:
        """Rows per canonical block."""
        return self._block_size

    @property
    def n_rows(self) -> int:
        """Rows accumulated so far."""
        return self._n

    @property
    def num_blocks(self) -> int:
        """Blocks held, counting the pending partial tail as one."""
        return len(self._units) + (1 if self._tail_X is not None else 0)

    def __repr__(self) -> str:
        return (
            f"MomentAccumulator(dim={self._dim}, n_rows={self._n}, "
            f"blocks={len(self._units)}, block_size={self._block_size})"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _check_chunk(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.ascontiguousarray(np.asarray(X, dtype=float))
        y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
        if X.ndim != 2:
            raise DataError(f"X must be 2-d, got ndim={X.ndim}")
        if X.shape[1] != self._dim:
            raise DataError(f"X has {X.shape[1]} columns; accumulator has dim {self._dim}")
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
            raise DataError("chunk entries must be finite")
        if self._validate and X.shape[0]:
            max_norm = float(np.linalg.norm(X, axis=1).max())
            if max_norm > 1.0 + NORM_TOLERANCE:
                raise DomainError(
                    f"feature vectors must satisfy ||x||_2 <= 1 (footnote 1); "
                    f"max norm is {max_norm:.6f} — apply FeatureScaler first"
                )
            max_y = float(np.abs(y).max())
            if max_y > 1.0 + NORM_TOLERANCE:
                raise DomainError(
                    f"targets must lie in [-1, 1]; max |y| is {max_y:.6f} — "
                    f"apply TargetScaler / binarize_labels first"
                )
        return X, y

    @staticmethod
    def _unit_of(X: np.ndarray, y: np.ndarray) -> _Unit:
        return _Unit(
            S2=X.T @ X,
            S1=X.sum(axis=0),
            Sxy=X.T @ y,
            Sy=float(y.sum()),
            Syy=float(y @ y),
            count=X.shape[0],
        )

    def update(self, X_chunk: np.ndarray, y_chunk: np.ndarray) -> "MomentAccumulator":
        """Consume one chunk of rows; returns ``self`` for chaining.

        Chunk boundaries are irrelevant to the final statistics: rows are
        re-buffered into canonical blocks internally.
        """
        X, y = self._check_chunk(X_chunk, y_chunk)
        n_new = X.shape[0]
        if n_new == 0:
            return self
        if self._tail_X is not None:
            X = np.concatenate([self._tail_X, X])
            y = np.concatenate([self._tail_y, y])
            self._tail_X = self._tail_y = None
        B = self._block_size
        n_full = (X.shape[0] // B) * B
        for start in range(0, n_full, B):
            self._units.append(self._unit_of(X[start : start + B], y[start : start + B]))
        if X.shape[0] > n_full:
            # Copy the remainder: the caller may mutate its arrays afterwards.
            self._tail_X = X[n_full:].copy()
            self._tail_y = y[n_full:].copy()
        self._n += n_new
        return self

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _sealed_units(self) -> list[_Unit]:
        units = list(self._units)
        if self._tail_X is not None:
            units.append(self._unit_of(self._tail_X, self._tail_y))
        return units

    def seal(self) -> "MomentAccumulator":
        """Turn the pending partial tail (if any) into a block of its own."""
        if self._tail_X is not None:
            self._units.append(self._unit_of(self._tail_X, self._tail_y))
            self._tail_X = self._tail_y = None
        return self

    def merge(self, other: "MomentAccumulator") -> "MomentAccumulator":
        """Absorb another accumulator's statistics in place; returns ``self``.

        Associative and commutative *exactly* (see the determinism
        contract).  Both operands' tails are sealed — ``other`` is read, not
        mutated, but ``self`` afterwards re-blocks from an empty tail.
        """
        if not isinstance(other, MomentAccumulator):
            raise TypeError(f"can only merge MomentAccumulator, got {type(other).__name__}")
        if other._dim != self._dim:
            raise DimensionMismatchError(self._dim, other._dim, what="accumulator dim")
        if other._block_size != self._block_size:
            raise DataError(
                f"block_size mismatch: {self._block_size} vs {other._block_size}; "
                f"merging would break the canonical block decomposition"
            )
        self.seal()
        self._units.extend(other._sealed_units())
        self._n += other._n
        return self

    def copy(self) -> "MomentAccumulator":
        """Independent copy (block partials are shared — they are immutable)."""
        out = MomentAccumulator(self._dim, self._block_size, validate=self._validate)
        out._units = list(self._units)
        if self._tail_X is not None:
            out._tail_X = self._tail_X.copy()
            out._tail_y = self._tail_y.copy()
        out._n = self._n
        return out

    def __add__(self, other: "MomentAccumulator") -> "MomentAccumulator":
        if not isinstance(other, MomentAccumulator):
            return NotImplemented
        return self.copy().merge(other)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def snapshot(self) -> MomentSnapshot:
        """Finalized statistics (non-mutating; streaming may continue after)."""
        units = self._sealed_units()
        d = self._dim
        return MomentSnapshot(
            dim=d,
            n=sum(u.count for u in units),
            S2=_exact_sum_arrays([u.S2 for u in units], (d, d)),
            S1=_exact_sum_arrays([u.S1 for u in units], (d,)),
            Sxy=_exact_sum_arrays([u.Sxy for u in units], (d,)),
            Sy=_exact_sum([u.Sy for u in units]),
            Syy=_exact_sum([u.Syy for u in units]),
        )

    def quadratic_form(self, objective: RegressionObjective) -> QuadraticForm:
        """Shorthand for ``snapshot().quadratic_form(objective)``."""
        return self.snapshot().quadratic_form(objective)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the accumulator to an ``.npz`` file (non-mutating).

        Sealed blocks are stored as their partials; a pending partial
        tail is stored as its **raw rows**, so a loaded accumulator does
        not merely reproduce the same statistics — it *resumes streaming*
        with the exact canonical block boundaries of the original.
        Without that, a save/load cycle between two ``update`` calls
        would seal the tail early, shift every later block boundary, and
        change the final statistics at rounding scale (observable as a
        digest divergence in serve's evict-and-reload path).
        """
        units = self._units
        d = self._dim
        np.savez(
            path,
            meta=np.array([self._dim, self._block_size, self._n], dtype=np.int64),
            S2=np.stack([u.S2 for u in units]) if units else np.zeros((0, d, d)),
            S1=np.stack([u.S1 for u in units]) if units else np.zeros((0, d)),
            Sxy=np.stack([u.Sxy for u in units]) if units else np.zeros((0, d)),
            Sy=np.array([u.Sy for u in units]),
            Syy=np.array([u.Syy for u in units]),
            counts=np.array([u.count for u in units], dtype=np.int64),
            tail_X=(
                self._tail_X if self._tail_X is not None else np.zeros((0, d))
            ),
            tail_y=(
                self._tail_y if self._tail_y is not None else np.zeros((0,))
            ),
        )

    @classmethod
    def load(cls, path, validate: bool = True) -> "MomentAccumulator":
        """Reconstruct an accumulator saved by :meth:`save`.

        Files from before the tail-preserving format (no ``tail_X``
        entry) load fine: their tail was sealed at save time, so they
        restore as all-sealed blocks — statistics identical, block
        boundaries already shifted by the old save.
        """
        with np.load(path) as data:
            dim, block_size, n = (int(v) for v in data["meta"])
            out = cls(dim, block_size=block_size, validate=validate)
            out._units = [
                _Unit(
                    S2=data["S2"][i],
                    S1=data["S1"][i],
                    Sxy=data["Sxy"][i],
                    Sy=float(data["Sy"][i]),
                    Syy=float(data["Syy"][i]),
                    count=int(data["counts"][i]),
                )
                for i in range(data["counts"].shape[0])
            ]
            if "tail_X" in data.files and data["tail_X"].shape[0]:
                out._tail_X = np.ascontiguousarray(data["tail_X"])
                out._tail_y = np.ascontiguousarray(data["tail_y"])
            out._n = n
        return out
