"""``repro.federated`` — multi-party federated aggregation for the FM.

K parties each ingest their rows locally into their own
:class:`~repro.engine.accumulator.MomentAccumulator`, optionally produce
a local noise contribution, and serialize everything into a versioned,
checksummed wire envelope; a coordinator validates every envelope before
touching state, tree-merges deterministically, and fits through the
existing engine/runtime stack.  In the no-local-noise (``central``) mode
the released sweep is **bitwise identical** to single-box ingestion of
the concatenated rows; in ``share`` mode the parties' mod-2^64 additive
noise shares reconstruct the central Laplace calibration bit-exactly;
in ``party`` mode only locally perturbed coefficients ever leave a
party.  See the module docstrings of :mod:`repro.federated.wire`,
:mod:`repro.federated.noise`, :mod:`repro.federated.party`, and
:mod:`repro.federated.coordinator` for the full contracts, and the
README's "Federated aggregation" section for the protocol walkthrough.
"""

from .coordinator import (
    MERGE_TREES,
    FederatedCoordinator,
    FederatedFitResult,
    centralized_fit,
    released_digest,
    tree_merge,
)
from .noise import (
    central_raw_sample,
    combine_shares,
    noise_share,
    party_noise_rng,
    perturb_form_stack,
)
from .party import FederationSpec, PartyWork, run_parties, run_party, split_rows
from .wire import (
    NOISE_MODES,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    PartyEnvelope,
    decode_envelope,
    encode_envelope,
    schema_fingerprint,
)

__all__ = [
    "MERGE_TREES",
    "NOISE_MODES",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "FederatedCoordinator",
    "FederatedFitResult",
    "FederationSpec",
    "PartyEnvelope",
    "PartyWork",
    "central_raw_sample",
    "centralized_fit",
    "combine_shares",
    "decode_envelope",
    "encode_envelope",
    "noise_share",
    "party_noise_rng",
    "perturb_form_stack",
    "released_digest",
    "run_parties",
    "run_party",
    "schema_fingerprint",
    "split_rows",
    "tree_merge",
]
