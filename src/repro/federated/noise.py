"""Federated FM noise: central calibration, additive bit-level shares,
and party-local perturbation.

Three noise modes, one calibration
----------------------------------
The Functional Mechanism's sweep noise is a standardized i.i.d. Laplace
sample of shape ``(n_eps, 1 + d + d^2)`` scaled per epsilon by
``Delta / epsilon`` (see :class:`~repro.engine.sweep.EpsilonSweepEngine`).
The federation keys that sample by the shared seed:

``central``
    The coordinator draws the sample itself from
    ``derive_substream(seed, [FED_NOISE_TAG], stream_version)`` — exactly
    the generator a single-box ``sweep`` would be handed, which is what
    makes the federated fit *bitwise identical* to single-box ingestion
    of the concatenated rows.

``share``
    No single endpoint draws the sample.  Each party ships an additive
    share over the mod-2^64 ring: party ``k`` draws a uniform mask
    ``U_k`` from its keyed substream and contributes ``U_k - U_{k+1 mod
    K}`` (party 0 additionally folds in the IEEE-754 bit pattern of the
    central sample).  The pairwise masks telescope away, so the mod-2^64
    sum over all K shares is the central sample's bit pattern **exactly**
    — float arithmetic never touches the shares, hence the reconstruction
    is bit-perfect, not merely close.  Any K-1 shares are jointly
    uniformly distributed (each contains an unshared one-time-pad mask),
    so no proper subset reveals the noise.  *Simulation caveat*: here
    every mask derives from the one shared seed, so any holder of the
    seed could recompute all shares; a real deployment would derive each
    pairwise mask from a Diffie–Hellman-agreed per-edge secret instead —
    the ring algebra, wire format, and coordinator are unchanged by that
    substitution.

``party``
    Local perturbation: each party adds its *own* full-scale calibrated
    Laplace noise (drawn from its keyed substream, mapped to the
    coefficient blocks exactly like ``perturb_quadratic``) to its own
    aggregated objective, and only the noisy coefficients leave the
    party.  The coordinator never sees clean statistics.  Because the
    parties hold disjoint rows, replacing one tuple changes one party's
    release only — parallel composition — so the combined release at
    sweep point ``i`` is still ``epsilon_i``-DP, at the accuracy cost of
    K independent noise draws instead of one (per-coefficient standard
    deviation grows by ``sqrt(K)``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.polynomial import QuadraticForm
from ..privacy.rng import derive_substream

__all__ = [
    "FED_NOISE_TAG",
    "FED_MASK_TAG",
    "FED_PARTY_TAG",
    "central_raw_sample",
    "noise_share",
    "combine_shares",
    "party_noise_rng",
    "perturb_form_stack",
]

#: Substream tag of the central standardized sweep sample.
FED_NOISE_TAG = 0xFED01

#: Substream tag family of the per-party one-time-pad masks (share mode).
FED_MASK_TAG = 0xFED02

#: Substream tag family of the per-party local noise (party mode).
FED_PARTY_TAG = 0xFED03

#: Full-range uint64 draw bound (``integers`` endpoint-inclusive high).
_U64_MAX = np.uint64(2**64 - 1)


def _sample_shape(n_eps: int, dim: int) -> tuple[int, int]:
    return (int(n_eps), 1 + int(dim) + int(dim) * int(dim))


def central_raw_sample(
    seed: int, n_eps: int, dim: int, stream_version: int
) -> np.ndarray:
    """The standardized sweep sample the central calibration is defined by.

    This is bit-for-bit the first draw of
    ``EpsilonSweepEngine.sweep(epsilons, rng=derive_substream(seed,
    [FED_NOISE_TAG], stream_version))`` — the single definition every
    noise mode's release traces back to.
    """
    gen = derive_substream(int(seed), [FED_NOISE_TAG], stream_version)
    return gen.laplace(0.0, 1.0, size=_sample_shape(n_eps, dim))


def _mask(seed: int, party_id: int, n_eps: int, dim: int, stream_version: int) -> np.ndarray:
    gen = derive_substream(int(seed), [FED_MASK_TAG, int(party_id)], stream_version)
    return gen.integers(
        0, _U64_MAX, size=_sample_shape(n_eps, dim), dtype=np.uint64, endpoint=True
    )


def noise_share(
    seed: int,
    party_id: int,
    parties: int,
    n_eps: int,
    dim: int,
    stream_version: int,
) -> np.ndarray:
    """Party ``party_id``'s additive share of the central sample's bits.

    ``share_k = U_k - U_{(k+1) mod K}`` over the mod-2^64 ring, with the
    central sample's IEEE-754 bit pattern folded into party 0's share.
    Summing all K shares (uint64 wraparound addition) telescopes the
    masks away and yields the central bit pattern exactly.
    """
    parties = int(parties)
    party_id = int(party_id)
    if not 0 <= party_id < parties:
        raise ValueError(f"party id {party_id} outside [0, {parties})")
    own = _mask(seed, party_id, n_eps, dim, stream_version)
    nxt = _mask(seed, (party_id + 1) % parties, n_eps, dim, stream_version)
    with np.errstate(over="ignore"):
        share = own - nxt  # mod-2^64 wraparound is the point
        if party_id == 0:
            raw = central_raw_sample(seed, n_eps, dim, stream_version)
            share = share + raw.view(np.uint64)
    return share


def combine_shares(shares: Sequence[np.ndarray]) -> np.ndarray:
    """Mod-2^64 sum of all shares, reinterpreted as the float64 sample."""
    if not shares:
        raise ValueError("combine_shares needs at least one share")
    total = np.zeros_like(np.asarray(shares[0], dtype=np.uint64))
    with np.errstate(over="ignore"):
        for share in shares:
            total = total + np.asarray(share, dtype=np.uint64)
    return total.view(np.float64)


def party_noise_rng(
    seed: int, party_id: int, stream_version: int
) -> np.random.Generator:
    """The keyed substream party ``party_id`` draws its local noise from."""
    return derive_substream(int(seed), [FED_PARTY_TAG, int(party_id)], stream_version)


def perturb_form_stack(
    form: QuadraticForm,
    epsilons: Sequence[float],
    sensitivity: float,
    gen: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Algorithm-1 perturbation of ``form`` per sweep point.

    Draws a single standardized ``(n_eps, 1 + d + d^2)`` sample from
    ``gen`` and maps row ``i`` (scaled by ``sensitivity / epsilon_i``)
    onto the coefficient blocks exactly the way
    :meth:`~repro.core.mechanism.FunctionalMechanism.perturb_quadratic`
    consumes its stream — scalar, then ``d`` linear draws, then a
    ``d x d`` matrix whose strict upper triangle splits as ``w/2`` onto
    the symmetric pair.  Returns stacked ``(M, alpha, beta)`` arrays.
    """
    d = form.dim
    values = [float(e) for e in epsilons]
    raw = gen.laplace(0.0, 1.0, size=_sample_shape(len(values), d))
    M_stack = np.empty((len(values), d, d))
    alpha_stack = np.empty((len(values), d))
    beta_stack = np.empty(len(values))
    for i, epsilon in enumerate(values):
        scale = float(sensitivity) / epsilon
        beta_stack[i] = form.beta + scale * float(raw[i, 0])
        alpha_stack[i] = form.alpha + scale * raw[i, 1 : 1 + d]
        draws = scale * raw[i, 1 + d :].reshape(d, d)
        upper = np.triu(draws, k=1) / 2.0
        M_stack[i] = form.M + np.diag(np.diag(draws)) + upper + upper.T
    return M_stack, alpha_stack, beta_stack
